"""Shim for legacy editable installs (`pip install -e .`) in offline
environments whose setuptools lacks PEP-660 wheel support.  All real
metadata lives in pyproject.toml."""

from setuptools import setup

setup()
