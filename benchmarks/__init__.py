"""Benchmark package regenerating the paper's figures and ablations."""
