"""Fig. 4 — served users vs number of UAVs K (n = 3000, s = 3).

Paper shape to reproduce: served users grow with K for every algorithm;
approAlg leads, up to ~22% over the baselines at K = 20 (paper numbers:
approAlg 2356, maxThroughput 1920, MCS 1913, GreedyAssign 1855,
MotionCtrl 1269).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ANCHOR_POOL
from repro.sim.runner import run_algorithm

KS = (4, 8, 12, 16, 20)
ALGORITHMS = ("approAlg", "maxThroughput", "MotionCtrl", "MCS", "GreedyAssign")
N_USERS = 3000
S = 3
TITLE = "Fig. 4 - served users vs K (n=3000, s=3)"


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("k", KS)
def test_fig4_point(benchmark, scenario_cache, figure_report, perf_trajectory,
                    k, algorithm):
    # Hold users and fleet fixed across the sweep: draw the scenario once
    # with max(KS) UAVs and deploy only the first k (see fig4_sweep).
    from repro.core.problem import ProblemInstance

    base = scenario_cache(N_USERS, max(KS))
    problem = ProblemInstance(graph=base.graph, fleet=base.fleet[:k])
    params = (
        {"s": min(S, k), "max_anchor_candidates": ANCHOR_POOL,
         "gain_mode": "fast"}
        if algorithm == "approAlg"
        else {}
    )

    record = benchmark.pedantic(
        lambda: run_algorithm(problem, algorithm, **params),
        rounds=1,
        iterations=1,
    )
    figure_report.record(
        "fig4", TITLE, k, algorithm, record.served, round(record.runtime_s, 3)
    )
    perf_trajectory.record(
        f"fig4:K={k}", algorithm, record.served, record.runtime_s, workers=1
    )
    assert 0 <= record.served <= N_USERS
