"""Mobility-step ablation (ours): incremental user updates vs rebuild.

``simulate_mobility`` historically reconstructed the whole
:class:`CoverageGraph` — location edges, spatial hashes, hop structure —
on every step, although a mobility step only moves *users*.  The loop
now keeps one working graph (:meth:`CoverageGraph.with_users`) and calls
:meth:`~CoverageGraph.move_users` per step, invalidating only the
user-side coverage cache.  This bench measures the per-step win and
records it as a trajectory point.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.assignment import optimal_assignment
from repro.network.coverage import CoverageGraph
from repro.sim.mobility import GaussianWalk, simulate_mobility
from repro.workload.scenarios import paper_scenario

from .conftest import BENCH_SCALE

TITLE = "Mobility step - incremental move_users vs full graph rebuild"

STEPS = 8


def _walk_positions(problem, steps, seed=3):
    """One shared mobility realisation: the per-step user positions."""
    rng = np.random.default_rng(seed)
    walk = GaussianWalk(sigma_m=40.0)
    graph = problem.graph
    xy = np.array(
        [[u.position.x, u.position.y] for u in graph.users], dtype=float
    )
    xs = [loc.x for loc in graph.locations]
    ys = [loc.y for loc in graph.locations]
    bounds = (min(xs), max(xs), min(ys), max(ys))
    out = []
    for _ in range(steps):
        xy = walk.step(xy, bounds, rng)
        out.append(xy.copy())
    return out


def test_incremental_step_beats_rebuild(figure_report, perf_trajectory):
    problem = paper_scenario(
        num_users=600, num_uavs=8, scale=BENCH_SCALE, seed=3
    )
    graph = problem.graph
    placements = {k: k for k in range(problem.num_uavs)}
    positions = _walk_positions(problem, STEPS)

    # Old path: a brand-new graph (location edges + spatial hashes) per
    # step, exactly what the pre-refactor loop did.
    start = time.perf_counter()
    rebuilt_served = []
    for xy in positions:
        working = CoverageGraph(
            users=graph.users, locations=graph.locations,
            uav_range_m=graph.uav_range_m, channel=graph.channel,
            bandwidth_hz=graph.bandwidth_hz,
        )
        working.move_users(xy)
        rebuilt_served.append(
            optimal_assignment(
                working, problem.fleet, placements
            ).served_count
        )
    rebuild_s = (time.perf_counter() - start) / STEPS

    # New path: one working clone, move_users per step.
    start = time.perf_counter()
    incremental_served = []
    working = graph.with_users(graph.users)
    for xy in positions:
        working.move_users(xy)
        incremental_served.append(
            optimal_assignment(
                working, problem.fleet, placements
            ).served_count
        )
    incremental_s = (time.perf_counter() - start) / STEPS

    assert incremental_served == rebuilt_served
    speedup = rebuild_s / incremental_s if incremental_s > 0 else None

    figure_report.record(
        "mobility-step", TITLE, "rebuild", "ms/step",
        round(rebuild_s * 1e3, 2), round(rebuild_s, 4),
    )
    figure_report.record(
        "mobility-step", TITLE, "incremental", "ms/step",
        round(incremental_s * 1e3, 2), round(incremental_s, 4),
    )
    perf_trajectory.record(
        scenario="mobility:step",
        algorithm="move_users",
        served=incremental_served[-1],
        wall_s=incremental_s,
        speedup=None if speedup is None else round(speedup, 2),
    )


def test_simulate_mobility_wall(figure_report, perf_trajectory):
    """End-to-end loop timing on the refreshed implementation."""
    problem = paper_scenario(
        num_users=400, num_uavs=6, scale=BENCH_SCALE, seed=9
    )

    def planner(p):
        from repro.core.approx import appro_alg

        return appro_alg(
            p, s=1, gain_mode="fast", max_anchor_candidates=6
        ).deployment

    start = time.perf_counter()
    trace = simulate_mobility(
        problem, planner, steps=STEPS, redeploy_every=4, seed=5
    )
    wall = time.perf_counter() - start
    assert len(trace.served) == STEPS
    perf_trajectory.record(
        scenario="mobility:simulate",
        algorithm="refresh/4",
        served=trace.final_served,
        wall_s=wall,
    )
