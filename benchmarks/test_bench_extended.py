"""Extended evaluation benches (ours, beyond the paper's figures).

* capacity-range sweep — how the heterogeneity *spread* [C_min, C_max]
  affects served users at fixed mean capacity: the wider the spread, the
  more capacity-aware placement matters;
* local-search polish — approAlg followed by connectivity-preserving
  relocation hill-climbing (future-work flavour: how far from locally
  optimal are Algorithm 2's solutions?);
* interference audit — fraction of the SNR-planned service that survives
  a reuse-1 SINR recheck.
"""

from __future__ import annotations

import pytest

from repro.baselines.random_connected import random_connected
from repro.channel.interference import audit_interference
from repro.core.approx import appro_alg
from repro.core.local_search import local_search
from repro.core.problem import ProblemInstance
from repro.network.fleet import heterogeneous_fleet
from repro.workload.scenarios import paper_scenario

TITLE_CAP = "Capacity-spread sweep - served users (n=2000, K=12, mean C=175)"
TITLE_LS = "Local-search polish - served users (n=1500, K=10)"

CAPACITY_RANGES = ((175, 175), (125, 225), (50, 300))


@pytest.mark.parametrize("cap_range", CAPACITY_RANGES,
                         ids=lambda r: f"{r[0]}-{r[1]}")
def test_capacity_spread(benchmark, figure_report, scenario_cache, cap_range):
    base = scenario_cache(2000, 12, seed=29)
    lo, hi = cap_range
    fleet = heterogeneous_fleet(12, capacity_min=lo, capacity_max=hi, seed=29)
    problem = ProblemInstance(graph=base.graph, fleet=fleet)
    result = benchmark.pedantic(
        lambda: appro_alg(problem, s=2, gain_mode="fast",
                          max_anchor_candidates=8),
        rounds=1,
        iterations=1,
    )
    figure_report.record(
        "extended-capacity", TITLE_CAP, f"C in [{lo},{hi}]", "approAlg",
        result.served, round(benchmark.stats.stats.mean, 3),
    )
    assert result.served > 0


@pytest.mark.parametrize("start", ("approAlg", "random"))
def test_local_search_polish(benchmark, figure_report, scenario_cache, start):
    problem = scenario_cache(1500, 10, seed=31)
    if start == "approAlg":
        initial = appro_alg(problem, s=2, gain_mode="fast",
                            max_anchor_candidates=8).deployment
    else:
        initial = random_connected(problem, seed=31)

    polished = benchmark.pedantic(
        lambda: local_search(problem, initial, max_rounds=5),
        rounds=1,
        iterations=1,
    )
    figure_report.record(
        "extended-ls", TITLE_LS, f"{start}: before", "served",
        initial.served_count, 0.0,
    )
    figure_report.record(
        "extended-ls", TITLE_LS, f"{start}: after LS", "served",
        polished.served, round(benchmark.stats.stats.mean, 3),
    )
    assert polished.served >= initial.served_count


def test_interference_audit(benchmark, figure_report, scenario_cache):
    problem = scenario_cache(1500, 10, seed=31)
    deployment = appro_alg(problem, s=2, gain_mode="fast",
                           max_anchor_candidates=8).deployment

    audit = benchmark.pedantic(
        lambda: audit_interference(problem, deployment, activity_factor=1.0),
        rounds=1,
        iterations=1,
    )
    figure_report.record(
        "extended-ls", TITLE_LS, "reuse-1 SINR survival %", "served",
        round(100 * audit.survival_fraction, 1),
        round(audit.mean_sinr_loss_db, 1),
    )
    assert 0.0 <= audit.survival_fraction <= 1.0
