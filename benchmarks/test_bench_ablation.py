"""Ablation benches for our implementation choices (DESIGN.md §3).

* gain mode — exact (paper-faithful marginal gains) vs fast (direct-bound
  ranking): solution quality should be near-identical, runtime very
  different;
* leftover augmentation — Algorithm 2 as written leaves K - q_j UAVs
  undeployed; our default deploys them greedily;
* capacity order — Algorithm 2 deploys UAVs largest-capacity-first; the
  ablation shuffles the order (what a heterogeneity-unaware variant does);
* anchor pool — restricting anchors to the top-covering locations vs a
  larger pool.

Run at a reduced scale (n = 1200, K = 12) so the exact-gain arm stays
affordable.
"""

from __future__ import annotations

import pytest

from repro.core.approx import appro_alg

N_USERS = 1200
K = 12
S = 2
POOL = 8
TITLE = "Ablations - approAlg variants (n=1200, K=12, s=2)"


@pytest.fixture(scope="module")
def problem(scenario_cache):
    return scenario_cache(N_USERS, K, seed=19)


def _run(problem, **kwargs):
    defaults = dict(
        s=S, max_anchor_candidates=POOL, gain_mode="fast",
        augment_leftover=True,
    )
    defaults.update(kwargs)
    return appro_alg(problem, **defaults)


@pytest.mark.parametrize("gain_mode", ("fast", "exact"))
def test_ablation_gain_mode(benchmark, figure_report, problem, gain_mode):
    result = benchmark.pedantic(
        lambda: _run(problem, gain_mode=gain_mode), rounds=1, iterations=1
    )
    figure_report.record(
        "ablation", TITLE, f"gain={gain_mode}", "approAlg",
        result.served, round(benchmark.stats.stats.mean, 3),
    )
    assert result.served > 0


@pytest.mark.parametrize("augment", (True, False),
                         ids=("leftover-on", "leftover-off"))
def test_ablation_leftover(benchmark, figure_report, problem, augment):
    result = benchmark.pedantic(
        lambda: _run(problem, augment_leftover=augment), rounds=1, iterations=1
    )
    label = "leftover=on" if augment else "leftover=off(paper)"
    figure_report.record(
        "ablation", TITLE, label, "approAlg",
        result.served, round(benchmark.stats.stats.mean, 3),
    )
    assert result.served > 0


def test_ablation_leftover_never_hurts(problem):
    on = _run(problem, augment_leftover=True).served
    off = _run(problem, augment_leftover=False).served
    assert on >= off


@pytest.mark.parametrize("pool", (5, 8, 12))
def test_ablation_anchor_pool(benchmark, figure_report, problem, pool):
    result = benchmark.pedantic(
        lambda: _run(problem, max_anchor_candidates=pool),
        rounds=1,
        iterations=1,
    )
    figure_report.record(
        "ablation", TITLE, f"pool={pool}", "approAlg",
        result.served, round(benchmark.stats.stats.mean, 3),
    )
    assert result.served > 0


@pytest.mark.parametrize("inner", ("sorted", "pairs"))
def test_ablation_inner_greedy(benchmark, figure_report, problem, inner):
    """Algorithm 2's capacity-sorted loop vs the textbook FNW pair greedy
    (the form the 1/3 guarantee is proved for)."""
    result = benchmark.pedantic(
        lambda: _run(problem, inner=inner), rounds=1, iterations=1
    )
    figure_report.record(
        "ablation", TITLE, f"inner={inner}", "approAlg",
        result.served, round(benchmark.stats.stats.mean, 3),
    )
    assert result.served > 0


def test_ablation_workload_shape(benchmark, figure_report, scenario_cache):
    """Fat-tailed vs uniform users: the heterogeneity advantage the paper
    builds on exists because demand is concentrated; uniform demand gives
    every algorithm an easier, flatter problem."""
    from repro.workload.scenarios import SCALES, build_scenario
    from repro.workload.uniform import UniformWorkload

    fat = scenario_cache(N_USERS, K, seed=19)
    uniform_cfg = SCALES["bench"].with_overrides(
        num_users=N_USERS, num_uavs=K, workload=UniformWorkload()
    )
    uniform = build_scenario(uniform_cfg, seed=19)

    def run_both():
        return (_run(fat).served, _run(uniform).served)

    fat_served, uniform_served = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    figure_report.record("ablation", TITLE, "workload=fat-tailed",
                         "approAlg", fat_served, 0.0)
    figure_report.record("ablation", TITLE, "workload=uniform",
                         "approAlg", uniform_served, 0.0)
    assert fat_served > 0 and uniform_served > 0


def test_ablation_capacity_order(benchmark, figure_report, problem):
    """Deploy UAVs in index order (capacity-unaware) instead of largest-
    first, by handing appro_alg a fleet whose capacities are shuffled so
    the capacity sort is a no-op.  Compares the heterogeneity-awareness
    claim: capacity-sorted deployment should serve at least as many."""
    from repro.core.greedy import anchored_greedy
    from repro.core.connect import connect_and_deploy
    from repro.core.segments import optimal_segments

    plan = optimal_segments(problem.num_uavs, S)
    anchors_pool = sorted(
        range(problem.num_locations),
        key=lambda v: -problem.graph.coverage_count(
            v, problem.fleet[problem.capacity_order()[0]]
        ),
    )[:S]

    def run_with(order):
        greedy = anchored_greedy(problem, anchors_pool, plan, order=order,
                                 gain_mode="fast")
        sol = connect_and_deploy(problem, greedy, order=order,
                                 gain_mode="fast")
        return 0 if sol is None else sol.served

    sorted_order = problem.capacity_order()
    index_order = list(range(problem.num_uavs))
    served_sorted = benchmark.pedantic(
        lambda: run_with(sorted_order), rounds=1, iterations=1
    )
    served_index = run_with(index_order)
    figure_report.record("ablation", TITLE, "order=capacity", "approAlg",
                         served_sorted, 0.0)
    figure_report.record("ablation", TITLE, "order=index", "approAlg",
                         served_index, 0.0)
    assert served_sorted > 0
