"""Relocation ablation (ours): travel cost of re-deployment policies.

When users drift and the network is re-planned (Section II-C), the fleet
must physically move.  Compares the naive keep-your-role transition with
the Hungarian min-total and bottleneck min-makespan pairings over a
sequence of mobility-driven re-deployments.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.approx import appro_alg
from repro.core.problem import ProblemInstance
from repro.network.coverage import CoverageGraph
from repro.network.users import User
from repro.sim.mobility import GaussianWalk
from repro.sim.relocation import naive_relocation, plan_relocation
from repro.workload.scenarios import paper_scenario

TITLE = "Relocation ablation - fleet travel per re-deployment (K=8)"


@pytest.fixture(scope="module")
def transition():
    """Two consecutive deployments: before and after a strong user drift."""
    problem = paper_scenario(num_users=500, num_uavs=8, scale="bench",
                             seed=21)
    before = appro_alg(problem, s=2, gain_mode="fast",
                       max_anchor_candidates=8).deployment

    rng = np.random.default_rng(5)
    walk = GaussianWalk(sigma_m=400.0)
    xy = np.array(
        [[u.position.x, u.position.y] for u in problem.graph.users]
    )
    for _ in range(3):
        xy = walk.step(xy, (0.0, 3000.0, 0.0, 3000.0), rng)
    moved_users = [
        User(position=type(u.position)(float(x), float(y), 0.0),
             min_rate_bps=u.min_rate_bps)
        for u, (x, y) in zip(problem.graph.users, xy)
    ]
    moved_graph = CoverageGraph(
        users=moved_users,
        locations=problem.graph.locations,
        uav_range_m=problem.graph.uav_range_m,
    )
    moved_problem = ProblemInstance(graph=moved_graph, fleet=problem.fleet)
    after = appro_alg(moved_problem, s=2, gain_mode="fast",
                      max_anchor_candidates=8).deployment
    return problem, before, after


@pytest.mark.parametrize("policy", ("naive", "total", "makespan"))
def test_relocation_policy(benchmark, figure_report, transition, policy):
    problem, before, after = transition

    def run():
        if policy == "naive":
            return naive_relocation(problem, before, after)
        return plan_relocation(problem, before, after, policy=policy)

    plan = benchmark.pedantic(run, rounds=1, iterations=1)
    figure_report.record(
        "relocation", TITLE, f"policy={policy}", "total_km",
        round(plan.total_distance_m / 1000, 2),
        round(plan.max_distance_m / 1000, 2),
    )
    assert plan.total_distance_m >= 0


def test_planned_no_worse_than_naive(transition):
    problem, before, after = transition
    naive = naive_relocation(problem, before, after)
    total = plan_relocation(problem, before, after, policy="total")
    makespan = plan_relocation(problem, before, after, policy="makespan")
    assert total.total_distance_m <= naive.total_distance_m + 1e-6
    assert makespan.max_distance_m <= naive.max_distance_m + 1e-6
