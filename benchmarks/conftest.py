"""Benchmark-suite fixtures.

Each figure bench registers its per-point results (served users, runtime)
into a session-scoped report; at session end the report prints the same
rows/series the paper's figures show, and writes them to
``benchmarks/out/`` for EXPERIMENTS.md.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — scenario scale preset (default "bench"; set
  "paper" for the fine 100-location grid — much slower in pure Python);
* ``REPRO_BENCH_POOL`` — approAlg anchor-candidate pool (default 10; 0
  disables the restriction, reverting to the full O(m^s) enumeration);
* ``REPRO_BENCH_WORKERS`` — worker processes for the engine bench
  (default: the machine's CPU count, capped at 4);
* ``REPRO_BENCH_USERS`` — user count for the engine bench (default 3000;
  CI smoke sets a few hundred);
* ``REPRO_BENCH_ASSERT_SPEEDUP`` — when set, the engine bench *asserts*
  the parallel speedup (use on multi-core runners only).

Besides the figure tables, engine-relevant benches append their
measurements to a session-scoped :class:`PerfTrajectory`; at session end
it is written as machine-readable ``BENCH_approx.json`` at the repo root,
one point per ``{scenario, algorithm, served, wall_s, workers, scale}``.
"""

from __future__ import annotations

import json
import os
from collections import defaultdict
from pathlib import Path

import pytest

from repro.util.atomic import atomic_write_text
from repro.util.tables import format_table
from repro.workload.scenarios import paper_scenario

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "bench")
_pool = int(os.environ.get("REPRO_BENCH_POOL", "10"))
ANCHOR_POOL = None if _pool == 0 else _pool
BENCH_WORKERS = int(
    os.environ.get("REPRO_BENCH_WORKERS", min(4, os.cpu_count() or 1))
)
BENCH_USERS = int(os.environ.get("REPRO_BENCH_USERS", "3000"))

OUT_DIR = Path(__file__).parent / "out"
REPO_ROOT = Path(__file__).resolve().parent.parent
TRAJECTORY_PATH = REPO_ROOT / "BENCH_approx.json"


class FigureReport:
    """Collects (figure, sweep value, algorithm) -> metrics rows."""

    def __init__(self) -> None:
        self.served: dict = defaultdict(dict)   # fig -> (value, alg) -> served
        self.runtime: dict = defaultdict(dict)
        self.titles: dict = {}

    def record(self, fig: str, title: str, sweep_value: object,
               algorithm: str, served: int, runtime_s: float) -> None:
        self.titles[fig] = title
        self.served[fig][(sweep_value, algorithm)] = served
        self.runtime[fig][(sweep_value, algorithm)] = runtime_s

    def table(self, fig: str, metric: str = "served") -> str:
        data = self.served[fig] if metric == "served" else self.runtime[fig]
        values = sorted({v for v, _ in data}, key=lambda x: (str(type(x)), x))
        algorithms = list(dict.fromkeys(alg for _, alg in data))
        headers = ["point"] + algorithms
        rows = []
        for value in values:
            row = [value]
            for alg in algorithms:
                cell = data.get((value, alg))
                row.append("-" if cell is None else cell)
            rows.append(row)
        return format_table(
            headers, rows, title=f"{self.titles[fig]} [{metric}]"
        )

    def dump(self) -> str:
        blocks = []
        for fig in sorted(self.titles):
            blocks.append(self.table(fig, "served"))
            blocks.append(self.table(fig, "runtime"))
        return "\n\n".join(blocks)


#: Every trajectory point carries exactly these keys; metrics a bench did
#: not measure are explicit ``None``, never absent.
POINT_FIELDS = (
    "scenario", "algorithm", "served", "wall_s", "workers", "scale",
    "speedup", "subsets_evaluated", "subsets_bound_skipped",
    "context_build_s", "bound_pass_ms", "gain_matrix_ms", "peak_rss_mb",
)


def normalize_point(point: dict) -> dict:
    """Project ``point`` onto the full :data:`POINT_FIELDS` schema.

    Unknown extra keys are kept (after the canonical columns) so a future
    bench can grow the schema without silently dropping data."""
    out = {name: point.get(name) for name in POINT_FIELDS}
    for key, value in point.items():
        if key not in out:
            out[key] = value
    return out


class PerfTrajectory:
    """Machine-readable perf points for the appro_alg engine.

    Each point is one measured run: ``scenario`` (a short free-form label
    like ``"fig4:K=20"``), ``algorithm`` (``"approAlg"``,
    ``"approAlg+parallel"``, ``"context-build"``, ...), ``served``,
    ``wall_s``, ``workers``, and ``scale``.  Extra keys (``speedup``,
    ``subsets_evaluated``) are preserved as-is.

    Points are normalized to one schema (:data:`POINT_FIELDS`): every
    point carries the full key set, with ``None`` standing in for metrics
    a given bench did not measure.  Consumers (``repro perf-diff``,
    plotting scripts) can then index columns without per-point
    ``.get(...)`` defensive code.

    At session end the trajectory is *merged* into the existing
    ``BENCH_approx.json`` (a point replaces an earlier one with the same
    ``(scenario, algorithm, workers, scale)`` key, new points append), so
    running a subset of the benches refreshes just those points instead of
    wiping the rest — the historical failure mode was an empty ``[]``
    file after a session that recorded nothing.
    """

    def __init__(self) -> None:
        self.points: list = []

    def record(self, scenario: str, algorithm: str, served: int,
               wall_s: float, workers: int = 1,
               scale: str = BENCH_SCALE, **extra: object) -> None:
        self.points.append(normalize_point({
            "scenario": scenario,
            "algorithm": algorithm,
            "served": int(served),
            "wall_s": round(float(wall_s), 4),
            "workers": int(workers),
            "scale": scale,
            **extra,
        }))

    @staticmethod
    def _key(point: dict) -> tuple:
        return (point.get("scenario"), point.get("algorithm"),
                point.get("workers"), point.get("scale"))

    def merged_with(self, existing: list) -> list:
        """Existing file points updated/extended by this session's."""
        merged = {self._key(p): normalize_point(p) for p in existing}
        for point in self.points:
            merged[self._key(point)] = point
        return list(merged.values())

    def dump(self, existing: "list | None" = None) -> str:
        points = self.merged_with(existing or [])
        return json.dumps({"points": points}, indent=2)


def _existing_trajectory_points(path: Path) -> list:
    """Points already on disk; tolerates a missing, empty, or corrupt
    file (the merge must never block a bench session from flushing)."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return []
    points = data.get("points") if isinstance(data, dict) else None
    return points if isinstance(points, list) else []


_report = FigureReport()
_trajectory = PerfTrajectory()


@pytest.fixture(scope="session")
def figure_report() -> FigureReport:
    return _report


@pytest.fixture(scope="session")
def perf_trajectory() -> PerfTrajectory:
    return _trajectory


def pytest_sessionfinish(session, exitstatus):
    if _trajectory.points:
        existing = _existing_trajectory_points(TRAJECTORY_PATH)
        # Atomic flush: an interrupted bench session must not truncate the
        # accumulated perf history the regression gate reads.
        atomic_write_text(TRAJECTORY_PATH, _trajectory.dump(existing) + "\n")
        print(f"\nperf trajectory ({len(_trajectory.points)} points "
              f"recorded, {len(existing)} merged) written to "
              f"{TRAJECTORY_PATH}")
    elif not _existing_trajectory_points(TRAJECTORY_PATH):
        print(f"\nWARNING: no perf points recorded and {TRAJECTORY_PATH} "
              "is empty or missing — the perf trajectory is NOT flushed "
              "(run benchmarks/test_bench_engine.py)")
    if not _report.titles:
        return
    text = _report.dump()
    print("\n\n===== reproduced figure data =====\n" + text + "\n")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "figures.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def scenario_cache():
    """Scenario builder with caching so parametrized benches share
    instances (and their warm coverage caches)."""
    cache: dict = {}

    def get(num_users: int, num_uavs: int, seed: int = 7):
        key = (num_users, num_uavs, seed, BENCH_SCALE)
        if key not in cache:
            cache[key] = paper_scenario(
                num_users=num_users,
                num_uavs=num_uavs,
                scale=BENCH_SCALE,
                seed=seed,
            )
        return cache[key]

    return get
