"""Benchmark-suite fixtures.

Each figure bench registers its per-point results (served users, runtime)
into a session-scoped report; at session end the report prints the same
rows/series the paper's figures show, and writes them to
``benchmarks/out/`` for EXPERIMENTS.md.

Environment knobs:

* ``REPRO_BENCH_SCALE`` — scenario scale preset (default "bench"; set
  "paper" for the fine 100-location grid — much slower in pure Python);
* ``REPRO_BENCH_POOL`` — approAlg anchor-candidate pool (default 10; 0
  disables the restriction, reverting to the full O(m^s) enumeration).
"""

from __future__ import annotations

import os
from collections import defaultdict
from pathlib import Path

import pytest

from repro.util.tables import format_table
from repro.workload.scenarios import paper_scenario

BENCH_SCALE = os.environ.get("REPRO_BENCH_SCALE", "bench")
_pool = int(os.environ.get("REPRO_BENCH_POOL", "10"))
ANCHOR_POOL = None if _pool == 0 else _pool

OUT_DIR = Path(__file__).parent / "out"


class FigureReport:
    """Collects (figure, sweep value, algorithm) -> metrics rows."""

    def __init__(self) -> None:
        self.served: dict = defaultdict(dict)   # fig -> (value, alg) -> served
        self.runtime: dict = defaultdict(dict)
        self.titles: dict = {}

    def record(self, fig: str, title: str, sweep_value: object,
               algorithm: str, served: int, runtime_s: float) -> None:
        self.titles[fig] = title
        self.served[fig][(sweep_value, algorithm)] = served
        self.runtime[fig][(sweep_value, algorithm)] = runtime_s

    def table(self, fig: str, metric: str = "served") -> str:
        data = self.served[fig] if metric == "served" else self.runtime[fig]
        values = sorted({v for v, _ in data}, key=lambda x: (str(type(x)), x))
        algorithms = list(dict.fromkeys(alg for _, alg in data))
        headers = ["point"] + algorithms
        rows = []
        for value in values:
            row = [value]
            for alg in algorithms:
                cell = data.get((value, alg))
                row.append("-" if cell is None else cell)
            rows.append(row)
        return format_table(
            headers, rows, title=f"{self.titles[fig]} [{metric}]"
        )

    def dump(self) -> str:
        blocks = []
        for fig in sorted(self.titles):
            blocks.append(self.table(fig, "served"))
            blocks.append(self.table(fig, "runtime"))
        return "\n\n".join(blocks)


_report = FigureReport()


@pytest.fixture(scope="session")
def figure_report() -> FigureReport:
    return _report


def pytest_sessionfinish(session, exitstatus):
    if not _report.titles:
        return
    text = _report.dump()
    print("\n\n===== reproduced figure data =====\n" + text + "\n")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / "figures.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def scenario_cache():
    """Scenario builder with caching so parametrized benches share
    instances (and their warm coverage caches)."""
    cache: dict = {}

    def get(num_users: int, num_uavs: int, seed: int = 7):
        key = (num_users, num_uavs, seed, BENCH_SCALE)
        if key not in cache:
            cache[key] = paper_scenario(
                num_users=num_users,
                num_uavs=num_uavs,
                scale=BENCH_SCALE,
                seed=seed,
            )
        return cache[key]

    return get
