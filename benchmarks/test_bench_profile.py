"""Enabled-overhead gate for the sampling profiler.

The flight recorder's promise is two-sided: provably zero cost while
off (pinned by ``tests/test_obs_properties.py``) and at most a few
percent while *on*.  This bench runs the headline-shaped workload plain
and profiled in interleaved min-of-N pairs (min absorbs scheduler noise
far better than mean) and gates the ratio at ≤3% plus a small absolute
floor for sub-second CI-smoke walls.

The profiled pass also writes ``benchmarks/out/paper-headline
.speedscope.json`` — the artifact CI uploads so any run's flamegraph is
one download away.
"""

from __future__ import annotations

import time

from benchmarks.conftest import ANCHOR_POOL, BENCH_USERS, OUT_DIR
from repro.core.approx import appro_alg
from repro.core.context import SolverContext
from repro.obs.profile import ProfileConfig, SamplingProfiler

NUM_UAVS = 20
S = 2
SEED = 7
USERS = max(BENCH_USERS, 2000)
REPEATS = 3
#: Relative overhead gate from the issue; the absolute floor keeps the
#: gate meaningful when CI smoke shrinks the wall under a second (3% of
#: 0.5s is scheduler noise, not signal).
MAX_OVERHEAD = 0.03
ABS_FLOOR_S = 0.05


def _params() -> dict:
    params = {"s": S, "gain_mode": "fast"}
    if ANCHOR_POOL is not None:
        params["max_anchor_candidates"] = ANCHOR_POOL
    return params


def test_profiler_overhead_within_three_percent(
    scenario_cache, perf_trajectory
):
    problem = scenario_cache(USERS, NUM_UAVS, seed=SEED)
    context = SolverContext.from_problem(problem)
    params = _params()

    appro_alg(problem, context=context, **params)  # warmup (caches, JIT-less)

    plain: list = []
    profiled: list = []
    profiler = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        base = appro_alg(problem, context=context, **params)
        plain.append(time.perf_counter() - start)

        profiler = SamplingProfiler(ProfileConfig(hz=97.0, memory=False))
        with profiler:
            start = time.perf_counter()
            under = appro_alg(problem, context=context, **params)
            profiled.append(time.perf_counter() - start)
        assert under.served == base.served  # profiling must not perturb

    assert profiler.samples > 0, "the sampler never observed the solve"
    best_plain, best_profiled = min(plain), min(profiled)
    overhead = best_profiled / best_plain - 1.0
    budget = max(MAX_OVERHEAD, ABS_FLOOR_S / best_plain)
    assert overhead <= budget, (
        f"profiler overhead {overhead:+.1%} exceeds the "
        f"{budget:.1%} budget (plain {best_plain:.3f}s, "
        f"profiled {best_profiled:.3f}s at 97 Hz)"
    )

    perf_trajectory.record(
        f"paper-headline:profile-overhead:n={USERS},K={NUM_UAVS},s={S}",
        "approAlg+profiler", under.served, best_profiled, workers=1,
        speedup=round(1.0 + overhead, 4),
    )

    OUT_DIR.mkdir(exist_ok=True)
    out = profiler.write_speedscope(
        OUT_DIR / "paper-headline.speedscope.json",
        name=f"paper-headline n={USERS} K={NUM_UAVS}",
    )
    assert out.stat().st_size > 0
