"""Fig. 5 — served users vs number of users n (K = 20, s = 3).

Paper shape: every algorithm serves more users as n grows; approAlg leads
by ~7% (n = 1000) to ~22% (n = 3000).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ANCHOR_POOL
from repro.sim.runner import run_algorithm

NS = (1000, 1500, 2000, 2500, 3000)
ALGORITHMS = ("approAlg", "maxThroughput", "MotionCtrl", "MCS", "GreedyAssign")
K = 20
S = 3
TITLE = "Fig. 5 - served users vs n (K=20, s=3)"


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("n", NS)
def test_fig5_point(benchmark, scenario_cache, figure_report, n, algorithm):
    problem = scenario_cache(n, K)
    params = (
        {"s": S, "max_anchor_candidates": ANCHOR_POOL, "gain_mode": "fast"}
        if algorithm == "approAlg"
        else {}
    )
    record = benchmark.pedantic(
        lambda: run_algorithm(problem, algorithm, **params),
        rounds=1,
        iterations=1,
    )
    figure_report.record(
        "fig5", TITLE, n, algorithm, record.served, round(record.runtime_s, 3)
    )
    assert 0 <= record.served <= n
