"""Capacity-justification bench (substrate validation, not a paper figure).

Regenerates the systems claim behind the paper's capacity constraint
(Section I / SkyCore [27]): request latency at a UAV base station vs its
offered load.  Below the capacity rating latency is milliseconds; past
saturation it grows without bound over the horizon — "a few seconds".
"""

from __future__ import annotations

import pytest

from repro.network.deployment import Deployment
from repro.simnet.sim import simulate_network
from repro.simnet.station import StationModel
from tests.conftest import make_line_instance

CAPACITY = 50
LOADS = (0.5, 0.8, 0.96, 1.2)  # fraction of capacity actually assigned
TITLE = "Capacity justification - latency vs offered load (C=50)"


@pytest.mark.parametrize("load", LOADS)
def test_latency_vs_load(benchmark, figure_report, load):
    users = int(round(CAPACITY * load / 0.8))  # rho = users/C / 1.25
    problem = make_line_instance(
        num_locations=1, users_per_location=max(users, 1),
        capacities=(CAPACITY,),
    )
    dep = Deployment(
        placements={0: 0}, assignment={u: 0 for u in range(users)}
    )
    model = StationModel(request_rate_per_user_hz=2.0, headroom=1.25)

    stats = benchmark.pedantic(
        lambda: simulate_network(problem, dep, duration_s=60.0,
                                 model=model, seed=int(load * 100)),
        rounds=1,
        iterations=1,
    )
    st = stats.station(0)
    figure_report.record(
        "simnet", TITLE, f"rho={st.load_factor:.2f}", "mean_ms",
        round(st.mean_sojourn_s * 1000, 1), round(st.p95_sojourn_s * 1000, 1),
    )
    assert st.completed > 0


def test_latency_monotone_in_load(figure_report):
    """The assembled series must be monotone: heavier load, longer delay."""
    data = figure_report.served.get("simnet", {})
    if len(data) < len(LOADS):
        pytest.skip("run after the parametrized points")
    series = [v for _, v in sorted(data.items())]
    assert all(b >= a * 0.8 for a, b in zip(series, series[1:]))
