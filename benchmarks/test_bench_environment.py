"""Environment sweep (ours): propagation density vs coverage.

The paper evaluates one (urban-like) environment; this bench sweeps the
Al-Hourani presets.  Denser environments shrink effective coverage (the
2 kbps rate floor is generous, but the fixed R_user radius interacts with
pathloss through the rate check) and concentrate service — a robustness
check that the pipeline behaves physically, not an original paper figure.

Also ablates heterogeneous coverage radii (Section II-B allows per-UAV
R_user; the evaluation fixes one value).
"""

from __future__ import annotations

import pytest

from repro.core.approx import appro_alg
from repro.core.problem import ProblemInstance
from repro.network.fleet import heterogeneous_fleet
from repro.workload.scenarios import SCALES, build_scenario

ENVIRONMENTS = ("suburban", "urban", "dense-urban", "highrise-urban")
TITLE = "Environment sweep - approAlg served users (n=1500, K=10, s=2)"

# The paper's 2 kbps floor never binds (SNR at 500 m is enormous); to make
# the propagation environment matter, users here demand video-grade rates.
VIDEO_RATE_BPS = 2.5e6


@pytest.mark.parametrize("environment", ENVIRONMENTS)
def test_environment_sweep(benchmark, figure_report, environment):
    from repro.workload.fat_tailed import FatTailedWorkload

    config = SCALES["bench"].with_overrides(
        num_users=1500,
        num_uavs=10,
        environment=environment,
        workload=FatTailedWorkload(min_rate_bps=VIDEO_RATE_BPS),
    )
    problem = build_scenario(config, seed=23)

    result = benchmark.pedantic(
        lambda: appro_alg(problem, s=2, gain_mode="fast",
                          max_anchor_candidates=8),
        rounds=1,
        iterations=1,
    )
    figure_report.record(
        "environment", TITLE, environment, "approAlg", result.served,
        round(benchmark.stats.stats.mean, 3),
    )
    assert result.served > 0


def test_highrise_serves_no_more_than_suburban(figure_report):
    data = figure_report.served.get("environment", {})
    if len(data) < len(ENVIRONMENTS):
        pytest.skip("run after the parametrized points")
    served = {env: v for (env, _alg), v in data.items()}
    assert served["highrise-urban"] <= served["suburban"]


@pytest.mark.parametrize("hetero_ranges", (False, True),
                         ids=("uniform-radii", "hetero-radii"))
def test_heterogeneous_radii_ablation(benchmark, figure_report,
                                      scenario_cache, hetero_ranges):
    base = scenario_cache(1500, 10, seed=23)
    fleet = heterogeneous_fleet(
        10, heterogeneous_ranges=hetero_ranges, seed=23
    )
    problem = ProblemInstance(graph=base.graph, fleet=fleet)
    result = benchmark.pedantic(
        lambda: appro_alg(problem, s=2, gain_mode="fast",
                          max_anchor_candidates=8),
        rounds=1,
        iterations=1,
    )
    label = "radii=hetero(0.8-1.0x)" if hetero_ranges else "radii=uniform"
    figure_report.record("environment", TITLE, label, "approAlg",
                         result.served, round(benchmark.stats.stats.mean, 3))
    assert result.served > 0
