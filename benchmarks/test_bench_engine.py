"""Perf trajectory of the appro_alg engine: serial seed path vs the
vectorized/bound-pruned/parallel engine on a Fig.-4-style scenario.

The serial and engine runs must agree exactly on ``(served, anchors)`` —
the engine's optimisations are lossless by construction, and this bench
re-checks that on a realistic instance every run.  Wall-clock points for
both paths land in ``BENCH_approx.json`` so the speedup trajectory is
recorded per machine; the speedup itself is only *asserted* under
``REPRO_BENCH_ASSERT_SPEEDUP`` (meaningless on single-core runners).

CI smoke: ``REPRO_BENCH_USERS=800 REPRO_BENCH_WORKERS=2`` keeps this
under a minute while still exercising the process pool.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import ANCHOR_POOL, BENCH_USERS, BENCH_WORKERS
from repro.core.approx import appro_alg
from repro.core.context import SolverContext
from repro.obs.profile import peak_rss_mb

NUM_UAVS = 12
S = 2
SEED = 7
SCENARIO = f"engine:n={BENCH_USERS},K={NUM_UAVS},s={S}"


def _params() -> dict:
    params = {"s": S, "gain_mode": "fast"}
    if ANCHOR_POOL is not None:
        params["max_anchor_candidates"] = ANCHOR_POOL
    return params


def test_engine_matches_serial_and_records_speedup(
    scenario_cache, perf_trajectory
):
    problem = scenario_cache(BENCH_USERS, NUM_UAVS, seed=SEED)

    start = time.perf_counter()
    serial = appro_alg(problem, **_params())
    serial_s = time.perf_counter() - start
    perf_trajectory.record(
        SCENARIO, "approAlg", serial.served, serial_s, workers=1,
        subsets_evaluated=serial.stats.subsets_evaluated,
    )

    # Engine run: shared context (built once, reused), lossless bound
    # pruning, process-parallel subset fan-out.
    context = SolverContext.from_problem(problem)
    start = time.perf_counter()
    engine = appro_alg(
        problem, workers=BENCH_WORKERS, bound_prune=True, context=context,
        **_params(),
    )
    engine_s = time.perf_counter() - start
    speedup = serial_s / engine_s if engine_s > 0 else float("inf")
    perf_trajectory.record(
        SCENARIO, "approAlg+engine", engine.served, engine_s,
        workers=BENCH_WORKERS, speedup=round(speedup, 2),
        subsets_evaluated=engine.stats.subsets_evaluated,
        subsets_bound_skipped=engine.stats.subsets_bound_skipped,
        context_build_s=round(context.build_seconds, 4),
        peak_rss_mb=peak_rss_mb(),
    )

    # Losslessness: identical result regardless of workers/pruning.
    assert engine.served == serial.served
    assert engine.anchors == serial.anchors
    assert engine.stats.subsets_total == serial.stats.subsets_total
    assert (
        engine.stats.subsets_pruned
        + engine.stats.subsets_bound_skipped
        + engine.stats.subsets_evaluated
        == engine.stats.subsets_total
    )

    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP"):
        assert speedup >= 3.0, (
            f"engine speedup {speedup:.2f}x below the 3x target "
            f"(serial {serial_s:.2f}s, engine {engine_s:.2f}s, "
            f"workers={BENCH_WORKERS})"
        )


HEADLINE_UAVS = 20
# The vectorisation win scales with the user count while the per-subset
# floor (connect step, per-round Python) does not, so the headline is
# never measured below 2000 users — at CI-smoke scale (n=800) the point
# would gate on the floor, not on the kernels this bench exists to pin.
HEADLINE_USERS = max(BENCH_USERS, 2000)
HEADLINE_SCENARIO = (
    f"paper-headline:n={HEADLINE_USERS},K={HEADLINE_UAVS},s={S}"
)
# The headline sweeps the full anchor enumeration (no candidate-pool cap):
# it is the point quoted in README/PERF and the one the pre-PR serial
# baseline was measured on.
HEADLINE_PARAMS = {"s": S, "gain_mode": "fast"}


def test_paper_headline_speedup(scenario_cache, perf_trajectory):
    """The headline point of the vectorised engine: the paper-scale
    scenario (K=20), solved by the numpy-native path at workers 1/2/4,
    against the scalar reference loop (Kuhn DFS chains, per-candidate
    scalar gains, no shared context) that the pre-vectorisation engine
    ran.

    The reference realises the same greedy by construction in exact mode;
    in fast mode only the direct-bound *ranking* realisation may differ,
    so served counts are compared with a small tolerance instead of
    bit-equality (the golden-equivalence suite pins bit-equality across
    serial/parallel/bound-pruned runs of the vectorised path itself).
    """
    from repro.flow.bipartite import IncrementalAssignment

    problem = scenario_cache(HEADLINE_USERS, HEADLINE_UAVS, seed=SEED)

    saved_chain = IncrementalAssignment.DEFAULT_CHAIN
    IncrementalAssignment.DEFAULT_CHAIN = "dfs"
    try:
        start = time.perf_counter()
        reference = appro_alg(problem, **HEADLINE_PARAMS)
        reference_s = time.perf_counter() - start
    finally:
        IncrementalAssignment.DEFAULT_CHAIN = saved_chain
    perf_trajectory.record(
        HEADLINE_SCENARIO, "approAlg+scalar-reference", reference.served,
        reference_s, workers=1,
        subsets_evaluated=reference.stats.subsets_evaluated,
    )

    context = SolverContext.from_problem(problem)
    headline_speedup = 0.0
    for workers in (1, 2, 4):
        start = time.perf_counter()
        engine = appro_alg(
            problem, workers=workers, context=context, **HEADLINE_PARAMS
        )
        wall = time.perf_counter() - start
        speedup = reference_s / wall if wall > 0 else float("inf")
        if workers == 1:
            headline_speedup = speedup
        perf_trajectory.record(
            HEADLINE_SCENARIO, "approAlg+engine", engine.served, wall,
            workers=workers, speedup=round(speedup, 2),
            subsets_evaluated=engine.stats.subsets_evaluated,
            context_build_s=round(context.build_seconds, 4),
            peak_rss_mb=peak_rss_mb(),
        )
        # Fast-mode realisation tolerance, one-sided: the vectorised
        # ranking may legitimately find a *better* subset (it does at
        # n=3000: 2784 vs 2701), but must never be meaningfully worse.
        # Exact equality across the vectorised path's own variants is
        # pinned elsewhere (see docstring).
        assert engine.served >= reference.served - max(
            2, reference.served // 50
        )

    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP"):
        assert headline_speedup >= 2.0, (
            f"paper-headline serial speedup {headline_speedup:.2f}x below "
            f"the 2x gate (reference {reference_s:.2f}s)"
        )


def test_fig4_smoke_wall_time(perf_trajectory):
    """Fig.-4 smoke (approAlg only, tracing disabled): the observability
    layer must cost nothing when off, so this wall-clock point is the
    regression sentinel for the instrumented hot path."""
    from repro import obs
    from repro.sim.experiments import fig4_sweep

    assert not obs.is_enabled(), "tracing must be off for the perf sentinel"
    ks = (2, 4, 6, 8, 10, 12)
    start = time.perf_counter()
    result = fig4_sweep(
        ks=ks, num_users=2000, s=2, scale="bench", seed=SEED,
        algorithms=("approAlg",), max_anchor_candidates=ANCHOR_POOL,
    )
    wall = time.perf_counter() - start
    served_total = sum(rec.served for _, rec in result.records)
    perf_trajectory.record(
        f"fig4-smoke:n=2000,ks={'-'.join(map(str, ks))}",
        "approAlg", served_total, wall, workers=1,
    )
    assert served_total > 0
    assert not obs.snapshot_spans(), "disabled run must record no spans"


def test_parallel_only_agrees_with_serial(scenario_cache, perf_trajectory):
    """Pure fan-out (no bound pruning) must also be bit-identical; its
    wall-clock point isolates the pool overhead from the pruning win."""
    problem = scenario_cache(BENCH_USERS, NUM_UAVS, seed=SEED)

    start = time.perf_counter()
    parallel = appro_alg(problem, workers=BENCH_WORKERS, **_params())
    wall = time.perf_counter() - start
    serial = appro_alg(problem, **_params())

    perf_trajectory.record(
        SCENARIO, "approAlg+parallel", parallel.served, wall,
        workers=BENCH_WORKERS,
        subsets_evaluated=parallel.stats.subsets_evaluated,
    )
    assert (parallel.served, parallel.anchors) == (serial.served, serial.anchors)
    assert parallel.stats.subsets_evaluated == serial.stats.subsets_evaluated
