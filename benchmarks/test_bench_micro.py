"""Micro-benchmarks of the substrates (not paper figures): max-flow,
coverage-graph construction, BFS, Algorithm 1, and the incremental
assignment engine.  These use pytest-benchmark's statistical rounds, since
each operation is cheap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import max_served
from repro.core.segments import optimal_segments
from repro.flow.bipartite import IncrementalAssignment
from repro.flow.dinic import Dinic
from repro.graphs.bfs import bfs_hops


def build_random_flow(seed: int = 0, n: int = 200, arcs: int = 1200) -> Dinic:
    rng = np.random.default_rng(seed)
    d = Dinic(n)
    for _ in range(arcs):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            d.add_edge(int(u), int(v), int(rng.integers(1, 20)))
    return d


def test_dinic_maxflow(benchmark):
    def run():
        d = build_random_flow()
        return d.max_flow(0, 199)

    value = benchmark(run)
    assert value >= 0


def test_dinic_vs_networkx(benchmark):
    """Report our Dinic's runtime on a network where networkx gives the
    same answer (correctness asserted once, speed measured)."""
    import networkx as nx

    rng = np.random.default_rng(1)
    arcs = [
        (int(u), int(v), int(c))
        for u, v, c in zip(
            rng.integers(0, 120, 800),
            rng.integers(0, 120, 800),
            rng.integers(1, 15, 800),
        )
        if u != v
    ]
    g = nx.DiGraph()
    for u, v, c in arcs:
        if g.has_edge(u, v):
            g[u][v]["capacity"] += c
        else:
            g.add_edge(u, v, capacity=c)
    g.add_nodes_from([0, 119])
    expected = nx.maximum_flow_value(g, 0, 119)

    def run():
        d = Dinic(120)
        for u, v, c in arcs:
            d.add_edge(u, v, c)
        return d.max_flow(0, 119)

    assert run() == expected
    benchmark(run)


def test_coverage_graph_construction(benchmark, scenario_cache):
    from repro.network.coverage import CoverageGraph

    base = scenario_cache(2000, 10)

    def run():
        return CoverageGraph(
            users=base.graph.users,
            locations=base.graph.locations,
            uav_range_m=600.0,
        )

    graph = benchmark(run)
    assert graph.num_users == 2000


def test_coverage_sets_warm(benchmark, scenario_cache):
    problem = scenario_cache(2000, 10)
    uav = problem.fleet[0]

    def run():
        total = 0
        for v in range(problem.num_locations):
            total += len(problem.graph.coverable_users(v, uav))
        return total

    assert benchmark(run) > 0


def test_bfs_hops_location_graph(benchmark, scenario_cache):
    problem = scenario_cache(1000, 10)
    graph = problem.graph.location_graph
    result = benchmark(lambda: bfs_hops(graph, 0))
    assert max(result) >= 0


def test_algorithm1_segments(benchmark):
    plan = benchmark(lambda: optimal_segments(200, 3))
    assert plan.relay_bound <= 200


def test_incremental_assignment_opens(benchmark, scenario_cache):
    problem = scenario_cache(2000, 10)
    uav = problem.fleet[0]
    covers = [
        problem.graph.coverable_users(v, uav)
        for v in range(problem.num_locations)
    ]

    def run():
        eng = IncrementalAssignment(problem.num_users)
        for v in range(problem.num_locations):
            eng.open(v, covers[v], 150)
        return eng.served_count

    assert benchmark(run) > 0


def test_solver_context_build(benchmark, scenario_cache, perf_trajectory):
    """SolverContext precomputation (hop matrix + coverage bitsets): the
    one-off cost the engine pays before any subset is evaluated."""
    from repro.core.context import SolverContext

    problem = scenario_cache(2000, 10)
    SolverContext.from_problem(problem)  # warm the graph caches once

    context = benchmark(lambda: SolverContext.from_problem(problem))
    assert context.num_locations == problem.num_locations
    perf_trajectory.record(
        "micro:context-build", "context-build", 0,
        benchmark.stats.stats.mean, workers=1,
    )


def test_bound_pass_kernel(benchmark, scenario_cache, perf_trajectory):
    """The vectorised admissible-bound pass (`subset_bounds`): upper
    bounds for every anchor subset of a sweep in one array pass.  Its
    mean time lands in the trajectory as ``bound_pass_ms`` so a
    regression localises to this kernel instead of end-to-end wall."""
    from itertools import combinations

    from repro.core.context import SolverContext, subset_bounds

    problem = scenario_cache(2000, 10)
    context = SolverContext.from_problem(problem)
    subsets = np.array(
        list(combinations(range(problem.num_locations), 2)), dtype=np.int64
    )

    bounds = benchmark(
        lambda: subset_bounds(context, subsets, problem.num_uavs)
    )
    assert bounds.shape == (len(subsets),)
    assert (bounds >= 0).all()
    perf_trajectory.record(
        "micro:kernels", "bound-pass", 0, benchmark.stats.stats.mean,
        bound_pass_ms=round(benchmark.stats.stats.mean * 1000.0, 3),
    )


def test_gain_matrix_kernel(benchmark, scenario_cache, perf_trajectory):
    """The batched greedy gain kernel (`direct_gain_bounds`): one masked
    popcount ranking every candidate location against a half-loaded
    assignment.  Recorded as ``gain_matrix_ms``."""
    from repro.core.context import SolverContext

    problem = scenario_cache(2000, 10)
    context = SolverContext.from_problem(problem)
    uav = problem.fleet[0]
    eng = IncrementalAssignment(problem.num_users)
    for v in range(0, problem.num_locations, 2):
        eng.open(v, problem.graph.coverable_users(v, uav), 120)
    rows = context.coverage_rows(0)

    gains = benchmark(lambda: eng.direct_gain_bounds(rows, uav.capacity))
    scalar = [
        eng.direct_gain_bound(
            problem.graph.coverable_users(v, uav), uav.capacity
        )
        for v in range(problem.num_locations)
    ]
    assert gains.tolist() == scalar
    perf_trajectory.record(
        "micro:kernels", "gain-matrix", 0, benchmark.stats.stats.mean,
        gain_matrix_ms=round(benchmark.stats.stats.mean * 1000.0, 3),
    )


def test_exact_assignment_dinic(benchmark, scenario_cache):
    problem = scenario_cache(2000, 10)
    placements = {k: k for k in range(problem.num_uavs)}
    value = benchmark.pedantic(
        lambda: max_served(problem.graph, problem.fleet, placements),
        rounds=3,
        iterations=1,
    )
    assert value >= 0
