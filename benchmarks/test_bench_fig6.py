"""Fig. 6 — tradeoff of approAlg's parameter s (n = 3000, K = 20).

(a) served users vs s: grows with s (paper: 7%-33% above the baselines);
(b) running time vs s: grows steeply with s — the complexity is
O(K^2 n^2 m^{s+1}); the paper measured 0.34 s / 3.1 s / 95 s / ~47 min for
s = 1..4 on the authors' machine.  Absolute values differ here (pure
Python, restricted anchor pool, coarse grid) but the growth shape holds.

Baseline rows are re-measured once and shown flat across s, exactly as the
paper plots them.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import ANCHOR_POOL
from repro.sim.runner import run_algorithm

SS = (1, 2, 3, 4)
BASELINES = ("maxThroughput", "MotionCtrl", "MCS", "GreedyAssign")
N_USERS = 3000
K = 20
TITLE = "Fig. 6 - served users (a) and runtime (b) vs s (n=3000, K=20)"


@pytest.mark.parametrize("s", SS)
def test_fig6_appro_point(benchmark, scenario_cache, figure_report, s):
    problem = scenario_cache(N_USERS, K)
    record = benchmark.pedantic(
        lambda: run_algorithm(
            problem,
            "approAlg",
            s=s,
            max_anchor_candidates=ANCHOR_POOL,
            gain_mode="fast",
        ),
        rounds=1,
        iterations=1,
    )
    figure_report.record(
        "fig6", TITLE, s, "approAlg", record.served, round(record.runtime_s, 3)
    )
    assert record.served > 0


@pytest.mark.parametrize("algorithm", BASELINES)
def test_fig6_baseline_rows(benchmark, scenario_cache, figure_report,
                            algorithm):
    problem = scenario_cache(N_USERS, K)
    record = benchmark.pedantic(
        lambda: run_algorithm(problem, algorithm),
        rounds=1,
        iterations=1,
    )
    for s in SS:  # baselines do not depend on s; plot them flat
        figure_report.record(
            "fig6", TITLE, s, algorithm, record.served,
            round(record.runtime_s, 3),
        )
    assert record.served > 0
