"""Fault-tolerant mission runtime: crash two UAVs, watch the network heal.

A five-UAV chain deployment over disjoint user clusters makes every
recovery mechanism visible and deterministic:

1. a battery depletion at the chain's end degrades coverage; re-planning
   with the shrunken fleet cannot do better, so the recovery loop backs
   off exponentially between retries and finally gives up — until the
   battery swap completes and the returning UAV triggers a repair that
   restores full service;
2. a mid-chain crash splits the network at an articulation point; the
   controller keeps the largest connected remnant online and re-dispatches
   the stranded survivors into a validated, connected deployment;
3. separately, the solver watchdog runs ``approAlg`` under a tiny
   wall-clock budget and falls back through the configured chain instead
   of raising.

Run:  python examples/fault_recovery.py
"""

from repro.core.problem import ProblemInstance
from repro.geometry.point import Point3D
from repro.network.coverage import CoverageGraph
from repro.network.uav import UAV
from repro.network.users import users_from_points
from repro.ops import (
    BATTERY,
    CRASH,
    Fault,
    FaultSchedule,
    MissionConfig,
    RecoveryPolicy,
    run_mission,
)
from repro.sim.report import mission_report
from repro.sim.runner import WatchdogConfig, solve_with_fallback

NUM_LOCATIONS = 5
USERS_PER_CLUSTER = 4
SPACING_M = 500.0


def chain_problem() -> ProblemInstance:
    """Five candidate locations on a line, four users under each; adjacent
    locations are within UAV range, so feasible networks are sub-chains and
    every interior UAV is an articulation point."""
    locations = [
        Point3D(SPACING_M * (j + 1), 0.0, 300.0) for j in range(NUM_LOCATIONS)
    ]
    points = [
        (SPACING_M * (j + 1) + 5.0 * i, 0.0)
        for j in range(NUM_LOCATIONS)
        for i in range(USERS_PER_CLUSTER)
    ]
    graph = CoverageGraph(
        users=users_from_points(points),
        locations=locations,
        uav_range_m=600.0,
    )
    fleet = [
        UAV(capacity=6, user_range_m=500.0, name=f"uav{k}")
        for k in range(NUM_LOCATIONS)
    ]
    return ProblemInstance(graph=graph, fleet=fleet)


def main() -> None:
    problem = chain_problem()
    watchdog = WatchdogConfig(params={"approAlg": {"s": 2}})

    # --- watchdog: a tiny budget must fall back, not raise -------------
    squeezed = solve_with_fallback(
        problem, WatchdogConfig(params={"approAlg": {"s": 2}}, budget_s=1e-9)
    )
    trail = ", ".join(
        f"{a.algorithm}={a.status}" for a in squeezed.record.attempts
    )
    print("watchdog under a 1 ns budget: answered by "
          f"{squeezed.answered_by} [{trail}]\n")
    assert squeezed.ok, "the fallback chain's last resort must answer"
    assert squeezed.record.attempts[0].status == "timeout"

    # --- plan, then script faults against the planned deployment -------
    initial = solve_with_fallback(problem, watchdog)
    occupant = {loc: k for k, loc in initial.deployment.placements.items()}
    end_uav = occupant[NUM_LOCATIONS - 1]   # chain end: degrades, no split
    mid_uav = occupant[2]                   # articulation point: splits

    schedule = FaultSchedule(faults=(
        Fault(time_s=20.0, kind=BATTERY, uav_index=end_uav, duration_s=60.0),
        Fault(time_s=100.0, kind=CRASH, uav_index=mid_uav),
    ))
    config = MissionConfig(
        duration_s=150.0,
        policy=RecoveryPolicy(
            max_retries=3,
            backoff_initial_s=5.0,
            backoff_factor=2.0,
            watchdog=watchdog,
        ),
    )
    result = run_mission(problem, schedule, config)
    print(mission_report(problem, result, include_map=False))

    counts = result.log.counts()
    assert result.faults_injected == 2
    assert counts.get("backoff", 0) >= 1, "expected backed-off retries"
    assert result.repairs >= 1 and counts.get("repair", 0) >= 1
    assert result.final_valid and result.final_connected
    assert result.served_min < result.served_initial
    print(
        f"\nrecovered: served dipped to {result.served_min}, ended at "
        f"{result.served_final}/{problem.num_users} — validated and connected."
    )


if __name__ == "__main__":
    main()
