"""Regenerate all of the paper's figures as tables and CSV files.

Writes ``fig4.csv`` / ``fig5.csv`` / ``fig6a.csv`` / ``fig6b.csv`` (plus
the extended sweeps) into ``examples/out/`` and prints the tables.  Uses
trimmed sweep points so the whole script finishes in a couple of minutes
on a laptop; pass ``--full`` for the complete grids.

Run:  python examples/paper_figures.py [--full]
"""

import sys
from pathlib import Path

from repro.sim.experiments import (
    capacity_spread_sweep,
    environment_sweep,
    fig4_sweep,
    fig5_sweep,
    fig6_sweep,
)

OUT = Path(__file__).parent / "out"


def main() -> None:
    full = "--full" in sys.argv
    OUT.mkdir(exist_ok=True)

    fig4 = fig4_sweep(ks=(4, 8, 12, 16, 20) if full else (4, 12, 20))
    print(fig4.to_text(title="Fig. 4 - served users vs K (n=3000, s=3)"))
    (OUT / "fig4.csv").write_text(fig4.to_csv())

    fig5 = fig5_sweep(ns=(1000, 1500, 2000, 2500, 3000) if full
                      else (1000, 2000, 3000))
    print()
    print(fig5.to_text(title="Fig. 5 - served users vs n (K=20, s=3)"))
    (OUT / "fig5.csv").write_text(fig5.to_csv())

    fig6 = fig6_sweep(ss=(1, 2, 3, 4) if full else (1, 2, 3))
    print()
    print(fig6.to_text(metric="served",
                       title="Fig. 6(a) - served users vs s (n=3000, K=20)"))
    (OUT / "fig6a.csv").write_text(fig6.to_csv(metric="served"))
    print()
    print(fig6.to_text(metric="runtime_s",
                       title="Fig. 6(b) - running time (s) vs s"))
    (OUT / "fig6b.csv").write_text(fig6.to_csv(metric="runtime_s"))

    spread = capacity_spread_sweep()
    print()
    print(spread.to_text(title="Extended - capacity spread (mean C fixed)"))
    (OUT / "capacity_spread.csv").write_text(spread.to_csv())

    env = environment_sweep()
    print()
    print(env.to_text(title="Extended - environment sweep (2.5 Mbps floor)"))
    (OUT / "environment.csv").write_text(env.to_csv())

    print(f"\nCSV files written to {OUT}/")


if __name__ == "__main__":
    main()
