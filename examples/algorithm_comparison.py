"""Mini-Fig. 4: sweep the number of UAVs and compare all five algorithms.

A scaled-down version of the paper's headline experiment (Fig. 4) that
finishes in well under a minute: served users vs K for approAlg and the
four baselines, plus the theoretical guarantee of Theorem 1 per K.

Run:  python examples/algorithm_comparison.py
"""

from repro import approximation_ratio
from repro.sim.experiments import fig4_sweep
from repro.util.tables import format_table


def main() -> None:
    ks = (4, 8, 12)
    sweep = fig4_sweep(
        ks=ks,
        num_users=1200,
        s=2,
        scale="bench",
        seed=31,
        max_anchor_candidates=8,
    )
    print(sweep.to_text(title="served users vs K (n=1200, s=2)"))

    print()
    print(format_table(
        ["K", "Theorem-1 guarantee (fraction of optimum)"],
        [[k, f"{approximation_ratio(k, 2):.3f}"] for k in ks],
        title="theoretical guarantees (the measured gap to baselines is "
              "much smaller)",
    ))

    series = sweep.series()
    appro = series["approAlg"]
    best_baseline = {
        k: max(v[k] for name, v in series.items() if name != "approAlg")
        for k in ks
    }
    print()
    rows = [
        [k, int(appro[k]), int(best_baseline[k]),
         f"{appro[k] / best_baseline[k] - 1:+.1%}"]
        for k in ks
    ]
    print(format_table(
        ["K", "approAlg", "best baseline", "improvement"], rows,
        title="approAlg vs the best baseline at each K",
    ))


if __name__ == "__main__":
    main()
