"""Fleet planning: how does fleet composition affect coverage?

The paper's Fig. 1 motivates heterogeneity with two real drones: the DJI
Matrice 600 RTK (5.5 kg payload, strong base station, out of production)
and the Matrice 300 RTK (2.7 kg payload).  This example deploys fleets of
different M600/M300 mixes over the same disaster area with Algorithm 2
and reports how many users each mix serves — useful when deciding which
airframes to dispatch (or buy).

Run:  python examples/fleet_planning.py
"""

from repro import appro_alg
from repro.core.problem import ProblemInstance
from repro.network.fleet import fleet_from_models
from repro.util.tables import format_table
from repro.workload.scenarios import SCALES, build_scenario


def main() -> None:
    config = SCALES["bench"].with_overrides(num_users=2000, num_uavs=8)
    base = build_scenario(config, seed=77)  # fixes users + geometry

    mixes = [
        ("8x M300", {"M300": 8}),
        ("2x M600 + 6x M300", {"M600": 2, "M300": 6}),
        ("4x M600 + 4x M300", {"M600": 4, "M300": 4}),
        ("8x M600", {"M600": 8}),
    ]

    rows = []
    for label, counts in mixes:
        fleet = fleet_from_models(counts, seed=5)
        problem = ProblemInstance(graph=base.graph, fleet=fleet)
        result = appro_alg(
            problem, s=2, max_anchor_candidates=8, gain_mode="fast"
        )
        total_capacity = sum(u.capacity for u in fleet)
        rows.append(
            [
                label,
                total_capacity,
                result.served,
                f"{result.served / problem.num_users:.0%}",
                f"{result.served / total_capacity:.0%}",
            ]
        )

    print(format_table(
        ["fleet mix", "total capacity", "served", "of users", "capacity used"],
        rows,
        title=f"fleet composition vs coverage ({base.num_users} users, "
              "8 UAVs, approAlg s=2)",
    ))
    print(
        "\nReading the last column: when capacity utilisation saturates, "
        "adding stronger UAVs stops paying — coverage geometry, not "
        "capacity, becomes the binding constraint."
    )


if __name__ == "__main__":
    main()
