"""Why the capacity constraint exists: queueing latency vs load.

Reproduces the systems argument behind the paper's capacity model
(Section I, citing SkyCore): the UAV's onboard server handles user
requests with limited compute.  This example (1) sweeps a single
station's offered load through saturation and (2) compares the paper's
capacity-respecting assignment against a capacity-ignoring counterfactual
on a real deployment — same hovering positions, very different latency.

Run:  python examples/capacity_study.py
"""

from repro import appro_alg, paper_scenario
from repro.network.deployment import Deployment
from repro.simnet.sim import overload_assignment, simulate_network
from repro.simnet.station import StationModel
from repro.util.tables import format_table


def single_station_sweep() -> None:
    from repro.network.coverage import CoverageGraph
    from repro.core.problem import ProblemInstance
    from repro.geometry.point import Point3D
    from repro.network.uav import UAV
    from repro.network.users import users_from_points

    capacity = 50
    model = StationModel(request_rate_per_user_hz=2.0, headroom=1.25)
    rows = []
    for users in (20, 40, 50, 62, 75):
        points = [(500.0 + 2.0 * i, 0.0) for i in range(users)]
        graph = CoverageGraph(
            users=users_from_points(points),
            locations=[Point3D(500.0, 0.0, 300.0)],
            uav_range_m=600.0,
        )
        problem = ProblemInstance(
            graph=graph, fleet=[UAV(capacity=capacity)]
        )
        dep = Deployment(
            placements={0: 0}, assignment={u: 0 for u in range(users)}
        )
        stats = simulate_network(
            problem, dep, duration_s=60.0, model=model, seed=users
        )
        st = stats.station(0)
        rows.append(
            [users, f"{st.load_factor:.2f}",
             f"{st.mean_sojourn_s * 1000:.1f} ms",
             f"{st.p95_sojourn_s * 1000:.1f} ms", st.max_queue]
        )
    print(format_table(
        ["assigned users", "load rho", "mean latency", "p95 latency",
         "max queue"],
        rows,
        title=f"one station, capacity rating C = {capacity}",
    ))
    print(
        "\nBeyond C (rho -> 1 and past it) the queue and latency explode — "
        "this is what the paper's constraint 'users per UAV <= C_k' "
        "prevents.\n"
    )


def deployment_comparison() -> None:
    # Capacity-tight fleet: total capacity ~ 0.7x the user count, so the
    # constraint actually binds.
    problem = paper_scenario(
        num_users=350, num_uavs=6, scale="small", seed=9,
        capacity_min=20, capacity_max=60,
    )
    result = appro_alg(problem, s=2, gain_mode="fast")
    model = StationModel(request_rate_per_user_hz=1.0, headroom=1.25)

    ok = simulate_network(problem, result.deployment, duration_s=40.0,
                          model=model, seed=1)
    over_dep = overload_assignment(problem, result.deployment)
    over = simulate_network(problem, over_dep, duration_s=40.0,
                            model=model, seed=1)

    print(format_table(
        ["assignment", "served", "worst rho", "mean latency", "p95 latency"],
        [
            ["capacity-respecting (paper)",
             result.deployment.served_count,
             f"{max(s.load_factor for s in ok.stations):.2f}",
             f"{ok.mean_sojourn_s * 1000:.1f} ms",
             f"{ok.p95_sojourn_s * 1000:.1f} ms"],
            ["capacity-ignoring (nearest UAV)",
             over_dep.served_count,
             f"{max(s.load_factor for s in over.stations):.2f}",
             f"{over.mean_sojourn_s * 1000:.1f} ms",
             f"{over.p95_sojourn_s * 1000:.1f} ms"],
        ],
        title="same placements, two assignment policies",
    ))


def main() -> None:
    single_station_sweep()
    deployment_comparison()


if __name__ == "__main__":
    main()
