"""Mission operations: gateway link, endurance budget, user mobility.

Goes beyond the paper's one-shot placement into the operational questions
its system model raises (Fig. 1 / Section II):

1. the network must include a *gateway* UAV within range of the emergency
   communication vehicle — we retrofit that constraint;
2. batteries are finite — how long can the network stay aloft?
3. trapped users move — how fast does a stale deployment decay, and how
   much does periodic re-deployment (Section II-C) recover?

Run:  python examples/mission_operations.py
"""

from repro import appro_alg, paper_scenario
from repro.core.gateway import Gateway, appro_alg_with_gateway, has_gateway_link
from repro.geometry.point import Point2D
from repro.network.energy import EnergyModel, fleet_endurance_s, mission_endurance_s
from repro.sim.mobility import GaussianWalk, compare_policies
from repro.sim.render import ascii_map
from repro.util.tables import format_table


def main() -> None:
    problem = paper_scenario(num_users=400, num_uavs=6, scale="small", seed=11)
    planner_kwargs = dict(s=2, gain_mode="fast")

    # 1. Gateway: the emergency communication vehicle parks at the SW corner.
    gateway = Gateway(position=Point2D(0.0, 0.0))
    deployment = appro_alg_with_gateway(problem, gateway, **planner_kwargs)
    assert deployment is not None, "gateway unreachable — move the vehicle"
    print("deployment with gateway link "
          f"(linked: {has_gateway_link(problem, deployment, gateway)}):\n")
    print(ascii_map(problem, deployment, cols=45, rows=12))

    # 2. Endurance: who lands first?
    model = EnergyModel()
    per_uav = fleet_endurance_s(problem.fleet, deployment, model)
    rows = [
        [k, problem.fleet[k].capacity,
         f"{problem.fleet[k].battery_wh:.0f} Wh",
         f"{secs / 60.0:.0f} min"]
        for k, secs in sorted(per_uav.items())
    ]
    print()
    print(format_table(["UAV", "capacity", "battery", "endurance"], rows,
                       title="per-UAV hover endurance"))
    mission_min = mission_endurance_s(problem.fleet, deployment, model) / 60.0
    print(f"\nnetwork endurance (first battery empty): {mission_min:.0f} min "
          "- plan battery swaps accordingly.")

    # 3. Mobility: stale vs periodically refreshed placement.
    stale, refreshed = compare_policies(
        problem,
        planner=lambda p: appro_alg(p, **planner_kwargs).deployment,
        steps=10,
        redeploy_every=3,
        mobility=GaussianWalk(sigma_m=120.0),
        seed=4,
    )
    print()
    print(format_table(
        ["step"] + [str(i) for i in range(1, len(stale.served) + 1)],
        [
            ["stale"] + stale.served,
            ["refresh/3"] + refreshed.served,
        ],
        title="served users while people move (sigma = 120 m/step)",
    ))
    print(
        f"\nmean served: stale {stale.mean_served:.0f} vs refreshed "
        f"{refreshed.mean_served:.0f} "
        f"({refreshed.redeploys - 1} re-deployments)"
    )

    # 4. Resilience: which single UAV failure hurts most?
    from repro.network.resilience import single_failure_impacts

    impacts = single_failure_impacts(problem, deployment)
    rows = [
        [fi.uav_index, fi.location,
         "yes" if fi.splits_network else "no",
         fi.served_after, fi.served_lost]
        for fi in impacts[:5]
    ]
    print()
    print(format_table(
        ["failed UAV", "location", "splits net?", "served after", "lost"],
        rows,
        title="worst single-UAV failures (top 5)",
    ))
    worst = impacts[0]
    print(
        f"\nUAV {worst.uav_index} is the critical node: protect it, or add "
        "a redundant relay next to it."
    )


if __name__ == "__main__":
    main()
