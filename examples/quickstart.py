"""Quickstart: deploy a heterogeneous UAV network over a disaster area.

Builds the paper's Section IV-A scenario at a small scale, runs the
proposed approximation algorithm (Algorithm 2), and prints the deployment.

Run:  python examples/quickstart.py
"""

from repro import appro_alg, approximation_ratio, paper_scenario, validate_deployment

def main() -> None:
    # A 1.5 x 1.5 km disaster zone, 300 trapped users (fat-tailed around
    # hotspots), 6 UAVs with heterogeneous service capacities.
    problem = paper_scenario(num_users=300, num_uavs=6, scale="small", seed=42)
    print(
        f"scenario: {problem.num_users} users, {problem.num_uavs} UAVs, "
        f"{problem.num_locations} candidate hovering locations"
    )
    print("fleet capacities:", [u.capacity for u in problem.fleet])

    # Algorithm 2 with s = 2 anchors (s = 3 is the paper default; smaller s
    # is faster, larger s is better — see Fig. 6).
    result = appro_alg(problem, s=2)
    validate_deployment(problem.graph, problem.fleet, result.deployment)

    print(
        f"\napproAlg served {result.served}/{problem.num_users} users "
        f"({result.served / problem.num_users:.0%})"
    )
    print(
        "theoretical guarantee: at least "
        f"{approximation_ratio(problem.num_uavs, 2):.3f} of the optimum"
    )
    print(f"anchors: {result.anchors}, segment plan: {result.plan}")

    print("\ndeployment (UAV -> hovering location, load/capacity):")
    loads = result.deployment.loads()
    for k, loc in sorted(result.deployment.placements.items()):
        uav = problem.fleet[k]
        x, y, z = problem.graph.locations[loc]
        print(
            f"  UAV {k} ({uav.name}, capacity {uav.capacity:3d}) at "
            f"({x:6.0f}, {y:6.0f}, {z:3.0f}) m serving "
            f"{loads[k]:3d} users"
        )


if __name__ == "__main__":
    main()
