"""Disaster-response planning: compare all placement algorithms.

Scenario: an earthquake knocks out terrestrial base stations in a
3 x 3 km urban area; survivors cluster around a few shelters (fat-tailed
density).  A rescue team has 12 UAVs bought over several years, so their
base stations differ widely in service capacity.  Which placement
algorithm serves the most survivors, and at what cost?

Run:  python examples/disaster_response.py
"""

from repro import paper_scenario
from repro.scenario import DEFAULT_REGISTRY, SolvePipeline
from repro.util.tables import format_table
from repro.workload.fat_tailed import FatTailedWorkload


def main() -> None:
    # Sharper hotspots than the default: survivors gather at 5 shelters.
    problem = paper_scenario(
        num_users=1500,
        num_uavs=12,
        scale="bench",
        seed=2024,
        workload=FatTailedWorkload(
            num_hotspots=5, pareto_alpha=1.2, hotspot_sigma_m=180.0,
            background_fraction=0.10,
        ),
    )
    print(
        f"earthquake scenario: {problem.num_users} survivors, "
        f"{problem.num_uavs} heterogeneous UAVs "
        f"(capacities {sorted(u.capacity for u in problem.fleet)})"
    )

    pipeline = SolvePipeline()
    rows = []
    for name in DEFAULT_REGISTRY.names():
        params = (
            {"s": 2, "max_anchor_candidates": 8, "gain_mode": "fast"}
            if name == "approAlg"
            else {}
        )
        rec = pipeline.solve(problem, name, params).record
        note = "(ignores connectivity!)" if name == "Unconstrained" else ""
        rows.append(
            [name, rec.served, f"{rec.served_fraction:.0%}",
             f"{rec.runtime_s:.2f}s", note]
        )
    rows.sort(key=lambda r: -r[1])
    print()
    print(format_table(
        ["algorithm", "served", "fraction", "time", "note"], rows,
        title="survivors served by each placement algorithm",
    ))

    best = rows[0][0] if rows[0][0] != "Unconstrained" else rows[1][0]
    print(
        f"\n=> '{best}' serves the most survivors among connected "
        "deployments; every extra percent is people reached within the "
        "72 golden hours."
    )


if __name__ == "__main__":
    main()
