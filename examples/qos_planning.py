"""QoS planning: mixed traffic classes, spectrum, and fleet sizing.

Extends the paper's uniform-2-kbps world to a realistic mix: 80% of
survivors need voice-grade links (2 kbps floor) and 20% need video-grade
links (2.5 Mbps floor, e.g. rescue-team video uplinks).  Then:

1. plan the deployment with approAlg (the rate floors flow through the
   coverage graph automatically);
2. audit the plan under reuse-1 interference, allocate channels, and show
   how many channels restore link quality;
3. ask the inverse question: how many UAVs until 90% of survivors are
   served?

Run:  python examples/qos_planning.py
"""

from repro import appro_alg, paper_scenario
from repro.channel.interference import audit_interference
from repro.network.spectrum import allocate_channels
from repro.sim.planning import uavs_needed_for_target
from repro.util.tables import format_table
from repro.workload.fat_tailed import FatTailedWorkload


def main() -> None:
    problem = paper_scenario(
        num_users=800,
        num_uavs=10,
        scale="bench",
        seed=17,
        workload=FatTailedWorkload(
            rate_classes=((0.8, 2_000.0), (0.2, 2.5e6)),
        ),
    )
    voice = sum(
        1 for u in problem.graph.users if u.min_rate_bps < 1e6
    )
    print(
        f"scenario: {problem.num_users} users "
        f"({voice} voice @ 2 kbps, {problem.num_users - voice} video "
        f"@ 2.5 Mbps), {problem.num_uavs} UAVs\n"
    )

    result = appro_alg(problem, s=2, gain_mode="fast",
                       max_anchor_candidates=8)
    served_video = sum(
        1
        for u in result.deployment.assignment
        if problem.graph.users[u].min_rate_bps >= 1e6
    )
    print(
        f"approAlg serves {result.served} users "
        f"({result.served / problem.num_users:.0%}), including "
        f"{served_video} video users\n"
    )

    # Interference audit: reuse-1 vs increasingly aggressive channelisation
    # (wider coupling range -> more neighbours forced onto distinct
    # channels -> more spectrum, cleaner links).
    reuse1 = audit_interference(problem, result.deployment)
    rows = [
        ["reuse-1 (all co-channel)", 1,
         f"{reuse1.still_satisfied}/{reuse1.served}",
         f"{reuse1.mean_sinr_loss_db:.1f} dB"],
    ]
    for coupling in (1000.0, 2000.0, 3000.0):
        plan = allocate_channels(
            problem, result.deployment, coupling_range_m=coupling
        )
        audited = audit_interference(
            problem, result.deployment, channel_plan=plan
        )
        rows.append(
            [f"colour within {coupling / 1000:.0f} km",
             plan.num_channels,
             f"{audited.still_satisfied}/{audited.served}",
             f"{audited.mean_sinr_loss_db:.1f} dB"],
        )
    print(format_table(
        ["spectrum plan", "channels", "links meeting QoS", "mean SINR loss"],
        rows,
        title="interference audit: spectrum vs link quality",
    ))

    # Fleet sizing.
    sizing = uavs_needed_for_target(
        problem,
        lambda p: appro_alg(p, s=min(2, p.num_uavs), gain_mode="fast",
                            max_anchor_candidates=8).deployment,
        target_fraction=0.9,
    )
    print()
    rows = [[p.num_uavs, p.served, f"{p.fraction:.0%}"] for p in sizing.curve]
    print(format_table(["UAVs", "served", "fraction"], rows,
                       title="coverage curve (fleet prefixes)"))
    if sizing.achieved:
        print(f"\n=> {sizing.required_uavs} UAVs reach the 90% target.")
    else:
        print("\n=> the full fleet cannot reach 90%; acquire more UAVs "
              "or relax the video QoS.")


if __name__ == "__main__":
    main()
