"""Declarative scenario descriptions: :class:`ScenarioSpec`.

A spec is the single, serialisable description of one solve: *which*
scenario (scale preset + overrides, channel environment, workload model,
fleet mix, seed) and *how* to solve it (algorithm, algorithm parameters,
engine options).  Every entry point — ``repro run``, the figure sweeps,
the mission runtime, the batch runner — reduces to building a spec and
handing it to :class:`repro.scenario.pipeline.SolvePipeline`, so adding a
scenario knob means touching this file, not five call sites.

The spec composes the lower-level preset tables instead of duplicating
them: ``scale`` keys into :data:`repro.workload.scenarios.SCALES`,
``environment`` into :data:`repro.channel.presets.ENVIRONMENTS` and
``workload`` into :data:`WORKLOADS`.  :data:`PRESETS` holds the named,
ready-to-run specs that previously lived as scattered constants in the
CLI and the sweep drivers.

Seed discipline (see :mod:`repro.util.rng`): the spec ``seed`` drives the
scenario draw directly — ``ScenarioSpec(seed=7).build()`` is bit-identical
to the historical ``paper_scenario(..., seed=7)`` — and named auxiliary
streams derive via :meth:`ScenarioSpec.derived_seed`.

JSON round-trip::

    spec = ScenarioSpec(scale="small", num_users=300, seed=42)
    ScenarioSpec.from_json(spec.to_json()) == spec   # always True

``from_dict`` rejects unknown fields and invalid values with a named
error, so a typo in a spec file fails loudly instead of silently running
the default scenario.
"""

from __future__ import annotations

import json
import re
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path

from repro.channel.presets import ENVIRONMENTS
from repro.core.problem import ProblemInstance
from repro.util.rng import derive_seed
from repro.workload.fat_tailed import FatTailedWorkload
from repro.workload.scenarios import SCALES, ScenarioConfig, build_scenario
from repro.workload.uniform import UniformWorkload

SPEC_FORMAT = 1
SPEC_KIND = "scenario-spec"

#: Workload models a spec may name (the declarative counterpart of the
#: workload classes themselves).
WORKLOADS = {
    "fat-tailed": FatTailedWorkload,
    "uniform": UniformWorkload,
}


class SpecError(ValueError):
    """A scenario spec failed validation (bad field, unknown key, ...)."""


#: ``tiles`` grid syntax: columns x rows, both positive ("2x3").
_TILES_RE = re.compile(r"([0-9]+)x([0-9]+)")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise SpecError(message)


def _check_optional_int(value: object, name: str, minimum: int = 1) -> None:
    if value is None:
        return
    _require(
        isinstance(value, int) and not isinstance(value, bool)
        and value >= minimum,
        f"{name} must be an integer >= {minimum}, got {value!r}",
    )


def _check_optional_number(value: object, name: str) -> None:
    if value is None:
        return
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        and value > 0,
        f"{name} must be a positive number, got {value!r}",
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative scenario + solve description.

    Scenario fields default to ``None`` meaning "whatever the ``scale``
    preset says"; only explicit overrides are stored, so a spec file reads
    as its diff against the preset.
    """

    # -- identity ------------------------------------------------------------
    name: str = "custom"
    # -- scenario: area / scale ----------------------------------------------
    scale: str = "bench"
    num_users: "int | None" = None
    num_uavs: "int | None" = None
    grid_side_m: "float | None" = None
    altitude_m: "float | None" = None
    altitude_layers_m: tuple = ()
    # -- scenario: channel / workload / fleet mix ----------------------------
    environment: "str | None" = None
    workload: "str | None" = None
    workload_params: dict = field(default_factory=dict)
    capacity_min: "int | None" = None
    capacity_max: "int | None" = None
    # -- seeds ---------------------------------------------------------------
    seed: int = 0
    # -- algorithm + engine options ------------------------------------------
    algorithm: str = "approAlg"
    algorithm_params: dict = field(default_factory=dict)
    workers: int = 1
    bound_prune: bool = False
    validate: bool = True
    # -- scale-out: demand aggregation + area tiling --------------------------
    #: "users" solves over individual users (the historical path);
    #: "cells" aggregates users into spatial demand cells first (see
    #: :mod:`repro.workload.aggregate`).
    aggregation: str = "users"
    #: Cell edge length for ``aggregation="cells"``; ``None`` means
    #: singleton cells (one per user — bit-identical to the user path).
    cell_size_m: "float | None" = None
    #: Shard the area into a ``"NxM"`` grid of tiles solved independently
    #: and stitched (see :mod:`repro.scenario.tiling`); ``None`` = no tiling.
    tiles: "str | None" = None
    #: How far each tile's candidate locations reach past its core bounds.
    tile_overlap_m: float = 0.0
    #: Internal: when set, :meth:`build` yields that single carved tile's
    #: sub-problem instead of the full scenario (how the tiled driver feeds
    #: per-tile specs through the batch runner unchanged).
    tile_index: "int | None" = None

    # -- schema validation ---------------------------------------------------

    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and self.name,
            f"name must be a non-empty string, got {self.name!r}",
        )
        _require(
            self.scale in SCALES,
            f"unknown scale {self.scale!r}; known: {', '.join(sorted(SCALES))}",
        )
        _check_optional_int(self.num_users, "num_users")
        _check_optional_int(self.num_uavs, "num_uavs")
        _check_optional_number(self.grid_side_m, "grid_side_m")
        _check_optional_number(self.altitude_m, "altitude_m")
        _require(
            isinstance(self.altitude_layers_m, (tuple, list)),
            "altitude_layers_m must be a sequence of altitudes, got "
            f"{self.altitude_layers_m!r}",
        )
        object.__setattr__(
            self, "altitude_layers_m", tuple(self.altitude_layers_m)
        )
        for altitude in self.altitude_layers_m:
            _check_optional_number(altitude, "altitude_layers_m entry")
        if self.environment is not None:
            _require(
                self.environment in ENVIRONMENTS,
                f"unknown environment {self.environment!r}; known: "
                f"{', '.join(sorted(ENVIRONMENTS))}",
            )
        if self.workload is not None:
            _require(
                self.workload in WORKLOADS,
                f"unknown workload {self.workload!r}; known: "
                f"{', '.join(sorted(WORKLOADS))}",
            )
        _require(
            isinstance(self.workload_params, dict),
            f"workload_params must be a dict, got {self.workload_params!r}",
        )
        _require(
            not self.workload_params or self.workload is not None,
            "workload_params given without a workload model name",
        )
        _check_optional_int(self.capacity_min, "capacity_min")
        _check_optional_int(self.capacity_max, "capacity_max")
        if self.capacity_min is not None and self.capacity_max is not None:
            _require(
                self.capacity_min <= self.capacity_max,
                f"capacity_min {self.capacity_min} exceeds capacity_max "
                f"{self.capacity_max}",
            )
        _require(
            isinstance(self.seed, int) and not isinstance(self.seed, bool),
            f"seed must be an integer, got {self.seed!r}",
        )
        _require(
            isinstance(self.algorithm, str) and self.algorithm,
            f"algorithm must be a non-empty string, got {self.algorithm!r}",
        )
        _require(
            isinstance(self.algorithm_params, dict),
            f"algorithm_params must be a dict, got {self.algorithm_params!r}",
        )
        _require(
            isinstance(self.workers, int) and not isinstance(self.workers, bool)
            and self.workers >= 1,
            f"workers must be an integer >= 1, got {self.workers!r}",
        )
        _require(
            isinstance(self.bound_prune, bool),
            f"bound_prune must be a boolean, got {self.bound_prune!r}",
        )
        _require(
            isinstance(self.validate, bool),
            f"validate must be a boolean, got {self.validate!r}",
        )
        _require(
            self.aggregation in ("users", "cells"),
            f"aggregation must be 'users' or 'cells', got {self.aggregation!r}",
        )
        _check_optional_number(self.cell_size_m, "cell_size_m")
        _require(
            self.cell_size_m is None or self.aggregation == "cells",
            "cell_size_m given without aggregation='cells'",
        )
        if self.tiles is not None:
            _require(
                isinstance(self.tiles, str)
                and _TILES_RE.fullmatch(self.tiles) is not None,
                f"tiles must look like '2x3' (columns x rows), got "
                f"{self.tiles!r}",
            )
            nx, ny = self.tile_grid()
            _require(
                nx >= 1 and ny >= 1,
                f"tiles grid must be at least 1x1, got {self.tiles!r}",
            )
        _require(
            isinstance(self.tile_overlap_m, (int, float))
            and not isinstance(self.tile_overlap_m, bool)
            and self.tile_overlap_m >= 0,
            f"tile_overlap_m must be a number >= 0, got "
            f"{self.tile_overlap_m!r}",
        )
        _require(
            self.tile_overlap_m == 0 or self.tiles is not None,
            "tile_overlap_m given without a tiles grid",
        )
        if self.tile_index is not None:
            _require(
                self.tiles is not None,
                "tile_index given without a tiles grid",
            )
            nx, ny = self.tile_grid()
            _require(
                isinstance(self.tile_index, int)
                and not isinstance(self.tile_index, bool)
                and 0 <= self.tile_index < nx * ny,
                f"tile_index must be an integer in [0, {nx * ny}), got "
                f"{self.tile_index!r}",
            )

    # -- derived views -------------------------------------------------------

    def with_overrides(self, **kwargs: object) -> "ScenarioSpec":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **kwargs)

    def to_config(self) -> ScenarioConfig:
        """Resolve the spec against its scale preset into a
        :class:`~repro.workload.scenarios.ScenarioConfig`."""
        overrides: dict = {}
        for key in (
            "num_users", "num_uavs", "grid_side_m", "altitude_m",
            "capacity_min", "capacity_max", "environment",
        ):
            value = getattr(self, key)
            if value is not None:
                overrides[key] = value
        if self.altitude_layers_m:
            overrides["altitude_layers_m"] = self.altitude_layers_m
        if self.workload is not None:
            overrides["workload"] = WORKLOADS[self.workload](
                **self.workload_params
            )
        return SCALES[self.scale].with_overrides(**overrides)

    def tile_grid(self) -> "tuple | None":
        """The parsed ``tiles`` grid as ``(nx, ny)``, or ``None``."""
        if self.tiles is None:
            return None
        nx, ny = (int(part) for part in self.tiles.split("x"))
        return nx, ny

    def build(self) -> ProblemInstance:
        """Instantiate the scenario (bit-identical to the historical
        ``paper_scenario(..., seed=spec.seed)`` path for the same knobs).

        Aggregation and tile carving are part of the build: a spec with
        ``aggregation="cells"`` yields a demand-cell problem, and one with
        ``tile_index`` set yields that carved tile's sub-problem — which is
        how :func:`repro.scenario.tiling.solve_tiled` feeds per-tile specs
        through the batch runner without the runner knowing about tiles.
        """
        problem = build_scenario(self.to_config(), self.seed)
        if self.aggregation == "cells":
            from repro.workload.aggregate import aggregate_problem

            problem = aggregate_problem(problem, self.cell_size_m)
        if self.tile_index is not None:
            from repro.scenario.tiling import carve_tiles

            tile = carve_tiles(
                problem, self.tile_grid(), self.tile_overlap_m
            )[self.tile_index]
            if tile.problem is None:
                raise SpecError(
                    f"tile {self.tile_index} of grid {self.tiles} is empty "
                    "(no users, candidate locations, or apportioned UAVs)"
                )
            problem = tile.problem
        return problem

    def derived_seed(self, *labels: str) -> "int | None":
        """A named auxiliary seed (see :func:`repro.util.rng.derive_seed`)."""
        return derive_seed(self.seed, *labels)

    def scenario_key(self) -> tuple:
        """Hashable identity of the *scenario* part of the spec.

        Two specs with equal keys build bit-identical problems, so the
        batch runner may share one built problem (and solver context)
        between them even when algorithm/engine options differ.
        """
        return (
            self.scale, self.num_users, self.num_uavs, self.grid_side_m,
            self.altitude_m, self.altitude_layers_m, self.environment,
            self.workload,
            json.dumps(self.workload_params, sort_keys=True, default=repr),
            self.capacity_min, self.capacity_max, self.seed,
            self.aggregation, self.cell_size_m,
            self.tiles, self.tile_overlap_m, self.tile_index,
        )

    # -- JSON round-trip -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready flat representation (format/kind header + fields)."""
        body = asdict(self)
        body["altitude_layers_m"] = list(self.altitude_layers_m)
        return {"format": SPEC_FORMAT, "kind": SPEC_KIND, **body}

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict`; rejects unknown/invalid fields."""
        _require(isinstance(data, dict), f"spec must be an object, got {data!r}")
        kind = data.get("kind", SPEC_KIND)
        _require(
            kind == SPEC_KIND,
            f"expected a {SPEC_KIND} document, got kind = {kind!r}",
        )
        version = data.get("format", SPEC_FORMAT)
        _require(
            version == SPEC_FORMAT,
            f"unsupported spec format {version!r} (this build reads "
            f"{SPEC_FORMAT})",
        )
        known = {f.name for f in fields(cls)}
        body = {k: v for k, v in data.items() if k not in ("format", "kind")}
        unknown = sorted(set(body) - known)
        _require(
            not unknown,
            f"unknown spec field(s): {', '.join(unknown)}; known: "
            f"{', '.join(sorted(known))}",
        )
        return cls(**body)

    def to_json(self, indent: "int | None" = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"spec is not valid JSON: {exc}") from None
        return cls.from_dict(data)

    def save(self, path: "str | Path") -> None:
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def load(cls, path: "str | Path") -> "ScenarioSpec":
        return cls.from_json(Path(path).read_text())


#: Named ready-to-run specs — the scenario-first successors of the knobs
#: the CLI subcommands and examples used to hand-build (``repro scenario
#: show <name>`` dumps any of them as JSON to start a custom spec from).
PRESETS = {
    "demo-small": ScenarioSpec(
        name="demo-small", scale="small", num_users=300, num_uavs=6,
        seed=42, algorithm="approAlg", algorithm_params={"s": 2},
    ),
    "bench-default": ScenarioSpec(
        name="bench-default", scale="bench", num_users=600, num_uavs=8,
        seed=0, algorithm="approAlg",
        algorithm_params={"s": 2, "gain_mode": "fast",
                          "max_anchor_candidates": 10},
    ),
    "mission-small": ScenarioSpec(
        name="mission-small", scale="small", num_users=400, num_uavs=6,
        seed=7, algorithm="approAlg",
        algorithm_params={"s": 2, "gain_mode": "fast",
                          "max_anchor_candidates": 9},
    ),
    "paper-fig4": ScenarioSpec(
        name="paper-fig4", scale="bench", num_users=3000, num_uavs=20,
        seed=7, algorithm="approAlg",
        algorithm_params={"s": 3, "gain_mode": "fast",
                          "max_anchor_candidates": 10},
    ),
    "paper-headline": ScenarioSpec(
        name="paper-headline", scale="paper", num_users=3000, num_uavs=20,
        seed=7, algorithm="approAlg",
        algorithm_params={"s": 3, "gain_mode": "fast",
                          "max_anchor_candidates": 10},
    ),
    # Million-user scale-out: demand-cell aggregation + 2x2 tiled solves
    # stitched back into one connected deployment (docs/SCALE.md).
    "mega-1m": ScenarioSpec(
        name="mega-1m", scale="bench", num_users=1_000_000, num_uavs=20,
        seed=7, aggregation="cells", cell_size_m=150.0,
        tiles="2x2", tile_overlap_m=300.0, algorithm="approAlg",
        algorithm_params={"s": 1, "gain_mode": "fast",
                          "max_anchor_candidates": 6},
    ),
    # CI-sized sibling of mega-1m (10^5 users) for the scale-smoke job.
    "scale-smoke": ScenarioSpec(
        name="scale-smoke", scale="bench", num_users=100_000, num_uavs=12,
        seed=7, aggregation="cells", cell_size_m=150.0,
        tiles="2x2", tile_overlap_m=300.0, algorithm="approAlg",
        algorithm_params={"s": 1, "gain_mode": "fast",
                          "max_anchor_candidates": 4},
    ),
}


def preset_names() -> list:
    return sorted(PRESETS)


def get_preset(name: str) -> ScenarioSpec:
    """Look up a named preset spec (KeyError lists the known names)."""
    try:
        return PRESETS[name]
    except KeyError:
        known = ", ".join(preset_names())
        raise KeyError(f"unknown preset {name!r}; known: {known}") from None
