"""The batch runner: many :class:`ScenarioSpec`\\ s through one pipeline.

This is the "heavy traffic" primitive from the roadmap: hand
:class:`BatchRunner` a pile of specs and it executes all of them through
the staged :class:`~repro.scenario.pipeline.SolvePipeline`, exploiting the
structure batches have in practice — many specs describe the *same*
physical scenario and differ only in algorithm or engine options (an
algorithm shoot-out, a parameter grid).  Specs are grouped by
:meth:`~repro.scenario.spec.ScenarioSpec.scenario_key`; each group builds
its problem and shared :class:`~repro.core.context.SolverContext` once and
every spec in the group reuses them, so an 8-spec comparison pays for one
scenario build instead of eight.

With ``workers > 1`` the groups are distributed over a process pool
(each worker hydrates specs from JSON and runs the same pipeline); results
come back in submission order either way, so batch output is
deterministic and equal to a sequential run of the same specs.

Crash safety: with ``checkpoint_dir`` set the runner journals every
finished spec into a :class:`~repro.util.ledger.ProgressLedger`
(``batch-ledger.json``, atomic writes), and ``resume=True`` skips specs
the ledger already records — their :class:`RunRecord`\\ s are rehydrated
(``deployment=None``: the solution object is not journaled, only the
result), counted in ``resume.specs_skipped``.  The ledger is
fingerprinted on the full ordered spec list, so it can never resume a
*different* batch.  The same directory also hosts the per-solve chunk
checkpoints (:mod:`repro.core.checkpoint`) for checkpoint-capable
algorithms, so a spec that was killed *mid-solve* resumes inside the
solve rather than restarting it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.core.context import SolverContext
from repro.scenario.pipeline import SolvePipeline
from repro.scenario.spec import ScenarioSpec
from repro.util.interrupt import SolveInterrupted, interrupt_requested
from repro.util.ledger import ProgressLedger


@dataclass(frozen=True)
class BatchItem:
    """One spec's outcome, in the batch's submission order."""

    index: int
    spec: ScenarioSpec
    record: "object"               # RunRecord
    deployment: "object | None"    # Deployment (None if the run failed)
    report: "dict | None"
    resumed: bool = False          # rehydrated from the batch ledger

    @property
    def served(self) -> int:
        return self.record.served


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a :meth:`BatchRunner.run` call."""

    items: tuple                   # BatchItem, ordered by input index
    wall_s: float
    groups: int                    # distinct scenarios built
    context_builds: int            # SolverContexts built (shared per group)
    specs_skipped: int = 0         # specs rehydrated by --resume

    def records(self) -> list:
        return [item.record for item in self.items]

    @property
    def total_served(self) -> int:
        return sum(item.served for item in self.items)

    def to_text(self) -> str:
        from repro.util.tables import format_table

        rows = [
            [item.index, item.spec.name, item.spec.algorithm,
             item.record.status + (" (resumed)" if item.resumed else ""),
             item.served, f"{item.record.runtime_s:.3f}"]
            for item in self.items
        ]
        title = (
            f"batch: {len(self.items)} specs over {self.groups} scenario(s), "
            f"{self.context_builds} context build(s), {self.wall_s:.2f}s wall"
        )
        if self.specs_skipped:
            title += f", {self.specs_skipped} resumed from ledger"
        return format_table(
            ["#", "spec", "algorithm", "status", "served", "runtime_s"],
            rows, title=title,
        )


def _group_specs(specs: "list") -> "list":
    """Group (index, spec) pairs by scenario identity, preserving the
    first-seen order of groups and the submission order within each."""
    groups: dict = {}
    for index, spec in enumerate(specs):
        groups.setdefault(spec.scenario_key(), []).append((index, spec))
    return list(groups.values())


def _needs_context(group: "list") -> bool:
    from repro.scenario.registry import DEFAULT_REGISTRY

    return any(
        spec.algorithm in DEFAULT_REGISTRY
        and DEFAULT_REGISTRY.get(spec.algorithm).supports_context
        for _, spec in group
    )


def _run_group(pipeline: SolvePipeline, group: "list") -> "tuple":
    """Run one scenario group; returns (items, contexts_built)."""
    first = group[0][1]
    with obs.span("batch.build", scenario=first.name, specs=len(group)), \
            obs.stage_watermark("batch.build"):
        problem = first.build()
    context = None
    built = 0
    if pipeline.prebuild_context and _needs_context(group):
        with obs.span("batch.context", scenario=first.name), \
                obs.stage_watermark("batch.context"):
            context = SolverContext.from_problem(problem)
        built = 1
    items = []
    for index, spec in group:
        state = pipeline.run(spec, problem=problem, context=context)
        items.append(BatchItem(
            index=index, spec=spec, record=state.record,
            deployment=state.deployment, report=state.report,
        ))
    return items, built


def _run_group_json(payload: "tuple") -> "tuple":
    """Process-pool entry point: hydrate specs from JSON and run the group
    with a freshly constructed pipeline (pipelines hold no picklable
    state worth shipping; workers always use the default registry)."""
    spec_jsons, strict, prebuild_context, checkpoint_dir, resume = payload
    pipeline = SolvePipeline(
        strict=strict, prebuild_context=prebuild_context,
        checkpoint_dir=checkpoint_dir, resume=resume,
    )
    group = [(index, ScenarioSpec.from_json(text))
             for index, text in spec_jsons]
    return _run_group(pipeline, group)


class BatchRunner:
    """Execute many specs, sharing scenario builds and solver contexts.

    ``workers=1`` (default) runs groups sequentially in-process; larger
    values distribute whole groups over a process pool.  ``pipeline``
    defaults to a strict :class:`SolvePipeline` with context prebuilding
    on — pass ``SolvePipeline(strict=False)`` to collect per-spec failures
    into the records instead of raising on the first one.

    ``checkpoint_dir`` enables the batch ledger (and, through the
    pipeline, per-solve chunk checkpoints); ``resume=True`` additionally
    skips ledger-recorded specs and resumes partially solved ones.
    """

    def __init__(
        self,
        pipeline: "SolvePipeline | None" = None,
        workers: int = 1,
        checkpoint_dir: "str | Path | None" = None,
        resume: bool = False,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        pipeline = pipeline if pipeline is not None else SolvePipeline()
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None
            else pipeline.checkpoint_dir
        )
        self.resume = resume or pipeline.resume
        if (
            self.checkpoint_dir is not None
            and pipeline.checkpoint_dir != self.checkpoint_dir
        ):
            # Rebuild the pipeline so per-solve checkpoints land in the
            # same directory as the batch ledger.
            pipeline = SolvePipeline(
                stages=pipeline.stages, registry=pipeline.registry,
                strict=pipeline.strict,
                prebuild_context=pipeline.prebuild_context,
                checkpoint_dir=self.checkpoint_dir, resume=self.resume,
            )
        self.pipeline = pipeline
        self.workers = workers

    def _ledger(self, specs: "list") -> "ProgressLedger | None":
        if self.checkpoint_dir is None:
            return None
        ledger = ProgressLedger(
            self.checkpoint_dir / "batch-ledger.json",
            {"kind": "batch", "specs": [spec.to_json() for spec in specs]},
            resume=self.resume,
        )
        if ledger.stale:
            obs.counter_inc("checkpoint.mismatches")
        return ledger

    def run(self, specs: "list | tuple") -> BatchResult:
        specs = list(specs)
        for spec in specs:
            if not isinstance(spec, ScenarioSpec):
                raise TypeError(
                    f"BatchRunner.run wants ScenarioSpecs, got {spec!r}"
                )
        start = time.perf_counter()
        ledger = self._ledger(specs)

        items: list = []
        todo = list(enumerate(specs))
        if ledger is not None and self.resume and len(ledger):
            # Function-level import: the scenario layer sits below
            # repro.sim, so the leaf results module is pulled in only on
            # the resume path (same escape hatch as pipeline.report).
            from repro.sim.results import RunRecord

            remaining = []
            for index, spec in todo:
                if str(index) in ledger:
                    payload = ledger.payload(str(index))
                    items.append(BatchItem(
                        index=index, spec=spec,
                        record=RunRecord.from_dict(payload["record"]),
                        deployment=None,
                        report=payload.get("report"),
                        resumed=True,
                    ))
                else:
                    remaining.append((index, spec))
            todo = remaining
            if items:
                obs.counter_inc("resume.specs_skipped", len(items))
        skipped = len(items)

        groups = _regroup(todo)
        obs.counter_inc("batch.specs", len(todo))
        obs.counter_inc("batch.groups", len(groups))
        if not todo:
            # Everything was rehydrated (or the caller passed no specs):
            # never spin up a pool for zero groups — a tiled run whose
            # tiles were all resumed lands here.
            outcomes = []
        elif self.workers > 1 and len(groups) > 1:
            outcomes = self._run_pooled(groups, ledger)
        else:
            outcomes = self._run_sequential(groups, ledger, items, start)
        context_builds = 0
        for group_items, built in outcomes:
            items.extend(group_items)
            context_builds += built
        items.sort(key=lambda item: item.index)
        return BatchResult(
            items=tuple(items),
            wall_s=time.perf_counter() - start,
            groups=len(groups),
            context_builds=context_builds,
            specs_skipped=skipped,
        )

    def _record_items(self, ledger: "ProgressLedger | None",
                      group_items: "list") -> None:
        if ledger is None:
            return
        for item in group_items:
            ledger.mark(
                str(item.index),
                {"record": item.record.to_dict(), "report": item.report},
                flush=False,
            )
        ledger.flush()

    def _run_sequential(self, groups: "list",
                        ledger: "ProgressLedger | None",
                        done_items: "list", start: float) -> "list":
        outcomes = []
        for group in groups:
            if interrupt_requested():
                finished = len(done_items) + sum(
                    len(group_items) for group_items, _ in outcomes
                )
                raise SolveInterrupted(
                    f"batch interrupted after {finished} spec(s); "
                    + ("ledger records completed specs"
                       if ledger is not None else "no checkpoint configured"),
                    checkpoint_path=None if ledger is None else ledger.path,
                    partial={"specs_done": finished,
                             "elapsed_s": time.perf_counter() - start},
                )
            outcome = _run_group(self.pipeline, group)
            self._record_items(ledger, outcome[0])
            outcomes.append(outcome)
        return outcomes

    def _run_pooled(self, groups: "list",
                    ledger: "ProgressLedger | None") -> "list":
        from concurrent.futures import ProcessPoolExecutor

        if not groups:
            # Guard against ProcessPoolExecutor(max_workers=0): callers
            # normally short-circuit empty batches, but keep this safe
            # under direct use too.
            return []
        checkpoint_dir = (
            None if self.pipeline.checkpoint_dir is None
            else str(self.pipeline.checkpoint_dir)
        )
        payloads = [
            (
                [(index, spec.to_json()) for index, spec in group],
                self.pipeline.strict,
                self.pipeline.prebuild_context,
                checkpoint_dir,
                self.pipeline.resume,
            )
            for group in groups
        ]
        workers = max(1, min(self.workers, len(groups)))
        outcomes = []
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for outcome in pool.map(_run_group_json, payloads):
                self._record_items(ledger, outcome[0])
                outcomes.append(outcome)
        return outcomes


def _regroup(indexed_specs: "list") -> "list":
    """Like :func:`_group_specs` but over (original_index, spec) pairs."""
    groups: dict = {}
    for index, spec in indexed_specs:
        groups.setdefault(spec.scenario_key(), []).append((index, spec))
    return list(groups.values())


def run_specs(
    specs: "list | tuple",
    workers: int = 1,
    strict: bool = True,
    checkpoint_dir: "str | Path | None" = None,
    resume: bool = False,
) -> BatchResult:
    """One-call convenience: ``BatchRunner(...).run(specs)``."""
    pipeline = SolvePipeline(strict=strict)
    return BatchRunner(
        pipeline=pipeline, workers=workers,
        checkpoint_dir=checkpoint_dir, resume=resume,
    ).run(specs)
