"""The batch runner: many :class:`ScenarioSpec`\\ s through one pipeline.

This is the "heavy traffic" primitive from the roadmap: hand
:class:`BatchRunner` a pile of specs and it executes all of them through
the staged :class:`~repro.scenario.pipeline.SolvePipeline`, exploiting the
structure batches have in practice — many specs describe the *same*
physical scenario and differ only in algorithm or engine options (an
algorithm shoot-out, a parameter grid).  Specs are grouped by
:meth:`~repro.scenario.spec.ScenarioSpec.scenario_key`; each group builds
its problem and shared :class:`~repro.core.context.SolverContext` once and
every spec in the group reuses them, so an 8-spec comparison pays for one
scenario build instead of eight.

With ``workers > 1`` the groups are distributed over a process pool
(each worker hydrates specs from JSON and runs the same pipeline); results
come back in submission order either way, so batch output is
deterministic and equal to a sequential run of the same specs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro import obs
from repro.core.context import SolverContext
from repro.scenario.pipeline import SolvePipeline
from repro.scenario.spec import ScenarioSpec


@dataclass(frozen=True)
class BatchItem:
    """One spec's outcome, in the batch's submission order."""

    index: int
    spec: ScenarioSpec
    record: "object"               # RunRecord
    deployment: "object | None"    # Deployment (None if the run failed)
    report: "dict | None"

    @property
    def served(self) -> int:
        return self.record.served


@dataclass(frozen=True)
class BatchResult:
    """Outcome of a :meth:`BatchRunner.run` call."""

    items: tuple                   # BatchItem, ordered by input index
    wall_s: float
    groups: int                    # distinct scenarios built
    context_builds: int            # SolverContexts built (shared per group)

    def records(self) -> list:
        return [item.record for item in self.items]

    @property
    def total_served(self) -> int:
        return sum(item.served for item in self.items)

    def to_text(self) -> str:
        from repro.util.tables import format_table

        rows = [
            [item.index, item.spec.name, item.spec.algorithm,
             item.record.status, item.served,
             f"{item.record.runtime_s:.3f}"]
            for item in self.items
        ]
        title = (
            f"batch: {len(self.items)} specs over {self.groups} scenario(s), "
            f"{self.context_builds} context build(s), {self.wall_s:.2f}s wall"
        )
        return format_table(
            ["#", "spec", "algorithm", "status", "served", "runtime_s"],
            rows, title=title,
        )


def _group_specs(specs: "list") -> "list":
    """Group (index, spec) pairs by scenario identity, preserving the
    first-seen order of groups and the submission order within each."""
    groups: dict = {}
    for index, spec in enumerate(specs):
        groups.setdefault(spec.scenario_key(), []).append((index, spec))
    return list(groups.values())


def _needs_context(group: "list") -> bool:
    from repro.scenario.registry import DEFAULT_REGISTRY

    return any(
        spec.algorithm in DEFAULT_REGISTRY
        and DEFAULT_REGISTRY.get(spec.algorithm).supports_context
        for _, spec in group
    )


def _run_group(pipeline: SolvePipeline, group: "list") -> "tuple":
    """Run one scenario group; returns (items, contexts_built)."""
    first = group[0][1]
    with obs.span("batch.build", scenario=first.name, specs=len(group)):
        problem = first.build()
    context = None
    built = 0
    if pipeline.prebuild_context and _needs_context(group):
        with obs.span("batch.context", scenario=first.name):
            context = SolverContext.from_problem(problem)
        built = 1
    items = []
    for index, spec in group:
        state = pipeline.run(spec, problem=problem, context=context)
        items.append(BatchItem(
            index=index, spec=spec, record=state.record,
            deployment=state.deployment, report=state.report,
        ))
    return items, built


def _run_group_json(payload: "tuple") -> "tuple":
    """Process-pool entry point: hydrate specs from JSON and run the group
    with a freshly constructed pipeline (pipelines hold no picklable
    state worth shipping; workers always use the default registry)."""
    spec_jsons, strict, prebuild_context = payload
    pipeline = SolvePipeline(strict=strict, prebuild_context=prebuild_context)
    group = [(index, ScenarioSpec.from_json(text))
             for index, text in spec_jsons]
    return _run_group(pipeline, group)


class BatchRunner:
    """Execute many specs, sharing scenario builds and solver contexts.

    ``workers=1`` (default) runs groups sequentially in-process; larger
    values distribute whole groups over a process pool.  ``pipeline``
    defaults to a strict :class:`SolvePipeline` with context prebuilding
    on — pass ``SolvePipeline(strict=False)`` to collect per-spec failures
    into the records instead of raising on the first one.
    """

    def __init__(
        self,
        pipeline: "SolvePipeline | None" = None,
        workers: int = 1,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.pipeline = pipeline if pipeline is not None else SolvePipeline()
        self.workers = workers

    def run(self, specs: "list | tuple") -> BatchResult:
        specs = list(specs)
        for spec in specs:
            if not isinstance(spec, ScenarioSpec):
                raise TypeError(
                    f"BatchRunner.run wants ScenarioSpecs, got {spec!r}"
                )
        start = time.perf_counter()
        groups = _group_specs(specs)
        obs.counter_inc("batch.specs", len(specs))
        obs.counter_inc("batch.groups", len(groups))
        if self.workers > 1 and len(groups) > 1:
            outcomes = self._run_pooled(groups)
        else:
            outcomes = [_run_group(self.pipeline, group) for group in groups]
        items: list = []
        context_builds = 0
        for group_items, built in outcomes:
            items.extend(group_items)
            context_builds += built
        items.sort(key=lambda item: item.index)
        return BatchResult(
            items=tuple(items),
            wall_s=time.perf_counter() - start,
            groups=len(groups),
            context_builds=context_builds,
        )

    def _run_pooled(self, groups: "list") -> "list":
        from concurrent.futures import ProcessPoolExecutor

        payloads = [
            (
                [(index, spec.to_json()) for index, spec in group],
                self.pipeline.strict,
                self.pipeline.prebuild_context,
            )
            for group in groups
        ]
        workers = min(self.workers, len(groups))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_run_group_json, payloads))


def run_specs(
    specs: "list | tuple",
    workers: int = 1,
    strict: bool = True,
) -> BatchResult:
    """One-call convenience: ``BatchRunner(...).run(specs)``."""
    pipeline = SolvePipeline(strict=strict)
    return BatchRunner(pipeline=pipeline, workers=workers).run(specs)
