"""The algorithm registry: names -> solver entries with capability flags.

This is the single source of truth for "what can this repo solve with,
and what does each solver support".  :data:`DEFAULT_REGISTRY` subsumes the
ad-hoc dispatch tables that used to live in :mod:`repro.sim.runner`
(``ALGORITHMS`` plus the ``_UNCONNECTED_OK`` / ``_COOPERATIVE`` side
sets): the runner now *derives* those views from here, and the solve
pipeline (:mod:`repro.scenario.pipeline`) consults the capability flags to
decide which engine options (``workers``, ``bound_prune``, a prebuilt
:class:`~repro.core.context.SolverContext`, a watchdog ``progress`` hook)
an algorithm may legally receive.

Registering a new solver is one :meth:`AlgorithmRegistry.register` call;
every entry point (CLI, sweeps, batch runner, watchdog chains) picks it up
from there.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.greedy_assign import greedy_assign
from repro.baselines.max_throughput import max_throughput
from repro.baselines.mcs import mcs
from repro.baselines.motionctrl import motion_ctrl
from repro.baselines.random_connected import random_connected
from repro.baselines.unconstrained import unconstrained_greedy
from repro.core.approx import appro_alg
from repro.core.problem import ProblemInstance


def _appro(problem: ProblemInstance, **kw: object):
    """Algorithm 2, adapted to the common signature (Deployment out)."""
    return appro_alg(problem, **kw).deployment


@dataclass(frozen=True)
class AlgorithmEntry:
    """One registered solver and its capabilities.

    ``solve`` maps ``(problem, **params) -> Deployment``.  The flags gate
    engine options: the pipeline only forwards ``workers=N`` when
    ``supports_workers`` is set, and the solver watchdog only installs a
    mid-run abort hook when ``cooperative`` is set (the solver calls
    ``progress(done, total)`` between units of work).  ``watchdog_tier``
    orders the default fallback chain (lower answers first; ``None`` keeps
    the solver out of the chain).
    """

    name: str
    solve: "object"            # callable(problem, **params) -> Deployment
    description: str = ""
    supports_workers: bool = False
    supports_bound_prune: bool = False
    supports_context: bool = False
    supports_checkpoint: bool = False
    cooperative: bool = False
    requires_connected: bool = True
    watchdog_tier: "int | None" = None
    #: The solver understands demand-cell problems (graphs carrying
    #: ``cell_demands``; see :mod:`repro.workload.aggregate`) — it weights
    #: gains by demand and emits a cell-arc assignment.  The pipeline
    #: refuses ``aggregation="cells"`` specs for solvers without it.
    supports_cells: bool = False
    #: The solver benefits from a recycled :class:`SolverContext` across
    #: epoch re-solves (see :meth:`SolverContext.updated`).  The dynamics
    #: engine only warm-starts re-solves for solvers carrying this flag;
    #: everything else gets a cold build each epoch.
    supports_warm_start: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("algorithm entry needs a non-empty name")
        if not callable(self.solve):
            raise TypeError(
                f"entry {self.name!r}: solve must be callable, got "
                f"{self.solve!r}"
            )


class AlgorithmRegistry:
    """An ordered mapping of algorithm names to :class:`AlgorithmEntry`."""

    def __init__(self, entries: "tuple | list" = ()):
        self._entries: dict = {}
        for entry in entries:
            self.register(entry)

    def register(self, entry: AlgorithmEntry, replace: bool = False) -> None:
        if entry.name in self._entries and not replace:
            raise ValueError(
                f"algorithm {entry.name!r} already registered "
                "(pass replace=True to override)"
            )
        self._entries[entry.name] = entry

    def get(self, name: str) -> AlgorithmEntry:
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries))
            raise KeyError(
                f"unknown algorithm {name!r}; known: {known}"
            ) from None

    def names(self) -> list:
        return sorted(self._entries)

    def entries(self) -> list:
        return [self._entries[name] for name in sorted(self._entries)]

    def callables(self) -> dict:
        """A fresh ``name -> solve`` dict (the legacy ``ALGORITHMS`` shape;
        :mod:`repro.sim.runner` builds its mutable table from this)."""
        return {name: e.solve for name, e in self._entries.items()}

    def unconnected_ok(self) -> frozenset:
        return frozenset(
            name for name, e in self._entries.items()
            if not e.requires_connected
        )

    def cooperative(self) -> frozenset:
        return frozenset(
            name for name, e in self._entries.items() if e.cooperative
        )

    def fallback_chain(self) -> tuple:
        """Watchdog fallback order: entries with a tier, best first."""
        tiered = [e for e in self._entries.values()
                  if e.watchdog_tier is not None]
        tiered.sort(key=lambda e: e.watchdog_tier)
        return tuple(e.name for e in tiered)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self):
        return iter(self.entries())

    def __len__(self) -> int:
        return len(self._entries)

    def items(self):
        return self._entries.items()


def default_registry() -> AlgorithmRegistry:
    """A fresh registry with every built-in solver."""
    return AlgorithmRegistry((
        AlgorithmEntry(
            "approAlg", _appro,
            description="Algorithm 2: anchored matroid greedy + MST connect "
            "(the paper's O(sqrt(s/K))-approximation)",
            supports_workers=True, supports_bound_prune=True,
            supports_context=True, supports_checkpoint=True,
            cooperative=True, watchdog_tier=0, supports_cells=True,
            supports_warm_start=True,
        ),
        AlgorithmEntry(
            "MCS", mcs,
            description="maximum connected-component seeding baseline",
            watchdog_tier=1,
        ),
        AlgorithmEntry(
            "MotionCtrl", motion_ctrl,
            description="local-search motion-control baseline",
        ),
        AlgorithmEntry(
            "GreedyAssign", greedy_assign,
            description="capacity-greedy assignment baseline",
            watchdog_tier=2,
        ),
        AlgorithmEntry(
            "maxThroughput", max_throughput,
            description="throughput-maximising placement baseline",
        ),
        AlgorithmEntry(
            "RandomConnected", random_connected,
            description="random connected placement (control)",
        ),
        AlgorithmEntry(
            "Unconstrained", unconstrained_greedy,
            description="coverage greedy ignoring connectivity "
            "(reference point; violates constraint (iii))",
            requires_connected=False,
        ),
    ))


#: The shared registry every entry point dispatches through.
DEFAULT_REGISTRY = default_registry()
