"""The declarative scenario layer: describe a run, then execute it.

* :class:`ScenarioSpec` — a frozen, JSON-round-trippable description of
  one run (scenario + algorithm + engine options), with named presets;
* :class:`AlgorithmRegistry` / :data:`DEFAULT_REGISTRY` — solver entries
  with capability flags, the single dispatch table;
* :class:`SolvePipeline` — the staged build → context → solve → validate
  → report flow every entry point routes through;
* :class:`BatchRunner` — many specs, shared scenario builds and solver
  contexts, optional process pool.

This package sits *below* :mod:`repro.sim`: the sweep drivers, the CLI
and the mission runtime are thin adapters over it (see
``docs/ARCHITECTURE.md``).
"""

from repro.scenario.batch import BatchItem, BatchResult, BatchRunner, run_specs
from repro.scenario.pipeline import PipelineState, SolvePipeline
from repro.scenario.registry import (
    DEFAULT_REGISTRY,
    AlgorithmEntry,
    AlgorithmRegistry,
    default_registry,
)
from repro.scenario.spec import (
    PRESETS,
    ScenarioSpec,
    SpecError,
    get_preset,
    preset_names,
)
from repro.scenario.tiling import TileSlice, carve_tiles, solve_tiled

__all__ = [
    "AlgorithmEntry",
    "AlgorithmRegistry",
    "BatchItem",
    "BatchResult",
    "BatchRunner",
    "DEFAULT_REGISTRY",
    "PRESETS",
    "PipelineState",
    "ScenarioSpec",
    "SolvePipeline",
    "SpecError",
    "TileSlice",
    "carve_tiles",
    "default_registry",
    "get_preset",
    "preset_names",
    "run_specs",
    "solve_tiled",
]
