"""Area tiling: shard a huge scenario into a grid of tiles, solve each
tile independently, stitch the pieces into one connected deployment.

The tiled driver is the second half of the million-user scaling layer
(:mod:`repro.workload.aggregate` is the first): a ``ScenarioSpec`` with a
``tiles="NxM"`` grid routes here from the pipeline, the global (possibly
demand-cell) problem is carved into per-tile sub-problems by
:func:`carve_tiles`, and each tile becomes an ordinary spec with
``tile_index`` set — :meth:`ScenarioSpec.build` reproduces the exact same
carve, so the tiles run through the unmodified
:class:`~repro.scenario.batch.BatchRunner` (per-group problem + context
reuse) like any other batch.

Carving is a pure function of ``(problem, grid, overlap)``:

* demand nodes (users, or cells by centroid) partition into tiles by
  half-open core bounds — every node lands in **exactly one** tile, which
  is what makes double-serving structurally impossible;
* candidate locations replicate into every tile whose core bounds padded
  by ``overlap_m`` contain them, so tiles can place UAVs near their
  boundary for users just inside it;
* the fleet is apportioned to tiles proportionally to demand
  (highest-averages with a one-UAV floor per non-empty tile, capped by
  each tile's location count) and dealt round-robin in capacity order so
  every tile receives a comparable capacity mix;
* a ``1x1`` grid is the identity carve — the tile *is* the global
  problem, making tiled-vs-untiled bit-identity testable.

Stitching maps each tile's placements back to global indices (fleet
slices are disjoint; location clashes from overlapping tiles resolve
first-tile-wins), repairs connectivity across tile seams with unused
UAVs on Steiner relay locations (degrading to the best component when
the reserves run out), and finishes with one **global** exact max-flow
assignment — users/cells are served by that single flow, never by
summing per-tile counts, so the result cannot double-count a user.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as dataclass_replace

import numpy as np

from repro import obs
from repro.core.assignment import optimal_assignment, optimal_cell_assignment
from repro.core.problem import ProblemInstance
from repro.network.coverage import CoverageGraph
from repro.scenario.spec import ScenarioSpec, SpecError


@dataclass(frozen=True)
class TileSlice:
    """One carved tile: index maps back to the global problem.

    ``problem`` is ``None`` for tiles that cannot be solved (no demand,
    no candidate locations, or no apportioned UAVs) — their demand nodes
    simply stay unserved by the tile pass (the global final assignment
    may still pick them up from boundary placements).
    """

    index: int
    bounds: tuple                  # (x0, x1, y0, y1) core bounds
    problem: "ProblemInstance | None"
    demand_units: int              # users (or cell member units) in core
    node_map: tuple                # tile-local user/cell -> global index
    location_map: tuple            # tile-local location -> global index
    fleet_map: tuple               # tile-local UAV -> global fleet index


def _carve_graph(graph: CoverageGraph, node_idx: list, loc_idx: list):
    """A sub-graph over the given global node/location indices, preserving
    the graph flavour (per-user vs demand-cell) and radio model exactly."""
    locations = [graph.locations[j] for j in loc_idx]
    cells = getattr(graph, "cells", None)
    if cells is not None:
        from repro.workload.aggregate import CellCoverageGraph

        sub_cells = [
            dataclass_replace(cells[i], index=new)
            for new, i in enumerate(node_idx)
        ]
        sub = CellCoverageGraph(
            cells=sub_cells, locations=locations,
            uav_range_m=graph.uav_range_m, channel=graph.channel,
            bandwidth_hz=graph.bandwidth_hz,
        )
    else:
        sub = CoverageGraph(
            users=[graph.users[i] for i in node_idx], locations=locations,
            uav_range_m=graph.uav_range_m, channel=graph.channel,
            bandwidth_hz=graph.bandwidth_hz,
        )
    # Copy the derived noise power so tile rate tests match the global
    # graph bit-for-bit (same trick as aggregate_problem).
    sub.noise_dbm = graph.noise_dbm
    return sub


def _apportion_fleet(
    problem: ProblemInstance, demand: "np.ndarray", n_locs: "np.ndarray"
) -> dict:
    """Deal the fleet to tiles: proportional to demand, one-UAV floor,
    capped by each tile's location count, strongest UAVs round-robin.

    Returns ``{tile: sorted list of global fleet indices}`` for tiles that
    received at least one UAV.  Deterministic: highest-averages
    (D'Hondt) quota with ties to the lower tile index, then the global
    capacity order dealt cyclically over the awarded tiles.
    """
    num_tiles = len(demand)
    eligible = [
        t for t in range(num_tiles) if demand[t] > 0 and n_locs[t] > 0
    ]
    if not eligible:
        return {}
    counts = {t: 0 for t in eligible}
    budget = len(problem.fleet)
    # One-UAV floor, richest tiles first, while the fleet lasts.
    for t in sorted(eligible, key=lambda t: (-int(demand[t]), t)):
        if budget == 0:
            break
        if counts[t] < int(n_locs[t]):
            counts[t] += 1
            budget -= 1
    # Hold back a relay reserve for the stitch pass when the fleet
    # allows it: tiles solve independently and tend to land their UAVs
    # well inside their bounds, so bridging the seams afterwards needs
    # UAVs that no tile consumed (one per tile is a decent relay budget).
    if len(eligible) > 1:
        budget -= min(len(eligible), budget)
    # Highest-averages proportional fill for the rest.
    while budget > 0:
        open_tiles = [t for t in eligible if counts[t] < int(n_locs[t])]
        if not open_tiles:
            break
        t = max(
            open_tiles,
            key=lambda t: (int(demand[t]) / (counts[t] + 1), -t),
        )
        counts[t] += 1
        budget -= 1
    # Deal physical UAVs: strongest first, cycling the awarded tiles in
    # descending-demand order so each gets a comparable capacity mix.
    cycle = [t for t in sorted(eligible, key=lambda t: (-int(demand[t]), t))
             if counts[t] > 0]
    need = dict(counts)
    assigned: dict = {t: [] for t in cycle}
    pos = 0
    for k in problem.capacity_order():
        placed = False
        for _ in range(len(cycle)):
            t = cycle[pos % len(cycle)]
            pos += 1
            if need[t] > 0:
                assigned[t].append(k)
                need[t] -= 1
                placed = True
                break
        if not placed:
            break
    return {t: sorted(ks) for t, ks in assigned.items() if ks}


def carve_tiles(
    problem: ProblemInstance, grid: tuple, overlap_m: float = 0.0
) -> list:
    """Carve ``problem`` into an ``nx * ny`` list of :class:`TileSlice`.

    Pure and deterministic in its arguments — :meth:`ScenarioSpec.build`
    (for one ``tile_index``) and :func:`solve_tiled` (for all of them)
    call it independently and must agree.  A ``(1, 1)`` grid returns the
    original problem object itself (identity carve).
    """
    nx, ny = int(grid[0]), int(grid[1])
    if nx < 1 or ny < 1:
        raise ValueError(f"tile grid must be at least 1x1, got {grid!r}")
    if overlap_m < 0:
        raise ValueError(f"overlap_m must be >= 0, got {overlap_m}")
    graph = problem.graph
    node_xy = graph._user_xy
    demands = getattr(graph, "cell_demands", None)
    node_units = (
        np.ones(graph.num_users, dtype=np.int64) if demands is None
        else demands
    )

    loc_xy = np.array(
        [[p.x, p.y] for p in graph.locations], dtype=float
    ).reshape(graph.num_locations, 2)
    all_x = np.concatenate([node_xy[:, 0], loc_xy[:, 0]])
    all_y = np.concatenate([node_xy[:, 1], loc_xy[:, 1]])
    x_min, x_max = float(all_x.min()), float(all_x.max())
    y_min, y_max = float(all_y.min()), float(all_y.max())

    if nx == 1 and ny == 1:
        return [TileSlice(
            index=0, bounds=(x_min, x_max, y_min, y_max), problem=problem,
            demand_units=int(node_units.sum()),
            node_map=tuple(range(graph.num_users)),
            location_map=tuple(range(graph.num_locations)),
            fleet_map=tuple(range(problem.num_uavs)),
        )]

    def _bins(values: "np.ndarray", lo: float, hi: float, n: int):
        width = (hi - lo) / n
        if width <= 0:
            return np.zeros(len(values), dtype=np.int64)
        return np.clip(
            np.floor((values - lo) / width).astype(np.int64), 0, n - 1
        )

    node_tile = _bins(node_xy[:, 1], y_min, y_max, ny) * nx + _bins(
        node_xy[:, 0], x_min, x_max, nx
    )

    num_tiles = nx * ny
    demand = np.zeros(num_tiles, dtype=np.int64)
    np.add.at(demand, node_tile, node_units)

    x_width = (x_max - x_min) / nx
    y_width = (y_max - y_min) / ny
    bounds = []
    tile_locs = []
    for t in range(num_tiles):
        ix, iy = t % nx, t // nx
        x0, x1 = x_min + ix * x_width, x_min + (ix + 1) * x_width
        y0, y1 = y_min + iy * y_width, y_min + (iy + 1) * y_width
        bounds.append((x0, x1, y0, y1))
        inside = (
            (loc_xy[:, 0] >= x0 - overlap_m)
            & (loc_xy[:, 0] <= x1 + overlap_m)
            & (loc_xy[:, 1] >= y0 - overlap_m)
            & (loc_xy[:, 1] <= y1 + overlap_m)
        )
        tile_locs.append([int(j) for j in np.flatnonzero(inside)])

    n_locs = np.array([len(locs) for locs in tile_locs], dtype=np.int64)
    fleet_by_tile = _apportion_fleet(problem, demand, n_locs)

    tiles = []
    for t in range(num_tiles):
        node_map = [int(i) for i in np.flatnonzero(node_tile == t)]
        fleet_map = fleet_by_tile.get(t, [])
        if not node_map or not tile_locs[t] or not fleet_map:
            tiles.append(TileSlice(
                index=t, bounds=bounds[t], problem=None,
                demand_units=int(demand[t]), node_map=tuple(node_map),
                location_map=tuple(tile_locs[t]), fleet_map=tuple(fleet_map),
            ))
            continue
        sub_graph = _carve_graph(graph, node_map, tile_locs[t])
        sub_fleet = [problem.fleet[k] for k in fleet_map]
        tiles.append(TileSlice(
            index=t, bounds=bounds[t],
            problem=ProblemInstance(graph=sub_graph, fleet=sub_fleet),
            demand_units=int(demand[t]), node_map=tuple(node_map),
            location_map=tuple(tile_locs[t]), fleet_map=tuple(fleet_map),
        ))
    return tiles


def _stitch_placements(tiles: list, items: list) -> dict:
    """Union per-tile placements back into global indices.

    Fleet slices are disjoint by construction, so UAV keys never clash;
    overlapping tiles can pick the same *location*, which resolves
    first-tile-wins (the loser stays grounded and feeds the relay pool).
    """
    placements: dict = {}
    used_locations: set = set()
    for tile, item in zip(tiles, items):
        if item.deployment is None:
            continue
        for k_local in sorted(item.deployment.placements):
            loc = tile.location_map[item.deployment.placements[k_local]]
            if loc in used_locations:
                obs.counter_inc("tiling.location_clashes")
                continue
            used_locations.add(loc)
            placements[tile.fleet_map[k_local]] = loc
    return placements


def _best_component(fleet: list, components: list) -> list:
    """Most UAVs, then total capacity, then lowest fleet index."""
    return max(
        components,
        key=lambda comp: (
            len(comp), sum(fleet[k].capacity for k in comp), -min(comp),
        ),
    )


def _bridge_path(adjacency, occupied: set, hub: set, targets: set):
    """Shortest relay path from the hub component to any other component.

    Multi-source BFS over the location graph starting from the hub's
    occupied locations, expanding through *free* locations only, stopping
    at the first location some other component occupies.  Returns the
    path's interior (the free locations to staff with relays, hub side
    first), or ``None`` when no other component is reachable.
    """
    from collections import deque

    parent: dict = {loc: None for loc in sorted(hub)}
    queue = deque(sorted(hub))
    while queue:
        v = queue.popleft()
        for w in sorted(adjacency.neighbours(v)):
            if w in parent:
                continue
            parent[w] = v
            if w in targets:
                interior = []
                node = parent[w]
                while node is not None and node not in hub:
                    interior.append(node)
                    node = parent[node]
                return list(reversed(interior))
            if w not in occupied:
                queue.append(w)
    return None


def _repair_connectivity(problem: ProblemInstance, placements: dict) -> tuple:
    """Bridge stitched components with unused UAVs on relay locations.

    Greedy incremental: starting from the best component (most UAVs,
    then total capacity, then lowest fleet index), repeatedly staff the
    shortest free-location path to the nearest other component with the
    strongest unused UAVs, until everything is one component or the
    reserves run out.  Components still unreachable at that point are
    dropped (degraded stitch, counted in ``tiling.degraded_stitches``).
    Returns ``(placements, relays_added, degraded)``.
    """
    # Function-level import: repro.ops sits above the scenario layer.
    from repro.ops.recovery import uav_components

    components = uav_components(problem, placements)
    if len(components) <= 1:
        return placements, 0, False
    adjacency = problem.graph.location_graph
    fleet = problem.fleet
    placements = dict(placements)
    unused = [k for k in problem.capacity_order() if k not in placements]
    relays_added = 0
    while True:
        components = uav_components(problem, placements)
        if len(components) <= 1:
            break
        hub_uavs = set(_best_component(fleet, components))
        hub = {placements[k] for k in hub_uavs}
        occupied = set(placements.values())
        interior = _bridge_path(adjacency, occupied, hub, occupied - hub)
        if not interior or len(interior) > len(unused):
            # None: unreachable; []: cannot happen when the components are
            # truly disjoint, but guard against looping on it regardless.
            break
        for loc in interior:
            placements[unused.pop(0)] = loc
        relays_added += len(interior)
    if relays_added:
        obs.counter_inc("tiling.relays_added", relays_added)
    components = uav_components(problem, placements)
    if len(components) <= 1:
        return placements, relays_added, False
    keep = set(_best_component(fleet, components))
    obs.counter_inc("tiling.degraded_stitches")
    return (
        {k: loc for k, loc in placements.items() if k in keep},
        relays_added,
        True,
    )


def _global_assignment(problem: ProblemInstance, placements: dict):
    """The single global exact assignment over the stitched placements —
    one max-flow serves every user/cell at most once, structurally."""
    demands = getattr(problem.graph, "cell_demands", None)
    if demands is not None and demands.size and int(demands.max()) > 1:
        return optimal_cell_assignment(problem.graph, problem.fleet, placements)
    return optimal_assignment(problem.graph, problem.fleet, placements)


def solve_tiled(
    spec: ScenarioSpec,
    registry: "object | None" = None,
    strict: bool = True,
):
    """Solve a ``tiles="NxM"`` spec: carve, batch-solve, stitch, assign.

    Returns a :class:`~repro.scenario.pipeline.PipelineState` whose
    ``problem`` is the **global** problem and whose ``deployment`` is the
    stitched, globally re-assigned solution, so callers (CLI, batch
    drivers, tests) treat a tiled run exactly like a plain one.  The
    report gains ``tiles`` / ``tiles_solved`` / ``tiles_empty`` /
    ``relays_added`` / ``degraded`` keys.
    """
    from repro.scenario.batch import BatchRunner
    from repro.scenario.pipeline import (
        PipelineState,
        SolvePipeline,
        report_stage,
        validate_stage,
    )
    from repro.scenario.registry import DEFAULT_REGISTRY

    if spec.tiles is None or spec.tile_index is not None:
        raise SpecError(
            "solve_tiled wants a spec with a tiles grid and no tile_index"
        )
    registry = registry if registry is not None else DEFAULT_REGISTRY
    entry = registry.get(spec.algorithm)
    start = time.perf_counter()

    with obs.span("tiling.build", scenario=spec.name):
        problem = spec.with_overrides(tiles=None, tile_overlap_m=0.0).build()
    tiles = carve_tiles(problem, spec.tile_grid(), spec.tile_overlap_m)
    solvable = [tile for tile in tiles if tile.problem is not None]
    obs.counter_inc("tiling.tiles", len(tiles))
    obs.counter_inc("tiling.tiles_empty", len(tiles) - len(solvable))

    tile_specs = [
        spec.with_overrides(
            name=f"{spec.name}/tile{tile.index}", tile_index=tile.index,
        )
        for tile in solvable
    ]
    with obs.span("tiling.solve", scenario=spec.name, tiles=len(tile_specs)):
        runner = BatchRunner(
            pipeline=SolvePipeline(registry=registry, strict=strict)
        )
        batch = runner.run(tile_specs) if tile_specs else None

    with obs.span("tiling.stitch", scenario=spec.name):
        placements = (
            _stitch_placements(solvable, list(batch.items))
            if batch is not None else {}
        )
        placements, relays_added, degraded = _repair_connectivity(
            problem, placements
        )
        deployment = _global_assignment(problem, placements)

    state = PipelineState(
        entry=entry, registry=registry, spec=spec, strict=strict,
        validate=spec.validate, params=dict(spec.algorithm_params),
        problem=problem, deployment=deployment, status="ok",
    )
    state.elapsed_s = time.perf_counter() - start
    state = validate_stage(state)
    state = report_stage(state)
    if state.report is not None:
        state.report.update({
            "tiles": spec.tiles,
            "tiles_solved": len(solvable),
            "tiles_empty": len(tiles) - len(solvable),
            "relays_added": relays_added,
            "degraded": degraded,
        })
    return state
