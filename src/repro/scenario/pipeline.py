"""The staged solve pipeline: build -> context -> solve -> validate -> report.

:class:`SolvePipeline` is the single path from a described scenario
(:class:`~repro.scenario.spec.ScenarioSpec`) to a validated solution.
Each stage is a named, traced, swappable callable over a shared
:class:`PipelineState`:

``build``
    instantiate the spec's :class:`~repro.core.problem.ProblemInstance`
    (skipped when the caller injects a prebuilt problem — the sweep
    drivers and the batch runner do);
``context``
    precompute the shared :class:`~repro.core.context.SolverContext` for
    solvers that accept one (lossless: the solver would build the
    identical structure internally), enabling reuse across runs;
``solve``
    the timed dispatch through the algorithm registry — behaviourally
    identical to the legacy ``sim.runner.run_algorithm`` body, emitting
    the same ``runner.solve`` span and ``runner.solves`` /
    ``runner.solve_seconds`` metrics so dashboards and traces carry over;
``validate``
    re-check the deployment against the problem constraints
    (connectivity-exempt algorithms are honoured via the registry's
    ``requires_connected`` flag);
``report``
    condense everything into the classic :class:`~repro.sim.results.RunRecord`
    plus a small summary dict.

Swap a stage with :meth:`SolvePipeline.with_stage` to intercept any step
(e.g. a caching build, a custom report) without forking the flow.  The
golden-equivalence test (``tests/test_golden_equivalence.py``) pins the
pipeline's output bit-identical to the legacy CLI/sweep/mission paths.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.core.checkpoint import CheckpointConfig
from repro.core.context import SolverContext
from repro.util.ledger import work_fingerprint
from repro.network.deployment import CellDeployment
from repro.network.validate import (
    ValidationError,
    validate_cell_deployment,
    validate_deployment,
)
from repro.scenario.registry import (
    DEFAULT_REGISTRY,
    AlgorithmEntry,
    AlgorithmRegistry,
)
from repro.scenario.spec import ScenarioSpec, SpecError
from repro.util.timing import Stopwatch


@dataclass
class PipelineState:
    """Everything a run accumulates while flowing through the stages."""

    entry: AlgorithmEntry
    registry: AlgorithmRegistry
    spec: "ScenarioSpec | None" = None
    strict: bool = True
    validate: bool = True
    prebuild_context: bool = True
    params: dict = field(default_factory=dict)   # caller-level solve kwargs
    problem: "object | None" = None
    context: "SolverContext | None" = None
    deployment: "object | None" = None
    elapsed_s: float = 0.0
    status: str = "pending"
    error: "str | None" = None
    record: "object | None" = None        # RunRecord once reported
    report: "dict | None" = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def served(self) -> int:
        return self.deployment.served_count if self.deployment else 0


# -- the default stages ------------------------------------------------------


def build_stage(state: PipelineState) -> PipelineState:
    """Instantiate the spec's problem unless one was injected."""
    if state.problem is None:
        if state.spec is None:
            raise ValueError(
                "pipeline needs a ScenarioSpec or an injected problem"
            )
        state.problem = state.spec.build()
    return state


def context_stage(state: PipelineState) -> PipelineState:
    """Precompute the solver context for context-aware algorithms.

    Lossless: solvers build the identical structure internally when no
    context is passed, so prebuilding only moves the cost into its own
    traced stage (and lets the batch runner reuse it across specs)."""
    if (
        state.context is None
        and state.prebuild_context
        and state.entry.supports_context
    ):
        state.context = SolverContext.from_problem(state.problem)
    return state


def solve_stage(state: PipelineState) -> PipelineState:
    """Timed dispatch through the registry entry.

    Must stay behaviourally identical to the legacy
    ``sim.runner.run_algorithm`` solve body (same metrics, same error
    capture) — the dispatch-equivalence tests pin this.
    """
    params = dict(state.params)
    if state.context is not None and state.entry.supports_context:
        params["context"] = state.context
    obs.counter_inc("runner.solves")
    watch = Stopwatch()
    try:
        with watch, obs.span("runner.solve", algorithm=state.entry.name):
            state.deployment = state.entry.solve(state.problem, **params)
        obs.observe("runner.solve_seconds", watch.elapsed)
        state.status = "ok"
    except Exception as exc:  # noqa: BLE001 - captured into the record
        if state.strict:
            raise
        state.status = "error"
        state.error = f"{type(exc).__name__}: {exc}"
        state.deployment = None
    state.elapsed_s = watch.elapsed
    return state


def validate_stage(state: PipelineState) -> PipelineState:
    """Re-validate the deployment against the problem constraints."""
    if not state.validate or state.status != "ok" or state.deployment is None:
        return state
    # Demand-cell solves emit a CellDeployment (cell->UAV unit flows);
    # everything else — including the singleton-cell degenerate path,
    # which deliberately reuses the per-user assignment — stays on the
    # classic validator.
    check = (
        validate_cell_deployment
        if isinstance(state.deployment, CellDeployment)
        else validate_deployment
    )
    try:
        check(
            state.problem.graph,
            state.problem.fleet,
            state.deployment,
            require_connected=state.entry.requires_connected,
        )
    except ValidationError as exc:
        if state.strict:
            raise
        state.status = "invalid"
        state.error = str(exc)
    return state


def report_stage(state: PipelineState) -> PipelineState:
    """Condense the run into a :class:`RunRecord` + summary dict."""
    # Imported here, not at module level: the scenario layer sits below
    # repro.sim, and importing the sim *package* at import time would cycle
    # back through the sweep drivers that build on this pipeline.
    from repro.sim.results import RunRecord

    problem = state.problem
    # The checkpoint config is process-local run state, not a result
    # parameter: keep it out of the durable record.
    record_params = {
        k: v for k, v in state.params.items() if k != "checkpoint"
    }
    # On demand-cell problems the graph's "users" are cells; report the
    # underlying member count so records stay comparable across paths.
    num_users = getattr(problem.graph, "total_demand", problem.num_users)
    state.record = RunRecord(
        algorithm=state.entry.name,
        served=state.served if state.status in ("ok", "invalid") else 0,
        runtime_s=state.elapsed_s,
        num_users=num_users,
        num_uavs=problem.num_uavs,
        params=record_params,
        status=state.status,
        error=state.error,
    )
    state.report = {
        "algorithm": state.entry.name,
        "served": state.record.served,
        "num_users": num_users,
        "runtime_s": state.elapsed_s,
        "status": state.status,
    }
    return state


DEFAULT_STAGES = (
    ("build", build_stage),
    ("context", context_stage),
    ("solve", solve_stage),
    ("validate", validate_stage),
    ("report", report_stage),
)


class SolvePipeline:
    """Run specs (or prebuilt problems) through the staged solve flow.

    ``strict=False`` captures solver errors / invalid deployments into the
    record (``status`` = ``"error"`` / ``"invalid"``) instead of raising,
    mirroring the legacy runner.  ``prebuild_context=False`` skips the
    context stage's precomputation, leaving context-aware solvers to build
    their own — the sweep drivers use this to keep per-point cost exactly
    as before.
    """

    def __init__(
        self,
        stages: "tuple | list | None" = None,
        registry: "AlgorithmRegistry | None" = None,
        strict: bool = True,
        prebuild_context: bool = True,
        checkpoint_dir: "str | Path | None" = None,
        resume: bool = False,
    ):
        self.registry = registry if registry is not None else DEFAULT_REGISTRY
        self.strict = strict
        self.prebuild_context = prebuild_context
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.resume = resume
        self.stages = tuple(stages) if stages is not None else DEFAULT_STAGES
        names = [name for name, _ in self.stages]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in {names}")

    def stage_names(self) -> tuple:
        return tuple(name for name, _ in self.stages)

    def with_stage(self, name: str, fn: "object") -> "SolvePipeline":
        """A copy of the pipeline with stage ``name`` replaced by ``fn``."""
        if name not in self.stage_names():
            raise ValueError(
                f"unknown stage {name!r}; stages: {', '.join(self.stage_names())}"
            )
        stages = tuple(
            (n, fn if n == name else f) for n, f in self.stages
        )
        return SolvePipeline(
            stages=stages, registry=self.registry, strict=self.strict,
            prebuild_context=self.prebuild_context,
            checkpoint_dir=self.checkpoint_dir, resume=self.resume,
        )

    def spec_checkpoint(self, spec: ScenarioSpec) -> "CheckpointConfig | None":
        """The :class:`CheckpointConfig` this pipeline gives ``spec``.

        ``None`` unless a ``checkpoint_dir`` is configured and the spec's
        algorithm supports checkpointing.  The file name and the external
        fingerprint key both derive from the spec's full solve identity
        (scenario key + algorithm + params + engine options), so two
        different specs can never share — or cross-resume — a snapshot.
        """
        if self.checkpoint_dir is None:
            return None
        if not self.registry.get(spec.algorithm).supports_checkpoint:
            return None
        key = work_fingerprint({
            "scenario_key": list(spec.scenario_key()),
            "algorithm": spec.algorithm,
            "algorithm_params": json.dumps(
                spec.algorithm_params, sort_keys=True, default=repr
            ),
            "bound_prune": spec.bound_prune,
        })
        return CheckpointConfig(
            path=self.checkpoint_dir / f"solve-{spec.name}-{key}.json",
            resume=self.resume,
            key=key,
        )

    # -- entry points --------------------------------------------------------

    def run(
        self,
        spec: ScenarioSpec,
        problem: "object | None" = None,
        context: "SolverContext | None" = None,
    ) -> PipelineState:
        """Drive one spec through every stage.

        ``problem`` / ``context`` inject prebuilt structure (the batch
        runner shares them across specs with equal scenario keys); the
        build/context stages then skip their work.

        A spec with a ``tiles`` grid (and no ``tile_index``) routes
        through :func:`repro.scenario.tiling.solve_tiled`, which shards
        the scenario, solves each tile through this same pipeline via the
        batch runner, and stitches the result into one state.
        """
        entry = self.registry.get(spec.algorithm)
        if spec.aggregation == "cells" and not entry.supports_cells:
            raise SpecError(
                f"algorithm {entry.name!r} does not support "
                "aggregation='cells' (no supports_cells capability)"
            )
        if spec.tiles is not None and spec.tile_index is None:
            from repro.scenario.tiling import solve_tiled

            return solve_tiled(
                spec, registry=self.registry, strict=self.strict
            )
        params = dict(spec.algorithm_params)
        if entry.supports_workers and spec.workers != 1:
            params["workers"] = spec.workers
        if entry.supports_bound_prune and spec.bound_prune:
            params["bound_prune"] = True
        if entry.supports_checkpoint and "checkpoint" not in params:
            config = self.spec_checkpoint(spec)
            if config is not None:
                params["checkpoint"] = config
        state = PipelineState(
            entry=entry, registry=self.registry, spec=spec,
            strict=self.strict, validate=spec.validate,
            prebuild_context=self.prebuild_context, params=params,
            problem=problem, context=context,
        )
        return self._execute(state)

    def solve(
        self,
        problem: "object",
        algorithm: str,
        params: "dict | None" = None,
        validate: bool = True,
        context: "SolverContext | None" = None,
        checkpoint: "CheckpointConfig | None" = None,
    ) -> PipelineState:
        """Drive an already-built problem through the stages.

        This is the adapter the sweep drivers and the paired comparison
        use — the successor of the legacy ``run_algorithm`` call, with the
        deployment kept on the returned state instead of discarded.
        ``checkpoint`` is forwarded to the solver when it supports one
        (silently dropped otherwise, so sweep drivers can pass it
        unconditionally).
        """
        entry = self.registry.get(algorithm)
        params = dict(params or {})
        if checkpoint is not None and entry.supports_checkpoint:
            params["checkpoint"] = checkpoint
        state = PipelineState(
            entry=entry, registry=self.registry, spec=None,
            strict=self.strict, validate=validate,
            prebuild_context=self.prebuild_context,
            params=params, problem=problem, context=context,
        )
        return self._execute(state)

    def _execute(self, state: PipelineState) -> PipelineState:
        for name, fn in self.stages:
            # stage_watermark is the profiler's per-stage memory hook: a
            # shared no-op unless `repro profile` (or an explicit
            # SamplingProfiler) is active.
            with obs.span(f"pipeline.{name}", algorithm=state.entry.name), \
                    obs.stage_watermark(f"pipeline.{name}"):
                result = fn(state)
            state = result if result is not None else state
        return state
