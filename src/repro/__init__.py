"""repro — reproduction of "Coverage Maximization of Heterogeneous UAV
Networks" (Li, Xiang, Xu et al., IEEE ICDCS 2023).

Public API quick map:

* :func:`repro.core.appro_alg` — the paper's O(sqrt(s/K))-approximation
  (Algorithm 2) for the maximum connected coverage problem;
* :func:`repro.core.optimal_assignment` — exact user assignment for fixed
  placements (Section II-D);
* :mod:`repro.baselines` — MCS, MotionCtrl, GreedyAssign, maxThroughput;
* :func:`repro.workload.paper_scenario` — the Section IV-A experimental
  scenario at several scales;
* :mod:`repro.sim` — sweep drivers regenerating Figs. 4, 5, 6(a), 6(b).

See README.md for a quickstart and DESIGN.md for the full system map.
"""

from repro.core.approx import ApproxResult, appro_alg
from repro.core.assignment import optimal_assignment
from repro.core.problem import ProblemInstance
from repro.core.ratio import approximation_ratio
from repro.core.segments import optimal_segments
from repro.network.coverage import CoverageGraph
from repro.network.deployment import Deployment
from repro.network.fleet import heterogeneous_fleet, homogeneous_fleet
from repro.network.uav import UAV
from repro.network.users import User, users_from_points
from repro.network.validate import validate_deployment
from repro.workload.scenarios import ScenarioConfig, build_scenario, paper_scenario

__version__ = "1.0.0"

__all__ = [
    "ApproxResult",
    "appro_alg",
    "optimal_assignment",
    "ProblemInstance",
    "approximation_ratio",
    "optimal_segments",
    "CoverageGraph",
    "Deployment",
    "heterogeneous_fleet",
    "homogeneous_fleet",
    "UAV",
    "User",
    "users_from_points",
    "validate_deployment",
    "ScenarioConfig",
    "build_scenario",
    "paper_scenario",
    "__version__",
]
