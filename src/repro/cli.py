"""Command-line interface.

    repro fig4 [--scale bench] [--reps 1] ...
    repro fig5 ...
    repro fig6a / fig6b ...
    repro demo            # tiny end-to-end run
    repro run [--scenario SPEC.json] ...
    repro batch SPEC.json [...] [--workers N]
    repro scenario list|show [PRESET]

Each figure command regenerates the corresponding paper figure's data as
an ASCII table on stdout.

Scenario specs: ``repro scenario list`` names the built-in presets and
``repro scenario show demo-small`` prints one as JSON; ``repro run
--scenario spec.json`` solves a saved ``ScenarioSpec`` (solver settings
come from the spec; legacy ``save_scenario`` files still work, taking
solver settings from the flags); ``repro batch`` runs many spec files
through the ``BatchRunner``, building shared scenarios once.

Observability: the ``run``, ``fig4/5/6a/6b``, ``batch`` and ``mission``
commands accept ``--trace PATH`` (write a JSONL run manifest + spans +
metrics), ``--metrics-out PATH`` (just the metrics snapshot),
``--timeline PATH`` (ring-buffered time-series snapshots on the live
cadence) and ``--archive`` (store the run durably under ``.repro/runs``);
``repro trace-report PATH`` summarizes a trace — timeline sparklines
included — and can export Chrome trace format (``--chrome``).  ``repro
profile SCENARIO`` runs a preset/spec under the sampling profiler and
writes a speedscope file; ``repro runs list|show|compare`` queries the
archive; ``repro perf-diff --attribute`` names the regressed kernel.
Without these flags the observability layer stays off and adds no
overhead.

Crash safety: ``run``, ``fig4/5/6a/6b``, ``batch`` and ``mission`` accept
``--checkpoint DIR`` (journal solver and sweep progress into DIR with
atomic snapshots) and ``--resume`` (pick up where a previous identical
invocation stopped).  A first Ctrl-C drains gracefully — the solver
flushes a final checkpoint, the command reports the partial state and
exits with code 130; a second Ctrl-C aborts immediately.  See
``docs/RESILIENCE.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.core.approx import appro_alg
from repro.core.ratio import approximation_ratio
from repro.sim.experiments import (
    DEFAULT_ANCHOR_POOL,
    fig4_sweep,
    fig5_sweep,
    fig6_sweep,
)
from repro.workload.scenarios import SCALES, paper_scenario


def add_engine_args(
    parser: argparse.ArgumentParser,
    anchor_pool_default: int = DEFAULT_ANCHOR_POOL,
) -> None:
    """The shared solver-engine flags (seed, workers, pruning, anchor
    pool).  Every solving subcommand — run, fig4/5/6a/6b, mission — wires
    these through this one helper, so the flags stay consistent."""
    parser.add_argument("--seed", type=int, default=None, help="override seed")
    parser.add_argument(
        "--anchor-pool",
        type=int,
        default=anchor_pool_default,
        help="approAlg anchor-candidate pool size (0 = unrestricted)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for approAlg's subset fan-out (default 1)",
    )
    parser.add_argument(
        "--bound-prune", action="store_true",
        help="skip anchor subsets whose optimistic bound cannot beat the "
        "incumbent (lossless)",
    )


def _add_common(parser: argparse.ArgumentParser) -> None:
    """Flags shared by the figure sweeps."""
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="bench",
        help="scenario scale preset (default: bench)",
    )
    parser.add_argument(
        "--reps", type=int, default=1, help="repetitions per sweep point"
    )
    parser.add_argument(
        "--chart", action="store_true",
        help="also render an ASCII line chart of the series",
    )
    add_engine_args(parser)
    add_obs_args(parser)
    add_resilience_args(parser)


def add_resilience_args(parser: argparse.ArgumentParser) -> None:
    """The shared crash-safety flags (durable checkpoints, resume)."""
    parser.add_argument(
        "--checkpoint", default=None, metavar="DIR",
        help="journal progress into DIR (atomic snapshots of completed "
        "work; solver chunk checkpoints for approAlg) so an interrupted "
        "run can be resumed with --resume",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="resume from the --checkpoint DIR of a previous identical "
        "invocation, skipping work it already finished (a checkpoint "
        "from different settings is detected and ignored)",
    )


def add_obs_args(parser: argparse.ArgumentParser) -> None:
    """The shared observability flags (tracing, metrics, live heartbeat)."""
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="enable observability and write a JSONL trace (manifest + "
        "spans + metrics) to PATH; summarize with 'repro trace-report'",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="enable observability and write the metrics snapshot "
        "to PATH (format set by --metrics-format)",
    )
    parser.add_argument(
        "--metrics-format", choices=("json", "openmetrics"),
        default="json",
        help="--metrics-out file format: 'json' (default) or "
        "'openmetrics' (Prometheus textfile exposition)",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="enable observability and print a live progress heartbeat "
        "(subsets/s, completion %%, ETA, stall warnings) to stderr "
        "while the command runs",
    )
    parser.add_argument(
        "--live-interval", type=float, default=1.0, metavar="SECONDS",
        help="sampling interval of the --live heartbeat (default 1.0)",
    )
    parser.add_argument(
        "--timeline", default=None, metavar="PATH",
        help="enable observability and record ring-buffered time-series "
        "snapshots (counters, worker gauges, RSS) on the --live-interval "
        "cadence, written as JSONL to PATH; also embedded in --trace "
        "files, where 'repro trace-report' renders them as sparklines",
    )
    parser.add_argument(
        "--archive", action="store_true",
        help="enable observability and store this run (manifest + metrics "
        "+ timeline) under the run archive; query with 'repro runs'",
    )
    parser.add_argument(
        "--archive-root", default=None, metavar="DIR",
        help="run-archive directory (default .repro/runs)",
    )


def _pool(args: argparse.Namespace) -> "int | None":
    return None if args.anchor_pool == 0 else args.anchor_pool


def _print_result(args: argparse.Namespace, result, metric: str,
                  title: str) -> None:
    print(result.to_text(metric=metric, title=title))
    if args.chart:
        from repro.util.charts import ascii_chart

        print()
        print(ascii_chart(result.series(metric), title=f"{title} [chart]"))


def _engine_kwargs(args: argparse.Namespace) -> dict:
    return dict(workers=args.workers, bound_prune=args.bound_prune)


def _resilience_kwargs(args: argparse.Namespace) -> dict:
    return dict(
        checkpoint_dir=getattr(args, "checkpoint", None),
        resume=getattr(args, "resume", False),
    )


def _report_interrupt(exc) -> int:
    """Describe a graceful drain (SolveInterrupted) and exit like SIGINT."""
    print(f"\ninterrupted: {exc}", file=sys.stderr)
    if exc.checkpoint_path is not None:
        print(
            f"checkpoint flushed to {exc.checkpoint_path} — re-run with "
            "--resume to continue", file=sys.stderr,
        )
    if exc.partial:
        state = ", ".join(f"{k}={v}" for k, v in sorted(exc.partial.items()))
        print(f"partial state: {state}", file=sys.stderr)
    return 130


def _cmd_fig4(args: argparse.Namespace) -> int:
    kwargs = dict(
        scale=args.scale,
        repetitions=args.reps,
        max_anchor_candidates=_pool(args),
        **_engine_kwargs(args),
        **_resilience_kwargs(args),
    )
    if args.seed is not None:
        kwargs["seed"] = args.seed
    result = fig4_sweep(**kwargs)
    _print_result(args, result, "served",
                  "Fig. 4 - served users vs K (n=3000, s=3)")
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    kwargs = dict(
        scale=args.scale,
        repetitions=args.reps,
        max_anchor_candidates=_pool(args),
        **_engine_kwargs(args),
        **_resilience_kwargs(args),
    )
    if args.seed is not None:
        kwargs["seed"] = args.seed
    result = fig5_sweep(**kwargs)
    _print_result(args, result, "served",
                  "Fig. 5 - served users vs n (K=20, s=3)")
    return 0


def _cmd_fig6(args: argparse.Namespace, metric: str, title: str) -> int:
    kwargs = dict(
        scale=args.scale,
        repetitions=args.reps,
        max_anchor_candidates=_pool(args),
        **_engine_kwargs(args),
        **_resilience_kwargs(args),
    )
    if args.seed is not None:
        kwargs["seed"] = args.seed
    result = fig6_sweep(**kwargs)
    _print_result(args, result, metric, title)
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    seed = args.seed if args.seed is not None else 42
    problem = paper_scenario(
        num_users=300, num_uavs=6, scale="small", seed=seed
    )
    result = appro_alg(problem, s=2)
    print(
        f"demo: {problem.num_users} users, {problem.num_uavs} UAVs, "
        f"{problem.num_locations} candidate locations"
    )
    print(
        f"approAlg(s=2) served {result.served} users "
        f"({result.served / problem.num_users:.0%}) at anchors "
        f"{result.anchors}; theoretical guarantee "
        f"{approximation_ratio(problem.num_uavs, 2):.3f} of optimum"
    )
    for k, loc in sorted(result.deployment.placements.items()):
        load = result.deployment.load_of(k)
        cap = problem.fleet[k].capacity
        print(f"  UAV {k} (capacity {cap:3d}) at location {loc:3d}: "
              f"{load} users")
    from repro.sim.metrics import summarize

    metrics = summarize(problem, result.deployment)
    print(
        f"throughput {metrics.throughput_bps / 1e6:.1f} Mbps, capacity "
        f"utilisation {metrics.capacity_utilisation:.0%}, load fairness "
        f"{metrics.load_fairness:.2f}"
    )
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    from repro.sim.render import ascii_map

    seed = args.seed if args.seed is not None else 42
    problem = paper_scenario(
        num_users=args.users, num_uavs=args.uavs, scale=args.scale, seed=seed
    )
    result = appro_alg(
        problem, s=2, gain_mode="fast",
        max_anchor_candidates=min(10, problem.num_locations),
    )
    print(ascii_map(problem, result.deployment, cols=args.cols,
                    rows=args.cols // 2))
    print(f"served {result.served}/{problem.num_users} users")
    return 0


def _cmd_selfcheck(args: argparse.Namespace) -> int:
    """Quick end-to-end health check of the installation."""
    from repro.core.exact import exact_optimum_value
    from repro.core.ratio import approximation_ratio as ratio
    from repro.network.validate import validate_deployment
    from repro.scenario import DEFAULT_REGISTRY, SolvePipeline

    failures = 0
    problem = paper_scenario(num_users=120, num_uavs=4, scale="small", seed=1)

    def check(label: str, ok: bool) -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        failures += 0 if ok else 1

    print("selfcheck: tiny scenario (120 users, 4 UAVs, 9 locations)")
    result = appro_alg(problem, s=2)
    try:
        validate_deployment(problem.graph, problem.fleet, result.deployment)
        valid = True
    except AssertionError:
        valid = False
    check("approAlg produces a feasible deployment", valid)
    check("approAlg serves someone", result.served > 0)
    opt = exact_optimum_value(problem)
    check(
        f"Theorem 1 guarantee holds (served {result.served}, opt {opt}, "
        f"bound {ratio(4, 2):.3f})",
        result.served >= ratio(4, 2) * opt,
    )
    pipeline = SolvePipeline()
    for name in DEFAULT_REGISTRY.names():
        if name == "approAlg":
            continue
        try:
            state = pipeline.solve(problem, name)
            check(f"{name} feasible (served {state.served})", True)
        except Exception as exc:  # noqa: BLE001 - selfcheck reports anything
            check(f"{name} raised {type(exc).__name__}: {exc}", False)
    print("selfcheck:", "all good" if failures == 0 else f"{failures} failures")
    return 0 if failures == 0 else 1


def _run_spec_from_args(args: argparse.Namespace):
    """Describe the ``repro run`` flags as a :class:`ScenarioSpec`."""
    from repro.scenario import ScenarioSpec

    algorithm_params: dict = {}
    if args.algorithm == "approAlg":
        algorithm_params = {"s": args.s, "gain_mode": "fast"}
        if args.anchor_pool:
            algorithm_params["max_anchor_candidates"] = args.anchor_pool
    return ScenarioSpec(
        name="cli-run",
        scale=args.scale,
        num_users=args.users,
        num_uavs=args.uavs,
        seed=args.seed if args.seed is not None else 0,
        algorithm=args.algorithm,
        algorithm_params=algorithm_params,
        workers=args.workers,
        bound_prune=args.bound_prune,
    )


def _scale_overrides(args: argparse.Namespace) -> dict:
    """The aggregation/tiling flags as ScenarioSpec overrides — applied
    on top of whatever spec ``repro run`` resolved (flags, preset, or
    file), so ``--tiles 2x2`` works with any of them."""
    overrides: dict = {}
    if getattr(args, "aggregate", None) is not None:
        overrides["aggregation"] = args.aggregate
    if getattr(args, "cell_size", None) is not None:
        overrides["aggregation"] = "cells"
        overrides["cell_size_m"] = args.cell_size
    if getattr(args, "tiles", None) is not None:
        overrides["tiles"] = args.tiles
    if getattr(args, "tile_overlap", None) is not None:
        overrides["tile_overlap_m"] = args.tile_overlap
    return overrides


def _cmd_run(args: argparse.Namespace) -> int:
    """Run one algorithm on a scenario — from flags, a named preset, a
    ScenarioSpec JSON, or a legacy scenario file — and optionally save
    the deployment and/or record a perf-trajectory point."""
    import json
    from pathlib import Path

    from repro.network.deployment import CellDeployment
    from repro.scenario import ScenarioSpec, SolvePipeline, SpecError, get_preset
    from repro.sim.io import save_deployment
    from repro.sim.metrics import summarize

    pipeline = SolvePipeline(**_resilience_kwargs(args))
    spec: "ScenarioSpec | None" = None
    state = None
    if args.scenario is not None and not Path(args.scenario).exists():
        # Not a file: try the named presets (repro scenario list).
        try:
            spec = get_preset(args.scenario)
        except KeyError as exc:
            print(f"error: {args.scenario}: not a spec file, and "
                  f"{exc.args[0]}", file=sys.stderr)
            return 2
    elif args.scenario is not None:
        data = json.loads(Path(args.scenario).read_text())
        if data.get("kind") == "scenario-spec":
            # Declarative spec: scenario AND algorithm/engine options come
            # from the file; the solver flags on the command line are
            # ignored in favour of the spec's (except the aggregation and
            # tiling overrides, which compose with any spec).
            spec = ScenarioSpec.from_dict(data)
        else:
            # Legacy scenario file: just the problem; algorithm and
            # engine options still come from the flags.
            from repro.sim.io import load_scenario

            spec = _run_spec_from_args(args)
            entry = pipeline.registry.get(args.algorithm)
            params = dict(spec.algorithm_params)
            if entry.supports_workers and args.workers != 1:
                params["workers"] = args.workers
            if entry.supports_bound_prune and args.bound_prune:
                params["bound_prune"] = True
            state = pipeline.solve(
                load_scenario(args.scenario), args.algorithm, params,
                checkpoint=pipeline.spec_checkpoint(spec),
            )
            spec = None
    else:
        spec = _run_spec_from_args(args)
    if state is None:
        overrides = _scale_overrides(args)
        try:
            if overrides:
                spec = spec.with_overrides(**overrides)
            # The archive keys runs on scenario identity; stash it for
            # _observed, which only sees the parsed args.
            args._scenario_key = spec.scenario_key()
            state = pipeline.run(spec)
        except SpecError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    record, problem, deployment = state.record, state.problem, state.deployment
    args._served = record.served
    print(
        f"{record.algorithm}: served {record.served}/{record.num_users} "
        f"users in {record.runtime_s:.2f}s"
    )
    if isinstance(deployment, CellDeployment):
        # Demand-cell solves have no per-user assignment to summarize;
        # report the aggregated shape instead.
        report = state.report or {}
        cells = len(getattr(problem.graph, "cells", ()))
        line = (
            f"{cells} demand cells, {deployment.num_deployed} UAVs deployed"
        )
        if report.get("tiles"):
            line += (
                f", tiles {report['tiles']} "
                f"({report.get('tiles_solved', 0)} solved, "
                f"{report.get('relays_added', 0)} relays"
                + (", degraded" if report.get("degraded") else "")
                + ")"
            )
        print(line)
    else:
        metrics = summarize(problem, deployment)
        print(
            f"throughput {metrics.throughput_bps / 1e6:.1f} Mbps, utilisation "
            f"{metrics.capacity_utilisation:.0%}, fairness "
            f"{metrics.load_fairness:.2f}"
        )
    if args.record_bench:
        from repro.obs.bench import record_trajectory_point
        from repro.obs.profile import peak_rss_mb

        label = spec.name if spec is not None else "legacy"
        out = record_trajectory_point(
            scenario=f"run:{label}",
            algorithm=record.algorithm,
            served=record.served,
            wall_s=record.runtime_s,
            workers=spec.workers if spec is not None else args.workers,
            scale=spec.scale if spec is not None else args.scale,
            peak_rss_mb=peak_rss_mb(),
        )
        print(f"perf point run:{label} recorded in {out}")
    if args.save is not None:
        if isinstance(deployment, CellDeployment):
            print("error: --save does not support demand-cell deployments "
                  "(no per-user assignment to serialize)", file=sys.stderr)
            return 2
        save_deployment(args.save, deployment)
        print(f"deployment written to {args.save}")
    if args.report:
        from repro.sim.report import deployment_report

        print()
        print(deployment_report(problem, deployment))
    return 0


def _cmd_mission(args: argparse.Namespace) -> int:
    """Run a fault-injected mission: plan, inject failures, self-heal."""
    from repro.ops import FaultSchedule, MissionConfig, RecoveryPolicy, run_mission
    from repro.scenario import ScenarioSpec
    from repro.sim.report import mission_report
    from repro.sim.runner import WatchdogConfig

    if args.duration <= 0:
        print(f"error: --duration must be positive, got {args.duration}")
        return 2
    seed = args.seed if args.seed is not None else 7
    spec = ScenarioSpec(
        name="cli-mission",
        scale=args.scale,
        num_users=args.users,
        num_uavs=args.uavs,
        seed=seed,
    )
    args._scenario_key = spec.scenario_key()
    problem = spec.build()
    try:
        # The fault draw runs on its own derived stream (see
        # repro.util.rng.derive_seed), so it never perturbs — and is never
        # perturbed by — the scenario draw for the same root seed.
        schedule = FaultSchedule.random(
            num_uavs=args.uavs,
            num_crashes=args.crashes,
            num_battery=args.battery,
            num_links=args.links,
            window_s=(args.duration * 0.1, args.duration * 0.7),
            seed=spec.derived_seed("faults"),
        )
    except ValueError as exc:
        print(f"error: {exc}")
        return 2
    pool = _pool(args)
    appro_params: dict = {"s": 2, "gain_mode": "fast"}
    if pool is not None:
        appro_params["max_anchor_candidates"] = min(
            pool, problem.num_locations
        )
    if args.workers != 1:
        appro_params["workers"] = args.workers
    if args.bound_prune:
        appro_params["bound_prune"] = True
    if args.checkpoint is not None:
        # One snapshot file per mission; each re-plan solves a different
        # problem (the surviving fleet), so a stale snapshot is detected
        # by its run key and simply overwritten.
        from pathlib import Path

        from repro.core.checkpoint import CheckpointConfig

        appro_params["checkpoint"] = CheckpointConfig(
            path=Path(args.checkpoint) / "solve-mission.json",
            resume=args.resume,
        )
    watchdog = WatchdogConfig(
        budget_s=args.budget,
        params={"approAlg": appro_params},
    )
    config = MissionConfig(
        duration_s=args.duration,
        policy=RecoveryPolicy(
            max_retries=args.retries,
            backoff_initial_s=args.backoff,
            watchdog=watchdog,
        ),
    )
    result = run_mission(problem, schedule, config)
    print(mission_report(problem, result, include_map=not args.no_map))
    return 0 if result.final_valid else 1


def _dynamic_spec(args: argparse.Namespace):
    """Resolve ``repro dynamic --scenario``: preset name or DynamicSpec
    JSON file."""
    import json
    from pathlib import Path

    from repro.dynamics import DynamicSpec, get_dynamic_preset

    if Path(args.scenario).exists():
        data = json.loads(Path(args.scenario).read_text())
        return DynamicSpec.from_dict(data)
    try:
        return get_dynamic_preset(args.scenario)
    except KeyError as exc:
        raise ValueError(
            f"{args.scenario}: not a spec file, and {exc.args[0]}"
        ) from exc


def _cmd_dynamic(args: argparse.Namespace) -> int:
    """Run a long-horizon dynamic mission (churn, mobility, rotation,
    faults) with warm-started epoch re-solves; optionally across a seed
    grid, and optionally recording the warm-vs-cold latency bench point."""
    from repro.dynamics import run_dynamic, run_seed_grid

    try:
        spec = _dynamic_spec(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    overrides: dict = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.policy is not None:
        overrides["resolve_policy"] = args.policy
    if args.duration is not None:
        overrides["duration_s"] = args.duration
    if args.epoch is not None:
        overrides["epoch_s"] = args.epoch
    if overrides:
        spec = spec.with_overrides(**overrides)
    args._scenario_key = spec.scenario_key()
    warm = False if args.cold else None

    if args.seeds > 1:
        grid = run_seed_grid(spec, num_seeds=args.seeds, warm=warm)
        print(grid.to_text())
        args._served = grid.results[-1].final_served if grid.results else None
        return 0

    result = run_dynamic(spec, warm=warm)
    args._served = result.final_served
    summary = result.to_dict()
    print(
        f"dynamic {spec.name}: {summary['resolves']} re-solves "
        f"({result.policy} policy, {'warm' if result.warm else 'cold'}), "
        f"coverage mean {result.mean_coverage:.3f} / min "
        f"{result.min_coverage:.3f} / final {result.final_coverage:.3f}"
    )
    print(
        f"  churn: {result.arrivals} arrivals, {result.departures} "
        f"departures; {result.faults} faults; {result.rotations} "
        f"rotation swaps"
    )
    p95 = result.p95_time_to_serve_s
    lat = result.median_resolve_latency_s
    print(
        f"  p95 time-to-serve "
        f"{'-' if p95 is None else f'{p95:.1f}s'}, median re-solve "
        f"{'-' if lat is None else f'{lat * 1e3:.1f}ms'}, wall "
        f"{result.wall_s:.2f}s"
    )

    if args.record_bench:
        from repro.obs.bench import record_trajectory_point

        # The headline point pairs the warm run above with a cold run of
        # the identical spec (same seeds => same event stream), so the
        # recorded speedup is a like-for-like epoch re-solve comparison.
        cold = run_dynamic(spec, warm=False)
        warm_lat = result.median_resolve_latency_s
        cold_lat = cold.median_resolve_latency_s
        speedup = (
            None if not warm_lat or not cold_lat else cold_lat / warm_lat
        )
        out = record_trajectory_point(
            scenario=f"run:{spec.name}",
            algorithm=spec.algorithm,
            served=result.final_served,
            wall_s=result.wall_s,
            scale=spec.scale,
            speedup=speedup,
            warm_median_resolve_s=warm_lat,
            cold_median_resolve_s=cold_lat,
        )
        shown = "-" if speedup is None else f"{speedup:.2f}x"
        print(
            f"perf point run:{spec.name} recorded in {out} "
            f"(warm-vs-cold re-solve speedup {shown})"
        )
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    """Run many ScenarioSpec JSON files through one shared pipeline."""
    from repro.scenario import BatchRunner, ScenarioSpec, SolvePipeline, SpecError

    specs = []
    for path in args.specs:
        try:
            specs.append(ScenarioSpec.load(path))
        except (OSError, SpecError, ValueError) as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 2
    runner = BatchRunner(
        pipeline=SolvePipeline(strict=False), workers=args.workers,
        **_resilience_kwargs(args),
    )
    result = runner.run(specs)
    print(result.to_text())
    failures = [
        item for item in result.items if item.record.status != "ok"
    ]
    for item in failures:
        print(
            f"error: spec #{item.index} ({item.spec.name}): "
            f"{item.record.status}: {item.record.error}",
            file=sys.stderr,
        )
    return 0 if not failures else 1


def _cmd_scenario(args: argparse.Namespace) -> int:
    """Inspect the named scenario presets (list, or dump one as JSON)."""
    from repro.scenario import get_preset, preset_names

    if args.action == "list":
        for name in preset_names():
            preset = get_preset(name)
            print(
                f"{name:16s} scale={preset.scale:6s} "
                f"users={preset.to_config().num_users:<5d} "
                f"uavs={preset.to_config().num_uavs:<3d} "
                f"seed={preset.seed} algorithm={preset.algorithm}"
            )
        return 0
    if args.preset is None:
        print("error: 'repro scenario show' needs a preset name "
              "(see 'repro scenario list')", file=sys.stderr)
        return 2
    try:
        preset = get_preset(args.preset)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    print(preset.to_json())
    return 0


def _cmd_trace_report(args: argparse.Namespace) -> int:
    """Summarize a trace JSONL file; optionally export Chrome trace."""
    from repro.obs import read_trace, summarize, write_chrome_trace

    try:
        data = read_trace(args.path)
    except FileNotFoundError:
        print(f"error: no trace file at {args.path}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: malformed trace: {exc}", file=sys.stderr)
        return 2
    print(summarize(data))
    if args.chrome is not None:
        write_chrome_trace(args.chrome, data.spans)
        print(f"\nchrome trace written to {args.chrome} "
              "(load in chrome://tracing or ui.perfetto.dev)")
    return 0


def _archive_root(args: argparse.Namespace):
    from repro.obs.archive import DEFAULT_ROOT

    root = getattr(args, "archive_root", None)
    return root if root is not None else DEFAULT_ROOT


def _observed(handler, args: argparse.Namespace) -> int:
    """Run a command with the observability layer on; stream a live
    heartbeat while it runs (``--live``), snapshot a timeline on the
    same cadence (``--timeline`` / ``--archive``), and write the trace
    JSONL / metrics snapshot / archive entry afterwards (even if the
    command raises)."""
    import json
    import time as _time

    from repro import obs

    obs.reset()
    obs.enable()
    reporter = None
    recorder = None
    if getattr(args, "timeline", None) is not None or getattr(
        args, "archive", False
    ):
        recorder = obs.TimelineRecorder(
            obs.TimelineConfig(interval_s=args.live_interval)
        )
        # Event loops (the dynamics engine) snapshot into this recorder
        # at every state change via obs.record_mark().
        obs.set_active_recorder(recorder)
    if getattr(args, "live", False):
        # One daemon serves both: the reporter's heartbeat drives the
        # timeline recorder when both are requested.
        reporter = obs.LiveReporter(
            obs.LiveConfig(interval_s=args.live_interval), timeline=recorder
        ).start()
    elif recorder is not None:
        recorder.start()
    start = _time.perf_counter()
    exit_code: "int | None" = None
    try:
        exit_code = handler(args)
    finally:
        wall = _time.perf_counter() - start
        if recorder is not None:
            obs.set_active_recorder(None)
        if reporter is not None:
            reporter.stop()
        elif recorder is not None:
            recorder.stop()
        obs.disable()
        spans = obs.drain_spans()
        metrics = obs.metrics_snapshot()
        snapshots = recorder.snapshots() if recorder is not None else []
        obs.reset()
        scenario = {
            key: getattr(args, key)
            for key in ("users", "uavs", "scale")
            if getattr(args, key, None) is not None
        }
        manifest = obs.RunManifest(
            command=args.command,
            seed=getattr(args, "seed", None),
            scenario=scenario,
            algorithm=getattr(args, "algorithm", None),
            config={
                k: v for k, v in vars(args).items()
                if k not in ("trace", "metrics_out") and not callable(v)
            },
            git_rev=obs.git_revision(),
            stats={
                "exit_code": exit_code,
                "spans": len(spans),
                "completed": exit_code is not None,
            },
            wall_s=wall,
        )
        if args.trace is not None:
            obs.write_trace(args.trace, manifest, spans, metrics,
                            timeline=snapshots)
            print(f"trace ({len(spans)} spans) written to {args.trace}")
        if getattr(args, "timeline", None) is not None:
            obs.write_timeline(args.timeline, recorder)
            print(f"timeline ({len(snapshots)} snapshots) written to "
                  f"{args.timeline}")
        if getattr(args, "archive", False):
            archive = obs.RunArchive(_archive_root(args))
            run_id = archive.record_run(
                manifest,
                metrics=metrics,
                spans=spans,
                timeline=snapshots,
                scenario_key=getattr(args, "_scenario_key", None),
                served=getattr(args, "_served", None),
            )
            print(f"run archived as {run_id} under {archive.root}")
        if args.metrics_out is not None:
            if getattr(args, "metrics_format", "json") == "openmetrics":
                obs.write_openmetrics(
                    args.metrics_out, metrics,
                    info={
                        "command": args.command,
                        "seed": getattr(args, "seed", None),
                        "algorithm": getattr(args, "algorithm", None),
                        "git": manifest.git_rev,
                    },
                )
            else:
                with open(args.metrics_out, "w", encoding="utf-8") as fh:
                    json.dump(
                        {"manifest": manifest.to_dict(), **metrics},
                        fh, indent=2,
                    )
            print(f"metrics written to {args.metrics_out}")
    return exit_code


def _cmd_perf_diff(args: argparse.Namespace) -> int:
    """Compare two perf recordings; exit 1 only on a wall-time regression."""
    import json

    from repro.obs import perf_diff_paths

    try:
        diff = perf_diff_paths(
            args.baseline, args.current,
            threshold=args.threshold, window=args.window,
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        payload = diff.to_dict()
        if args.attribute:
            payload["attribution"] = diff.attribution()
        print(json.dumps(payload, indent=2))
    else:
        print(diff.to_text())
        if args.attribute:
            print()
            print(diff.attribution_text())
    return diff.exit_code


def _profile_spec(args: argparse.Namespace):
    """Resolve the ``repro profile`` scenario: preset name or spec file."""
    import json
    from pathlib import Path

    from repro.scenario import ScenarioSpec, get_preset

    if Path(args.scenario).exists():
        data = json.loads(Path(args.scenario).read_text())
        if data.get("kind") != "scenario-spec":
            raise ValueError(
                f"{args.scenario}: not a ScenarioSpec file "
                "(expected kind 'scenario-spec')"
            )
        return ScenarioSpec.from_dict(data)
    try:
        return get_preset(args.scenario)
    except KeyError as exc:
        raise ValueError(
            f"{args.scenario}: not a spec file, and {exc.args[0]}"
        ) from exc


def _cmd_profile(args: argparse.Namespace) -> int:
    """Run one scenario under the sampling profiler and report hot spots."""
    import time as _time

    from repro import obs
    from repro.obs.profile import ProfileConfig, SamplingProfiler
    from repro.scenario import SolvePipeline, SpecError
    from repro.util.tables import format_table

    try:
        spec = _profile_spec(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    obs.reset()
    obs.enable()
    profiler = SamplingProfiler(
        ProfileConfig(hz=args.hz, memory=not args.no_memory)
    )
    start = _time.perf_counter()
    state = None
    try:
        with profiler:
            try:
                state = SolvePipeline().run(spec)
            except SpecError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    finally:
        obs.disable()
        spans = obs.drain_spans()
        metrics = obs.metrics_snapshot()
        obs.reset()
    wall = _time.perf_counter() - start
    record = state.record
    print(
        f"{record.algorithm}: served {record.served}/{record.num_users} "
        f"users in {record.runtime_s:.2f}s"
    )
    print(
        f"profiler: {profiler.samples} samples at "
        f"{profiler.config.hz:g} Hz over {profiler.duration_s:.2f}s"
    )
    top = profiler.top_functions(limit=args.top)
    if top:
        denom = max(profiler.samples, 1)
        rows = [[label, count, f"{count / denom:.0%}"]
                for label, count in top]
        print(format_table(
            ["function", "samples", "share"], rows,
            title=f"hottest functions (top {len(rows)})",
        ))
    stages = profiler.memory_stages_mb()
    if stages:
        rows = [[stage, f"{mb:.1f}"]
                for stage, mb in sorted(stages.items(),
                                        key=lambda kv: -kv[1])]
        print(format_table(["stage", "peak MiB"], rows,
                           title="per-stage memory watermarks"))
    if profiler.peak_rss_mb is not None:
        print(f"peak RSS {profiler.peak_rss_mb:.1f} MiB")
    out = args.out if args.out is not None else f"{spec.name}.speedscope.json"
    profiler.write_speedscope(out, name=f"repro profile {spec.name}")
    print(f"speedscope profile written to {out} "
          "(open at https://www.speedscope.app)")
    if args.collapsed is not None:
        profiler.write_collapsed(args.collapsed)
        print(f"collapsed stacks written to {args.collapsed}")
    if args.archive:
        manifest = obs.RunManifest(
            command="profile",
            seed=spec.seed,
            scenario={"users": spec.num_users, "uavs": spec.num_uavs,
                      "scale": spec.scale},
            algorithm=record.algorithm,
            config={"hz": args.hz, "memory": not args.no_memory},
            git_rev=obs.git_revision(),
            stats={"exit_code": 0, "spans": len(spans), "completed": True},
            wall_s=wall,
        )
        archive = obs.RunArchive(_archive_root(args))
        run_id = archive.record_run(
            manifest, metrics=metrics, spans=spans, profile=profiler,
            scenario_key=spec.scenario_key(), served=record.served,
        )
        print(f"run archived as {run_id} under {archive.root}")
    return 0


def _cmd_runs(args: argparse.Namespace) -> int:
    """Inspect the durable run archive: list, show, compare."""
    from repro import obs
    from repro.util.tables import format_table

    archive = obs.RunArchive(_archive_root(args))
    if args.action == "list":
        entries = archive.list_runs()
        if not entries:
            print(f"no archived runs under {archive.root}")
            return 0
        rows = []
        for e in entries:
            key = e.get("scenario_key")
            rows.append([
                e.get("id", "?"),
                e.get("command") or "-",
                e.get("algorithm") or "-",
                "-" if not key else ",".join(str(p) for p in key[:4]),
                f"{e.get('wall_s') or 0.0:.2f}",
                "-" if e.get("served") is None else e["served"],
                ("T" if e.get("has_timeline") else "-")
                + ("P" if e.get("has_profile") else "-"),
            ])
        print(format_table(
            ["id", "command", "algorithm", "scenario", "wall s",
             "served", "art"],
            rows, title=f"archived runs under {archive.root}",
        ))
        return 0
    if args.action == "show":
        if len(args.run_ids) != 1:
            print("error: 'runs show' takes exactly one run id",
                  file=sys.stderr)
            return 2
        try:
            run = archive.load(args.run_ids[0])
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
        manifest = run.manifest
        print(f"run {run.id} ({run.path})")
        if manifest is not None:
            print(f"  command   {manifest.command}")
            print(f"  algorithm {manifest.algorithm or '-'}")
            print(f"  wall      {manifest.wall_s:.3f}s")
            print(f"  git       {manifest.git_rev or '-'}")
        key = run.data.get("scenario_key")
        print(f"  scenario  {key if key else '-'}")
        if run.kernels:
            rows = [[name, agg["count"], f"{agg['total_ms']:.2f}",
                     f"{agg['max_ms']:.2f}"]
                    for name, agg in sorted(
                        run.kernels.items(),
                        key=lambda kv: -kv[1]["total_ms"])]
            print(format_table(
                ["kernel", "count", "total ms", "max ms"], rows,
                title="kernel timings",
            ))
        if run.timeline:
            from repro.obs.report import timeline_summary

            print()
            print(timeline_summary(run.timeline))
        if run.profile:
            stacks = run.profile.get("stacks", [])
            leaves: dict = {}
            for entry in stacks:
                frames = entry.get("frames") or ["?"]
                leaves[frames[-1]] = (
                    leaves.get(frames[-1], 0) + entry.get("count", 0)
                )
            top = sorted(leaves.items(), key=lambda kv: -kv[1])[:10]
            if top:
                print(format_table(
                    ["function", "samples"], [list(kv) for kv in top],
                    title=f"profile ({run.profile.get('samples', 0)} "
                    "samples)",
                ))
        return 0
    if len(args.run_ids) != 2:
        print("error: 'runs compare' takes exactly two run ids "
              "(baseline current)", file=sys.stderr)
        return 2
    try:
        baseline = archive.load(args.run_ids[0])
        current = archive.load(args.run_ids[1])
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    comparison = obs.compare_runs(baseline, current,
                                  threshold=args.threshold)
    print(comparison.to_text())
    return comparison.exit_code


def _cmd_ratio(args: argparse.Namespace) -> int:
    from repro.core.ratio import l1_of
    from repro.core.segments import optimal_segments
    from repro.util.tables import format_table

    rows = []
    for k in args.k:
        for s in args.s:
            if s > k:
                continue
            plan = optimal_segments(k, s)
            rows.append(
                [k, s, l1_of(k, s), plan.lmax,
                 f"{approximation_ratio(k, s):.4f}"]
            )
    print(format_table(
        ["K", "s", "L1 (Thm 1)", "Lmax (Alg 1)", "guarantee"], rows,
        title="Theorem 1 guarantees and Algorithm 1 sub-path lengths",
    ))
    return 0


def main(argv: "list | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Coverage Maximization of "
        "Heterogeneous UAV Networks' (ICDCS 2023)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
        ("fig4", "served users vs number of UAVs"),
        ("fig5", "served users vs number of users"),
        ("fig6a", "served users vs parameter s"),
        ("fig6b", "running time vs parameter s"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_common(p)

    demo = sub.add_parser("demo", help="tiny end-to-end run")
    demo.add_argument("--seed", type=int, default=None)

    map_cmd = sub.add_parser("map", help="ASCII map of a deployment")
    map_cmd.add_argument("--seed", type=int, default=None)
    map_cmd.add_argument("--users", type=int, default=600)
    map_cmd.add_argument("--uavs", type=int, default=8)
    map_cmd.add_argument("--scale", choices=sorted(SCALES), default="bench")
    map_cmd.add_argument("--cols", type=int, default=60)

    ratio_cmd = sub.add_parser(
        "ratio", help="Theorem 1 guarantee table for K and s values"
    )
    ratio_cmd.add_argument("--k", type=int, nargs="+",
                           default=[5, 10, 20, 50, 100])
    ratio_cmd.add_argument("--s", type=int, nargs="+", default=[1, 2, 3, 4])

    run_cmd = sub.add_parser(
        "run", help="run one algorithm on a scenario, optionally save JSON"
    )
    run_cmd.add_argument(
        "--algorithm", default="approAlg",
        help="registered algorithm name (default approAlg)",
    )
    run_cmd.add_argument(
        "--scenario", default=None,
        help="scenario JSON: a ScenarioSpec (kind 'scenario-spec', see "
        "'repro scenario show'), a preset name ('repro scenario list'), "
        "or a legacy repro.sim.io scenario file",
    )
    run_cmd.add_argument(
        "--aggregate", choices=("users", "cells"), default=None,
        help="solve over individual users (default) or aggregated demand "
        "cells (see docs/SCALE.md)",
    )
    run_cmd.add_argument(
        "--cell-size", type=float, default=None, dest="cell_size",
        metavar="METRES",
        help="demand-cell edge length (implies --aggregate cells; omit "
        "for singleton cells)",
    )
    run_cmd.add_argument(
        "--tiles", default=None, metavar="NxM",
        help="shard the area into an NxM tile grid, solve tiles "
        "independently and stitch (see docs/SCALE.md)",
    )
    run_cmd.add_argument(
        "--tile-overlap", type=float, default=None, dest="tile_overlap",
        metavar="METRES",
        help="how far each tile's candidate locations reach past its "
        "core bounds (default 0)",
    )
    run_cmd.add_argument(
        "--record-bench", action="store_true",
        help="merge this run's served/wall-time into BENCH_approx.json "
        "(same schema and key semantics as the bench suite)",
    )
    run_cmd.add_argument("--save", default=None,
                         help="write the deployment JSON here")
    run_cmd.add_argument("--users", type=int, default=600)
    run_cmd.add_argument("--uavs", type=int, default=8)
    run_cmd.add_argument("--scale", choices=sorted(SCALES), default="bench")
    run_cmd.add_argument("--s", type=int, default=2)
    run_cmd.add_argument(
        "--report", action="store_true",
        help="print the full operational report (fleet, failures, spectrum)",
    )
    add_engine_args(run_cmd)
    add_obs_args(run_cmd)
    add_resilience_args(run_cmd)

    batch_cmd = sub.add_parser(
        "batch",
        help="run many ScenarioSpec JSON files through one shared pipeline "
        "(scenario builds and solver contexts are reused across specs)",
    )
    batch_cmd.add_argument("specs", nargs="+", metavar="SPEC",
                           help="ScenarioSpec JSON files")
    batch_cmd.add_argument(
        "--workers", type=int, default=1,
        help="process-pool size for distinct scenarios (default 1)",
    )
    add_obs_args(batch_cmd)
    add_resilience_args(batch_cmd)

    dynamic_cmd = sub.add_parser(
        "dynamic",
        help="long-horizon dynamic mission: streaming churn, moving "
        "hotspots, rotation sorties, faults, and warm-started epoch "
        "re-solves (see docs/DYNAMICS.md)",
    )
    dynamic_cmd.add_argument(
        "--scenario", default="dynamic-small",
        help="dynamic preset name (dynamic-small, dynamic-surge, "
        "dynamic-headline) or DynamicSpec JSON file "
        "(default dynamic-small)",
    )
    dynamic_cmd.add_argument(
        "--seeds", type=int, default=1,
        help="run a seed grid of this size (spec.seed, spec.seed+1, ...) "
        "and print the aggregated table (default 1 = single run)",
    )
    dynamic_cmd.add_argument(
        "--policy", choices=("periodic", "drift", "event"), default=None,
        help="override the spec's re-solve policy",
    )
    dynamic_cmd.add_argument(
        "--duration", type=float, default=None,
        help="override the mission duration (seconds)",
    )
    dynamic_cmd.add_argument(
        "--epoch", type=float, default=None,
        help="override the epoch cadence (seconds)",
    )
    dynamic_cmd.add_argument(
        "--seed", type=int, default=None, help="override seed")
    dynamic_cmd.add_argument(
        "--cold", action="store_true",
        help="disable warm-starting (every epoch re-solve rebuilds the "
        "graph and context from scratch; results are identical, only "
        "slower)",
    )
    dynamic_cmd.add_argument(
        "--record-bench", action="store_true",
        help="also run the mission cold and merge the warm-vs-cold "
        "re-solve latency point into BENCH_approx.json",
    )
    add_obs_args(dynamic_cmd)

    scenario_cmd = sub.add_parser(
        "scenario", help="inspect the named scenario presets"
    )
    scenario_cmd.add_argument("action", choices=("list", "show"))
    scenario_cmd.add_argument("preset", nargs="?", default=None,
                              help="preset name (for 'show')")

    mission_cmd = sub.add_parser(
        "mission", help="fault-injected mission with self-healing recovery"
    )
    mission_cmd.add_argument("--users", type=int, default=400)
    mission_cmd.add_argument("--uavs", type=int, default=6)
    mission_cmd.add_argument("--scale", choices=sorted(SCALES), default="small")
    mission_cmd.add_argument("--duration", type=float, default=120.0,
                             help="mission length in seconds")
    mission_cmd.add_argument("--crashes", type=int, default=2,
                             help="UAV crashes to inject")
    mission_cmd.add_argument("--battery", type=int, default=0,
                             help="battery depletions to inject")
    mission_cmd.add_argument("--links", type=int, default=0,
                             help="link degradations to inject")
    mission_cmd.add_argument("--budget", type=float, default=None,
                             help="solver wall-clock budget (s) per re-plan")
    mission_cmd.add_argument("--retries", type=int, default=3,
                             help="repair attempts before giving up")
    mission_cmd.add_argument("--backoff", type=float, default=5.0,
                             help="initial retry backoff (s)")
    mission_cmd.add_argument("--no-map", action="store_true",
                             help="skip the final ASCII map")
    add_engine_args(mission_cmd)
    add_obs_args(mission_cmd)
    add_resilience_args(mission_cmd)

    sub.add_parser("selfcheck", help="quick end-to-end installation check")

    report_cmd = sub.add_parser(
        "trace-report", help="summarize a --trace JSONL file"
    )
    report_cmd.add_argument("path", help="trace JSONL written by --trace")
    report_cmd.add_argument(
        "--chrome", default=None, metavar="PATH",
        help="also export Chrome trace format here",
    )

    diff_cmd = sub.add_parser(
        "perf-diff",
        help="compare two perf recordings (BENCH_approx.json trajectories "
        "or --trace files); exit 1 on wall-time regression",
    )
    diff_cmd.add_argument("baseline", help="baseline trajectory/trace file")
    diff_cmd.add_argument("current", help="current trajectory/trace file")
    diff_cmd.add_argument(
        "--threshold", type=float, default=0.15,
        help="relative wall-time increase tolerated before a key counts "
        "as regressed (default 0.15 = 15%%)",
    )
    diff_cmd.add_argument(
        "--window", type=int, default=3,
        help="per-key median window over the most recent points "
        "(default 3)",
    )
    diff_cmd.add_argument(
        "--json", action="store_true",
        help="print the diff as JSON instead of a table",
    )
    diff_cmd.add_argument(
        "--attribute", action="store_true",
        help="also name the dominant regressing kernel per key (uses the "
        "recorded context_build_s / bound_pass_ms / gain_matrix_ms)",
    )

    profile_cmd = sub.add_parser(
        "profile",
        help="run one scenario under the sampling profiler and report "
        "hot functions, per-stage memory watermarks, and peak RSS",
    )
    profile_cmd.add_argument(
        "scenario",
        help="preset name ('repro scenario list') or ScenarioSpec JSON",
    )
    profile_cmd.add_argument(
        "--hz", type=float, default=97.0,
        help="sampling frequency (default 97 Hz)",
    )
    profile_cmd.add_argument(
        "--no-memory", action="store_true",
        help="skip the tracemalloc stage watermarks (cheaper)",
    )
    profile_cmd.add_argument(
        "--out", default=None, metavar="PATH",
        help="speedscope JSON output (default <scenario>.speedscope.json)",
    )
    profile_cmd.add_argument(
        "--collapsed", default=None, metavar="PATH",
        help="also write collapsed flamegraph stacks here",
    )
    profile_cmd.add_argument(
        "--top", type=int, default=10,
        help="how many hot functions to print (default 10)",
    )
    profile_cmd.add_argument(
        "--archive", action="store_true",
        help="record the profiled run in the run archive",
    )
    profile_cmd.add_argument(
        "--archive-root", default=None, metavar="DIR",
        help="archive directory (default .repro/runs)",
    )

    runs_cmd = sub.add_parser(
        "runs",
        help="query the durable run archive (.repro/runs): list runs, "
        "show one, or compare two and name the regressed kernel",
    )
    runs_cmd.add_argument("action", choices=("list", "show", "compare"))
    runs_cmd.add_argument("run_ids", nargs="*", metavar="RUN_ID",
                          help="one id for 'show', two for 'compare'")
    runs_cmd.add_argument(
        "--root", default=None, dest="archive_root", metavar="DIR",
        help="archive directory (default .repro/runs)",
    )
    runs_cmd.add_argument(
        "--threshold", type=float, default=0.15,
        help="relative slowdown tolerated by 'compare' (default 0.15)",
    )

    args = parser.parse_args(argv)
    handler = _dispatch_handler(args)
    # 'repro profile' has its own --archive but manages the obs layer
    # itself, so the wrapper only engages for commands with the full
    # add_obs_args set (hasattr 'trace' is the marker).
    observed = hasattr(args, "trace") and (
        args.trace is not None
        or getattr(args, "metrics_out", None) is not None
        or getattr(args, "live", False)
        or getattr(args, "timeline", None) is not None
        or getattr(args, "archive", False)
    )
    from repro.util.interrupt import SolveInterrupted, graceful_shutdown

    # First SIGINT/SIGTERM requests a cooperative drain (the solver
    # flushes a checkpoint and raises SolveInterrupted at the next safe
    # boundary); a second one aborts the old-fashioned way.
    with graceful_shutdown():
        try:
            if observed:
                return _observed(handler, args)
            return handler(args)
        except SolveInterrupted as exc:
            return _report_interrupt(exc)


def _dispatch_handler(args: argparse.Namespace):
    """Resolve the subcommand to its handler (a callable of ``args``)."""
    if args.command == "fig4":
        return _cmd_fig4
    if args.command == "fig5":
        return _cmd_fig5
    if args.command == "fig6a":
        return lambda a: _cmd_fig6(
            a, "served", "Fig. 6(a) - served users vs s (n=3000, K=20)"
        )
    if args.command == "fig6b":
        return lambda a: _cmd_fig6(
            a, "runtime_s", "Fig. 6(b) - running time (s) vs s (n=3000, K=20)"
        )
    if args.command == "demo":
        return _cmd_demo
    if args.command == "map":
        return _cmd_map
    if args.command == "ratio":
        return _cmd_ratio
    if args.command == "mission":
        return _cmd_mission
    if args.command == "run":
        return _cmd_run
    if args.command == "batch":
        return _cmd_batch
    if args.command == "dynamic":
        return _cmd_dynamic
    if args.command == "scenario":
        return _cmd_scenario
    if args.command == "selfcheck":
        return _cmd_selfcheck
    if args.command == "trace-report":
        return _cmd_trace_report
    if args.command == "perf-diff":
        return _cmd_perf_diff
    if args.command == "profile":
        return _cmd_profile
    if args.command == "runs":
        return _cmd_runs
    raise AssertionError(f"unhandled command {args.command!r}")
