"""Matroid-intersection helpers.

The maximisation in Section III-E is over the intersection of ρ = 2
matroids; the only operation the greedy needs is a joint independence
oracle, provided here.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Sequence


def independent_in_all(matroids: Sequence, subset: Iterable) -> bool:
    """Whether ``subset`` is independent in every matroid."""
    elements = set(subset)
    return all(m.is_independent(elements) for m in matroids)


def can_extend_all(
    matroids: Sequence, independent_subset: Iterable, element: Hashable
) -> bool:
    """Whether adding ``element`` preserves independence in every matroid."""
    subset = set(independent_subset)
    return all(m.can_extend(subset, element) for m in matroids)
