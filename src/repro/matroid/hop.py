"""Hop-counting matroid ``M2`` (Section III-C).

Relative to the anchor set ``{v*_1..v*_s}`` and hop distances ``d_l`` in the
candidate-location graph, a subset ``V' ⊆ V`` is independent iff

* every node of ``V'`` is at most ``h_max`` hops from the anchors, and
* for each ``0 <= h <= h_max`` at most ``Q_h`` nodes of ``V'`` are at least
  ``h`` hops away (Eq. 1 supplies the ``Q_h``).

The thresholds ``{v : d_v >= h}`` are nested in ``h``, so this is a laminar
(nested) matroid; the axioms are verified by property tests.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.graphs.bfs import UNREACHABLE
from repro.matroid.base import Matroid


class HopCountingMatroid(Matroid):
    """Laminar matroid over location indices, parameterised by hop distances
    to the anchors and the bound vector ``Q_0..Q_hmax``."""

    def __init__(self, hops_to_anchors: list, q_bounds: list) -> None:
        if not q_bounds:
            raise ValueError("q_bounds must contain at least Q_0")
        if any(q < 0 for q in q_bounds):
            raise ValueError(f"Q_h bounds must be non-negative, got {q_bounds}")
        for h in range(1, len(q_bounds)):
            if q_bounds[h] > q_bounds[h - 1]:
                raise ValueError(
                    "Q must be non-increasing (nested thresholds); got "
                    f"Q_{h - 1} = {q_bounds[h - 1]} < Q_{h} = {q_bounds[h]}"
                )
        self._hops = list(hops_to_anchors)
        self._q = list(q_bounds)
        self._hmax = len(q_bounds) - 1
        self._ground = frozenset(
            v for v, d in enumerate(self._hops)
            if d != UNREACHABLE and d <= self._hmax
        )

    @property
    def hmax(self) -> int:
        return self._hmax

    @property
    def q_bounds(self) -> list:
        return list(self._q)

    def hop_of(self, v: int) -> int:
        return self._hops[v]

    def ground_set(self) -> frozenset:
        return self._ground

    def is_independent(self, subset: Iterable) -> bool:
        elements = set(subset)
        if not elements <= self._ground:
            return False
        # counts[h] = number of selected nodes with hop distance >= h.
        counts = [0] * (self._hmax + 1)
        for v in elements:
            d = self._hops[v]
            for h in range(0, d + 1):
                counts[h] += 1
        return all(counts[h] <= self._q[h] for h in range(self._hmax + 1))

    def can_extend(self, independent_subset: Iterable, element: Hashable) -> bool:
        if element not in self._ground:
            return False
        subset = set(independent_subset)
        if element in subset:
            return False
        d_new = self._hops[element]
        counts = [0] * (self._hmax + 1)
        for v in subset:
            d = self._hops[v]
            for h in range(0, min(d, self._hmax) + 1):
                counts[h] += 1
        return all(
            counts[h] + 1 <= self._q[h] for h in range(0, d_new + 1)
        )

    def rank_upper_bound(self) -> int:
        return min(self._q[0], len(self._ground))


class IncrementalHopFilter:
    """Amortised feasibility oracle used inside the greedy loop.

    Maintains the per-threshold counts of the growing solution so that
    checking whether a node may be added is O(h_max) instead of O(|V'|).
    """

    def __init__(self, matroid: HopCountingMatroid) -> None:
        self._m = matroid
        self._counts = [0] * (matroid.hmax + 1)
        self._selected: set = set()

    @property
    def selected(self) -> frozenset:
        return frozenset(self._selected)

    def can_add(self, v: int) -> bool:
        if v in self._selected or v not in self._m.ground_set():
            return False
        d = self._m.hop_of(v)
        q = self._m.q_bounds
        return all(self._counts[h] + 1 <= q[h] for h in range(d + 1))

    def max_addable_hop(self) -> int:
        """Largest hop distance ``d`` such that any unselected ground node
        at distance ``d`` is currently addable, or ``-1`` if nothing is.

        The ``can_add`` predicate checks a *prefix* of thresholds
        (``h <= d_v``), so over the ground set it is monotone in ``d_v``:
        ``can_add(v)`` holds iff ``hop_of(v) <= max_addable_hop()``.  This
        turns per-candidate feasibility into one vectorised comparison
        against the hop array."""
        q = self._m.q_bounds
        counts = self._counts
        d = -1
        for h in range(len(q)):
            if counts[h] + 1 > q[h]:
                break
            d = h
        return d

    def add(self, v: int) -> None:
        if not self.can_add(v):
            raise ValueError(f"adding node {v} violates the hop matroid")
        for h in range(self._m.hop_of(v) + 1):
            self._counts[h] += 1
        self._selected.add(v)

    def feasible_candidates(self, universe: Iterable) -> list:
        """All nodes of ``universe`` currently addable (the paper's
        ``V^k_feasible``)."""
        return [v for v in universe if self.can_add(v)]
