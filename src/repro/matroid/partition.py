"""Partition matroid ``M1`` (Section III-B).

Ground set: ``N = X × V``, all (UAV, hovering-location) pairs.  A subset is
independent iff no UAV appears in more than one pair — each UAV can be
deployed at at most one location.  This is the partition matroid whose
blocks are the per-UAV slices of ``N`` with block capacity 1 (generalised
here to arbitrary capacities, which also lets tests exercise the axioms on
richer instances).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Hashable, Iterable

from repro.matroid.base import Matroid


class PartitionMatroid(Matroid):
    """Elements partitioned into blocks; at most ``capacity(block)`` elements
    of each block may be selected."""

    def __init__(
        self,
        ground: Iterable,
        block_of: Callable,
        capacity: "int | dict" = 1,
    ) -> None:
        self._ground = frozenset(ground)
        self._block_of = block_of
        if isinstance(capacity, int):
            if capacity < 0:
                raise ValueError(f"capacity must be non-negative, got {capacity}")
            self._capacity = {self._block_of(e): capacity for e in self._ground}
        else:
            self._capacity = dict(capacity)
        for e in self._ground:
            block = self._block_of(e)
            if block not in self._capacity:
                raise ValueError(f"no capacity given for block {block!r}")

    @classmethod
    def uav_placement(cls, num_uavs: int, num_locations: int) -> "PartitionMatroid":
        """The paper's ``M1``: pairs (k, v_j), each UAV k used at most once."""
        ground = [
            (k, j) for k in range(num_uavs) for j in range(num_locations)
        ]
        return cls(ground, block_of=lambda pair: pair[0], capacity=1)

    def ground_set(self) -> frozenset:
        return self._ground

    def is_independent(self, subset: Iterable) -> bool:
        elements = set(subset)
        if not elements <= self._ground:
            return False
        counts = Counter(self._block_of(e) for e in elements)
        return all(c <= self._capacity[b] for b, c in counts.items())

    def can_extend(self, independent_subset: Iterable, element: Hashable) -> bool:
        if element not in self._ground:
            return False
        subset = set(independent_subset)
        if element in subset:
            return False
        block = self._block_of(element)
        used = sum(1 for e in subset if self._block_of(e) == block)
        return used + 1 <= self._capacity[block]

    def rank_upper_bound(self) -> int:
        return sum(self._capacity.values())
