"""Matroids and submodular maximisation (Sections II-E, III-B, III-C).

The proposed algorithm maximises a monotone submodular coverage function
subject to the intersection of two matroids: the partition matroid ``M1``
(each UAV deployed at most once) and the hop-counting matroid ``M2`` (node
counts per hop distance from the anchor set bounded by ``Q_h``, Eq. 1).
Fisher–Nemhauser–Wolsey greedy gives a 1/(ρ+1) = 1/3 approximation for
ρ = 2 matroids.
"""

from repro.matroid.base import Matroid
from repro.matroid.hop import HopCountingMatroid
from repro.matroid.intersection import independent_in_all
from repro.matroid.partition import PartitionMatroid
from repro.matroid.submodular import CoverageObjective, fnw_greedy

__all__ = [
    "Matroid",
    "HopCountingMatroid",
    "independent_in_all",
    "PartitionMatroid",
    "CoverageObjective",
    "fnw_greedy",
]
