"""The coverage set function ``f(A)`` (Section III-B) and the generic
Fisher–Nemhauser–Wolsey greedy.

``f(A)`` maps a set of (UAV, location) pairs to the number of users served
by an *optimal* assignment (Section II-D), which is monotone submodular
(following Megiddo [24]).  The generic greedy here is the textbook FNW
procedure over an arbitrary ground set under matroid constraints; the
production path in :mod:`repro.core.greedy` is a specialised, much faster
equivalent, and the two are cross-checked in tests.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.flow.bipartite import IncrementalAssignment
from repro.matroid.intersection import can_extend_all
from repro.network.coverage import CoverageGraph


class CoverageObjective:
    """Evaluates ``f(A)`` = max users served by the UAV placements in ``A``.

    Elements of ``A`` are pairs ``(uav_index, location_index)``.  Each call
    solves the Section II-D maximum assignment exactly (incremental
    augmenting paths reach the true maximum; see repro.flow.bipartite).
    """

    def __init__(self, graph: CoverageGraph, fleet: Sequence) -> None:
        self.graph = graph
        self.fleet = list(fleet)

    def value(self, pairs: Iterable) -> int:
        engine = IncrementalAssignment(self.graph.num_users)
        for k, j in pairs:
            uav = self.fleet[k]
            engine.open((k, j), self.graph.coverable_users(j, uav), uav.capacity)
        return engine.served_count

    def assignment(self, pairs: Iterable) -> dict:
        """Optimal assignment ``user -> uav_index`` for the placements."""
        engine = IncrementalAssignment(self.graph.num_users)
        for k, j in pairs:
            uav = self.fleet[k]
            engine.open((k, j), self.graph.coverable_users(j, uav), uav.capacity)
        return {
            user: station[0]
            for station, users in engine.assignment().items()
            for user in users
        }

    def __call__(self, pairs: Iterable) -> int:
        return self.value(pairs)


def fnw_greedy(
    ground_set: Iterable,
    objective: Callable,
    matroids: Sequence,
    max_size: "int | None" = None,
) -> list:
    """Textbook FNW greedy: repeatedly add the feasible element with the
    largest marginal gain until no feasible element improves the objective.

    Achieves a 1/(ρ+1) approximation for monotone submodular ``objective``
    under ρ matroid constraints.  ``objective`` takes a list of elements and
    returns a number; this generic version re-evaluates it per candidate, so
    use it only for small instances, tests, and the ``pair_greedy`` ablation.
    """
    universe = list(ground_set)
    chosen: list = []
    current_value = objective(chosen)
    limit = max_size if max_size is not None else len(universe)
    while len(chosen) < limit:
        best_gain = 0
        best_element = None
        for element in universe:
            if element in chosen:
                continue
            if not can_extend_all(matroids, chosen, element):
                continue
            gain = objective(chosen + [element]) - current_value
            if gain > best_gain:
                best_gain = gain
                best_element = element
        if best_element is None:
            break
        chosen.append(best_element)
        current_value += best_gain
    return chosen
