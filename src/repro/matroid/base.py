"""The matroid abstraction (Section II-E).

A matroid ``M = (N, I)`` is a ground set ``N`` with a family ``I`` of
"independent" subsets satisfying (i) the empty set is independent, (ii) the
hereditary property, and (iii) the augmentation property.  Implementations
only need an independence oracle; the property tests in
``tests/test_matroid_axioms.py`` verify all three axioms hold for every
concrete matroid in this package.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Hashable, Iterable


class Matroid(ABC):
    """Independence-oracle interface."""

    @abstractmethod
    def ground_set(self) -> frozenset:
        """The finite ground set ``N``."""

    @abstractmethod
    def is_independent(self, subset: Iterable) -> bool:
        """Whether ``subset`` (⊆ N) is independent."""

    def can_extend(self, independent_subset: Iterable, element: Hashable) -> bool:
        """Whether ``independent_subset ∪ {element}`` stays independent.

        Concrete matroids may override with an incremental check; the
        default re-tests the union.
        """
        subset = set(independent_subset)
        if element in subset:
            return False
        subset.add(element)
        return self.is_independent(subset)

    def rank_upper_bound(self) -> int:
        """An upper bound on the matroid's rank (size of the largest
        independent set); defaults to |N|."""
        return len(self.ground_set())
