"""The disaster area and its partition into candidate hovering locations.

Section II-A: the service plane at altitude ``H_uav`` is split into
``m = (alpha/lambda) * (beta/lambda)`` square grids of side ``lambda``; the
grid centres are the candidate hovering locations.  At most one UAV may
hover per grid (collision avoidance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.point import Point2D, Point3D


@dataclass(frozen=True)
class DisasterArea:
    """A rectangular disaster zone.

    Parameters
    ----------
    length, width:
        Ground extent ``alpha`` x ``beta`` in metres (paper: 3000 x 3000).
    height:
        Airspace ceiling ``gamma`` in metres (paper: 500); hovering altitude
        must not exceed it.
    """

    length: float
    width: float
    height: float = 500.0

    def __post_init__(self) -> None:
        if self.length <= 0 or self.width <= 0 or self.height <= 0:
            raise ValueError(
                "area dimensions must be positive, got "
                f"{self.length} x {self.width} x {self.height}"
            )

    @property
    def ground_area(self) -> float:
        """Ground surface in square metres."""
        return self.length * self.width

    def contains_ground(self, p: Point2D) -> bool:
        return 0.0 <= p.x <= self.length and 0.0 <= p.y <= self.width

    def hovering_grid(self, side: float, altitude: float) -> "HoveringGrid":
        """Partition the plane at ``altitude`` into squares of side ``side``.

        ``length`` and ``width`` must be divisible by ``side`` (the paper's
        assumption); ``altitude`` must lie within the airspace.
        """
        if altitude <= 0 or altitude > self.height:
            raise ValueError(
                f"altitude {altitude} outside airspace (0, {self.height}]"
            )
        if side <= 0:
            raise ValueError(f"grid side must be positive, got {side}")
        cols = round(self.length / side)
        rows = round(self.width / side)
        if abs(cols * side - self.length) > 1e-9 or abs(rows * side - self.width) > 1e-9:
            raise ValueError(
                f"area {self.length} x {self.width} is not divisible by "
                f"grid side {side}"
            )
        return HoveringGrid(area=self, side=side, altitude=altitude,
                            cols=cols, rows=rows)


@dataclass(frozen=True)
class HoveringGrid:
    """The grid of candidate hovering locations at a fixed altitude.

    Locations are indexed row-major: location ``j`` sits at column
    ``j % cols`` and row ``j // cols``.
    """

    area: DisasterArea
    side: float
    altitude: float
    cols: int
    rows: int
    _centers: tuple = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        centers = tuple(
            Point3D(
                (c + 0.5) * self.side,
                (r + 0.5) * self.side,
                self.altitude,
            )
            for r in range(self.rows)
            for c in range(self.cols)
        )
        object.__setattr__(self, "_centers", centers)

    @property
    def size(self) -> int:
        """Number of candidate hovering locations ``m``."""
        return self.cols * self.rows

    @property
    def centers(self) -> tuple:
        """All grid-centre locations ``v_1..v_m`` (row-major order)."""
        return self._centers

    def center(self, index: int) -> Point3D:
        return self._centers[index]

    def index_of(self, col: int, row: int) -> int:
        if not (0 <= col < self.cols and 0 <= row < self.rows):
            raise IndexError(f"cell ({col}, {row}) outside grid "
                             f"{self.cols} x {self.rows}")
        return row * self.cols + col

    def cell_of(self, index: int) -> tuple:
        """(col, row) of location ``index``."""
        if not (0 <= index < self.size):
            raise IndexError(f"location index {index} outside [0, {self.size})")
        return index % self.cols, index // self.cols

    def containing_cell(self, p: Point2D) -> int:
        """Index of the grid cell whose square contains ground point ``p``."""
        if not self.area.contains_ground(p):
            raise ValueError(f"point {p} outside the disaster area")
        col = min(int(p.x / self.side), self.cols - 1)
        row = min(int(p.y / self.side), self.rows - 1)
        return self.index_of(col, row)
