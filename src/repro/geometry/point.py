"""Immutable 2-D/3-D points with Euclidean metrics.

Users are ``Point3D(x, y, 0)``; candidate hovering locations are
``Point3D(x, y, H_uav)``.  All coordinates are metres.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point2D:
    """A point on the ground plane (metres)."""

    x: float
    y: float

    def distance_to(self, other: "Point2D") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def at_altitude(self, z: float) -> "Point3D":
        return Point3D(self.x, self.y, z)

    def __iter__(self):
        yield self.x
        yield self.y


@dataclass(frozen=True, slots=True)
class Point3D:
    """A point in the 3-D disaster zone (metres)."""

    x: float
    y: float
    z: float = 0.0

    def distance_to(self, other: "Point3D") -> float:
        return math.sqrt(
            (self.x - other.x) ** 2
            + (self.y - other.y) ** 2
            + (self.z - other.z) ** 2
        )

    def horizontal_distance_to(self, other: "Point3D") -> float:
        """Ground-projected distance, ignoring altitude."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def ground(self) -> Point2D:
        """Project onto the ground plane."""
        return Point2D(self.x, self.y)

    def __iter__(self):
        yield self.x
        yield self.y
        yield self.z


def elevation_angle_deg(ground: Point3D, aerial: Point3D) -> float:
    """Elevation angle (degrees) from a ground node to an aerial node.

    This is the angle θ used by the Al-Hourani LoS-probability model.  When
    the two points are vertically aligned the angle is 90°.
    """
    dz = aerial.z - ground.z
    if dz < 0:
        raise ValueError("aerial node must be above the ground node")
    dr = ground.horizontal_distance_to(aerial)
    if dr == 0.0:
        return 90.0
    return math.degrees(math.atan2(dz, dr))
