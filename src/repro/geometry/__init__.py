"""Geometry of the disaster zone: points, the grid of candidate hovering
locations, and spatial indexing.

The paper models the disaster zone as a 3-D box of length ``alpha``, width
``beta`` and height ``gamma``.  Users live on the ground plane (z = 0); UAVs
hover on a horizontal plane at altitude ``H_uav`` that is partitioned into
square grids of side ``lambda``; the grid centres are the candidate hovering
locations ``v_1..v_m`` (Section II-A).
"""

from repro.geometry.area import DisasterArea
from repro.geometry.grid import Grid, SpatialHash
from repro.geometry.point import Point2D, Point3D

__all__ = ["DisasterArea", "Grid", "SpatialHash", "Point2D", "Point3D"]
