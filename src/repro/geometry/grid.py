"""Spatial indexing for range queries.

Coverage-graph construction needs "all users within radius R of location v"
for every location; a uniform-cell spatial hash turns that from O(n*m) naive
pair scans into O(n + m * hits) in practice.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Iterable, Sequence

from repro.geometry.point import Point2D, Point3D


class SpatialHash:
    """Uniform-grid spatial hash over 2-D ground positions.

    Points are bucketed by ``floor(coord / cell_size)``; a radius query scans
    only the buckets overlapping the query disc's bounding square and then
    filters by exact distance.
    """

    def __init__(self, points: Sequence[Point2D], cell_size: float) -> None:
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")
        self._cell_size = cell_size
        self._points = list(points)
        self._buckets: dict = defaultdict(list)
        for i, p in enumerate(self._points):
            self._buckets[self._key(p.x, p.y)].append(i)

    def _key(self, x: float, y: float) -> tuple:
        return (math.floor(x / self._cell_size), math.floor(y / self._cell_size))

    def __len__(self) -> int:
        return len(self._points)

    def query_disc(self, center: Point2D, radius: float) -> list:
        """Indices of stored points within ``radius`` of ``center``."""
        if radius < 0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        cx0, cy0 = self._key(center.x - radius, center.y - radius)
        cx1, cy1 = self._key(center.x + radius, center.y + radius)
        r2 = radius * radius
        hits = []
        for cx in range(cx0, cx1 + 1):
            for cy in range(cy0, cy1 + 1):
                bucket = self._buckets.get((cx, cy))
                if not bucket:
                    continue
                for i in bucket:
                    p = self._points[i]
                    dx = p.x - center.x
                    dy = p.y - center.y
                    if dx * dx + dy * dy <= r2:
                        hits.append(i)
        return hits


class Grid:
    """Convenience wrapper pairing a set of aerial locations with a spatial
    hash over their ground projections.

    Used to find candidate-location neighbours within the UAV-to-UAV range
    (same altitude, so the 3-D distance equals the ground distance).
    """

    def __init__(self, locations: Sequence[Point3D], cell_size: float) -> None:
        self._locations = list(locations)
        self._hash = SpatialHash([p.ground() for p in self._locations], cell_size)

    def __len__(self) -> int:
        return len(self._locations)

    def locations(self) -> list:
        return list(self._locations)

    def neighbours_within(self, index: int, radius: float) -> list:
        """Indices of locations within ``radius`` of location ``index``
        (excluding ``index`` itself)."""
        center = self._locations[index].ground()
        return [i for i in self._hash.query_disc(center, radius) if i != index]

    def within_radius(self, center: Point2D, radius: float) -> list:
        return self._hash.query_disc(center, radius)


def pairwise_within(
    points: Iterable[Point3D], radius: float
) -> list:
    """All unordered pairs (i, j), i < j, with Euclidean distance <= radius.

    Small-input helper used in tests as an oracle for the spatial hash.
    """
    pts = list(points)
    out = []
    for i in range(len(pts)):
        for j in range(i + 1, len(pts)):
            if pts[i].distance_to(pts[j]) <= radius:
                out.append((i, j))
    return out
