"""Ground users (Section II-A).

Each user sits at ground coordinates ``(x, y, 0)`` and has a minimum data
rate requirement ``r_min`` (paper example: 2 kbps) that a serving UAV must
meet.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.geometry.point import Point2D, Point3D

DEFAULT_MIN_RATE_BPS = 2_000.0
"""Paper's example minimum data rate requirement (2 kbps)."""


@dataclass(frozen=True, slots=True)
class User:
    """One ground user with a position and a minimum-rate requirement."""

    position: Point3D
    min_rate_bps: float = DEFAULT_MIN_RATE_BPS

    def __post_init__(self) -> None:
        if self.position.z != 0.0:
            raise ValueError(
                f"users are ground nodes (z = 0), got z = {self.position.z}"
            )
        if self.min_rate_bps < 0:
            raise ValueError(
                f"min rate must be non-negative, got {self.min_rate_bps}"
            )

    @property
    def ground(self) -> Point2D:
        return self.position.ground()


def users_from_points(
    points: "Iterable[Point2D] | Sequence",
    min_rate_bps: float = DEFAULT_MIN_RATE_BPS,
) -> list:
    """Lift ground points (Point2D or (x, y) pairs) into :class:`User`\\ s."""
    users = []
    for p in points:
        if isinstance(p, Point2D):
            x, y = p.x, p.y
        else:
            x, y = p
        users.append(User(Point3D(float(x), float(y), 0.0), min_rate_bps))
    return users
