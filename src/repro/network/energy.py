"""Energy / endurance model (extension beyond the paper, see DESIGN.md).

The paper motivates heterogeneity partly through battery capacities but
never uses them; this module turns each UAV's battery into a mission
endurance estimate so deployments can be checked against the mission
duration (e.g. rotating fleets through the 72 golden hours).

Hover power uses the standard momentum-theory induced-power formula

    P_hover = (m g)^(3/2) / sqrt(2 rho A) / eta

(m = all-up mass, A = total rotor disk area, rho = air density, eta =
propulsive efficiency), plus the base-station payload power: the radio PA
(transmit power over PA efficiency) and a constant compute/avionics draw.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.network.deployment import Deployment
from repro.network.uav import UAV

GRAVITY = 9.81
AIR_DENSITY = 1.225  # kg/m^3 at sea level


def dbm_to_watts(dbm: float) -> float:
    """Convert dBm to watts: 30 dBm = 1 W."""
    return 10.0 ** ((dbm - 30.0) / 10.0)


@dataclass(frozen=True, slots=True)
class EnergyModel:
    """Physical parameters for endurance estimation.

    Defaults approximate a quadrotor in the Matrice 300 class carrying a
    lightweight LTE base station.
    """

    airframe_mass_kg: float = 6.3
    payload_mass_kg: float = 2.5
    rotor_disk_area_m2: float = 1.13   # four ~0.6 m props
    propulsive_efficiency: float = 0.70
    pa_efficiency: float = 0.30        # radio power amplifier
    avionics_power_w: float = 25.0     # SkyCore compute + sensors

    def __post_init__(self) -> None:
        if self.airframe_mass_kg <= 0 or self.payload_mass_kg < 0:
            raise ValueError("masses must be positive (payload >= 0)")
        if self.rotor_disk_area_m2 <= 0:
            raise ValueError("rotor disk area must be positive")
        if not (0 < self.propulsive_efficiency <= 1):
            raise ValueError("propulsive efficiency must be in (0, 1]")
        if not (0 < self.pa_efficiency <= 1):
            raise ValueError("PA efficiency must be in (0, 1]")
        if self.avionics_power_w < 0:
            raise ValueError("avionics power must be non-negative")

    @property
    def total_mass_kg(self) -> float:
        return self.airframe_mass_kg + self.payload_mass_kg

    def hover_power_w(self) -> float:
        """Induced hover power for the all-up mass."""
        thrust = self.total_mass_kg * GRAVITY
        ideal = thrust ** 1.5 / math.sqrt(2.0 * AIR_DENSITY * self.rotor_disk_area_m2)
        return ideal / self.propulsive_efficiency

    def radio_power_w(self, uav: UAV) -> float:
        """DC power of the base-station radio at full transmit power."""
        return dbm_to_watts(uav.tx_power_dbm) / self.pa_efficiency

    def total_power_w(self, uav: UAV) -> float:
        return self.hover_power_w() + self.radio_power_w(uav) + self.avionics_power_w

    def endurance_s(self, uav: UAV) -> float:
        """Hover endurance of one UAV in seconds."""
        return uav.battery_wh * 3600.0 / self.total_power_w(uav)


def fleet_endurance_s(
    fleet: list, deployment: Deployment, model: "EnergyModel | None" = None
) -> dict:
    """Per-deployed-UAV endurance in seconds."""
    model = model if model is not None else EnergyModel()
    return {k: model.endurance_s(fleet[k]) for k in deployment.placements}


def mission_endurance_s(
    fleet: list, deployment: Deployment, model: "EnergyModel | None" = None
) -> float:
    """Endurance of the *network*: the first UAV to land breaks either
    coverage or connectivity, so the mission endurance is the minimum.

    Returns ``inf`` for an empty deployment (nothing to keep aloft).
    """
    per_uav = fleet_endurance_s(fleet, deployment, model)
    if not per_uav:
        return math.inf
    return min(per_uav.values())
