"""Channel allocation across the UAV network (extension).

The interference audit (:mod:`repro.channel.interference`) shows what
reuse-1 operation costs; the practical mitigation is to give mutually
interfering UAVs different channels.  This module colours the deployment's
"interference graph" — UAVs whose cells are close enough that their
downlinks meaningfully couple — with a greedy Welsh-Powell colouring
(largest degree first), written from scratch.

The resulting channel map plugs back into the audit: only same-channel
UAVs interfere, so a handful of channels recovers near-SNR link quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment


def interference_graph(
    problem: ProblemInstance,
    deployment: Deployment,
    coupling_range_m: "float | None" = None,
) -> dict:
    """Adjacency (uav -> set of uavs) of meaningfully coupled stations.

    Two deployed UAVs couple when their hovering locations are within
    ``coupling_range_m`` (default: twice the largest user radius — beyond
    that, an interferer is farther from any victim user than twice the
    serving distance and its contribution is marginal).
    """
    if coupling_range_m is None:
        radii = [problem.fleet[k].user_range_m for k in deployment.placements]
        coupling_range_m = 2.0 * max(radii, default=0.0)
    if coupling_range_m < 0:
        raise ValueError("coupling range must be non-negative")
    graph = problem.graph
    uavs = sorted(deployment.placements)
    adjacency: dict = {k: set() for k in uavs}
    for i, a in enumerate(uavs):
        loc_a = graph.locations[deployment.placements[a]]
        for b in uavs[i + 1:]:
            loc_b = graph.locations[deployment.placements[b]]
            if loc_a.distance_to(loc_b) <= coupling_range_m:
                adjacency[a].add(b)
                adjacency[b].add(a)
    return adjacency


@dataclass
class ChannelPlan:
    """A frequency plan for the deployment."""

    channels: dict = field(default_factory=dict)  # uav -> channel id (0-based)
    num_channels: int = 0

    def co_channel(self, a: int, b: int) -> bool:
        return self.channels.get(a) == self.channels.get(b)


def allocate_channels(
    problem: ProblemInstance,
    deployment: Deployment,
    coupling_range_m: "float | None" = None,
    max_channels: "int | None" = None,
) -> ChannelPlan:
    """Welsh-Powell greedy colouring of the interference graph.

    Guaranteed to use at most ``max_degree + 1`` channels.  If
    ``max_channels`` is given and the greedy needs more, a ``ValueError``
    is raised (the operator must accept co-channel operation or thin the
    deployment).
    """
    adjacency = interference_graph(problem, deployment, coupling_range_m)
    order = sorted(adjacency, key=lambda k: (-len(adjacency[k]), k))
    channels: dict = {}
    for k in order:
        used = {channels[n] for n in adjacency[k] if n in channels}
        channel = 0
        while channel in used:
            channel += 1
        if max_channels is not None and channel >= max_channels:
            raise ValueError(
                f"greedy colouring needs more than {max_channels} channels "
                f"(UAV {k} has {len(used)} coloured neighbours)"
            )
        channels[k] = channel
    return ChannelPlan(
        channels=channels,
        num_channels=(max(channels.values()) + 1) if channels else 0,
    )
