"""Fleet builders for heterogeneous and homogeneous UAV fleets.

The evaluation (Section IV-A) draws each UAV's service capacity uniformly
from ``[C_min, C_max] = [50, 300]``.  We additionally scale transmission
power mildly with capacity — a stronger base station is the *reason* a UAV
can serve more users — which keeps the model self-consistent without
changing the experiment (user radii stay the paper's fixed ``R_user``).
"""

from __future__ import annotations

import numpy as np

from repro.network.uav import MATRICE_300, MATRICE_600, UAV, UAVModel
from repro.util.rng import ensure_rng


def heterogeneous_fleet(
    count: int,
    capacity_min: int = 50,
    capacity_max: int = 300,
    user_range_m: float = 500.0,
    heterogeneous_ranges: bool = False,
    seed: "int | np.random.Generator | None" = None,
) -> list:
    """Fleet of ``count`` UAVs with capacities uniform in
    ``[capacity_min, capacity_max]`` (inclusive), per Section IV-A.

    With ``heterogeneous_ranges`` the coverage radii ``R_user^k`` also
    differ per UAV (Section II-B allows this: different transmit powers
    and antenna gains give different radii): a UAV's radius scales from
    80% of ``user_range_m`` for the weakest base station up to 100% for
    the strongest.  The paper's evaluation uses a single radius, so this
    is off by default.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if not (0 <= capacity_min <= capacity_max):
        raise ValueError(
            "need 0 <= capacity_min <= capacity_max, got "
            f"[{capacity_min}, {capacity_max}]"
        )
    rng = ensure_rng(seed)
    capacities = rng.integers(capacity_min, capacity_max + 1, size=count)
    fleet = []
    span = max(1, capacity_max - capacity_min)
    for k, cap in enumerate(capacities):
        strength = (int(cap) - capacity_min) / span
        radius = (
            user_range_m * (0.8 + 0.2 * strength)
            if heterogeneous_ranges
            else user_range_m
        )
        fleet.append(
            UAV(
                capacity=int(cap),
                tx_power_dbm=34.0 + 4.0 * strength,
                antenna_gain_db=3.0 + 2.0 * strength,
                user_range_m=radius,
                battery_wh=274.0 + 326.0 * strength,
                name=f"uav-{k}",
            )
        )
    return fleet


def homogeneous_fleet(
    count: int, capacity: int = 175, user_range_m: float = 500.0
) -> list:
    """Fleet of identical UAVs (what the baselines were designed for)."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [
        UAV(capacity=capacity, user_range_m=user_range_m, name=f"uav-{k}")
        for k in range(count)
    ]


def fleet_from_models(
    counts: "dict[str, int] | None" = None,
    seed: "int | np.random.Generator | None" = None,
) -> list:
    """Fleet mixing the paper's motivating hardware models.

    ``counts`` maps model name ("M600"/"M300") to the number of that model;
    defaults to one M600 and three M300 (the Fig. 1 scenario).
    """
    models: dict = {m.name: m for m in (MATRICE_600, MATRICE_300)}
    if counts is None:
        counts = {"M600": 1, "M300": 3}
    rng = ensure_rng(seed)
    fleet = []
    k = 0
    for name, count in counts.items():
        if name not in models:
            known = ", ".join(sorted(models))
            raise KeyError(f"unknown UAV model {name!r}; known: {known}")
        if count < 0:
            raise ValueError(f"count for {name!r} must be non-negative")
        model: UAVModel = models[name]
        lo, hi = model.capacity_range
        for _ in range(count):
            fleet.append(
                UAV(
                    capacity=int(rng.integers(lo, hi + 1)),
                    tx_power_dbm=model.tx_power_dbm,
                    antenna_gain_db=model.antenna_gain_db,
                    user_range_m=model.user_range_m,
                    battery_wh=model.battery_wh,
                    name=f"{model.name.lower()}-{k}",
                )
            )
            k += 1
    return fleet
