"""Heterogeneous UAV model (Section II-A).

A UAV carries an LTE/WiFi base station; its payload and battery determine
the station's computing power, so different UAVs have different service
capacities ``C_k``, transmission powers ``P_t^k``, antenna gains ``g_t^k``
and user communication radii ``R_user^k``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class UAV:
    """One UAV-mounted aerial base station.

    Parameters
    ----------
    capacity:
        Service capacity ``C_k``: maximum number of simultaneously served
        users (paper example: 50..300).
    tx_power_dbm:
        Base-station transmission power ``P_t^k`` in dBm.
    antenna_gain_db:
        Antenna gain ``g_t^k`` in dB.
    user_range_m:
        Communication coverage radius ``R_user^k`` in metres; a user can be
        served only within this Euclidean distance of the hovering UAV.
    battery_wh:
        Battery capacity in watt-hours (informational; heterogeneity in
        endurance, not used by the coverage objective).
    name:
        Human-readable model tag, e.g. "M600" / "M300".
    """

    capacity: int
    tx_power_dbm: float = 36.0
    antenna_gain_db: float = 3.0
    user_range_m: float = 500.0
    battery_wh: float = 500.0
    name: str = "uav"

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {self.capacity}")
        if self.user_range_m <= 0:
            raise ValueError(
                f"user range must be positive, got {self.user_range_m}"
            )
        if self.battery_wh <= 0:
            raise ValueError(f"battery must be positive, got {self.battery_wh}")


@dataclass(frozen=True, slots=True)
class UAVModel:
    """A purchasable UAV model used by fleet builders.

    Mirrors the paper's motivating hardware: DJI Matrice 600 RTK (larger
    payload, stronger base station) vs DJI Matrice 300 RTK.
    """

    name: str
    max_payload_kg: float
    capacity_range: tuple
    tx_power_dbm: float
    antenna_gain_db: float
    user_range_m: float
    battery_wh: float


MATRICE_600 = UAVModel(
    name="M600",
    max_payload_kg=5.5,
    capacity_range=(200, 300),
    tx_power_dbm=38.0,
    antenna_gain_db=5.0,
    user_range_m=500.0,
    battery_wh=600.0,
)

MATRICE_300 = UAVModel(
    name="M300",
    max_payload_kg=2.7,
    capacity_range=(50, 200),
    tx_power_dbm=34.0,
    antenna_gain_db=3.0,
    user_range_m=500.0,
    battery_wh=274.0,
)
