"""Network model: heterogeneous UAVs, ground users, the coverage graph
``G = (U ∪ V, E)`` of Section II-C, and deployment objects with an
independent feasibility validator.
"""

from repro.network.coverage import CoverageGraph
from repro.network.deployment import Deployment
from repro.network.energy import EnergyModel, mission_endurance_s
from repro.network.fleet import heterogeneous_fleet, homogeneous_fleet
from repro.network.uav import UAV
from repro.network.users import User, users_from_points
from repro.network.validate import ValidationError, validate_deployment

__all__ = [
    "CoverageGraph",
    "Deployment",
    "EnergyModel",
    "mission_endurance_s",
    "heterogeneous_fleet",
    "homogeneous_fleet",
    "UAV",
    "User",
    "users_from_points",
    "ValidationError",
    "validate_deployment",
]
