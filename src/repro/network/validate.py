"""Independent feasibility validation of deployments (Section II-C's
constraints (i)-(iii)).

Every algorithm's output in this library — the proposed approximation and
all baselines — is run through :func:`validate_deployment` in tests; it
re-derives feasibility from first principles (distances, rates, capacities,
connectivity) without trusting any cached structure the algorithms used.
"""

from __future__ import annotations

import math

import numpy as np

from repro.network.coverage import CoverageGraph
from repro.network.deployment import CellDeployment, Deployment


class ValidationError(AssertionError):
    """A deployment violates one of the problem's constraints."""


def validate_deployment(
    graph: CoverageGraph,
    fleet: list,
    deployment: Deployment,
    require_connected: bool = True,
) -> None:
    """Raise :class:`ValidationError` on any constraint violation.

    Checks, in order: UAV and location indices are valid; at most one UAV
    per location (enforced structurally by :class:`Deployment`); per-UAV
    loads within capacity; every served user is within its UAV's coverage
    radius with an adequate rate; and (optionally) the deployed locations
    induce a connected UAV-to-UAV graph.
    """
    for k, loc in deployment.placements.items():
        if not (0 <= k < len(fleet)):
            raise ValidationError(f"UAV index {k} outside fleet of {len(fleet)}")
        if not (0 <= loc < graph.num_locations):
            raise ValidationError(
                f"location index {loc} outside [0, {graph.num_locations})"
            )

    # Deployment.__post_init__ rejects assignments to undeployed UAVs, but
    # placements/assignment are plain (mutable) dicts; a corrupted
    # deployment must fail validation, not raise a bare KeyError below
    # (loads() and the per-user checks both index placements/fleet).
    for user, k in deployment.assignment.items():
        if k not in deployment.placements:
            raise ValidationError(
                f"user {user} is assigned to UAV {k}, which has no "
                "placement in this deployment"
            )
        if not (0 <= k < len(fleet)):
            raise ValidationError(
                f"user {user} is assigned to UAV {k} outside fleet of "
                f"{len(fleet)}"
            )

    loads = deployment.loads()
    for k, load in loads.items():
        capacity = fleet[k].capacity
        if load > capacity:
            raise ValidationError(
                f"UAV {k} serves {load} users, exceeding capacity {capacity}"
            )

    for user, k in deployment.assignment.items():
        if not (0 <= user < graph.num_users):
            raise ValidationError(
                f"user index {user} outside [0, {graph.num_users})"
            )
        uav = fleet[k]
        loc_index = deployment.placements[k]
        distance = graph.users[user].position.distance_to(
            graph.locations[loc_index]
        )
        if distance > uav.user_range_m + 1e-9:
            raise ValidationError(
                f"user {user} is {distance:.1f} m from UAV {k}, beyond its "
                f"range {uav.user_range_m} m"
            )
        rate = graph.rate_bps(user, loc_index, uav)
        required = graph.users[user].min_rate_bps
        if rate < required - 1e-9:
            raise ValidationError(
                f"user {user} gets {rate:.0f} bps from UAV {k}, below its "
                f"requirement {required:.0f} bps"
            )

    if require_connected and deployment.num_deployed > 1:
        locs = deployment.locations_used()
        if not graph.locations_connected(locs):
            raise ValidationError(
                f"deployed locations {locs} do not induce a connected "
                "UAV network"
            )


def validate_cell_deployment(
    graph,
    fleet: list,
    deployment: CellDeployment,
    require_connected: bool = True,
) -> None:
    """Feasibility of a demand-cell deployment, from first principles.

    Mirrors :func:`validate_deployment` over the aggregated constraints:
    indices valid; per-UAV unit loads within capacity; per-cell served
    units within demand; every flow arc's cell provably coverable — the
    *padded* distance/rate test, so every member of a served cell is in
    range with an adequate rate; and (optionally) connectivity.
    ``graph`` must be a cell graph
    (:class:`repro.workload.aggregate.CellCoverageGraph`).
    """
    for k, loc in deployment.placements.items():
        if not (0 <= k < len(fleet)):
            raise ValidationError(f"UAV index {k} outside fleet of {len(fleet)}")
        if not (0 <= loc < graph.num_locations):
            raise ValidationError(
                f"location index {loc} outside [0, {graph.num_locations})"
            )

    num_cells = len(graph.cells)
    for (c, k), units in deployment.flows.items():
        if not (0 <= c < num_cells):
            raise ValidationError(
                f"cell index {c} outside [0, {num_cells})"
            )
        if k not in deployment.placements:
            raise ValidationError(
                f"cell {c} sends {units} unit(s) to UAV {k}, which has no "
                "placement in this deployment"
            )

    loads = deployment.loads()
    for k, load in loads.items():
        capacity = fleet[k].capacity
        if load > capacity:
            raise ValidationError(
                f"UAV {k} serves {load} units, exceeding capacity {capacity}"
            )

    for c, total in deployment.cell_totals().items():
        demand = graph.cells[c].demand
        if total > demand:
            raise ValidationError(
                f"cell {c} serves {total} units, exceeding its demand "
                f"{demand} (double-counted members)"
            )

    for (c, k), _units in deployment.flows.items():
        cell = graph.cells[c]
        uav = fleet[k]
        loc = graph.locations[deployment.placements[k]]
        # Padded test: the worst-placed member sits at most radius_m
        # beyond the centroid, so pad the ground distance by it.
        horiz = math.hypot(cell.x - loc.x, cell.y - loc.y) + cell.radius_m
        dist3 = math.hypot(horiz, loc.z)
        if dist3 > uav.user_range_m + 1e-9:
            raise ValidationError(
                f"cell {c} (padded) is {dist3:.1f} m from UAV {k}, beyond "
                f"its range {uav.user_range_m} m"
            )
        pl = float(
            np.asarray(
                graph.channel.pathloss_vector_db(np.array([horiz]), loc.z)
            ).ravel()[0]
        )
        snr_db = uav.tx_power_dbm + uav.antenna_gain_db - pl - graph.noise_dbm
        rate = graph.bandwidth_hz * math.log2(1.0 + 10.0 ** (snr_db / 10.0))
        if rate < cell.min_rate_bps - 1e-9:
            raise ValidationError(
                f"cell {c} gets {rate:.0f} bps (padded) from UAV {k}, below "
                f"its requirement {cell.min_rate_bps:.0f} bps"
            )

    if require_connected and deployment.num_deployed > 1:
        locs = deployment.locations_used()
        if not graph.locations_connected(locs):
            raise ValidationError(
                f"deployed locations {locs} do not induce a connected "
                "UAV network"
            )


def is_feasible(
    graph: CoverageGraph,
    fleet: list,
    deployment: Deployment,
    require_connected: bool = True,
) -> bool:
    """Boolean wrapper around :func:`validate_deployment`."""
    try:
        validate_deployment(graph, fleet, deployment, require_connected)
    except ValidationError:
        return False
    return True
