"""Deployment resilience analysis (extension; motivated by the paper's
disaster setting — a UAV can fail, run out of battery, or be recalled, and
"the data from the users served by one UAV may need to be sent to the
users served by another UAV", so connectivity losses are service losses).

For a deployment this module reports, per single-UAV failure:

* whether the failure splits the remaining UAV network (the failed UAV's
  location is a cut vertex / articulation point of the induced subgraph),
* how many users remain served afterwards, assuming the operator keeps
  only the largest connected remnant online and re-assigns users optimally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import optimal_assignment
from repro.core.problem import ProblemInstance
from repro.graphs.adjacency import Graph
from repro.network.deployment import Deployment


def articulation_points(graph: Graph, nodes: list) -> set:
    """Articulation points of the subgraph induced by ``nodes``.

    Iterative Tarjan low-link computation (no recursion: deployments can
    be long chains).  Returns original node ids whose removal increases
    the number of connected components among the remaining nodes.
    """
    node_set = set(nodes)
    index = {v: i for i, v in enumerate(sorted(node_set))}
    n = len(index)
    adj: list = [[] for _ in range(n)]
    for v in node_set:
        for w in graph.neighbours(v):
            if w in node_set:
                adj[index[v]].append(index[w])

    disc = [-1] * n
    low = [0] * n
    parent = [-1] * n
    is_cut = [False] * n
    timer = 0
    for root in range(n):
        if disc[root] != -1:
            continue
        root_children = 0
        stack = [(root, 0)]
        disc[root] = low[root] = timer
        timer += 1
        while stack:
            v, edge_idx = stack[-1]
            if edge_idx < len(adj[v]):
                stack[-1] = (v, edge_idx + 1)
                w = adj[v][edge_idx]
                if disc[w] == -1:
                    parent[w] = v
                    if v == root:
                        root_children += 1
                    disc[w] = low[w] = timer
                    timer += 1
                    stack.append((w, 0))
                elif w != parent[v]:
                    low[v] = min(low[v], disc[w])
            else:
                stack.pop()
                p = parent[v]
                if p != -1:
                    low[p] = min(low[p], low[v])
                    if p != root and low[v] >= disc[p]:
                        is_cut[p] = True
        if root_children > 1:
            is_cut[root] = True

    reverse = {i: v for v, i in index.items()}
    return {reverse[i] for i in range(n) if is_cut[i]}


@dataclass(frozen=True)
class FailureImpact:
    """Impact of one UAV failing."""

    uav_index: int
    location: int
    splits_network: bool
    surviving_uavs: int       # UAVs still online (largest remnant)
    served_after: int
    served_lost: int


def _largest_remnant(graph: Graph, nodes: list) -> list:
    """Largest connected component among ``nodes`` in ``graph``."""
    remaining = set(nodes)
    best: list = []
    seen: set = set()
    for start in sorted(remaining):
        if start in seen:
            continue
        component = [start]
        seen.add(start)
        queue = [start]
        while queue:
            v = queue.pop()
            for w in graph.neighbours(v):
                if w in remaining and w not in seen:
                    seen.add(w)
                    component.append(w)
                    queue.append(w)
        if len(component) > len(best):
            best = component
    return best


def single_failure_impacts(
    problem: ProblemInstance, deployment: Deployment
) -> list:
    """Impact of each single-UAV failure, sorted by users lost (worst
    first).  The operator policy modelled: the largest connected remnant
    stays online; stranded UAVs (disconnected from it) stop serving."""
    graph = problem.graph
    base_served = optimal_assignment(
        graph, problem.fleet, deployment.placements
    ).served_count
    location_graph = graph.location_graph
    locations = deployment.locations_used()
    cuts = articulation_points(location_graph, locations)

    impacts = []
    for failed_uav, failed_loc in sorted(deployment.placements.items()):
        rest = [loc for loc in locations if loc != failed_loc]
        remnant = set(_largest_remnant(location_graph, rest)) if rest else set()
        placements = {
            k: loc
            for k, loc in deployment.placements.items()
            if loc in remnant
        }
        served_after = optimal_assignment(
            graph, problem.fleet, placements
        ).served_count
        impacts.append(
            FailureImpact(
                uav_index=failed_uav,
                location=failed_loc,
                splits_network=failed_loc in cuts,
                surviving_uavs=len(placements),
                served_after=served_after,
                served_lost=base_served - served_after,
            )
        )
    impacts.sort(key=lambda fi: (-fi.served_lost, fi.uav_index))
    return impacts


def worst_single_failure(
    problem: ProblemInstance, deployment: Deployment
) -> "FailureImpact | None":
    """The failure losing the most users, or None for empty deployments."""
    impacts = single_failure_impacts(problem, deployment)
    return impacts[0] if impacts else None


@dataclass
class HardenResult:
    """Outcome of a hardening pass."""

    deployment: Deployment
    added: list          # [(uav_index, location)] redundancy relays added
    cut_vertices_before: int
    cut_vertices_after: int


def harden(
    problem: ProblemInstance,
    deployment: Deployment,
    max_extra: "int | None" = None,
) -> HardenResult:
    """Spend spare (undeployed) UAVs on redundancy relays that bypass
    articulation points.

    Greedy: while the network has a cut vertex and spares remain, remove
    the worst cut vertex conceptually and find the shortest bypass — a
    path through unoccupied locations (never through the cut vertex)
    joining two of the components it leaves behind.  The bypass's
    unoccupied nodes are staffed with spares (largest capacity first), so
    if that UAV fails the pieces stay connected.  Stops when the network
    is biconnected (no cut vertices), spares run out, or no bypass exists
    (e.g. a pure line of candidate locations).

    The final assignment is re-optimised, so hardening can only increase
    served users.
    """
    graph = problem.graph
    adjacency = graph.location_graph
    placements = dict(deployment.placements)
    spares = sorted(
        (k for k in range(problem.num_uavs) if k not in placements),
        key=lambda k: (-problem.fleet[k].capacity, k),
    )
    if max_extra is not None:
        if max_extra < 0:
            raise ValueError(f"max_extra must be non-negative, got {max_extra}")
        spares = spares[:max_extra]

    cuts_before = len(
        articulation_points(adjacency, sorted(set(placements.values())))
    )
    added: list = []
    while spares:
        occupied = sorted(set(placements.values()))
        cuts = articulation_points(adjacency, occupied)
        if not cuts:
            break
        # Worst cut vertex by users lost if it fails.
        tmp = Deployment(placements=placements)
        impacts = single_failure_impacts(problem, tmp)
        worst = next(
            (fi for fi in impacts if fi.location in cuts), None
        )
        if worst is None:
            break
        remaining = [loc for loc in occupied if loc != worst.location]
        components = _components_among(adjacency, remaining)
        bypass = _shortest_bypass(
            adjacency, components, set(occupied), worst.location,
            max_len=len(spares),
        )
        if bypass is None:
            break
        for loc in bypass:
            k = spares.pop(0)
            placements[k] = loc
            added.append((k, loc))

    final = optimal_assignment(graph, problem.fleet, placements)
    cuts_after = len(
        articulation_points(adjacency, sorted(set(placements.values())))
    )
    return HardenResult(
        deployment=final,
        added=added,
        cut_vertices_before=cuts_before,
        cut_vertices_after=cuts_after,
    )


def _shortest_bypass(
    graph: Graph,
    components: list,
    occupied: set,
    cut_vertex: int,
    max_len: int,
) -> "list | None":
    """Shortest list of unoccupied locations whose staffing joins two of
    ``components`` without using ``cut_vertex``.

    BFS from the first component through unoccupied non-cut nodes until
    any other component is reached.  Returns the unoccupied intermediate
    nodes (possibly empty if two components are directly adjacent, which
    cannot happen right after a cut split but is handled for safety), or
    ``None`` if no bypass of length ``<= max_len`` exists.
    """
    if len(components) < 2:
        return None
    component_of = {}
    for ci, comp in enumerate(components):
        for v in comp:
            component_of[v] = ci

    from collections import deque

    # Multi-source BFS from component 0; traverse unoccupied nodes.
    parent: dict = {}
    queue: deque = deque()
    for v in components[0]:
        parent[v] = None
        queue.append(v)
    while queue:
        v = queue.popleft()
        for w in graph.neighbours(v):
            if w == cut_vertex or w in parent:
                continue
            if w in component_of and component_of[w] != 0:
                # Reached another component: walk back collecting the
                # unoccupied intermediates.
                path = []
                node = v
                while node is not None and node not in components[0]:
                    path.append(node)
                    node = parent[node]
                path = [x for x in reversed(path) if x not in occupied]
                return path if len(path) <= max_len else None
            if w in occupied:
                continue  # other occupied nodes outside components: skip
            parent[w] = v
            queue.append(w)
    return None


def _components_among(graph: Graph, nodes: list) -> list:
    """Connected components of the induced subgraph, as sets."""
    remaining = set(nodes)
    components = []
    seen: set = set()
    for start in sorted(remaining):
        if start in seen:
            continue
        comp = {start}
        seen.add(start)
        queue = [start]
        while queue:
            v = queue.pop()
            for w in graph.neighbours(v):
                if w in remaining and w not in seen:
                    seen.add(w)
                    comp.add(w)
                    queue.append(w)
        components.append(comp)
    return components
