"""The coverage graph ``G = (U ∪ V, E)`` of Section II-C.

``U`` is the set of ground users, ``V`` the set of candidate hovering
locations.  Location-location edges exist within the UAV-to-UAV range
``R_uav``; user-location edges exist when the user is within the UAV's
coverage radius ``R_user^k`` *and* its achievable rate meets the user's
minimum requirement.  Because the latter depends on the UAV's radio, the
coverage sets are exposed per (location, UAV) and cached by radio signature.

This object is the single substrate every placement algorithm (approAlg and
all baselines) consumes.
"""

from __future__ import annotations

import numpy as np

from repro.channel.atg import AirToGroundChannel
from repro.channel.constants import DEFAULT_BANDWIDTH_HZ
from repro.channel.link import noise_power_dbm, shannon_rate_bps
from repro.channel.presets import URBAN
from repro.geometry.grid import SpatialHash
from repro.geometry.point import Point3D
from repro.graphs.adjacency import Graph
from repro.graphs.bfs import (
    UNREACHABLE,
    bfs_hops,
    is_connected,
    multi_source_hops,
)
from repro.graphs.steiner import steiner_connect
from repro.network.uav import UAV
from repro.network.users import User
from repro.util.bits import pack_indices, popcount


class CoverageGraph:
    """Users, candidate locations, radio model and all derived structure."""

    def __init__(
        self,
        users: list,
        locations: list,
        uav_range_m: float,
        channel: "AirToGroundChannel | None" = None,
        bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ,
        noise_figure_db: float = 7.0,
    ) -> None:
        if uav_range_m <= 0:
            raise ValueError(f"UAV range must be positive, got {uav_range_m}")
        for loc in locations:
            if loc.z <= 0:
                raise ValueError(
                    f"hovering locations must be airborne (z > 0), got {loc}"
                )
        self.locations: list = list(locations)
        self.uav_range_m = uav_range_m
        self.channel = channel if channel is not None else AirToGroundChannel(URBAN)
        self.bandwidth_hz = bandwidth_hz
        self.noise_dbm = noise_power_dbm(bandwidth_hz, noise_figure_db)

        self._install_users(users)

        self.location_graph = self._build_location_graph()
        self._coverage_cache: dict = {}
        self._hop_cache: dict = {}
        self._steiner_cache: dict = {}
        self._hop_matrix: "np.ndarray | None" = None

    # -- construction -------------------------------------------------------

    def _install_users(self, users: list) -> None:
        """Set the user population and its derived arrays/spatial hash."""
        self.users: list = list(users)
        self._user_xy = np.array(
            [[u.position.x, u.position.y] for u in self.users], dtype=float
        ).reshape(len(self.users), 2)
        self._user_min_rate = np.array(
            [u.min_rate_bps for u in self.users], dtype=float
        )
        self._user_hash = SpatialHash(
            [u.ground for u in self.users],
            cell_size=max(self.uav_range_m, 1.0),
        ) if self.users else None

    def _build_location_graph(self) -> Graph:
        graph = Graph(len(self.locations))
        if not self.locations:
            return graph
        loc_hash = SpatialHash(
            [p.ground() for p in self.locations], cell_size=self.uav_range_m
        )
        for j, loc in enumerate(self.locations):
            for k in loc_hash.query_disc(loc.ground(), self.uav_range_m):
                if k > j and self.locations[j].distance_to(self.locations[k]) <= self.uav_range_m:
                    graph.add_edge(j, k)
        return graph

    # -- incremental user updates -------------------------------------------
    #
    # The dynamic mission engine changes *users* every epoch while the
    # candidate locations — and therefore the location graph, the hop
    # matrix and the Steiner memo — stay fixed.  These methods update only
    # the user-dependent half of the structure, so an epoch re-solve skips
    # the one-BFS-per-location hop rebuild entirely.

    def replace_users(self, users: list) -> None:
        """Swap the user population in place.

        Invalidates only the user-dependent coverage cache; the location
        graph, hop matrix, hop cache and Steiner memo are untouched (they
        depend on locations alone).
        """
        self._install_users(users)
        self._coverage_cache = {}

    def move_users(self, xy: np.ndarray) -> None:
        """Move the existing users to new ground coordinates.

        ``xy`` is an ``(n, 2)`` array aligned with ``self.users``; each
        user keeps its minimum-rate requirement.  Equivalent to
        :meth:`replace_users` with rebuilt :class:`User` objects.
        """
        xy = np.asarray(xy, dtype=float)
        if xy.shape != (len(self.users), 2):
            raise ValueError(
                f"xy shape {xy.shape} != ({len(self.users)}, 2)"
            )
        moved = [
            type(u)(
                position=type(u.position)(float(x), float(y), 0.0),
                min_rate_bps=u.min_rate_bps,
            )
            for u, (x, y) in zip(self.users, xy)
        ]
        self.replace_users(moved)

    def with_users(self, users: list) -> "CoverageGraph":
        """A new graph over the same locations but a different user set.

        Location-derived structure (location graph, hop cache/matrix,
        Steiner memo) is *shared by reference* with ``self`` — it is
        deterministic in the locations, which are identical — so the clone
        costs only the user-side arrays.  The coverage cache starts empty.
        """
        clone = object.__new__(type(self))
        clone.locations = self.locations
        clone.uav_range_m = self.uav_range_m
        clone.channel = self.channel
        clone.bandwidth_hz = self.bandwidth_hz
        clone.noise_dbm = self.noise_dbm
        clone.location_graph = self.location_graph
        clone._hop_cache = self._hop_cache
        clone._steiner_cache = self._steiner_cache
        clone._hop_matrix = self._hop_matrix
        clone._coverage_cache = {}
        clone._install_users(users)
        return clone

    # -- sizes ---------------------------------------------------------------

    @property
    def num_users(self) -> int:
        return len(self.users)

    @property
    def num_locations(self) -> int:
        return len(self.locations)

    # -- link evaluation -----------------------------------------------------

    def rate_bps(self, user_index: int, loc_index: int, uav: UAV) -> float:
        """Exact achievable rate of one user from a UAV at one location."""
        user: User = self.users[user_index]
        loc: Point3D = self.locations[loc_index]
        pl = self.channel.pathloss_db(user.position, loc)
        snr = 10.0 ** (
            (uav.tx_power_dbm + uav.antenna_gain_db - pl - self.noise_dbm) / 10.0
        )
        return shannon_rate_bps(snr, self.bandwidth_hz)

    def _radio_key(self, uav: UAV) -> tuple:
        return (uav.user_range_m, uav.tx_power_dbm, uav.antenna_gain_db)

    def radio_signature(self, uav: UAV) -> tuple:
        """The (range, power, gain) tuple identifying a UAV's radio; all
        coverage caches are keyed by it, so UAVs sharing a signature share
        coverage sets."""
        return self._radio_key(uav)

    def coverable_users(self, loc_index: int, uav: UAV) -> list:
        """Users the given UAV could serve from ``loc_index``: within
        ``R_user^k`` and with rate >= their minimum requirement.  Cached per
        (location, radio signature)."""
        key = (loc_index, self._radio_key(uav))
        cached = self._coverage_cache.get(key)
        if cached is not None:
            return cached
        loc: Point3D = self.locations[loc_index]
        if self._user_hash is None:
            self._coverage_cache[key] = []
            return []
        # Range pre-filter on ground projection, then exact 3-D distance and
        # rate check, vectorised over the candidate users.
        max_ground = uav.user_range_m  # 3-D range implies ground range <= it
        candidates = self._user_hash.query_disc(loc.ground(), max_ground)
        if not candidates:
            self._coverage_cache[key] = []
            return []
        idx = np.array(sorted(candidates), dtype=int)
        dx = self._user_xy[idx, 0] - loc.x
        dy = self._user_xy[idx, 1] - loc.y
        horiz = np.hypot(dx, dy)
        dist3 = np.hypot(horiz, loc.z)
        in_range = dist3 <= uav.user_range_m
        idx = idx[in_range]
        if idx.size == 0:
            self._coverage_cache[key] = []
            return []
        horiz = horiz[in_range]
        pl = self.channel.pathloss_vector_db(horiz, loc.z)
        snr_db_arr = uav.tx_power_dbm + uav.antenna_gain_db - pl - self.noise_dbm
        rates = self.bandwidth_hz * np.log2(1.0 + 10.0 ** (snr_db_arr / 10.0))
        ok = rates >= self._user_min_rate[idx]
        covered = [int(i) for i in idx[ok]]
        self._coverage_cache[key] = covered
        return covered

    def coverable_array(self, loc_index: int, uav: UAV):
        """:meth:`coverable_users` as a cached numpy int array (used by the
        vectorised gain bounds in the greedy)."""
        key = (loc_index, self._radio_key(uav), "np")
        cached = self._coverage_cache.get(key)
        if cached is None:
            cached = np.asarray(
                self.coverable_users(loc_index, uav), dtype=np.int64
            )
            self._coverage_cache[key] = cached
        return cached

    def coverable_bits(self, loc_index: int, uav: UAV) -> np.ndarray:
        """:meth:`coverable_users` as a packed ``uint8`` bitset (one bit per
        user, :func:`numpy.packbits` layout).  Cached per (location, radio
        signature); the substrate of the vectorised popcount bounds in
        :class:`repro.core.context.SolverContext`."""
        key = (loc_index, self._radio_key(uav), "bits")
        cached = self._coverage_cache.get(key)
        if cached is None:
            cached = pack_indices(
                self.coverable_array(loc_index, uav), self.num_users
            )
            self._coverage_cache[key] = cached
        return cached

    #: Whether :meth:`coverage_bits_matrix` may use the batched all-
    #: locations mask.  Subclasses that redefine membership (e.g. the
    #: demand-cell graph's padded-radius test) set this False and fall
    #: back to stacking their own :meth:`coverable_bits` rows.
    _BATCHED_COVERAGE = True

    # The batched mask materialises (m, n) float temporaries; beyond this
    # many cells (~hundreds of MB) the matrix form is a memory hazard and
    # the bits build falls back to the per-location path.
    _MASK_CHUNK_CELLS = 8_000_000

    def _geometry(self) -> tuple:
        """Radio-independent ``(m, n)`` geometry shared by every radio's
        batched mask: 3-D user distances and expected pathloss, computed
        once per user population (grouped by altitude so the vectorised
        pathloss sees a scalar ``z``) and cached until the users change."""
        cached = self._coverage_cache.get(("geometry",))
        if cached is not None:
            return cached
        m, n = self.num_locations, self.num_users
        dist3 = np.zeros((m, n), dtype=float)
        pl = np.zeros((m, n), dtype=float)
        loc_xy = np.array(
            [[p.x, p.y] for p in self.locations], dtype=float
        ).reshape(m, 2)
        loc_z = np.array([p.z for p in self.locations], dtype=float)
        for z in np.unique(loc_z):
            sel = np.flatnonzero(loc_z == z)
            dx = loc_xy[sel, 0][:, None] - self._user_xy[None, :, 0]
            dy = loc_xy[sel, 1][:, None] - self._user_xy[None, :, 1]
            horiz = np.hypot(dx, dy)
            dist3[sel] = np.hypot(horiz, z)
            pl[sel] = self.channel.pathloss_vector_db(horiz, z)
        cached = (dist3, pl)
        self._coverage_cache[("geometry",)] = cached
        return cached

    def _coverage_mask(self, uav: UAV) -> np.ndarray:
        """Boolean ``(m, n)`` coverage membership under one radio.

        Applies the radio's range and rate tests to the shared
        :meth:`_geometry` arrays.  Elementwise ops only — values are
        bit-identical to the per-location :meth:`coverable_users` path."""
        m, n = self.num_locations, self.num_users
        if m == 0 or n == 0:
            return np.zeros((m, n), dtype=bool)
        dist3, pl = self._geometry()
        snr_db = (
            uav.tx_power_dbm + uav.antenna_gain_db - pl - self.noise_dbm
        )
        rates = self.bandwidth_hz * np.log2(1.0 + 10.0 ** (snr_db / 10.0))
        return (dist3 <= uav.user_range_m) & (
            rates >= self._user_min_rate[None, :]
        )

    def coverage_bits_matrix(self, uav: UAV) -> np.ndarray:
        """Packed ``(m, words)`` coverage bitsets for *all* locations under
        one radio — the batched form of :meth:`coverable_bits`, cached per
        radio signature and used by
        :meth:`repro.core.context.SolverContext._build` so a context build
        costs one vectorised pass instead of one numpy call per location.
        Seeds the per-location caches as a side effect, keeping later
        scalar lookups cache hits with identical values."""
        radio = self._radio_key(uav)
        key = ("matrix", radio)
        cached = self._coverage_cache.get(key)
        if cached is not None:
            return cached
        batched = (
            self._BATCHED_COVERAGE
            and self.num_locations * self.num_users <= self._MASK_CHUNK_CELLS
        )
        if not batched:
            words = np.packbits(np.zeros(self.num_users, dtype=bool)).size
            bits = np.zeros((self.num_locations, words), dtype=np.uint8)
            for v in range(self.num_locations):
                bits[v, :] = self.coverable_bits(v, uav)
            self._coverage_cache[key] = bits
            return bits
        mask = self._coverage_mask(uav)
        bits = np.packbits(mask, axis=1) if self.num_users else np.zeros(
            (self.num_locations, 0), dtype=np.uint8
        )
        for v in range(self.num_locations):
            self._coverage_cache.setdefault(
                (v, radio), np.flatnonzero(mask[v]).tolist()
            )
            self._coverage_cache.setdefault((v, radio, "bits"), bits[v])
        self._coverage_cache[key] = bits
        return bits

    def union_coverage_count(self, loc_indices: list, uav: UAV) -> int:
        """Number of distinct users coverable from any of ``loc_indices``
        with the given UAV's radio (vectorised bitset union + popcount)."""
        acc: "np.ndarray | None" = None
        for v in loc_indices:
            bits = self.coverable_bits(v, uav)
            acc = bits.copy() if acc is None else np.bitwise_or(acc, bits)
        return 0 if acc is None else popcount(acc)

    def coverage_count(self, loc_index: int, uav: UAV) -> int:
        return len(self.coverable_users(loc_index, uav))

    def coverage_weight(self, loc_index: int, uav: UAV) -> int:
        """Demand-weighted coverage — the unit the greedy's static gains
        are measured in.  Per-user graphs have unit demand everywhere, so
        this equals :meth:`coverage_count`; demand-cell graphs
        (:class:`repro.workload.aggregate.CellCoverageGraph`) override it
        with the coverable cells' total member count."""
        return self.coverage_count(loc_index, uav)

    def warm_coverage(self, loc_index: int, radio_key: tuple,
                      covered: list) -> None:
        """Seed the coverage cache with a precomputed sorted user list (used
        by :meth:`repro.core.context.SolverContext.install_into` so worker
        processes skip the geometric/rate computation entirely)."""
        self._coverage_cache.setdefault((loc_index, radio_key), list(covered))

    # -- hop structure over the location graph -------------------------------

    def hops_from(self, loc_index: int) -> list:
        """BFS hop distances from one location to all locations (cached;
        served from the all-pairs hop matrix when one has been built)."""
        row = self._hop_cache.get(loc_index)
        if row is None:
            if self._hop_matrix is not None:
                row = self._hop_matrix[loc_index].tolist()
            else:
                row = bfs_hops(self.location_graph, loc_index)
            self._hop_cache[loc_index] = row
        return row

    def hop_matrix(self) -> np.ndarray:
        """The all-pairs hop matrix as an ``int16`` array (``UNREACHABLE``
        entries are ``-1``).  Built once via one BFS per location and cached;
        the per-run hot data of the appro_alg engine."""
        if self._hop_matrix is None:
            rows = [self.hops_from(v) for v in range(self.num_locations)]
            self._hop_matrix = np.array(rows, dtype=np.int16).reshape(
                self.num_locations, self.num_locations
            )
        return self._hop_matrix

    def warm_hops(self, matrix: np.ndarray) -> None:
        """Adopt a precomputed all-pairs hop matrix (worker processes get it
        from the shipped :class:`~repro.core.context.SolverContext` instead
        of re-running one BFS per location)."""
        matrix = np.asarray(matrix, dtype=np.int16)
        expected = (self.num_locations, self.num_locations)
        if matrix.shape != expected:
            raise ValueError(
                f"hop matrix shape {matrix.shape} != {expected}"
            )
        self._hop_matrix = matrix

    def hops_between(self, a: int, b: int) -> int:
        """Hop distance between two locations (-1 if disconnected)."""
        return self.hops_from(a)[b]

    def hops_to_set(self, sources: list) -> list:
        """Hop distance from each location to the nearest of ``sources``
        (the ``d_l`` of Section III-C)."""
        return multi_source_hops(self.location_graph, sources)

    def locations_connected(self, loc_indices: list) -> bool:
        """Whether the induced location subgraph is connected."""
        return is_connected(self.location_graph, loc_indices)

    def connect_terminals(self, terminals: list) -> "tuple[set, list]":
        """Section III-E connection step: MST over hop metric, expanded to
        shortest paths.  Returns (node set of G_j, expanded tree edges).
        Hop rows come from the per-instance cache, so repeated calls across
        anchor subsets stop re-running BFS per terminal; whole results are
        additionally memoised per exact terminal sequence — different
        anchor subsets often converge on the same greedy deployment.
        (Keyed by sequence, not set: MST tie-breaks may be order-
        sensitive.)  Callers must treat the returned set/list as
        read-only (they all do: the connect step copies before
        mutating)."""
        key = tuple(terminals)
        cached = self._steiner_cache.get(key)
        if cached is None:
            cached = steiner_connect(
                self.location_graph, terminals, hop_rows=self.hops_from
            )
            self._steiner_cache[key] = cached
        return cached

    def reachable_from(self, loc_index: int) -> list:
        """All locations in the same connected component as ``loc_index``."""
        row = self.hops_from(loc_index)
        return [j for j, d in enumerate(row) if d != UNREACHABLE]
