"""Deployment objects: the output of every placement algorithm.

A deployment pins specific UAVs (by fleet index) to specific candidate
locations and assigns users to UAVs.  It is a plain value object —
feasibility checking lives in :mod:`repro.network.validate` so that tests
can validate algorithm outputs with independent code.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Deployment:
    """A placement of UAVs plus a user assignment.

    Attributes
    ----------
    placements:
        Mapping ``uav_index -> location_index``.  Only deployed UAVs appear.
    assignment:
        Mapping ``user_index -> uav_index``.  Only served users appear; every
        value must be a deployed UAV.
    """

    placements: dict
    assignment: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        location_counts = Counter(self.placements.values())
        clashes = [loc for loc, c in location_counts.items() if c > 1]
        if clashes:
            raise ValueError(
                f"multiple UAVs share hovering location(s) {sorted(clashes)}"
            )
        missing = {
            k for k in self.assignment.values() if k not in self.placements
        }
        if missing:
            raise ValueError(
                f"users assigned to undeployed UAV(s) {sorted(missing)}"
            )

    @property
    def served_count(self) -> int:
        """Number of users served — the paper's objective value."""
        return len(self.assignment)

    @property
    def num_deployed(self) -> int:
        return len(self.placements)

    def locations_used(self) -> list:
        """Sorted list of occupied hovering locations."""
        return sorted(self.placements.values())

    def load_of(self, uav_index: int) -> int:
        """Number of users assigned to one UAV."""
        if uav_index not in self.placements:
            raise KeyError(f"UAV {uav_index} is not deployed")
        return sum(1 for k in self.assignment.values() if k == uav_index)

    def loads(self) -> dict:
        """Mapping uav_index -> assigned user count (zero included)."""
        out = {k: 0 for k in self.placements}
        for k in self.assignment.values():
            out[k] += 1
        return out

    def users_of(self, uav_index: int) -> list:
        """Sorted user indices served by one UAV."""
        if uav_index not in self.placements:
            raise KeyError(f"UAV {uav_index} is not deployed")
        return sorted(u for u, k in self.assignment.items() if k == uav_index)

    @staticmethod
    def empty() -> "Deployment":
        """The trivial deployment: nothing placed, nobody served."""
        return Deployment(placements={}, assignment={})


@dataclass(frozen=True)
class CellDeployment:
    """A placement of UAVs plus a demand-cell flow assignment.

    The aggregated counterpart of :class:`Deployment`: users are bundled
    into demand cells, and one cell may be *split* across several UAVs,
    so the assignment is a flow ``(cell_index, uav_index) -> units``
    rather than a single-valued mapping.  ``served_count`` is the total
    flow in units — i.e. users, since one unit is one member.

    Attributes
    ----------
    placements:
        Mapping ``uav_index -> location_index``.  Only deployed UAVs
        appear.
    flows:
        Mapping ``(cell_index, uav_index) -> units`` with positive
        integer values; every UAV mentioned must be deployed.
    """

    placements: dict
    flows: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        location_counts = Counter(self.placements.values())
        clashes = [loc for loc, c in location_counts.items() if c > 1]
        if clashes:
            raise ValueError(
                f"multiple UAVs share hovering location(s) {sorted(clashes)}"
            )
        missing = {
            k for (_c, k) in self.flows if k not in self.placements
        }
        if missing:
            raise ValueError(
                f"cells assigned to undeployed UAV(s) {sorted(missing)}"
            )
        bad = [(c, k) for (c, k), units in self.flows.items() if units < 1]
        if bad:
            raise ValueError(f"non-positive flow on arc(s) {sorted(bad)}")

    @property
    def served_count(self) -> int:
        """Total assigned units — the served-user objective value."""
        return sum(self.flows.values())

    @property
    def num_deployed(self) -> int:
        return len(self.placements)

    def locations_used(self) -> list:
        """Sorted list of occupied hovering locations."""
        return sorted(self.placements.values())

    def load_of(self, uav_index: int) -> int:
        """Units assigned to one UAV."""
        if uav_index not in self.placements:
            raise KeyError(f"UAV {uav_index} is not deployed")
        return sum(
            units for (_c, k), units in self.flows.items() if k == uav_index
        )

    def loads(self) -> dict:
        """Mapping uav_index -> assigned units (zero included)."""
        out = {k: 0 for k in self.placements}
        for (_c, k), units in self.flows.items():
            out[k] += units
        return out

    def cells_of(self, uav_index: int) -> list:
        """Sorted cell indices a UAV draws units from."""
        if uav_index not in self.placements:
            raise KeyError(f"UAV {uav_index} is not deployed")
        return sorted(c for (c, k) in self.flows if k == uav_index)

    def cell_totals(self) -> dict:
        """Mapping cell_index -> total units served from that cell."""
        out: dict = {}
        for (c, _k), units in self.flows.items():
            out[c] = out.get(c, 0) + units
        return out

    @staticmethod
    def empty() -> "CellDeployment":
        return CellDeployment(placements={}, flows={})
