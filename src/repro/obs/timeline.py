"""Ring-buffered time-series recording over the metrics registry.

The spans and counters of :mod:`repro.obs` describe a run *after* it
finished; :class:`TimelineRecorder` adds the time dimension: it snapshots
the registry on a fixed cadence into a bounded ring buffer
(``collections.deque(maxlen=...)`` — a week-long mission cannot exhaust
memory, the oldest snapshots fall off and ``dropped`` counts them).

Each snapshot is a plain JSON-safe dict::

    {"t_s": 3.0,                      # seconds since the first snapshot
     "counters": {...},               # full cumulative counters
     "workers": {"1234": 512, ...},   # approx.worker.<pid>.subsets gauges
     "gauges": {"mission.served": 371, ...},  # the non-worker gauges
     "rss_mb": 84.2}                  # resident set size, None off-Linux

Because the counters are the *merged parent-side* registry (workers ship
deltas back with each chunk and the parent adds them — see
``repro.obs.metrics``), a parallel run's timeline carries true per-worker
utilization series and its final snapshot equals the serial run's
counter-for-counter; a property test pins this.

Two driving modes:

* attached to a :class:`~repro.obs.live.LiveReporter` (pass
  ``timeline=recorder``) — the reporter's existing daemon calls
  :meth:`record` on every heartbeat, so ``--live --timeline`` costs one
  thread, not two;
* standalone — :meth:`start` spawns its own daemon at
  ``TimelineConfig.interval_s``; :meth:`stop` joins it and takes one
  final snapshot so even sub-interval runs record their end state.

Persistence: :func:`write_timeline` / :func:`read_timeline` round-trip a
standalone JSONL file (atomic), and ``obs.write_trace(...,
timeline=...)`` embeds the same records (``{"type": "timeline"}``) in a
run manifest, where ``repro trace-report`` renders sparkline summaries.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

from repro.obs.metrics import REGISTRY
from repro.obs.profile import current_rss_mb
from repro.util.atomic import atomic_write_text

#: Gauge-name shape of per-worker progress (kept in lockstep with
#: ``repro.obs.live``; duplicated to avoid importing the reporter here).
WORKER_GAUGE_PREFIX = "approx.worker."
WORKER_GAUGE_SUFFIX = ".subsets"

#: Progress counter the derived throughput series is computed from.
PROGRESS_COUNTER = "approx.subsets_done"

SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TimelineConfig:
    """Knobs of the time-series recorder."""

    interval_s: float = 1.0
    capacity: int = 4096          # ring size; oldest snapshots drop first

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError(
                f"interval must be positive, got {self.interval_s}"
            )
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")


class TimelineRecorder:
    """Sample the registry into a bounded ring of timeline snapshots."""

    def __init__(
        self,
        config: "TimelineConfig | None" = None,
        registry=REGISTRY,
        clock=time.monotonic,
    ) -> None:
        self.config = config if config is not None else TimelineConfig()
        self.registry = registry
        self.clock = clock
        self.dropped = 0
        self._buffer: deque = deque(maxlen=self.config.capacity)
        self._start_time: "float | None" = None
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        self._lock = threading.Lock()

    # -- sampling ----------------------------------------------------------

    def record(self) -> dict:
        """Take one snapshot (thread-free; the daemon, an attached
        LiveReporter, and the tests all call this)."""
        now = self.clock()
        snap = self.registry.snapshot()
        workers = {}
        gauges = {}
        for name, value in snap["gauges"].items():
            if (name.startswith(WORKER_GAUGE_PREFIX)
                    and name.endswith(WORKER_GAUGE_SUFFIX)):
                pid = name[len(WORKER_GAUGE_PREFIX):-len(WORKER_GAUGE_SUFFIX)]
                workers[pid] = int(value)
            else:
                gauges[name] = value
        with self._lock:
            if self._start_time is None:
                self._start_time = now
            record = {
                "t_s": round(now - self._start_time, 3),
                "counters": snap["counters"],
                "workers": workers,
                "gauges": gauges,
                "rss_mb": current_rss_mb(),
            }
            if len(self._buffer) == self._buffer.maxlen:
                self.dropped += 1
            self._buffer.append(record)
        return record

    def snapshots(self) -> list:
        """Copy of the buffered snapshots, oldest first."""
        with self._lock:
            return list(self._buffer)

    def last(self) -> "dict | None":
        with self._lock:
            return self._buffer[-1] if self._buffer else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._buffer)

    # -- standalone daemon -------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "TimelineRecorder":
        if self.running:
            raise RuntimeError("TimelineRecorder is already running")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-timeline", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "TimelineRecorder":
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=max(5.0, 4 * self.config.interval_s))
            self._thread = None
        # One closing snapshot: runs shorter than the interval still land
        # their final cumulative counters.
        self.record()
        return self

    def __enter__(self) -> "TimelineRecorder":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def _run(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            self.record()


# -- event-driven marks ------------------------------------------------------
#
# The dynamics engine advances sim time in bursts, so wall-clock-cadence
# sampling alone can miss whole epochs.  A process-wide "active recorder"
# lets event loops request an extra snapshot at every state change without
# depending on who owns the recorder (the CLI's --timeline/--archive
# plumbing registers it; everything is a no-op otherwise).

_ACTIVE_RECORDER: "TimelineRecorder | None" = None


def set_active_recorder(recorder: "TimelineRecorder | None") -> None:
    """Install (or clear, with ``None``) the process-wide recorder that
    :func:`record_mark` snapshots into."""
    global _ACTIVE_RECORDER
    _ACTIVE_RECORDER = recorder


def record_mark() -> "dict | None":
    """Snapshot the active recorder now, if one is installed (no-op and
    ``None`` otherwise).  Event loops call this after updating their
    gauges so discrete state changes land in the timeline even when they
    fall between wall-clock samples."""
    if _ACTIVE_RECORDER is None:
        return None
    return _ACTIVE_RECORDER.record()


# -- derived series ----------------------------------------------------------


def counter_series(snapshots: list, name: str) -> list:
    """The cumulative values of counter ``name`` across ``snapshots``."""
    return [int(s.get("counters", {}).get(name, 0)) for s in snapshots]


def rate_series(snapshots: list, name: str = PROGRESS_COUNTER) -> list:
    """Per-interval throughput (Δcounter/Δt) between adjacent snapshots."""
    rates: list = []
    for prev, cur in zip(snapshots, snapshots[1:]):
        dt = float(cur.get("t_s", 0.0)) - float(prev.get("t_s", 0.0))
        if dt <= 0:
            continue
        delta = (int(cur.get("counters", {}).get(name, 0))
                 - int(prev.get("counters", {}).get(name, 0)))
        rates.append(max(0.0, delta / dt))
    return rates


def rss_series(snapshots: list) -> list:
    """The RSS samples (MB) that were measurable, in order."""
    return [s["rss_mb"] for s in snapshots if s.get("rss_mb") is not None]


def worker_totals(snapshots: list) -> dict:
    """pid -> final absorbed-subset gauge (utilization split of the run)."""
    totals: dict = {}
    for snap in snapshots:
        for pid, value in snap.get("workers", {}).items():
            totals[pid] = int(value)
    return totals


# -- persistence -------------------------------------------------------------


def write_timeline(
    path: "str | Path",
    snapshots: "list | TimelineRecorder",
    interval_s: "float | None" = None,
    dropped: int = 0,
) -> Path:
    """Write snapshots as a standalone JSONL timeline file (atomic)."""
    if isinstance(snapshots, TimelineRecorder):
        recorder = snapshots
        snapshots = recorder.snapshots()
        interval_s = (
            interval_s if interval_s is not None
            else recorder.config.interval_s
        )
        dropped = dropped or recorder.dropped
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps({
        "type": "timeline-meta",
        "schema": SCHEMA_VERSION,
        "interval_s": interval_s,
        "snapshots": len(snapshots),
        "dropped": dropped,
    })]
    lines += [json.dumps({"type": "timeline", **snap}) for snap in snapshots]
    atomic_write_text(path, "\n".join(lines) + "\n")
    return path


def read_timeline(path: "str | Path") -> "tuple[dict, list]":
    """Parse a :func:`write_timeline` file → ``(meta, snapshots)``."""
    meta: dict = {}
    snapshots: list = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("type", None)
            if kind == "timeline-meta":
                meta = record
            elif kind == "timeline":
                snapshots.append(record)
            else:
                raise ValueError(f"unknown timeline record type {kind!r}")
    return meta, snapshots
