"""Perf-regression detection over recorded wall times.

Compares two performance recordings — ``BENCH_approx.json`` perf
trajectories (see ``benchmarks/conftest.py``) or ``--trace`` JSONL files
— keyed on ``(scenario, algorithm, workers, scale)``, and classifies
every key:

* ``regressed`` — current wall time exceeds baseline by more than the
  relative ``threshold`` (strictly: ``delta > threshold``);
* ``improved`` — current is faster than baseline by more than the
  threshold;
* ``unchanged`` — within the threshold band (inclusive at both edges);
* ``new`` — key only present in the current recording;
* ``missing`` — key only present in the baseline.

Wall times are noisy, so each side's value is the **median of the most
recent** ``window`` points per key (a trajectory file that accumulated
several sessions' points for one key is averaged down to a robust
baseline; a single point is used as-is).  Only ``regressed`` keys fail
the gate: :meth:`PerfDiff.exit_code` is 1 iff at least one key regressed,
which is what the CI ``perf-gate`` job and ``repro perf-diff`` expose.
"""

from __future__ import annotations

import json
import statistics
from dataclasses import dataclass, field
from pathlib import Path

from repro.util.tables import format_table

#: The identity of one measured configuration.
KEY_FIELDS = ("scenario", "algorithm", "workers", "scale")

#: Kernel-level timing columns carried by trajectory points (the
#: micro-bench fields); compared per key alongside wall time and used by
#: ``repro perf-diff --attribute`` to name *which* kernel regressed.
KERNEL_FIELDS = ("context_build_s", "bound_pass_ms", "gain_matrix_ms")

REGRESSED = "regressed"
IMPROVED = "improved"
UNCHANGED = "unchanged"
NEW = "new"
MISSING = "missing"


@dataclass(frozen=True)
class KeyDelta:
    """Wall-time comparison of one ``(scenario, algorithm, workers,
    scale)`` key."""

    key: tuple
    status: str
    baseline_s: "float | None" = None
    current_s: "float | None" = None
    delta: "float | None" = None      # (current - baseline) / baseline
    #: kernel field -> {"baseline", "current", "delta", "status"} for the
    #: KERNEL_FIELDS either side measured on this key.
    kernels: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "key": dict(zip(KEY_FIELDS, self.key)),
            "status": self.status,
            "baseline_s": self.baseline_s,
            "current_s": self.current_s,
            "delta": self.delta,
            "kernels": self.kernels,
        }

    def worst_kernel(self) -> "tuple[str, dict] | None":
        """The kernel with the largest relative slowdown, if any regressed."""
        regressed = [
            (name, data) for name, data in self.kernels.items()
            if data.get("status") == REGRESSED
        ]
        if not regressed:
            return None
        return max(regressed, key=lambda item: item[1].get("delta") or 0.0)


@dataclass
class PerfDiff:
    """The full comparison: one :class:`KeyDelta` per key, worst first."""

    threshold: float
    window: int
    entries: list = field(default_factory=list)

    def of_status(self, status: str) -> list:
        return [e for e in self.entries if e.status == status]

    @property
    def regressions(self) -> list:
        return self.of_status(REGRESSED)

    @property
    def exit_code(self) -> int:
        """1 iff at least one key regressed; improvements, new keys and
        missing keys never fail the gate."""
        return 1 if self.regressions else 0

    def counts(self) -> dict:
        out: dict = {}
        for entry in self.entries:
            out[entry.status] = out.get(entry.status, 0) + 1
        return out

    def to_dict(self) -> dict:
        return {
            "threshold": self.threshold,
            "window": self.window,
            "counts": self.counts(),
            "regression": bool(self.regressions),
            "entries": [e.to_dict() for e in self.entries],
        }

    def to_text(self) -> str:
        def kernel_cell(entry: KeyDelta, kernel: str) -> str:
            data = entry.kernels.get(kernel)
            if data is None or data.get("current") is None:
                return "-"
            cell = f"{data['current']:.3g}"
            if data.get("status") == REGRESSED:
                cell += "!"
            return cell

        rows = []
        for e in self.entries:
            scenario, algorithm, workers, scale = e.key
            rows.append([
                scenario,
                algorithm,
                workers,
                scale,
                "-" if e.baseline_s is None else f"{e.baseline_s:.4f}",
                "-" if e.current_s is None else f"{e.current_s:.4f}",
                "-" if e.delta is None else f"{e.delta:+.1%}",
                kernel_cell(e, "bound_pass_ms"),
                kernel_cell(e, "gain_matrix_ms"),
                e.status.upper() if e.status == REGRESSED else e.status,
            ])
        table = format_table(
            ["scenario", "algorithm", "workers", "scale", "base s",
             "now s", "delta", "bound ms", "gain ms", "status"],
            rows,
            title=f"perf-diff (threshold ±{self.threshold:.0%}, "
            f"median of last {self.window})",
        )
        summary = ", ".join(
            f"{count} {status}" for status, count in sorted(self.counts().items())
        ) or "no keys"
        verdict = (
            f"REGRESSION: {len(self.regressions)} key(s) slower than "
            f"baseline by more than {self.threshold:.0%}"
            if self.regressions else "no regression"
        )
        return f"{table}\n\n{summary}\n{verdict}"

    # -- kernel attribution ------------------------------------------------

    def attribution(self) -> list:
        """Per-key kernel attributions, worst first.

        One dict per key that has any kernel movement beyond the
        threshold: ``{"key": {...}, "kernel", "baseline", "current",
        "delta"}`` naming the dominant regressing kernel — the answer to
        "*what* got slower", where the wall-time table only says *that*
        something did.
        """
        out: list = []
        for entry in self.entries:
            worst = entry.worst_kernel()
            if worst is None:
                continue
            kernel, data = worst
            out.append({
                "key": dict(zip(KEY_FIELDS, entry.key)),
                "kernel": kernel,
                "baseline": data.get("baseline"),
                "current": data.get("current"),
                "delta": data.get("delta"),
            })
        out.sort(key=lambda a: -(a["delta"] or 0.0))
        return out

    def attribution_text(self) -> str:
        """Human-readable attribution block (``perf-diff --attribute``)."""
        attributions = self.attribution()
        if not attributions:
            return ("attribution: no kernel-level timings moved beyond the "
                    "threshold (or none were recorded)")
        lines = ["attribution (dominant regressing kernel per key):"]
        for a in attributions:
            key = a["key"]
            lines.append(
                f"  {key['scenario']}/{key['algorithm']}: "
                f"kernel '{a['kernel']}' {a['baseline']:.4g} -> "
                f"{a['current']:.4g} ({a['delta']:+.1%})"
            )
        return "\n".join(lines)


# -- loading -----------------------------------------------------------------


def _trace_points(path: Path) -> list:
    """A ``--trace`` JSONL file as a one-point trajectory."""
    from repro.obs.manifest import read_trace

    data = read_trace(path)
    manifest = data.manifest
    if manifest is None or not manifest.wall_s:
        return []
    scenario = manifest.scenario or {}
    label = manifest.command
    detail = ",".join(
        f"{k}={scenario[k]}" for k in sorted(scenario) if k != "scale"
    )
    if detail:
        label = f"{label}:{detail}"
    config = manifest.config or {}
    return [{
        "scenario": label,
        "algorithm": manifest.algorithm or manifest.command,
        "workers": int(config.get("workers") or 1),
        "scale": scenario.get("scale") or config.get("scale") or "?",
        "wall_s": float(manifest.wall_s),
    }]


def load_points(path: "str | Path") -> list:
    """Measurement points from a trajectory JSON or a trace JSONL file.

    Raises ``FileNotFoundError`` for a missing file and ``ValueError``
    for a file that is neither format.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    try:
        data = json.loads(text)
    except ValueError:
        data = None
    if isinstance(data, dict) and isinstance(data.get("points"), list):
        return [p for p in data["points"] if isinstance(p, dict)]
    if isinstance(data, list):
        return [p for p in data if isinstance(p, dict)]
    # Not a single JSON document: try trace JSONL.
    try:
        return _trace_points(path)
    except ValueError as exc:
        raise ValueError(
            f"{path} is neither a perf trajectory (JSON with 'points') "
            f"nor a trace JSONL file: {exc}"
        ) from None


# -- comparison --------------------------------------------------------------


def _key_of(point: dict) -> tuple:
    return tuple(point.get(f) for f in KEY_FIELDS)


def _grouped_medians(points: list, window: int) -> dict:
    """key -> median wall_s of the last ``window`` points for that key."""
    series: dict = {}
    for point in points:
        wall = point.get("wall_s")
        if wall is None:
            continue
        series.setdefault(_key_of(point), []).append(float(wall))
    return {
        key: statistics.median(values[-window:])
        for key, values in series.items()
    }


def _grouped_kernel_medians(points: list, window: int) -> dict:
    """key -> {kernel field -> median of the last ``window`` measured
    values}; kernels a key never measured are simply absent."""
    series: dict = {}
    for point in points:
        for kernel in KERNEL_FIELDS:
            value = point.get(kernel)
            if value is None:
                continue
            series.setdefault(_key_of(point), {}).setdefault(
                kernel, []
            ).append(float(value))
    return {
        key: {
            kernel: statistics.median(values[-window:])
            for kernel, values in kernels.items()
        }
        for key, kernels in series.items()
    }


def classify(
    baseline_s: "float | None",
    current_s: "float | None",
    threshold: float,
) -> "tuple[str, float | None]":
    """(status, relative delta) for one key's wall times."""
    if baseline_s is None:
        return NEW, None
    if current_s is None:
        return MISSING, None
    if baseline_s <= 0:
        # A zero baseline has no meaningful relative delta; any measurable
        # current time would be an infinite regression, which helps nobody
        # — treat the key as unchanged unless the current side also
        # measured zero (then it trivially is).
        return UNCHANGED, None
    delta = (current_s - baseline_s) / baseline_s
    if delta > threshold:
        return REGRESSED, delta
    if delta < -threshold:
        return IMPROVED, delta
    return UNCHANGED, delta


def perf_diff(
    baseline_points: list,
    current_points: list,
    threshold: float = 0.15,
    window: int = 3,
) -> PerfDiff:
    """Compare two point lists (see module docstring for semantics)."""
    if threshold < 0:
        raise ValueError(f"threshold must be >= 0, got {threshold}")
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    baseline = _grouped_medians(baseline_points, window)
    current = _grouped_medians(current_points, window)
    baseline_kernels = _grouped_kernel_medians(baseline_points, window)
    current_kernels = _grouped_kernel_medians(current_points, window)
    entries = []
    for key in sorted(
        set(baseline) | set(current), key=lambda k: tuple(map(str, k))
    ):
        base_s = baseline.get(key)
        cur_s = current.get(key)
        status, delta = classify(base_s, cur_s, threshold)
        kernels: dict = {}
        base_k = baseline_kernels.get(key, {})
        cur_k = current_kernels.get(key, {})
        for kernel in KERNEL_FIELDS:
            base_value = base_k.get(kernel)
            cur_value = cur_k.get(kernel)
            if base_value is None and cur_value is None:
                continue
            k_status, k_delta = classify(base_value, cur_value, threshold)
            kernels[kernel] = {
                "baseline": base_value,
                "current": cur_value,
                "delta": k_delta,
                "status": k_status,
            }
        entries.append(KeyDelta(
            key=key, status=status,
            baseline_s=base_s, current_s=cur_s, delta=delta,
            kernels=kernels,
        ))
    # Worst first: regressions by descending delta, then the rest.
    rank = {REGRESSED: 0, NEW: 1, MISSING: 2, IMPROVED: 3, UNCHANGED: 4}
    entries.sort(key=lambda e: (rank[e.status], -(e.delta or 0.0)))
    return PerfDiff(threshold=threshold, window=window, entries=entries)


def perf_diff_paths(
    baseline_path: "str | Path",
    current_path: "str | Path",
    threshold: float = 0.15,
    window: int = 3,
) -> PerfDiff:
    """File-level convenience wrapper used by ``repro perf-diff``."""
    return perf_diff(
        load_points(baseline_path),
        load_points(current_path),
        threshold=threshold,
        window=window,
    )
