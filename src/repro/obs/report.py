"""Human-readable summary of a trace JSONL file (``repro trace-report``).

Aggregates spans by name (count, total/mean/max wall time, share of the
run) and prints the counters and histograms from the metrics section,
after the manifest header — the quickest answer to "where did the time
go" without opening ``chrome://tracing``.
"""

from __future__ import annotations

from pathlib import Path

from repro.obs.manifest import TraceData, read_trace
from repro.util.tables import format_table


def _fmt_ms(ns: float) -> str:
    return f"{ns / 1e6:.2f}"


def timeline_summary(snapshots: list) -> str:
    """ASCII sparkline block for a run's timeline snapshots.

    Derived series: subset throughput (Δ``approx.subsets_done``/Δt),
    cumulative progress, RSS, plus the final per-worker utilization
    split — the "what did the run look like over time" answer in four
    lines of plain text.
    """
    from repro.obs import timeline as tl
    from repro.util.charts import sparkline

    if not snapshots:
        return "timeline: no snapshots recorded"
    duration = float(snapshots[-1].get("t_s", 0.0))
    lines = [f"timeline ({len(snapshots)} snapshots over {duration:.1f}s)"]

    def row(label: str, series: list, unit: str = "") -> None:
        if not series or not any(series):
            return
        lo, hi = min(series), max(series)
        lines.append(
            f"  {label:<11s} {sparkline(series)}  "
            f"{lo:.6g}..{hi:.6g}{unit}"
        )

    row("subsets/s", tl.rate_series(snapshots))
    row("done", tl.counter_series(snapshots, tl.PROGRESS_COUNTER))
    row("rss_mb", tl.rss_series(snapshots), " MB")
    workers = tl.worker_totals(snapshots)
    if workers:
        total = sum(workers.values()) or 1
        split = " ".join(
            f"w{pid}:{100 * count // total}%"
            for pid, count in sorted(workers.items())
        )
        lines.append(f"  workers     {split}")
    if len(lines) == 1:
        lines.append("  (no nonzero series)")
    return "\n".join(lines)


def summarize(data: TraceData) -> str:
    """Render one parsed trace as text."""
    blocks: list = []

    if data.manifest is not None:
        m = data.manifest
        lines = [f"command: {m.command}"]
        if m.algorithm:
            lines.append(f"algorithm: {m.algorithm}")
        if m.scenario:
            scenario = ", ".join(f"{k}={v}" for k, v in m.scenario.items())
            lines.append(f"scenario: {scenario}")
        if m.seed is not None:
            lines.append(f"seed: {m.seed}")
        if m.git_rev:
            lines.append(f"git: {m.git_rev}")
        lines.append(f"wall: {m.wall_s:.3f}s")
        if m.stats:
            stats = ", ".join(f"{k}={v}" for k, v in sorted(m.stats.items()))
            lines.append(f"stats: {stats}")
        blocks.append("\n".join(lines))

    if not data.spans:
        # A run can legitimately record zero spans (e.g. it timed out
        # before the first subset, or tracing was enabled but nothing
        # instrumented ran); say so instead of rendering an empty table —
        # the counters below still print.  A fully empty file keeps the
        # "empty trace" message instead.
        if data.manifest is not None or data.metrics:
            blocks.append("no spans recorded")
    else:
        total_ns = sum(
            s["duration_ns"] for s in data.spans if s.get("depth", 0) == 0
        ) or 1
        by_name: dict = {}
        for s in data.spans:
            agg = by_name.setdefault(
                s["name"], {"count": 0, "total": 0, "max": 0, "errors": 0}
            )
            agg["count"] += 1
            agg["total"] += s["duration_ns"]
            agg["max"] = max(agg["max"], s["duration_ns"])
            agg["errors"] += 1 if s.get("error") else 0
        rows = []
        for name, agg in sorted(
            by_name.items(), key=lambda kv: -kv[1]["total"]
        ):
            rows.append([
                name,
                agg["count"],
                _fmt_ms(agg["total"]),
                _fmt_ms(agg["total"] / agg["count"]),
                _fmt_ms(agg["max"]),
                f"{100.0 * agg['total'] / total_ns:.1f}%",
                agg["errors"] or "-",
            ])
        blocks.append(format_table(
            ["span", "count", "total ms", "mean ms", "max ms", "share",
             "errors"],
            rows,
            title=f"spans ({len(data.spans)} recorded)",
        ))

    if data.timeline:
        blocks.append(timeline_summary(data.timeline))

    counters = data.metrics.get("counters", {})
    if counters:
        rows = [[name, counters[name]] for name in sorted(counters)]
        blocks.append(format_table(["counter", "value"], rows,
                                   title="counters"))

    histograms = data.metrics.get("histograms", {})
    if histograms:
        rows = []
        for name in sorted(histograms):
            h = histograms[name]
            count = h.get("count", 0)
            mean = (h.get("total", 0.0) / count) if count else 0.0
            rows.append([
                name, count, f"{mean:.4g}",
                f"{h.get('min'):.4g}" if h.get("min") is not None else "-",
                f"{h.get('max'):.4g}" if h.get("max") is not None else "-",
            ])
        blocks.append(format_table(
            ["histogram", "count", "mean", "min", "max"], rows,
            title="histograms",
        ))

    if not blocks:
        return "empty trace: no manifest, spans, or metrics"
    return "\n\n".join(blocks)


def trace_report(path: "str | Path") -> str:
    """Read a trace JSONL file and summarize it."""
    return summarize(read_trace(path))
