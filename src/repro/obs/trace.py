"""Hierarchical span tracer.

Zero-dependency, off by default, and cheap when disabled: ``span()``
returns a shared no-op context manager unless tracing has been switched on
with :func:`enable`, so instrumented hot loops pay one attribute lookup
and one call per span site.

When enabled, every ``with span(name, **attrs):`` block records a
:class:`Span` with monotonic start/duration (``time.perf_counter_ns``),
its nesting depth and parent, and the recording process/thread — enough to
reconstruct the tree and to export Chrome trace format
(:func:`repro.obs.manifest.chrome_trace`).

Concurrency model:

* *threads* — each thread keeps its own open-span stack
  (``threading.local``); finished spans land in one process-wide buffer
  under a lock, so nesting never interleaves across threads;
* *processes* — pool workers record into their own buffer and ship it
  back with their chunk results (:func:`export_state` in the worker,
  :func:`absorb_state` in the parent); see
  :mod:`repro.core.approx`.  Workers forked mid-run must call
  :func:`worker_reset` first so the parent's buffer is not inherited and
  re-shipped.

Spans always balance: ``__exit__`` records the span even when the body
raises (the span is tagged with the exception type), so after any
top-level exit :func:`open_span_count` is zero — a property test pins
this under injected exceptions and ``SolverTimeout``.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

_enabled = False
_lock = threading.Lock()
_finished: list = []
_tls = threading.local()


@dataclass(frozen=True)
class Span:
    """One finished span."""

    name: str
    start_ns: int          # time.perf_counter_ns() at entry
    duration_ns: int
    depth: int             # 0 = top-level in its thread
    index: int             # buffer-local sequence number (entry order)
    parent: int            # index of the enclosing span, -1 at top level
    pid: int
    tid: int
    error: "str | None" = None   # exception type name if the body raised
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "depth": self.depth,
            "index": self.index,
            "parent": self.parent,
            "pid": self.pid,
            "tid": self.tid,
            "error": self.error,
            "attrs": dict(self.attrs),
        }

    @staticmethod
    def from_dict(data: dict) -> "Span":
        return Span(
            name=data["name"],
            start_ns=data["start_ns"],
            duration_ns=data["duration_ns"],
            depth=data["depth"],
            index=data["index"],
            parent=data["parent"],
            pid=data["pid"],
            tid=data["tid"],
            error=data.get("error"),
            attrs=dict(data.get("attrs", {})),
        )


def _stack() -> list:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


class _NullSpan:
    """The shared disabled-mode context manager (no allocation per site)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span; records itself on exit, exception or not."""

    __slots__ = ("name", "attrs", "index", "parent", "depth", "start_ns")

    def __init__(self, name: str, attrs: dict) -> None:
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        stack = _stack()
        self.depth = len(stack)
        self.parent = stack[-1].index if stack else -1
        with _lock:
            # Index allocation is global so parent links stay unambiguous
            # within one process even across threads.
            self.index = _next_index()
        stack.append(self)
        self.start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        duration = time.perf_counter_ns() - self.start_ns
        stack = _stack()
        assert stack and stack[-1] is self, "span stack corrupted"
        stack.pop()
        record = Span(
            name=self.name,
            start_ns=self.start_ns,
            duration_ns=duration,
            depth=self.depth,
            index=self.index,
            parent=self.parent,
            pid=os.getpid(),
            tid=threading.get_ident(),
            error=getattr(exc_type, "__name__", None),
            attrs=self.attrs,
        )
        with _lock:
            _finished.append(record)
        return None


_index_counter = 0


def _next_index() -> int:
    global _index_counter
    value = _index_counter
    _index_counter += 1
    return value


def span(name: str, **attrs: object):
    """Context manager timing one named block (no-op while disabled)."""
    if not _enabled:
        return _NULL_SPAN
    return _LiveSpan(name, attrs)


def traced(name: str, **attrs: object):
    """Decorator form of :func:`span` for whole functions."""

    def decorate(func):
        def wrapper(*args: object, **kwargs: object):
            if not _enabled:
                return func(*args, **kwargs)
            with _LiveSpan(name, dict(attrs)):
                return func(*args, **kwargs)

        wrapper.__name__ = getattr(func, "__name__", name)
        wrapper.__doc__ = func.__doc__
        wrapper.__wrapped__ = func
        return wrapper

    return decorate


def enable() -> None:
    """Switch tracing on (global; also enables the metrics registry guard
    via :mod:`repro.obs`)."""
    global _enabled
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    return _enabled


def open_span_count() -> int:
    """Open (entered, not yet exited) spans in the calling thread."""
    return len(_stack())


def snapshot_spans() -> list:
    """Copy of the finished-span buffer (oldest first)."""
    with _lock:
        return list(_finished)


def drain_spans() -> list:
    """Return and clear the finished-span buffer."""
    with _lock:
        out = list(_finished)
        _finished.clear()
        return out


def reset() -> None:
    """Clear all tracer state (buffer, index counter, thread stack)."""
    global _index_counter
    with _lock:
        _finished.clear()
        _index_counter = 0
    _tls.stack = []


# -- process-pool support ----------------------------------------------------


def worker_reset(enabled: bool) -> None:
    """Initialise tracer state inside a pool worker.

    Forked workers inherit the parent's buffer; clearing it here keeps the
    parent's spans from being shipped back a second time.
    """
    reset()
    global _enabled
    _enabled = bool(enabled)


def export_state() -> list:
    """Drain this process's spans as plain dicts (picklable)."""
    return [s.to_dict() for s in drain_spans()]


def absorb_state(spans: "list | None") -> None:
    """Merge spans exported by a worker into this process's buffer."""
    if not spans:
        return
    records = [Span.from_dict(d) for d in spans]
    with _lock:
        _finished.extend(records)
