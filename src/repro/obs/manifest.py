"""Run manifests: one JSONL file per observed run.

Layout (one JSON object per line, ``type`` discriminated):

* line 1 — ``{"type": "manifest", ...}``: seed, scenario, command,
  config, git revision, solver stats, wall time;
* then — ``{"type": "span", ...}``: every finished span
  (:class:`repro.obs.trace.Span`), entry order;
* then — ``{"type": "timeline", ...}``: the ring-buffered time-series
  snapshots (:mod:`repro.obs.timeline`), oldest first, when the run
  recorded a timeline;
* last — ``{"type": "metrics", ...}``: the final registry snapshot.

:func:`read_trace` round-trips the file exactly (a property test pins
this); :func:`chrome_trace` converts the spans to Chrome trace format —
load the output in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import json
import subprocess
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.util.atomic import atomic_write_text

SCHEMA_VERSION = 1


def _json_safe(value: object) -> object:
    """Best-effort conversion of arbitrary config values to JSON types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set)):
        return [_json_safe(v) for v in value]
    return repr(value)


def git_revision(cwd: "str | Path | None" = None) -> "str | None":
    """Short git revision of the working tree, or ``None`` outside a repo
    (never raises — observability must not take a run down)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None


@dataclass(frozen=True)
class RunManifest:
    """Identifying facts of one observed run."""

    command: str                    # e.g. "run", "fig4", "mission"
    seed: "int | None" = None
    scenario: dict = field(default_factory=dict)
    algorithm: "str | None" = None
    config: dict = field(default_factory=dict)
    git_rev: "str | None" = None
    stats: dict = field(default_factory=dict)
    wall_s: float = 0.0
    created_unix: float = field(default_factory=time.time)
    schema: int = SCHEMA_VERSION

    def to_dict(self) -> dict:
        data = asdict(self)
        data["config"] = _json_safe(data["config"])
        data["scenario"] = _json_safe(data["scenario"])
        data["stats"] = _json_safe(data["stats"])
        return data

    @staticmethod
    def from_dict(data: dict) -> "RunManifest":
        known = {f for f in RunManifest.__dataclass_fields__}
        return RunManifest(**{k: v for k, v in data.items() if k in known})


@dataclass(frozen=True)
class TraceData:
    """Parsed contents of one trace JSONL file."""

    manifest: "RunManifest | None"
    spans: list                      # list[dict], entry order
    metrics: dict
    timeline: list = field(default_factory=list)   # list[dict], oldest first


def write_trace(
    path: "str | Path",
    manifest: RunManifest,
    spans: "list | None" = None,
    metrics: "dict | None" = None,
    timeline: "list | None" = None,
) -> Path:
    """Write one run's manifest + spans [+ timeline] + metrics as JSONL."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    records = [
        span if isinstance(span, dict) else span.to_dict()
        for span in spans or []
    ]
    # Spans finish inner-first; write them in entry order so the file (and
    # every reader of it) sees the call hierarchy top-down.
    records.sort(key=lambda r: r.get("index", 0))
    lines = [json.dumps({"type": "manifest", **manifest.to_dict()})]
    lines += [json.dumps({"type": "span", **record}) for record in records]
    lines += [json.dumps({"type": "timeline", **snap})
              for snap in timeline or []]
    lines.append(json.dumps({"type": "metrics", **(metrics or {})}))
    # Atomic (tmp + fsync + rename): a run killed mid-flush leaves either
    # the previous complete trace or none, never a truncated JSONL.
    atomic_write_text(path, "\n".join(lines) + "\n")
    return path


def read_trace(path: "str | Path") -> TraceData:
    """Parse a trace JSONL file (tolerates missing sections)."""
    manifest: "RunManifest | None" = None
    spans: list = []
    metrics: dict = {}
    timeline: list = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("type", None)
            if kind == "manifest":
                manifest = RunManifest.from_dict(record)
            elif kind == "span":
                spans.append(record)
            elif kind == "timeline":
                timeline.append(record)
            elif kind == "metrics":
                metrics = record
            elif kind == "timeline-meta":
                # Standalone --timeline files open with a meta header;
                # accepting it here lets trace-report render them too.
                pass
            else:
                raise ValueError(f"unknown trace record type {kind!r}")
    return TraceData(manifest=manifest, spans=spans, metrics=metrics,
                     timeline=timeline)


def chrome_trace(spans: list) -> dict:
    """Spans (dicts or :class:`Span` objects) → Chrome trace format.

    Events use phase ``"X"`` (complete); timestamps are microseconds
    relative to the earliest span so traces start at t=0.
    """
    records = [s if isinstance(s, dict) else s.to_dict() for s in spans]
    base_ns = min((r["start_ns"] for r in records), default=0)
    events = []
    for r in records:
        args = dict(r.get("attrs", {}))
        if r.get("error"):
            args["error"] = r["error"]
        events.append({
            "name": r["name"],
            "ph": "X",
            "ts": (r["start_ns"] - base_ns) / 1000.0,
            "dur": r["duration_ns"] / 1000.0,
            "pid": r["pid"],
            "tid": r["tid"],
            "args": args,
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: "str | Path", spans: list) -> Path:
    path = Path(path)
    atomic_write_text(path, json.dumps(chrome_trace(spans), indent=1))
    return path
