"""repro.obs — zero-dependency observability: spans, metrics, manifests.

Everything is **off by default**.  :func:`enable` switches on the span
tracer and the metrics helpers in one go; while disabled, every
instrumentation site in the solvers (``obs.span`` / ``obs.counter_inc``
/ ...) short-circuits on a single module-level boolean, adding no
measurable overhead (the fig4 bench records this).

Quick tour::

    from repro import obs

    obs.enable()
    result = appro_alg(problem, s=2)
    spans = obs.drain_spans()                 # hierarchical Span records
    counts = obs.metrics_snapshot()           # {"counters": {...}, ...}

    manifest = obs.RunManifest(command="run", seed=7, ...)
    obs.write_trace("out.jsonl", manifest, spans, counts)
    print(obs.trace_report("out.jsonl"))      # or: repro trace-report

Three live/offline companions build on the same registry:

* :class:`LiveReporter` (:mod:`repro.obs.live`) — a heartbeat thread
  rendering progress/throughput/ETA lines while a solver runs
  (``--live`` on the CLI);
* :func:`write_openmetrics` (:mod:`repro.obs.export`) — OpenMetrics
  textfile export of any metrics snapshot (``--metrics-format
  openmetrics``);
* :func:`perf_diff` (:mod:`repro.obs.regress`) — wall-time regression
  detection between two recordings (``repro perf-diff A B``), with
  kernel-level attribution (``--attribute``).

The flight-recorder trio (same off-by-default discipline):

* :class:`SamplingProfiler` (:mod:`repro.obs.profile`) — zero-dependency
  wall-clock sampler + tracemalloc stage watermarks + peak RSS, with
  speedscope/collapsed export (``repro profile <scenario>``);
* :class:`TimelineRecorder` (:mod:`repro.obs.timeline`) — ring-buffered
  registry snapshots on the LiveReporter cadence (``--timeline``),
  rendered as sparklines by ``repro trace-report``;
* :class:`RunArchive` (:mod:`repro.obs.archive`) — durable
  ``.repro/runs/`` store of manifests + metrics + timelines + profiles
  (``--archive``; query with ``repro runs list|show|compare``).

See docs/OBSERVABILITY.md for the model and CLI flags (``--trace``,
``--metrics-out``, ``--live``, ``repro trace-report``,
``repro perf-diff``).
"""

from __future__ import annotations

from repro.obs.archive import (
    ArchivedRun,
    CoverageCurve,
    CoverageDelta,
    RunArchive,
    RunComparison,
    compare_runs,
    coverage_curve,
    span_totals,
)
from repro.obs.export import metric_name, render_openmetrics, write_openmetrics
from repro.obs.live import LiveConfig, LiveReporter, LiveSample
from repro.obs.manifest import (
    RunManifest,
    TraceData,
    chrome_trace,
    git_revision,
    read_trace,
    write_chrome_trace,
    write_trace,
)
from repro.obs.metrics import REGISTRY, Histogram, MetricsRegistry
from repro.obs.profile import (
    ProfileConfig,
    SamplingProfiler,
    current_rss_mb,
    peak_rss_mb,
    stage_watermark,
)
from repro.obs.regress import (
    KeyDelta,
    PerfDiff,
    load_points,
    perf_diff,
    perf_diff_paths,
)
from repro.obs.report import summarize, timeline_summary, trace_report
from repro.obs.timeline import (
    TimelineConfig,
    TimelineRecorder,
    read_timeline,
    record_mark,
    set_active_recorder,
    write_timeline,
)
from repro.obs.trace import (
    Span,
    absorb_state,
    disable,
    drain_spans,
    enable,
    export_state,
    is_enabled,
    open_span_count,
    snapshot_spans,
    span,
    traced,
    worker_reset,
)
from repro.obs.trace import reset as _reset_spans

__all__ = [
    "enable",
    "disable",
    "is_enabled",
    "span",
    "traced",
    "Span",
    "open_span_count",
    "snapshot_spans",
    "drain_spans",
    "reset",
    "counter_inc",
    "gauge_set",
    "observe",
    "metrics_snapshot",
    "export_obs_state",
    "absorb_obs_state",
    "REGISTRY",
    "MetricsRegistry",
    "Histogram",
    "RunManifest",
    "TraceData",
    "write_trace",
    "read_trace",
    "chrome_trace",
    "write_chrome_trace",
    "git_revision",
    "trace_report",
    "summarize",
    "absorb_state",
    "export_state",
    "worker_reset",
    "worker_init",
    "LiveReporter",
    "LiveConfig",
    "LiveSample",
    "metric_name",
    "render_openmetrics",
    "write_openmetrics",
    "KeyDelta",
    "PerfDiff",
    "load_points",
    "perf_diff",
    "perf_diff_paths",
    "SamplingProfiler",
    "ProfileConfig",
    "stage_watermark",
    "peak_rss_mb",
    "current_rss_mb",
    "TimelineRecorder",
    "TimelineConfig",
    "write_timeline",
    "read_timeline",
    "set_active_recorder",
    "record_mark",
    "timeline_summary",
    "RunArchive",
    "ArchivedRun",
    "RunComparison",
    "compare_runs",
    "span_totals",
    "CoverageCurve",
    "CoverageDelta",
    "coverage_curve",
]


# -- guarded metrics helpers (cheap no-ops while disabled) -------------------


def counter_inc(name: str, amount: int = 1) -> None:
    """Increment a counter (no-op while observability is off)."""
    if not is_enabled():
        return
    REGISTRY.inc(name, amount)


def gauge_set(name: str, value: float) -> None:
    if not is_enabled():
        return
    REGISTRY.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation (no-op while off)."""
    if not is_enabled():
        return
    REGISTRY.observe(name, value)


def metrics_snapshot() -> dict:
    return REGISTRY.snapshot()


def reset() -> None:
    """Clear spans and metrics (enabled flag is left as-is)."""
    _reset_spans()
    REGISTRY.reset()


# -- process-pool plumbing ---------------------------------------------------


def export_obs_state() -> "dict | None":
    """Ship a worker's spans + metrics delta back to the parent.

    Returns ``None`` when observability is off, so the common case costs
    one boolean check and pickles nothing extra.
    """
    if not is_enabled():
        return None
    return {"spans": export_state(), "metrics": REGISTRY.export_and_reset()}


def absorb_obs_state(payload: "dict | None") -> None:
    """Merge a worker's :func:`export_obs_state` payload (parent side)."""
    if not payload:
        return
    absorb_state(payload.get("spans"))
    REGISTRY.merge(payload.get("metrics"))


def worker_init(enabled: bool) -> None:
    """Reset + configure observability inside a fresh pool worker."""
    worker_reset(enabled)
    REGISTRY.reset()
