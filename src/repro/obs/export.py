"""OpenMetrics/Prometheus textfile export of the metrics registry.

`repro` metric names are dotted (``approx.subsets_evaluated``);
OpenMetrics names are ``[a-zA-Z_:][a-zA-Z0-9_:]*``, so dots (and any
other invalid character) become underscores.  The mapping per metric
kind follows the exposition-format conventions:

* counters — ``# TYPE <name> counter`` with one ``<name>_total`` sample;
* gauges — ``# TYPE <name> gauge`` with one ``<name>`` sample;
* histograms (count/total/min/max summaries) — ``# TYPE <name> summary``
  with ``<name>_count`` / ``<name>_sum`` samples, plus two gauges
  ``<name>_min`` / ``<name>_max`` when observations exist.

An optional ``info`` mapping is emitted as an OpenMetrics info metric
(``repro_run_info{key="value", ...} 1``) so a scrape can tell which run,
seed, and git revision produced the file.  Output always ends with the
mandatory ``# EOF`` terminator; a lint test parses every line.

This is a *textfile* exporter: solvers are batch jobs, so the natural
integration is the node-exporter textfile collector or a CI artifact,
not a live scrape endpoint.  Write with :func:`write_openmetrics` or via
``--metrics-out PATH --metrics-format openmetrics`` on the CLI.
"""

from __future__ import annotations

import math
import re
from pathlib import Path

from repro.obs.metrics import REGISTRY
from repro.util.atomic import atomic_write_text

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(raw: str) -> str:
    """A dotted repro metric name as a valid OpenMetrics name."""
    name = _INVALID_CHARS.sub("_", raw)
    if not name or not _NAME_OK.match(name):
        name = "_" + name
    return name


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt_value(value: object) -> str:
    number = float(value)
    if math.isnan(number):
        return "NaN"
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_openmetrics(
    snapshot: "dict | None" = None,
    info: "dict | None" = None,
) -> str:
    """The registry snapshot as OpenMetrics exposition text.

    ``snapshot`` defaults to the live registry
    (:meth:`~repro.obs.metrics.MetricsRegistry.snapshot`); pass the
    ``metrics`` section of a trace file to export a recorded run.
    """
    if snapshot is None:
        snapshot = REGISTRY.snapshot()
    lines: list = []
    seen: set = set()

    def declare(name: str, kind: str) -> bool:
        if name in seen:   # a sanitized-name collision; first family wins
            return False
        seen.add(name)
        lines.append(f"# TYPE {name} {kind}")
        return True

    if info:
        if declare("repro_run", "info"):
            labels = ",".join(
                f'{metric_name(str(k))}="{_escape_label(v)}"'
                for k, v in sorted(info.items())
                if v is not None
            )
            lines.append(f"repro_run_info{{{labels}}} 1")

    for raw in sorted(snapshot.get("counters", {})):
        name = metric_name(raw)
        if declare(name, "counter"):
            value = _fmt_value(snapshot["counters"][raw])
            lines.append(f"{name}_total {value}")

    for raw in sorted(snapshot.get("gauges", {})):
        name = metric_name(raw)
        if declare(name, "gauge"):
            lines.append(f"{name} {_fmt_value(snapshot['gauges'][raw])}")

    for raw in sorted(snapshot.get("histograms", {})):
        data = snapshot["histograms"][raw]
        name = metric_name(raw)
        if not declare(name, "summary"):
            continue
        count = int(data.get("count", 0))
        lines.append(f"{name}_count {count}")
        lines.append(f"{name}_sum {_fmt_value(data.get('total', 0.0))}")
        for bound in ("min", "max"):
            value = data.get(bound)
            if value is not None and declare(f"{name}_{bound}", "gauge"):
                lines.append(f"{name}_{bound} {_fmt_value(value)}")

    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(
    path: "str | Path",
    snapshot: "dict | None" = None,
    info: "dict | None" = None,
) -> Path:
    """Write :func:`render_openmetrics` output to ``path``."""
    path = Path(path)
    # Atomic so a scraper never reads a half-written exposition.
    atomic_write_text(path, render_openmetrics(snapshot, info))
    return path
