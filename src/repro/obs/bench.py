"""Perf-trajectory recording outside the bench pytest session.

``benchmarks/conftest.py`` owns the canonical ``BENCH_approx.json``
schema and merge semantics, but only flushes points from a pytest
session.  The CLI's ``repro run --record-bench`` (notably the ``mega-1m``
end-to-end scale run, far too heavy for the regular bench suite) needs to
land points in the same trajectory — this module replicates the point
schema and the same-key-replaces merge so both writers stay compatible.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.util.atomic import atomic_write_text

#: Canonical point schema — keep in lockstep with
#: ``benchmarks/conftest.py:POINT_FIELDS``; metrics a run did not measure
#: are explicit ``None``, never absent.
POINT_FIELDS = (
    "scenario", "algorithm", "served", "wall_s", "workers", "scale",
    "speedup", "subsets_evaluated", "subsets_bound_skipped",
    "context_build_s", "bound_pass_ms", "gain_matrix_ms", "peak_rss_mb",
)

#: Default trajectory file: ``BENCH_approx.json`` at the repo root.
TRAJECTORY_PATH = Path(__file__).resolve().parents[3] / "BENCH_approx.json"


def normalize_point(point: dict) -> dict:
    """Project ``point`` onto the full schema, keeping unknown extras."""
    out = {name: point.get(name) for name in POINT_FIELDS}
    for key, value in point.items():
        if key not in out:
            out[key] = value
    return out


def _point_key(point: dict) -> tuple:
    return (point.get("scenario"), point.get("algorithm"),
            point.get("workers"), point.get("scale"))


def load_trajectory_points(path: "str | Path" = TRAJECTORY_PATH) -> list:
    """Points on disk; tolerates a missing, empty, or corrupt file."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, ValueError):
        return []
    points = data.get("points") if isinstance(data, dict) else None
    return points if isinstance(points, list) else []


def record_trajectory_point(
    scenario: str,
    algorithm: str,
    served: int,
    wall_s: float,
    workers: int = 1,
    scale: str = "bench",
    path: "str | Path" = TRAJECTORY_PATH,
    **extra: object,
) -> Path:
    """Merge one measured point into the trajectory file (atomic write).

    A point replaces an earlier one with the same ``(scenario, algorithm,
    workers, scale)`` key and appends otherwise — identical to the bench
    session's :class:`PerfTrajectory` flush, so CLI-recorded points and
    bench-recorded points coexist in one history the perf gate reads.
    """
    path = Path(path)
    point = normalize_point({
        "scenario": scenario,
        "algorithm": algorithm,
        "served": int(served),
        "wall_s": round(float(wall_s), 4),
        "workers": int(workers),
        "scale": scale,
        **extra,
    })
    merged = {
        _point_key(p): normalize_point(p) for p in load_trajectory_points(path)
    }
    merged[_point_key(point)] = point
    text = json.dumps({"points": list(merged.values())}, indent=2)
    atomic_write_text(path, text + "\n")
    return path
