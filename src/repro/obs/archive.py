"""Durable run archive under ``.repro/runs/`` (``repro runs ...``).

Every observed run can be recorded for later comparison: one directory
per run holding

* ``run.json`` — the manifest, the final metrics snapshot, per-span
  kernel aggregates (name → count / total ms / max ms) and, when
  available, the scenario identity
  (:meth:`~repro.scenario.spec.ScenarioSpec.scenario_key`);
* ``timeline.jsonl`` — the ring-buffered time series
  (:mod:`repro.obs.timeline` format), when one was recorded;
* ``profile.json`` + ``profile.speedscope.json`` — the sampling
  profiler's aggregate and its speedscope export, when one ran.

An ``index.json`` at the archive root lists every run (id, creation
time, command, algorithm, scenario key, wall seconds, which artifacts
exist) so ``repro runs list`` answers without touching the run dirs.
All writes go through :mod:`repro.util.atomic` — a crash mid-archive
leaves the previous index intact, never a truncated one.

``repro runs compare A B`` (and ``repro perf-diff --attribute`` for
trajectory files) answers *which kernel* regressed, not just that wall
time moved: the per-span totals of both runs are classified with the
same threshold semantics as :mod:`repro.obs.regress` and the dominant
regressing kernel is named.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.manifest import RunManifest
from repro.obs.timeline import read_timeline, write_timeline
from repro.util.atomic import atomic_write_json
from repro.util.tables import format_table

SCHEMA_VERSION = 1

#: Default archive root, relative to the working directory.
DEFAULT_ROOT = Path(".repro") / "runs"


def span_totals(spans: "list | None") -> dict:
    """Aggregate spans by name → ``{count, total_ms, max_ms}``.

    Accepts :class:`~repro.obs.trace.Span` objects or their dicts; this
    is the "kernel timing" view the archive stores and the comparison
    attributes regressions to.
    """
    totals: dict = {}
    for span in spans or []:
        record = span if isinstance(span, dict) else span.to_dict()
        agg = totals.setdefault(
            record["name"], {"count": 0, "total_ms": 0.0, "max_ms": 0.0}
        )
        ms = record["duration_ns"] / 1e6
        agg["count"] += 1
        agg["total_ms"] = round(agg["total_ms"] + ms, 3)
        agg["max_ms"] = round(max(agg["max_ms"], ms), 3)
    return totals


@dataclass(frozen=True)
class ArchivedRun:
    """One run loaded back from the archive."""

    id: str
    path: Path
    data: dict                      # run.json contents
    timeline: list = field(default_factory=list)
    profile: "dict | None" = None

    @property
    def manifest(self) -> "RunManifest | None":
        raw = self.data.get("manifest")
        return RunManifest.from_dict(raw) if raw else None

    @property
    def kernels(self) -> dict:
        return self.data.get("kernels", {})

    @property
    def metrics(self) -> dict:
        return self.data.get("metrics", {})


class RunArchive:
    """The ``.repro/runs/`` store."""

    def __init__(self, root: "str | Path" = DEFAULT_ROOT) -> None:
        self.root = Path(root)

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    # -- write -------------------------------------------------------------

    def record_run(
        self,
        manifest: RunManifest,
        metrics: "dict | None" = None,
        spans: "list | None" = None,
        timeline: "list | None" = None,
        profile: "object | None" = None,
        scenario_key: "tuple | list | None" = None,
        served: "int | None" = None,
    ) -> str:
        """Store one run; returns its id (``run-0001`` style).

        ``profile`` may be a :class:`~repro.obs.profile.SamplingProfiler`
        (its speedscope export is written too) or an already-serialized
        dict.
        """
        entries = self._load_index()
        run_id = f"run-{len(entries) + 1:04d}"
        while (self.root / run_id).exists():
            run_id = f"run-{int(run_id.split('-')[1]) + 1:04d}"
        run_dir = self.root / run_id
        run_dir.mkdir(parents=True, exist_ok=True)

        profile_dict: "dict | None" = None
        if profile is not None:
            profile_dict = (
                profile.to_dict() if hasattr(profile, "to_dict") else profile
            )
        record = {
            "schema": SCHEMA_VERSION,
            "id": run_id,
            "scenario_key": list(scenario_key) if scenario_key else None,
            "manifest": manifest.to_dict(),
            "metrics": metrics or {},
            "kernels": span_totals(spans),
            "served": served,
        }
        atomic_write_json(run_dir / "run.json", record)
        if timeline:
            write_timeline(run_dir / "timeline.jsonl", timeline)
        if profile_dict is not None:
            atomic_write_json(run_dir / "profile.json", profile_dict)
            if hasattr(profile, "write_speedscope"):
                profile.write_speedscope(
                    run_dir / "profile.speedscope.json",
                    name=f"{manifest.command} ({run_id})",
                )
        entries.append({
            "id": run_id,
            "created_unix": round(float(manifest.created_unix or time.time()), 3),
            "command": manifest.command,
            "algorithm": manifest.algorithm,
            "scenario_key": list(scenario_key) if scenario_key else None,
            "wall_s": round(float(manifest.wall_s or 0.0), 4),
            "served": served,
            "has_timeline": bool(timeline),
            "has_profile": profile_dict is not None,
        })
        atomic_write_json(
            self.index_path, {"schema": SCHEMA_VERSION, "runs": entries}
        )
        return run_id

    # -- read --------------------------------------------------------------

    def _load_index(self) -> list:
        try:
            data = json.loads(self.index_path.read_text())
        except (OSError, ValueError):
            return []
        runs = data.get("runs") if isinstance(data, dict) else None
        return runs if isinstance(runs, list) else []

    def list_runs(self) -> list:
        """Index entries, oldest first."""
        return self._load_index()

    def load(self, run_id: str) -> ArchivedRun:
        """Load one archived run (raises ``KeyError`` on an unknown id)."""
        run_dir = self.root / run_id
        run_json = run_dir / "run.json"
        if not run_json.exists():
            known = ", ".join(e["id"] for e in self._load_index()) or "none"
            raise KeyError(
                f"no archived run {run_id!r} under {self.root} "
                f"(known: {known})"
            )
        data = json.loads(run_json.read_text())
        timeline: list = []
        timeline_path = run_dir / "timeline.jsonl"
        if timeline_path.exists():
            _, timeline = read_timeline(timeline_path)
        profile = None
        profile_path = run_dir / "profile.json"
        if profile_path.exists():
            profile = json.loads(profile_path.read_text())
        return ArchivedRun(
            id=run_id, path=run_dir, data=data,
            timeline=timeline, profile=profile,
        )


# -- comparison --------------------------------------------------------------


@dataclass(frozen=True)
class CoverageCurve:
    """A coverage-over-time series extracted from one run's timeline.

    Dynamic-mission runs gauge ``dynamic.served`` / ``dynamic.active_users``
    (unit ``fraction``); plain mission runs fall back to the raw
    ``mission.served`` count (unit ``users``).  The time axis prefers the
    simulation clock gauge (``dynamic.clock_s``) over wall time, so two
    runs of the same spec align point-for-point.
    """

    unit: str                       # "fraction" or "users"
    points: tuple                   # ((t_s, value), ...)

    @property
    def values(self) -> list:
        return [v for _, v in self.points]

    @property
    def mean(self) -> float:
        values = self.values
        return sum(values) / len(values) if values else 0.0

    @property
    def min(self) -> float:
        return min(self.values) if self.points else 0.0

    @property
    def final(self) -> float:
        return self.points[-1][1] if self.points else 0.0

    def to_dict(self) -> dict:
        return {
            "unit": self.unit,
            "samples": len(self.points),
            "mean": round(self.mean, 4),
            "min": round(self.min, 4),
            "final": round(self.final, 4),
        }


def coverage_curve(run: ArchivedRun) -> "CoverageCurve | None":
    """Extract a run's coverage curve, or ``None`` when its timeline
    carries no coverage gauges."""
    points: list = []
    unit: "str | None" = None
    for snap in run.timeline or []:
        gauges = snap.get("gauges", {}) or {}
        t = float(gauges.get("dynamic.clock_s", snap.get("t_s", 0.0)))
        if "dynamic.served" in gauges:
            served = float(gauges["dynamic.served"])
            active = float(gauges.get("dynamic.active_users", 0.0))
            value = served / active if active else 1.0
            unit = unit or "fraction"
        elif "mission.served" in gauges:
            value = float(gauges["mission.served"])
            unit = unit or "users"
        else:
            continue
        points.append((t, value))
    if not points:
        return None
    return CoverageCurve(unit=unit, points=tuple(points))


@dataclass(frozen=True)
class CoverageDelta:
    """Coverage-curve movement between two archived dynamic runs."""

    baseline: CoverageCurve
    current: CoverageCurve

    @property
    def comparable(self) -> bool:
        return self.baseline.unit == self.current.unit

    def _delta(self, attr: str) -> "float | None":
        if not self.comparable:
            return None
        return getattr(self.current, attr) - getattr(self.baseline, attr)

    @property
    def mean_delta(self) -> "float | None":
        return self._delta("mean")

    @property
    def min_delta(self) -> "float | None":
        return self._delta("min")

    @property
    def final_delta(self) -> "float | None":
        return self._delta("final")

    def to_dict(self) -> dict:
        return {
            "baseline": self.baseline.to_dict(),
            "current": self.current.to_dict(),
            "mean_delta": self.mean_delta,
            "min_delta": self.min_delta,
            "final_delta": self.final_delta,
        }


@dataclass(frozen=True)
class KernelDelta:
    """One kernel's timing movement between two archived runs."""

    kernel: str
    baseline_ms: "float | None"
    current_ms: "float | None"
    delta: "float | None"           # relative, None when incomparable
    status: str                     # regress.REGRESSED / IMPROVED / ...

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "baseline_ms": self.baseline_ms,
            "current_ms": self.current_ms,
            "delta": self.delta,
            "status": self.status,
        }


@dataclass
class RunComparison:
    """``repro runs compare`` result: wall movement + kernel attribution."""

    baseline_id: str
    current_id: str
    threshold: float
    wall_baseline_s: float
    wall_current_s: float
    wall_status: str
    wall_delta: "float | None"
    kernels: list = field(default_factory=list)   # KernelDelta, worst first
    coverage: "CoverageDelta | None" = None       # when both runs carry curves

    @property
    def regressions(self) -> list:
        from repro.obs.regress import REGRESSED

        return [k for k in self.kernels if k.status == REGRESSED]

    @property
    def dominant_regression(self) -> "KernelDelta | None":
        """The kernel with the largest relative slowdown, if any."""
        worst = self.regressions
        return worst[0] if worst else None

    @property
    def exit_code(self) -> int:
        from repro.obs.regress import REGRESSED

        return 1 if (self.wall_status == REGRESSED or self.regressions) else 0

    def to_dict(self) -> dict:
        dominant = self.dominant_regression
        return {
            "baseline": self.baseline_id,
            "current": self.current_id,
            "threshold": self.threshold,
            "wall": {
                "baseline_s": self.wall_baseline_s,
                "current_s": self.wall_current_s,
                "status": self.wall_status,
                "delta": self.wall_delta,
            },
            "kernels": [k.to_dict() for k in self.kernels],
            "dominant_regression": dominant.kernel if dominant else None,
            "coverage": (
                self.coverage.to_dict() if self.coverage is not None else None
            ),
        }

    def to_text(self) -> str:
        from repro.obs.regress import REGRESSED

        rows = [[
            "wall",
            f"{self.wall_baseline_s * 1000:.1f}",
            f"{self.wall_current_s * 1000:.1f}",
            "-" if self.wall_delta is None else f"{self.wall_delta:+.1%}",
            (self.wall_status.upper() if self.wall_status == REGRESSED
             else self.wall_status),
        ]]
        for k in self.kernels:
            rows.append([
                k.kernel,
                "-" if k.baseline_ms is None else f"{k.baseline_ms:.2f}",
                "-" if k.current_ms is None else f"{k.current_ms:.2f}",
                "-" if k.delta is None else f"{k.delta:+.1%}",
                k.status.upper() if k.status == REGRESSED else k.status,
            ])
        table = format_table(
            ["kernel", "base ms", "now ms", "delta", "status"], rows,
            title=f"runs compare {self.baseline_id} -> {self.current_id} "
            f"(threshold ±{self.threshold:.0%})",
        )
        dominant = self.dominant_regression
        verdict = (
            f"REGRESSION: kernel '{dominant.kernel}' slowed "
            f"{dominant.delta:+.1%} "
            f"({dominant.baseline_ms:.2f} -> {dominant.current_ms:.2f} ms)"
            if dominant is not None else
            ("REGRESSION: wall time slowed "
             f"{self.wall_delta:+.1%} with no single kernel to blame"
             if self.wall_status == REGRESSED else "no regression")
        )
        text = f"{table}\n\n{verdict}"
        if self.coverage is not None:
            text = f"{text}\n\n{self._coverage_text()}"
        return text

    def _coverage_text(self) -> str:
        cov = self.coverage
        unit = cov.baseline.unit
        pct = unit == "fraction"

        def fmt(value: "float | None") -> str:
            if value is None:
                return "-"
            return f"{value:.1%}" if pct else f"{value:.0f}"

        def fmt_delta(value: "float | None") -> str:
            if value is None:
                return "-"
            return f"{value:+.1%}" if pct else f"{value:+.0f}"

        rows = [
            ["mean", fmt(cov.baseline.mean), fmt(cov.current.mean),
             fmt_delta(cov.mean_delta)],
            ["min", fmt(cov.baseline.min), fmt(cov.current.min),
             fmt_delta(cov.min_delta)],
            ["final", fmt(cov.baseline.final), fmt(cov.current.final),
             fmt_delta(cov.final_delta)],
        ]
        return format_table(
            ["coverage", "base", "now", "delta"], rows,
            title=(
                f"coverage over time ({unit}, "
                f"{len(cov.baseline.points)} vs {len(cov.current.points)} "
                "samples)"
            ),
        )


def compare_runs(
    baseline: ArchivedRun,
    current: ArchivedRun,
    threshold: float = 0.15,
) -> RunComparison:
    """Classify wall time and every shared kernel between two runs."""
    from repro.obs.regress import classify

    base_wall = float((baseline.manifest.wall_s if baseline.manifest else 0.0))
    cur_wall = float((current.manifest.wall_s if current.manifest else 0.0))
    wall_status, wall_delta = classify(base_wall, cur_wall, threshold)
    kernels: list = []
    names = sorted(set(baseline.kernels) | set(current.kernels))
    for name in names:
        base_ms = baseline.kernels.get(name, {}).get("total_ms")
        cur_ms = current.kernels.get(name, {}).get("total_ms")
        status, delta = classify(base_ms, cur_ms, threshold)
        kernels.append(KernelDelta(
            kernel=name, baseline_ms=base_ms, current_ms=cur_ms,
            delta=delta, status=status,
        ))
    from repro.obs.regress import IMPROVED, MISSING, NEW, REGRESSED

    rank = {REGRESSED: 0, NEW: 1, MISSING: 2, IMPROVED: 3}
    kernels.sort(key=lambda k: (rank.get(k.status, 4), -(k.delta or 0.0)))
    base_curve = coverage_curve(baseline)
    cur_curve = coverage_curve(current)
    coverage = (
        CoverageDelta(baseline=base_curve, current=cur_curve)
        if base_curve is not None and cur_curve is not None else None
    )
    return RunComparison(
        baseline_id=baseline.id, current_id=current.id, threshold=threshold,
        wall_baseline_s=base_wall, wall_current_s=cur_wall,
        wall_status=wall_status, wall_delta=wall_delta, kernels=kernels,
        coverage=coverage,
    )
