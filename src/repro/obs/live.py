"""Live solver telemetry: a heartbeat thread over the metrics registry.

Long ``appro_alg`` runs and figure sweeps enumerate ``C(m, s)`` anchor
subsets and are opaque while they run — the trace/metrics files of
:mod:`repro.obs` only become readable afterwards.  :class:`LiveReporter`
closes that gap: a daemon thread samples the registry counters at a fixed
interval and renders one progress line per sample with

* completion fraction (``approx.subsets_done`` over
  ``approx.subsets_planned``, both maintained parent-side by
  :mod:`repro.core.approx` so they are exact for any worker count);
* instantaneous throughput in subsets/s and an EWMA-smoothed ETA (the
  smoothing absorbs the burstiness of chunked parallel absorption);
* per-worker utilization derived from the ``approx.worker.<pid>.subsets``
  gauges the parent sets as it absorbs chunk results;
* stall detection — no movement on any watched counter for
  ``stall_intervals`` consecutive samples emits a warning line and bumps
  the ``live.stalls`` counter (once per stall episode, re-armed on the
  next movement).

The reporter is **off by default** and costs nothing when unused: no
thread is started, and no instrumentation site anywhere references this
module.  When stdout is not a TTY the in-place ``\\r`` rendering degrades
to one plain line per sample, so logs from CI or ``nohup`` stay readable.

The reporter only *reads* counters (and writes the one ``live.stalls``
counter + nothing else), so enabling it cannot change solver results or
the serial-vs-parallel metric equality the engine guarantees.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field

from repro.obs.metrics import REGISTRY

#: Counters whose movement proves the run is alive (stall detection
#: watches the sum of these plus the progress counter).
DEFAULT_ACTIVITY_COUNTERS = (
    "approx.subsets_done",
    "approx.subsets_evaluated",
    "approx.subsets_pruned",
    "greedy.oracle_calls",
    "flow.try_opens",
    "sweep.points",
)

PROGRESS_COUNTER = "approx.subsets_done"
TOTAL_COUNTER = "approx.subsets_planned"
WORKER_GAUGE_PREFIX = "approx.worker."
WORKER_GAUGE_SUFFIX = ".subsets"


@dataclass(frozen=True)
class LiveConfig:
    """Knobs of the heartbeat reporter."""

    interval_s: float = 1.0
    stall_intervals: int = 5          # samples without movement -> warning
    ewma_alpha: float = 0.3           # smoothing of the subsets/s rate
    stream: "object | None" = None    # defaults to sys.stderr at start()

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValueError(
                f"interval must be positive, got {self.interval_s}"
            )
        if self.stall_intervals < 1:
            raise ValueError(
                f"stall_intervals must be >= 1, got {self.stall_intervals}"
            )
        if not (0.0 < self.ewma_alpha <= 1.0):
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )


@dataclass
class LiveSample:
    """One heartbeat observation (returned by :meth:`LiveReporter.sample`
    so tests can drive the reporter without the thread)."""

    done: int
    total: int
    rate: float                      # EWMA subsets/s
    eta_s: "float | None"            # None until the rate is known
    activity: int                    # sum of the watched activity counters
    stalled: bool
    workers: dict = field(default_factory=dict)   # pid -> subsets absorbed
    counters: dict = field(default_factory=dict)  # extra rendered counters

    @property
    def fraction(self) -> "float | None":
        if self.total <= 0:
            return None
        return min(1.0, self.done / self.total)


def _fmt_eta(seconds: "float | None") -> str:
    if seconds is None:
        return "eta ?"
    seconds = max(0.0, seconds)
    if seconds >= 3600:
        return f"eta {seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"eta {int(seconds // 60)}m{int(seconds % 60):02d}s"
    return f"eta {seconds:.0f}s"


class LiveReporter:
    """Heartbeat progress reporter over :data:`repro.obs.REGISTRY`.

    Use as a context manager (``with LiveReporter(): ...``) or via
    :meth:`start` / :meth:`stop`.  The sampling thread is a daemon, so a
    crashed run never hangs on it; :meth:`stop` joins it and prints a
    final newline when it was rendering in place.
    """

    def __init__(
        self,
        config: "LiveConfig | None" = None,
        registry=REGISTRY,
        clock=time.monotonic,
        activity_counters: tuple = DEFAULT_ACTIVITY_COUNTERS,
        timeline: "object | None" = None,
    ) -> None:
        self.config = config if config is not None else LiveConfig()
        self.registry = registry
        self.clock = clock
        self.activity_counters = tuple(activity_counters)
        # An attached repro.obs.timeline.TimelineRecorder snapshots on
        # this reporter's cadence (one daemon serves both), so parallel
        # runs get per-worker series from the same absorbed gauges.
        self.timeline = timeline
        self.samples_taken = 0
        self.stall_warnings = 0
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        self._stream = None
        self._tty = False
        self._rate: "float | None" = None
        self._last_done: "int | None" = None
        self._last_time: "float | None" = None
        self._last_activity: "int | None" = None
        self._flat_samples = 0
        self._stall_announced = False
        self._rendered_inplace = False

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "LiveReporter":
        if self.running:
            raise RuntimeError("LiveReporter is already running")
        self._stream = (
            self.config.stream if self.config.stream is not None
            else sys.stderr
        )
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-live-reporter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=max(5.0, 4 * self.config.interval_s))
        self._thread = None
        # Take one closing sample so short runs still print a line, and
        # finish the in-place line with a newline.
        self._emit(self.sample())
        if self._rendered_inplace:
            self._write("\n")
        self._flush()

    def __enter__(self) -> "LiveReporter":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- sampling ----------------------------------------------------------

    def sample(self) -> LiveSample:
        """Take one observation (thread-free; used by the loop and tests)."""
        snap = self.registry.snapshot()
        counters = snap["counters"]
        gauges = snap["gauges"]
        now = self.clock()
        done = int(counters.get(PROGRESS_COUNTER, 0))
        total = int(counters.get(TOTAL_COUNTER, 0))
        activity = done + sum(
            int(counters.get(name, 0)) for name in self.activity_counters
        )

        if self._last_done is not None and self._last_time is not None:
            dt = now - self._last_time
            if dt > 0:
                instant = max(0.0, (done - self._last_done) / dt)
                alpha = self.config.ewma_alpha
                self._rate = (
                    instant if self._rate is None
                    else alpha * instant + (1 - alpha) * self._rate
                )
        self._last_done, self._last_time = done, now

        stalled = False
        if self._last_activity is not None and activity == self._last_activity:
            self._flat_samples += 1
            stalled = self._flat_samples >= self.config.stall_intervals
        else:
            self._flat_samples = 0
            self._stall_announced = False
        self._last_activity = activity

        eta = None
        if total > 0 and self._rate and self._rate > 0:
            eta = max(0, total - done) / self._rate

        workers = {}
        for name, value in gauges.items():
            if (name.startswith(WORKER_GAUGE_PREFIX)
                    and name.endswith(WORKER_GAUGE_SUFFIX)):
                pid = name[len(WORKER_GAUGE_PREFIX):-len(WORKER_GAUGE_SUFFIX)]
                workers[pid] = int(value)

        extras = {
            name: int(counters[name])
            for name in ("greedy.oracle_calls", "sweep.points")
            if counters.get(name)
        }
        if self.timeline is not None:
            self.timeline.record()
        self.samples_taken += 1
        return LiveSample(
            done=done, total=total,
            rate=self._rate or 0.0, eta_s=eta,
            activity=activity, stalled=stalled,
            workers=workers, counters=extras,
        )

    # -- rendering ---------------------------------------------------------

    def render(self, sample: LiveSample) -> str:
        """One progress line for ``sample`` (no trailing newline)."""
        parts = []
        if sample.fraction is not None:
            parts.append(
                f"{sample.fraction:6.1%} {sample.done}/{sample.total} subsets"
            )
        elif sample.done:
            parts.append(f"{sample.done} subsets")
        else:
            parts.append("warming up")
        parts.append(f"{sample.rate:8.1f} subsets/s")
        parts.append(_fmt_eta(sample.eta_s))
        for name, value in sorted(sample.counters.items()):
            parts.append(f"{name.split('.')[-1]} {value}")
        if sample.workers:
            share_total = sum(sample.workers.values()) or 1
            util = " ".join(
                f"w{pid}:{100 * n // share_total}%"
                for pid, n in sorted(sample.workers.items())
            )
            parts.append(util)
        line = "[live] " + " | ".join(parts)
        if sample.stalled:
            line += f" | STALLED ({self._flat_samples} quiet intervals)"
        return line

    def _emit(self, sample: LiveSample) -> None:
        line = self.render(sample)
        if self._tty:
            # In-place update: pad to clear the previous, longer line.
            self._write("\r" + line.ljust(100))
            self._rendered_inplace = True
        else:
            self._write(line + "\n")
        self._flush()
        if sample.stalled and not self._stall_announced:
            self._stall_announced = True
            self.stall_warnings += 1
            # The reporter is only ever alive alongside an enabled
            # registry, but guard anyway: a stall warning must never crash
            # the run it is reporting on.
            self.registry.inc("live.stalls")
            warning = (
                f"[live] WARNING: no counter movement for "
                f"{self._flat_samples} intervals "
                f"({self._flat_samples * self.config.interval_s:.0f}s) — "
                "solver may be stuck on one subset or starved of CPU"
            )
            prefix = "\n" if self._tty else ""
            self._write(prefix + warning + "\n")
            self._flush()

    def _write(self, text: str) -> None:
        try:
            self._stream.write(text)
        except (ValueError, OSError):
            pass  # stream closed mid-run; reporting must never raise

    def _flush(self) -> None:
        flush = getattr(self._stream, "flush", None)
        if flush is not None:
            try:
                flush()
            except (ValueError, OSError):
                pass

    # -- the thread body ---------------------------------------------------

    def _run(self) -> None:
        while not self._stop.wait(self.config.interval_s):
            self._emit(self.sample())
