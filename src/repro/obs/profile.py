"""Sampling profiler + memory watermarks (zero-dependency, off by default).

Three measurement tools for one run, none of which costs anything unless
explicitly started:

* :class:`SamplingProfiler` — a daemon thread walks
  ``sys._current_frames()`` at a configurable frequency and aggregates
  the observed call stacks into counts.  No interpreter hooks, no
  per-call overhead: the solver's own threads never execute a single
  extra instruction; the only cost is the GIL time the sampler spends
  copying frames (bounded by ``hz`` × stack depth — the bench suite
  pins it at ≤3% on the paper-headline workload).
* per-stage memory watermarks — :func:`stage_watermark` brackets a
  pipeline stage with ``tracemalloc`` peak tracking, nesting-safe, so a
  profiled run reports "the solve stage peaked at N MB of Python
  allocations".
* peak RSS — :func:`peak_rss_mb` reads ``resource.getrusage`` (with a
  ``/proc/self/status`` fallback), :func:`current_rss_mb` reads
  ``/proc/self/statm``; both return ``None`` rather than raise on
  platforms without the source.

While no profiler is active the module holds a single ``None`` slot:
:func:`stage_watermark` returns a shared no-op context manager (same
pattern as ``repro.obs.trace._NULL_SPAN``), no thread exists, and
``tracemalloc`` is never started — the disabled-overhead guard test
asserts all three.

Export formats: collapsed flamegraph text (``root;child;leaf count`` per
line, the ``flamegraph.pl`` / speedscope import format) and speedscope
JSON (https://www.speedscope.app file-format schema, ``sampled``
profile).  ``repro profile <scenario>`` drives all of this from the CLI.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro.util.atomic import atomic_write_text

#: The active profiler, or ``None`` — the one module-level slot every
#: guarded helper checks.
_active: "SamplingProfiler | None" = None

SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


@dataclass(frozen=True)
class ProfileConfig:
    """Knobs of the sampling profiler."""

    hz: float = 97.0              # sampling frequency (prime: avoids beats)
    memory: bool = True           # tracemalloc stage watermarks on/off
    max_stack_depth: int = 128    # frames kept per sample (deepest cut)

    def __post_init__(self) -> None:
        if not (0.0 < self.hz <= 10_000.0):
            raise ValueError(f"hz must be in (0, 10000], got {self.hz}")
        if self.max_stack_depth < 1:
            raise ValueError(
                f"max_stack_depth must be >= 1, got {self.max_stack_depth}"
            )


def _frame_label(code) -> str:
    """``module.py:function`` — short, stable across machines (no
    absolute paths, so archived profiles diff cleanly)."""
    return f"{Path(code.co_filename).name}:{code.co_name}"


class _NullWatermark:
    """Shared no-op stage watermark (no allocation while profiling is off)."""

    __slots__ = ()

    def __enter__(self) -> "_NullWatermark":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_WATERMARK = _NullWatermark()


class _StageWatermark:
    """Peak-traced-memory bracket around one named stage (nesting-safe:
    a child stage's peak folds into its parent's, so the parent never
    under-reports just because ``tracemalloc.reset_peak`` ran inside)."""

    __slots__ = ("profiler", "stage", "child_peak")

    def __init__(self, profiler: "SamplingProfiler", stage: str) -> None:
        self.profiler = profiler
        self.stage = stage
        self.child_peak = 0

    def __enter__(self) -> "_StageWatermark":
        import tracemalloc

        self.profiler._watermark_stack.append(self)
        if tracemalloc.is_tracing():
            tracemalloc.reset_peak()
        return self

    def __exit__(self, *exc_info: object) -> None:
        import tracemalloc

        peak = 0
        if tracemalloc.is_tracing():
            peak = tracemalloc.get_traced_memory()[1]
            tracemalloc.reset_peak()   # fresh window for the parent's tail
        peak = max(peak, self.child_peak)
        stack = self.profiler._watermark_stack
        if stack and stack[-1] is self:
            stack.pop()
        if stack:
            stack[-1].child_peak = max(stack[-1].child_peak, peak)
        previous = self.profiler.memory_stages.get(self.stage, 0)
        self.profiler.memory_stages[self.stage] = max(previous, peak)
        return None


def stage_watermark(stage: str):
    """Context manager recording the stage's peak traced memory.

    Returns the shared no-op singleton unless a profiler with
    ``memory=True`` is active — instrumentation sites (the pipeline
    stages, the mission replans, the subset enumeration) call this
    unconditionally and pay one global load while profiling is off.
    """
    profiler = _active
    if profiler is None or not profiler.config.memory:
        return _NULL_WATERMARK
    return _StageWatermark(profiler, stage)


def active() -> "SamplingProfiler | None":
    """The currently running profiler, or ``None``."""
    return _active


class SamplingProfiler:
    """Aggregating wall-clock sampler over ``sys._current_frames()``.

    Use as a context manager (``with SamplingProfiler(): solve()``) or
    via :meth:`start` / :meth:`stop`.  Only one profiler can be active
    per process (the module slot); a second :meth:`start` raises.

    After :meth:`stop`:

    * :attr:`stacks` — ``Counter`` of root-first frame-label tuples;
    * :attr:`samples` — total samples across all observed threads;
    * :attr:`memory_stages` — stage name → peak traced bytes (only
      stages bracketed by :func:`stage_watermark` while running);
    * :attr:`peak_rss_mb` — process high-water RSS at stop time.
    """

    def __init__(self, config: "ProfileConfig | None" = None) -> None:
        self.config = config if config is not None else ProfileConfig()
        self.samples = 0
        self.stacks: Counter = Counter()
        self.memory_stages: dict = {}      # stage -> peak traced bytes
        self.peak_rss_mb: "float | None" = None
        self.duration_s: float = 0.0
        self._watermark_stack: list = []
        self._thread: "threading.Thread | None" = None
        self._stop = threading.Event()
        self._started_tracemalloc = False
        self._start_time: "float | None" = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        global _active
        if _active is not None:
            raise RuntimeError("a SamplingProfiler is already active")
        if self.config.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
                self._started_tracemalloc = True
        _active = self
        self._start_time = time.perf_counter()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        global _active
        if self._thread is not None:
            self._stop.set()
            self._thread.join(timeout=max(5.0, 10.0 / self.config.hz))
            self._thread = None
        if self._start_time is not None:
            self.duration_s = time.perf_counter() - self._start_time
        if _active is self:
            _active = None
        if self._started_tracemalloc:
            import tracemalloc

            tracemalloc.stop()
            self._started_tracemalloc = False
        self.peak_rss_mb = peak_rss_mb()
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- sampling ----------------------------------------------------------

    def _run(self) -> None:
        interval = 1.0 / self.config.hz
        own_tid = threading.get_ident()
        while not self._stop.wait(interval):
            self.sample_once(skip_tid=own_tid)

    def sample_once(self, skip_tid: "int | None" = None) -> int:
        """Take one sample of every thread's stack (thread-free; the
        loop and the tests both call this).  Returns stacks recorded."""
        recorded = 0
        for tid, frame in sys._current_frames().items():
            if tid == skip_tid:
                continue
            stack: list = []
            while frame is not None and len(stack) < self.config.max_stack_depth:
                stack.append(_frame_label(frame.f_code))
                frame = frame.f_back
            if stack:
                stack.reverse()            # root first
                self.stacks[tuple(stack)] += 1
                self.samples += 1
                recorded += 1
        return recorded

    # -- aggregation -------------------------------------------------------

    def top_functions(self, limit: int = 10) -> list:
        """``(leaf frame label, self samples)`` pairs, hottest first."""
        leaves: Counter = Counter()
        for stack, count in self.stacks.items():
            leaves[stack[-1]] += count
        return leaves.most_common(limit)

    def memory_stages_mb(self) -> dict:
        """Stage watermarks in MB (insertion order preserved)."""
        return {
            stage: round(peak / (1024 * 1024), 3)
            for stage, peak in self.memory_stages.items()
        }

    # -- export ------------------------------------------------------------

    def collapsed(self) -> str:
        """Collapsed flamegraph text: one ``a;b;c count`` line per stack."""
        lines = [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(self.stacks.items())
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def speedscope(self, name: str = "repro profile") -> dict:
        """The profile in speedscope's ``sampled`` JSON format."""
        frame_index: dict = {}
        frames: list = []
        samples: list = []
        weights: list = []
        for stack, count in sorted(self.stacks.items()):
            indexed = []
            for label in stack:
                if label not in frame_index:
                    frame_index[label] = len(frames)
                    frames.append({"name": label})
                indexed.append(frame_index[label])
            samples.append(indexed)
            weights.append(count)
        total = sum(weights)
        return {
            "$schema": SPEEDSCOPE_SCHEMA,
            "name": name,
            "exporter": "repro.obs.profile",
            "shared": {"frames": frames},
            "profiles": [{
                "type": "sampled",
                "name": name,
                "unit": "none",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }],
        }

    def to_dict(self) -> dict:
        """JSON-safe summary (what the run archive stores)."""
        return {
            "schema": 1,
            "hz": self.config.hz,
            "samples": self.samples,
            "duration_s": round(self.duration_s, 4),
            "stacks": [
                {"frames": list(stack), "count": count}
                for stack, count in self.stacks.most_common()
            ],
            "memory_stages_mb": self.memory_stages_mb(),
            "peak_rss_mb": self.peak_rss_mb,
        }

    def write_speedscope(
        self, path: "str | Path", name: str = "repro profile"
    ) -> Path:
        path = Path(path)
        atomic_write_text(path, json.dumps(self.speedscope(name)) + "\n")
        return path

    def write_collapsed(self, path: "str | Path") -> Path:
        path = Path(path)
        atomic_write_text(path, self.collapsed())
        return path


# -- process memory (no psutil) ----------------------------------------------


def peak_rss_mb() -> "float | None":
    """High-water resident set size of this process in MB.

    ``resource.getrusage`` first (``ru_maxrss`` is KiB on Linux, bytes on
    macOS), then ``/proc/self/status`` ``VmHWM``; ``None`` when neither
    source exists — observability never raises.
    """
    try:
        import resource

        ru_maxrss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        if ru_maxrss > 0:
            divisor = 1024 * 1024 if sys.platform == "darwin" else 1024
            return round(ru_maxrss / divisor, 3)
    except (ImportError, OSError, ValueError):
        pass
    try:
        for line in Path("/proc/self/status").read_text().splitlines():
            if line.startswith("VmHWM:"):
                return round(int(line.split()[1]) / 1024, 3)
    except (OSError, ValueError, IndexError):
        pass
    return None


def current_rss_mb() -> "float | None":
    """Resident set size right now in MB (``/proc/self/statm``), or the
    peak as a fallback, or ``None``."""
    try:
        import os

        fields = Path("/proc/self/statm").read_text().split()
        return round(int(fields[1]) * os.sysconf("SC_PAGESIZE") / (1024 * 1024), 3)
    except (OSError, ValueError, IndexError):
        return peak_rss_mb()
