"""Metrics registry: counters, gauges, histograms.

Counters are exact and deterministic: for a fixed problem and seed the
instrumented solvers increment them identically whether they run serially
or fan out over a process pool (workers ship their registry snapshot back
with each chunk and the parent merges — addition is commutative, so the
merged totals match the serial run; a property test pins this).

Gauges record "last observed value"; histograms keep ``count / total /
min / max`` (no samples — bounded memory even on million-call paths).

All module-level helpers exported through :mod:`repro.obs`
(``counter_inc`` etc.) are guarded by the tracer's enabled flag and no-op
in a single boolean check while observability is off.
"""

from __future__ import annotations

import threading


class Histogram:
    """Bounded-memory summary of an observed distribution."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge_dict(self, data: dict) -> None:
        if not data.get("count"):
            return
        self.count += int(data["count"])
        self.total += float(data["total"])
        self.min = min(self.min, float(data["min"]))
        self.max = max(self.max, float(data["max"]))


class MetricsRegistry:
    """A named bag of counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}

    # -- write ------------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    # -- read -------------------------------------------------------------

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def counters(self) -> dict:
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> dict:
        """Plain-dict (picklable, JSON-safe) view of everything."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.to_dict() for name, h in self._histograms.items()
                },
            }

    @property
    def empty(self) -> bool:
        with self._lock:
            return not (self._counters or self._gauges or self._histograms)

    # -- lifecycle --------------------------------------------------------

    def merge(self, snapshot: "dict | None") -> None:
        """Fold a worker's :meth:`snapshot` into this registry.

        Counters and histograms add; gauges take the incoming value (last
        writer wins — workers should avoid gauges where determinism across
        worker counts matters).
        """
        if not snapshot:
            return
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0) + value
            self._gauges.update(snapshot.get("gauges", {}))
            for name, data in snapshot.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram()
                hist.merge_dict(data)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def export_and_reset(self) -> dict:
        """Atomic snapshot-then-clear (workers ship deltas per chunk)."""
        with self._lock:
            out = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: h.to_dict() for name, h in self._histograms.items()
                },
            }
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        return out


#: The process-global registry all instrumentation writes to.
REGISTRY = MetricsRegistry()
