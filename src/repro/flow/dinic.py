"""Dinic's maximum-flow algorithm (integral capacities).

This is the "algorithm in [1]" the paper invokes for the maximum assignment
problem of Section II-D: build the flow network s -> users -> locations -> t
and find an integral max flow.  Dinic runs in O(V^2 E) generally and
O(E sqrt(V)) on unit-capacity bipartite networks, which is the regime here.
"""

from __future__ import annotations

from collections import deque


class Dinic:
    """Max-flow solver over an explicit arc list with residual capacities.

    Arcs are stored as parallel arrays; arc ``i`` and its residual twin
    ``i ^ 1`` are adjacent, the usual trick for O(1) residual updates.
    """

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 2:
            raise ValueError(f"need at least 2 nodes, got {num_nodes}")
        self.num_nodes = num_nodes
        self._head: list = []   # arc target
        self._cap: list = []    # residual capacity
        self._out: list = [[] for _ in range(num_nodes)]  # arc ids per node

    def add_edge(self, u: int, v: int, capacity: int) -> int:
        """Add directed arc u -> v; returns the arc id (for flow queries)."""
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise IndexError(f"arc ({u}, {v}) outside node range")
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        arc_id = len(self._head)
        self._head.append(v)
        self._cap.append(capacity)
        self._out[u].append(arc_id)
        self._head.append(u)
        self._cap.append(0)
        self._out[v].append(arc_id + 1)
        return arc_id

    def flow_on(self, arc_id: int) -> int:
        """Flow currently pushed through arc ``arc_id`` (its twin's residual)."""
        return self._cap[arc_id ^ 1]

    def _bfs_levels(self, source: int, sink: int) -> "list | None":
        level = [-1] * self.num_nodes
        level[source] = 0
        queue: deque = deque([source])
        while queue:
            u = queue.popleft()
            for arc in self._out[u]:
                v = self._head[arc]
                if self._cap[arc] > 0 and level[v] < 0:
                    level[v] = level[u] + 1
                    queue.append(v)
        return level if level[sink] >= 0 else None

    def _dfs_push(self, u: int, sink: int, limit: int,
                  level: list, it: list) -> int:
        if u == sink:
            return limit
        pushed_total = 0
        while it[u] < len(self._out[u]):
            arc = self._out[u][it[u]]
            v = self._head[arc]
            if self._cap[arc] > 0 and level[v] == level[u] + 1:
                pushed = self._dfs_push(
                    v, sink, min(limit - pushed_total, self._cap[arc]), level, it
                )
                if pushed > 0:
                    self._cap[arc] -= pushed
                    self._cap[arc ^ 1] += pushed
                    pushed_total += pushed
                    if pushed_total == limit:
                        return pushed_total
            it[u] += 1
        return pushed_total

    def max_flow(self, source: int, sink: int) -> int:
        """Compute the max flow value from ``source`` to ``sink``."""
        if source == sink:
            raise ValueError("source and sink must differ")
        total = 0
        inf = 1 << 60
        while True:
            level = self._bfs_levels(source, sink)
            if level is None:
                return total
            it = [0] * self.num_nodes
            while True:
                pushed = self._dfs_push(source, sink, inf, level, it)
                if pushed == 0:
                    break
                total += pushed

    def min_cut_reachable(self, source: int) -> set:
        """Nodes reachable from ``source`` in the residual graph.

        Call after :meth:`max_flow`; the arcs from this set to its complement
        form a minimum cut (used by property tests to check optimality).
        """
        seen = {source}
        queue: deque = deque([source])
        while queue:
            u = queue.popleft()
            for arc in self._out[u]:
                v = self._head[arc]
                if self._cap[arc] > 0 and v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen
