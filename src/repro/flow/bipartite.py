"""Incremental capacitated user-to-station assignment with rollback.

Algorithm 2 evaluates the marginal gain of deploying UAV ``k`` at every
feasible location before committing one.  Re-solving the Section II-D flow
network from scratch for each evaluation costs O(K n^2); this engine
instead maintains a maximum assignment and, for a tentative new station,
augments it in two phases:

1. *direct phase* — grab unassigned covered users until capacity, as one
   bitset subtraction plus a batched array update;
2. *chain phase* — one alternating-path augmentation per remaining unit
   of capacity, stopping at the first failure.

The chain phase ships two interchangeable search strategies:

* ``chain="bfs"`` (default) — a layered breadth-first search over user
  *bitsets*.  Each open station keeps its cover and its currently
  assigned users as arbitrary-precision integer bitsets (bit ``u`` =
  user ``u``), so expanding a station is one word-parallel AND against
  the not-yet-visited mask, the free-user test is another, and owner
  discovery intersects the reached set with each station's assigned
  bitset — a handful of machine-word loops per layer instead of a Python
  walk over thousands of users.  Reached stations remember the *witness*
  user through which they were reached, which reconstructs the
  alternating path for reassignment.  (Python ints beat packed numpy
  arrays here: at a few thousand users a bitset AND is ~100ns with no
  per-call dispatch overhead.)
* ``chain="dfs"`` — the original Kuhn-style scalar DFS, kept as the
  serial reference implementation: differential tests pin the BFS
  engine's served counts against it (both maintain exact maximum
  assignments; only *which* equal-value assignment is realised differs).

Either way the result is an *exact* maximum assignment after every open:
each augmentation increases the max flow by exactly one, and a failed
search proves no further augmentation through the new station exists.

``try_open``/``rollback`` journal all mutations so thousands of candidate
evaluations reuse one engine.  On top of that, :meth:`fork` opens a
*warm-start scope*: it snapshots the committed state (flat-array copies,
O(num_users)) so :meth:`rollback_fork` restores the forked state exactly
no matter how many stations were opened in between.  The subset sweep
uses this to evaluate adjacent anchor subsets on one engine instead of
rebuilding it from scratch per subset.

Batched scoring: :meth:`direct_gain_bounds` evaluates the direct-phase
lower bound for a whole candidate matrix of packed cover bitsets
(:mod:`repro.util.bits` layout) in one masked popcount — the greedy's
per-round candidate ranking.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro import obs
from repro.util.bits import popcount_rows

# Bit-reversal per byte: maps the little-endian bytes of an LSB-first
# integer bitset onto numpy's MSB-first packbits layout.
_BYTE_REVERSE = np.array(
    [int(f"{b:08b}"[::-1], 2) for b in range(256)], dtype=np.uint8
)


class IncrementalAssignment:
    """Maximum capacitated assignment of users to dynamically added stations.

    Users are integers ``0..num_users-1``; stations are arbitrary hashable
    keys (Algorithm 2 uses ``(uav_index, location_index)``).  Each user may
    be assigned to at most one station that covers it; each station serves
    at most its capacity.

    ``chain`` selects the augmentation strategy (see the module docstring);
    ``None`` resolves to :attr:`DEFAULT_CHAIN`.
    """

    #: Class-level default for the chain strategy.  The bench harness flips
    #: this to ``"dfs"`` to time the scalar reference loop.
    DEFAULT_CHAIN = "bfs"

    def __init__(self, num_users: int, chain: "str | None" = None) -> None:
        if num_users < 0:
            raise ValueError(f"num_users must be non-negative, got {num_users}")
        if chain is None:
            chain = type(self).DEFAULT_CHAIN
        if chain not in ("bfs", "dfs"):
            raise ValueError(f"chain must be 'bfs' or 'dfs', got {chain!r}")
        self.num_users = num_users
        self._chain = chain
        self._assigned_id = np.full(num_users, -1, dtype=np.int64)
        self._assigned_mask = np.zeros(num_users, dtype=bool)
        self._assigned_int = 0        # bitset of assigned users (bit u = user u)
        # Station storage, slot-indexed in open order.  The pending station
        # is always the newest slot, so rollback pops from the tail.
        self._names: list = []        # slot -> station key
        self._slots: dict = {}        # station key -> slot
        self._cover_arrs: list = []   # slot -> np.int64 cover array
        self._cover_ints: list = []   # slot -> cover bitset (bfs mode)
        self._slot_ints: list = []    # slot -> assigned-user bitset (bfs mode)
        self._caps: list = []
        self._loads: list = []
        # Scalar-reference (dfs) bookkeeping only.
        self._cover_lists: list = []
        self._assigned_list: list = (
            [-1] * num_users if chain == "dfs" else []
        )
        self._visit_stamp: list = [0] * num_users if chain == "dfs" else []
        self._stamp = 0
        self._served = 0
        self._pending: "Hashable | None" = None
        self._journal: list = []
        self._fork_state: "tuple | None" = None
        self._cover_int_cache: dict = {}

    # -- read API ---------------------------------------------------------

    @property
    def served_count(self) -> int:
        """Number of users currently assigned (the max-flow value)."""
        return self._served

    def station_of(self, user: int) -> "Hashable | None":
        slot = int(self._assigned_id[user])
        return None if slot < 0 else self._names[slot]

    def load_of(self, station: Hashable) -> int:
        return self._loads[self._slots[station]]

    def stations(self) -> list:
        return list(self._names)

    def assignment(self) -> dict:
        """Mapping station -> sorted list of assigned users."""
        out: dict = {station: [] for station in self._names}
        names = self._names
        for u in np.nonzero(self._assigned_mask)[0]:
            out[names[self._assigned_id[u]]].append(int(u))
        return out

    def direct_gain_bound(self, covered_users: "Sequence | np.ndarray",
                          capacity: int) -> int:
        """Lower bound on the gain of opening a station with this coverage:
        the unassigned covered users it could take directly, capped by
        capacity.  (The exact gain adds alternating-chain augmentations on
        top.)  Vectorised; O(|cover|)."""
        cover = np.asarray(covered_users, dtype=np.int64)
        if cover.size == 0 or capacity <= 0:
            return 0
        free = int(cover.size - np.count_nonzero(self._assigned_mask[cover]))
        return min(capacity, free)

    def direct_gain_bounds(
        self, cover_bits: np.ndarray, capacities: "int | np.ndarray"
    ) -> np.ndarray:
        """Batched :meth:`direct_gain_bound` over a matrix of packed cover
        bitsets (shape ``(..., words)``, :func:`numpy.packbits` layout —
        e.g. rows of :attr:`repro.core.context.SolverContext.coverage_bits`).

        One masked popcount ranks a whole candidate set at once — the
        greedy's per-round gain matrix.  Values equal calling
        :meth:`direct_gain_bound` per row."""
        bits = np.asarray(cover_bits, dtype=np.uint8)
        # The packed free-user row comes straight from the assigned-int
        # bitset: its little-endian bytes, bit-reversed per byte, are
        # exactly ``np.packbits(assigned_mask)``.  Surplus pad bits end up
        # set in the inverse but every cover row is zero there.
        nbytes = (self.num_users + 7) >> 3
        raw = np.frombuffer(
            self._assigned_int.to_bytes(nbytes, "little"), dtype=np.uint8
        )
        free_bits = ~_BYTE_REVERSE[raw]
        avail = popcount_rows(bits & free_bits)
        return np.minimum(np.asarray(capacities, dtype=np.int64), avail)

    # -- warm-start scope -------------------------------------------------

    def fork(self) -> None:
        """Open a warm-start scope: snapshot the committed state so that
        :meth:`rollback_fork` restores exactly it, whatever stations are
        opened and however users are reassigned in between.  One scope at
        a time; the scope must start with no pending station.

        The snapshot is O(num_users) flat-array copies plus shallow list
        copies of the per-station scalars — a few microseconds — so a
        subset sweep forks/rolls back per subset instead of rebuilding
        the engine (or replaying a mutation journal) each time."""
        if self._pending is not None:
            raise RuntimeError("cannot fork with a pending station")
        if self._fork_state is not None:
            raise RuntimeError("a fork is already active")
        self._fork_state = (
            self._assigned_id.copy(),
            self._assigned_mask.copy(),
            self._assigned_int,
            list(self._slot_ints),
            list(self._loads),
            len(self._names),
            self._served,
            list(self._assigned_list) if self._chain == "dfs" else None,
        )

    def rollback_fork(self) -> None:
        """Restore the exact state captured by :meth:`fork`.  A
        still-pending station is rolled back first."""
        if self._fork_state is None:
            raise RuntimeError("no active fork to roll back")
        if self._pending is not None:
            self.rollback()
        (aid, amask, aint, sints, loads, nslots, served,
         alist) = self._fork_state
        self._fork_state = None
        np.copyto(self._assigned_id, aid)
        np.copyto(self._assigned_mask, amask)
        self._assigned_int = aint
        self._slot_ints = sints
        self._loads = loads
        self._served = served
        for name in self._names[nslots:]:
            del self._slots[name]
        del self._names[nslots:]
        del self._cover_arrs[nslots:]
        del self._caps[nslots:]
        if self._chain == "dfs":
            self._assigned_list = alist
            del self._cover_lists[nslots:]
        else:
            del self._cover_ints[nslots:]

    def release_fork(self) -> None:
        """Close the warm-start scope keeping all its mutations."""
        if self._fork_state is None:
            raise RuntimeError("no active fork to release")
        self._fork_state = None

    # -- mutation API -----------------------------------------------------

    def try_open(
        self, station: Hashable, covered_users: "Sequence | np.ndarray",
        capacity: int
    ) -> int:
        """Tentatively open ``station`` and return the exact gain in served
        users.  Must be followed by :meth:`commit` or :meth:`rollback`.
        """
        if self._pending is not None:
            raise RuntimeError(
                f"station {self._pending!r} is pending; commit or rollback first"
            )
        if station in self._slots:
            raise ValueError(f"station {station!r} already open")
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        cover = np.asarray(covered_users, dtype=np.int64)
        if cover.ndim != 1:
            raise ValueError("covered_users must be one-dimensional")

        if self._chain == "dfs":
            self._validate_cover(cover)
            slot = self._push_station(station, cover, capacity)
            self._cover_lists.append([int(u) for u in cover])
            gain = self._open_direct_scalar(slot, capacity)
            augment = self._augment_dfs
        else:
            # Cover bitsets recur across a sweep (same location, same
            # radio), so memoise the index-array -> int conversion; a
            # cache hit also proves the indices were validated before.
            key = cover.tobytes()
            cint = self._cover_int_cache.get(key)
            if cint is None:
                self._validate_cover(cover)
                cint = self._users_to_int(cover)
                self._cover_int_cache[key] = cint
            slot = self._push_station(station, cover, capacity)
            self._cover_ints.append(cint)
            self._slot_ints.append(0)
            gain = self._open_direct_batch(slot, capacity)
            augment = self._augment_bfs
        direct = gain
        # Chain phase: alternating-path augmentations for the remainder.
        # Successive augmentations of one open usually work along the same
        # station chain, so each successful search leaves its chain behind
        # and the next round first revalidates it with a couple of bitset
        # ANDs (fresh witness users) before paying for a full search.
        chain: "list | None" = None
        while gain < capacity:
            if chain is not None and self._replay_chain(chain):
                gain += 1
                continue
            chain = [] if self._chain == "bfs" else None
            if not augment(slot, chain):
                break
            gain += 1
        obs.counter_inc("flow.try_opens")
        obs.counter_inc("flow.direct_assignments", direct)
        obs.counter_inc("flow.chain_augmentations", gain - direct)
        return gain

    def commit(self) -> None:
        """Keep the pending station and all reassignments it caused."""
        if self._pending is None:
            raise RuntimeError("no pending station to commit")
        self._pending = None
        self._journal = []

    def rollback(self) -> None:
        """Undo the pending station entirely."""
        if self._pending is None:
            raise RuntimeError("no pending station to roll back")
        for entry in reversed(self._journal):
            if entry[0] == "direct":
                self._undo_direct(entry[1], entry[2], entry[3])
            else:
                self._undo(entry[0], entry[1])
        station = self._pending
        self._pending = None
        self._journal = []
        self._pop_station(station)

    def open(
        self, station: Hashable, covered_users: "Sequence | np.ndarray",
        capacity: int
    ) -> int:
        """Open a station permanently; returns the gain."""
        gain = self.try_open(station, covered_users, capacity)
        self.commit()
        return gain

    # -- internals --------------------------------------------------------

    def _validate_cover(self, cover: np.ndarray) -> None:
        if cover.size:
            bad = (cover < 0) | (cover >= self.num_users)
            if bad.any():
                u = int(cover[bad][0])
                raise IndexError(f"user {u} outside [0, {self.num_users})")

    def _push_station(self, station: Hashable, cover: np.ndarray,
                      capacity: int) -> int:
        slot = len(self._names)
        self._pending = station
        self._journal = []
        self._names.append(station)
        self._slots[station] = slot
        self._cover_arrs.append(cover)
        self._caps.append(capacity)
        self._loads.append(0)
        return slot

    def _users_to_int(self, users: np.ndarray) -> int:
        """User-index array -> integer bitset (bit ``u`` = user ``u``)."""
        mask = np.zeros(self.num_users, dtype=bool)
        if users.size:
            mask[users] = True
        return int.from_bytes(
            np.packbits(mask, bitorder="little").tobytes(), "little"
        )

    def _int_to_mask(self, bitset: int) -> np.ndarray:
        """Integer bitset -> boolean user mask."""
        nbytes = (self.num_users + 7) >> 3
        raw = np.frombuffer(bitset.to_bytes(nbytes, "little"), dtype=np.uint8)
        return np.unpackbits(
            raw, count=self.num_users, bitorder="little"
        ).view(bool)

    def _int_to_users(self, bitset: int) -> np.ndarray:
        """Integer bitset -> sorted user-index array."""
        return np.nonzero(self._int_to_mask(bitset))[0]

    def _open_direct_batch(self, slot: int, capacity: int) -> int:
        """Direct phase as one bitset subtraction: every free covered user
        up to capacity, lowest user indices first."""
        if capacity == 0:
            return 0
        take = self._cover_ints[slot] & ~self._assigned_int
        if not take:
            return 0
        k = take.bit_count()
        if k > capacity:
            take = self._users_to_int(self._int_to_users(take)[:capacity])
            k = capacity
        mask = self._int_to_mask(take)
        self._journal.append(("direct", slot, take, k))
        self._assigned_id[mask] = slot
        self._assigned_mask |= mask
        self._assigned_int |= take
        self._slot_ints[slot] |= take
        self._loads[slot] += k
        self._served += k
        return k

    def _open_direct_scalar(self, slot: int, capacity: int) -> int:
        """Scalar-reference direct phase: first ``capacity`` unassigned
        users in cover order."""
        assigned = self._assigned_list
        gain = 0
        for u in self._cover_lists[slot]:
            if gain == capacity:
                break
            if assigned[u] < 0:
                self._record_and_assign(u, slot)
                self._served += 1
                gain += 1
        return gain

    def _augment_bfs(self, root: int, chain: "list | None" = None) -> bool:
        """One unit of augmentation ending at ``root`` (which has spare
        capacity), via layered BFS over user bitsets.

        A layer holds stations reachable by an alternating path from
        ``root``.  Expanding station ``st`` masks its cover bitset against
        the users already visited; a surviving *free* user completes an
        augmenting path, while surviving assigned users hand reachability
        to their owner stations (``reach & slot_bitset`` per station, each
        remembering ``st`` and a witness user).  A failed search proves no
        augmentation through ``root`` exists — same exact maximum as the
        scalar DFS reference; only which equal-value assignment is
        realised may differ.
        """
        covers = self._cover_ints
        slot_ints = self._slot_ints
        assigned = self._assigned_int
        num_slots = len(covers)
        journal = self._journal
        aid = self._assigned_id
        loads = self._loads
        parent_station: dict = {}
        parent_user: dict = {}
        seen = {root}
        seen_union = slot_ints[root]
        visited = 0
        frontier = [root]
        while frontier:
            nxt: list = []
            for st in frontier:
                reach = covers[st] & ~visited
                if not reach:
                    continue
                free = reach & ~assigned
                if free:
                    # Unwind: the free user joins st, then each station up
                    # the parent chain takes its witness user from its
                    # child (inlined _record_and_assign — this is the
                    # hottest path in the whole solver).
                    user = (free & -free).bit_length() - 1
                    journal.append((user, -1))
                    slot_ints[st] |= 1 << user
                    self._assigned_int |= 1 << user
                    self._assigned_mask[user] = True
                    aid[user] = st
                    loads[st] += 1
                    if chain is not None:
                        chain.append(st)
                    while st != root:
                        u = parent_user[st]
                        ps = parent_station[st]
                        journal.append((u, st))
                        bit = 1 << u
                        slot_ints[ps] |= bit
                        slot_ints[st] &= ~bit
                        loads[st] -= 1
                        loads[ps] += 1
                        aid[u] = ps
                        st = ps
                        if chain is not None:
                            chain.append(st)
                    self._served += 1
                    return True
                visited |= reach
                # Owner discovery is the expensive part (one AND per open
                # station); skip it entirely when every reached user
                # belongs to an already-seen station.
                if not reach & ~seen_union:
                    continue
                for owner in range(num_slots):
                    if owner in seen:
                        continue
                    hit = reach & slot_ints[owner]
                    if hit:
                        seen.add(owner)
                        seen_union |= slot_ints[owner]
                        parent_station[owner] = st
                        parent_user[owner] = (hit & -hit).bit_length() - 1
                        nxt.append(owner)
            frontier = nxt
        return False

    def _replay_chain(self, chain: list) -> bool:
        """Revalidate the station chain left by the previous augmentation
        (``chain[0]`` = leaf where the free user joined, ``chain[-1]`` =
        the root with spare capacity) and re-augment along it with fresh
        witness users: one AND per link instead of a full search.  Returns
        ``False`` with the state untouched when any link lost its witness
        or the leaf has no free covered user left.  Every replayed path is
        a valid alternating chain, so the exact maximum is unaffected —
        the closing failed full search still certifies maximality.
        """
        covers = self._cover_ints
        slot_ints = self._slot_ints
        leaf = chain[0]
        free = covers[leaf] & ~self._assigned_int
        if not free:
            return False
        wits = []
        for i in range(len(chain) - 1):
            hit = covers[chain[i + 1]] & slot_ints[chain[i]]
            if not hit:
                return False
            wits.append((hit & -hit).bit_length() - 1)
        journal = self._journal
        aid = self._assigned_id
        loads = self._loads
        user = (free & -free).bit_length() - 1
        journal.append((user, -1))
        slot_ints[leaf] |= 1 << user
        self._assigned_int |= 1 << user
        self._assigned_mask[user] = True
        aid[user] = leaf
        loads[leaf] += 1
        for i, u in enumerate(wits):
            child = chain[i]
            parent = chain[i + 1]
            journal.append((u, child))
            bit = 1 << u
            slot_ints[parent] |= bit
            slot_ints[child] &= ~bit
            loads[child] -= 1
            loads[parent] += 1
            aid[u] = parent
        self._served += 1
        return True

    def _augment_dfs(self, root: int, chain: "list | None" = None) -> bool:
        """The scalar reference: Kuhn-style alternating-path DFS.

        A path is root -> u1 (covered by root, assigned to T1) -> T1 -> u2
        (covered by T1, assigned to T2) -> ... -> uk unassigned; augmenting
        reassigns each user one station up the chain, netting exactly one
        newly served user.  A failed search leaves the assignment untouched
        and proves no augmentation through ``root`` exists.
        """
        self._stamp += 1
        stamp = self._stamp
        visit = self._visit_stamp
        assigned_to = self._assigned_list
        covers = self._cover_lists

        # Iterative DFS with both sides marked per augmentation: users via
        # the stamp array, stations via ``explored``.  A station is explored
        # at most once — by the time it is popped its entire cover is
        # stamped, so re-exploring it can never find anything new (standard
        # Kuhn left-vertex marking).  Total work is O(E).
        #
        # A frame is [station, scan_index, claim_user]: ``claim_user`` is
        # the user (currently assigned to ``station``) that the *parent*
        # frame's station wants to take over.
        explored = {root}
        frames: list = [[root, 0, -1]]
        while frames:
            frame = frames[-1]
            station, idx = frame[0], frame[1]
            cover = covers[station]
            cover_len = len(cover)
            pushed = False
            while idx < cover_len:
                u = cover[idx]
                idx += 1
                if visit[u] == stamp:
                    continue
                visit[u] = stamp
                owner = assigned_to[u]
                if owner < 0:
                    # Success: u joins this station; unwind the chain, each
                    # parent taking its claimed user from its child.
                    frame[1] = idx
                    self._record_and_assign(u, station)
                    for depth in range(len(frames) - 1, 0, -1):
                        child = frames[depth]
                        parent_station = frames[depth - 1][0]
                        self._record_and_assign(child[2], parent_station)
                    self._served += 1
                    return True
                if owner not in explored:
                    explored.add(owner)
                    frame[1] = idx
                    frames.append([owner, 0, u])
                    pushed = True
                    break
            if not pushed:
                frame[1] = idx
                frames.pop()
        return False

    def _record_and_assign(self, user: int, slot: int) -> None:
        old = int(self._assigned_id[user])
        if self._pending is not None:
            self._journal.append((user, old))
        if self._chain == "dfs":
            self._assigned_list[user] = slot
        else:
            bit = 1 << user
            self._slot_ints[slot] |= bit
            if old >= 0:
                self._slot_ints[old] &= ~bit
            else:
                self._assigned_int |= bit
        if old >= 0:
            self._loads[old] -= 1
        else:
            self._assigned_mask[user] = True
        self._assigned_id[user] = slot
        self._loads[slot] += 1

    def _undo(self, user: int, old: int) -> None:
        cur = int(self._assigned_id[user])
        self._loads[cur] -= 1
        self._assigned_id[user] = old
        if self._chain == "dfs":
            self._assigned_list[user] = old
        else:
            bit = 1 << user
            self._slot_ints[cur] &= ~bit
            if old >= 0:
                self._slot_ints[old] |= bit
            else:
                self._assigned_int &= ~bit
        if old >= 0:
            self._loads[old] += 1
        else:
            self._assigned_mask[user] = False
            self._served -= 1

    def _undo_direct(self, slot: int, bitset: int, k: int) -> None:
        mask = self._int_to_mask(bitset)
        self._assigned_id[mask] = -1
        self._assigned_mask &= ~mask
        self._assigned_int &= ~bitset
        self._slot_ints[slot] &= ~bitset
        self._loads[slot] -= k
        self._served -= k

    def _pop_station(self, station: Hashable) -> None:
        slot = self._slots.pop(station)
        assert slot == len(self._names) - 1, (
            "only the newest station can be removed"
        )
        self._names.pop()
        self._cover_arrs.pop()
        self._caps.pop()
        self._loads.pop()
        if self._chain == "dfs":
            self._cover_lists.pop()
        else:
            self._cover_ints.pop()
            self._slot_ints.pop()


class CellAssignment:
    """Incremental capacitated *demand-cell*-to-station assignment.

    The aggregated counterpart of :class:`IncrementalAssignment`: instead
    of unit-supply users, each node is a demand cell with an integer
    supply (its member count), and a station may draw multiple units from
    one cell (flow network ``source -(demand)-> cell -> station
    -(capacity)-> sink``).  The served count is the max-flow value in
    *units*, i.e. users.

    Same contract as the user engine: after every :meth:`try_open` /
    :meth:`open` the maintained flow is an exact maximum (each augmenting
    path is found from the previous maximum, so the incremental invariant
    of max flow applies); ``try_open``/``rollback`` journal by snapshot,
    and :meth:`fork` opens the warm-start scope the subset sweep uses.

    Cell populations are orders of magnitude smaller than user
    populations (that is the point of aggregating), so the engine favours
    simplicity over the user engine's bitset micro-optimisations:
    snapshots are O(cells + flow entries), augmentation is a plain BFS
    over the residual graph with integer bottlenecks.
    """

    def __init__(self, demands: "Sequence | np.ndarray") -> None:
        demands = np.asarray(demands, dtype=np.int64)
        if demands.ndim != 1:
            raise ValueError("demands must be one-dimensional")
        if demands.size and int(demands.min()) < 1:
            raise ValueError("cell demands must all be >= 1")
        self.demands = demands
        #: Cells play the "user" role everywhere the greedy talks to the
        #: engine, so the attribute keeps the generic name.
        self.num_users = int(demands.size)
        self._residual = demands.copy()
        self._names: list = []        # slot -> station key
        self._slots: dict = {}        # station key -> slot
        self._covers: list = []       # slot -> np.int64 coverable-cell array
        self._caps: list = []
        self._loads: list = []        # slot -> assigned units
        self._flows: list = []        # slot -> {cell: units}
        self._served = 0
        self._pending: "Hashable | None" = None
        self._saved: "tuple | None" = None
        self._fork_state: "tuple | None" = None

    # -- read API ---------------------------------------------------------

    @property
    def served_count(self) -> int:
        """Total assigned units — users served through their cells."""
        return self._served

    def load_of(self, station: Hashable) -> int:
        return self._loads[self._slots[station]]

    def stations(self) -> list:
        return list(self._names)

    def flows(self) -> dict:
        """Mapping station -> {cell: units} (committed + pending)."""
        return {
            name: dict(flow) for name, flow in zip(self._names, self._flows)
        }

    def assignment(self) -> dict:
        """Alias of :meth:`flows` (API parity with the user engine)."""
        return self.flows()

    def direct_gain_bound(self, covered_cells: "Sequence | np.ndarray",
                          capacity: int) -> int:
        """Residual demand reachable directly, capped by capacity."""
        cover = np.asarray(covered_cells, dtype=np.int64)
        if cover.size == 0 or capacity <= 0:
            return 0
        return min(int(capacity), int(self._residual[cover].sum()))

    def direct_gain_bounds(
        self, cover_bits: np.ndarray, capacities: "int | np.ndarray"
    ) -> np.ndarray:
        """Batched :meth:`direct_gain_bound` over packed cover bitsets
        (one bit per *cell*, :func:`numpy.packbits` layout): unpack and
        weight by the residual demand vector in one matmul."""
        bits = np.asarray(cover_bits, dtype=np.uint8)
        lead = bits.shape[:-1]
        flat = bits.reshape(-1, bits.shape[-1])
        members = np.unpackbits(flat, axis=1, count=self.num_users)
        avail = members.astype(np.int64) @ self._residual
        return np.minimum(
            np.asarray(capacities, dtype=np.int64), avail.reshape(lead)
        )

    # -- warm-start scope -------------------------------------------------

    def _snapshot(self) -> tuple:
        return (
            self._residual.copy(),
            list(self._names), dict(self._slots), list(self._covers),
            list(self._caps), list(self._loads),
            [dict(flow) for flow in self._flows],
            self._served,
        )

    def _restore(self, state: tuple) -> None:
        (self._residual, self._names, self._slots, self._covers,
         self._caps, self._loads, self._flows, self._served) = state

    def fork(self) -> None:
        """Open a warm-start scope (see the user engine)."""
        if self._pending is not None:
            raise RuntimeError("cannot fork with a pending station")
        if self._fork_state is not None:
            raise RuntimeError("a fork is already active")
        self._fork_state = self._snapshot()

    def rollback_fork(self) -> None:
        if self._fork_state is None:
            raise RuntimeError("no active fork to roll back")
        if self._pending is not None:
            self.rollback()
        self._restore(self._fork_state)
        self._fork_state = None

    def release_fork(self) -> None:
        if self._fork_state is None:
            raise RuntimeError("no active fork to release")
        self._fork_state = None

    # -- mutation API -----------------------------------------------------

    def try_open(
        self, station: Hashable, covered_cells: "Sequence | np.ndarray",
        capacity: int
    ) -> int:
        """Tentatively open ``station``; returns the exact gain in units."""
        if self._pending is not None:
            raise RuntimeError(
                f"station {self._pending!r} is pending; commit or rollback first"
            )
        if station in self._slots:
            raise ValueError(f"station {station!r} already open")
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        cover = np.asarray(covered_cells, dtype=np.int64)
        if cover.ndim != 1:
            raise ValueError("covered_cells must be one-dimensional")
        if cover.size:
            bad = (cover < 0) | (cover >= self.num_users)
            if bad.any():
                c = int(cover[bad][0])
                raise IndexError(f"cell {c} outside [0, {self.num_users})")
        self._saved = self._snapshot()
        self._pending = station
        slot = len(self._names)
        self._names.append(station)
        self._slots[station] = slot
        self._covers.append(cover)
        self._caps.append(capacity)
        self._loads.append(0)
        self._flows.append({})
        gain = self._open_direct(slot, capacity)
        while gain < capacity:
            pushed = self._augment(slot, capacity - gain)
            if not pushed:
                break
            gain += pushed
        obs.counter_inc("flow.try_opens")
        return gain

    def commit(self) -> None:
        if self._pending is None:
            raise RuntimeError("no pending station to commit")
        self._pending = None
        self._saved = None

    def rollback(self) -> None:
        if self._pending is None:
            raise RuntimeError("no pending station to roll back")
        self._restore(self._saved)
        self._pending = None
        self._saved = None

    def open(
        self, station: Hashable, covered_cells: "Sequence | np.ndarray",
        capacity: int
    ) -> int:
        gain = self.try_open(station, covered_cells, capacity)
        self.commit()
        return gain

    # -- internals --------------------------------------------------------

    def _open_direct(self, slot: int, capacity: int) -> int:
        """Direct phase: drain residual demand from covered cells in
        ascending cell order, up to capacity."""
        flow = self._flows[slot]
        residual = self._residual
        gain = 0
        for c in self._covers[slot]:
            if gain == capacity:
                break
            c = int(c)
            take = min(int(residual[c]), capacity - gain)
            if take > 0:
                residual[c] -= take
                flow[c] = flow.get(c, 0) + take
                gain += take
        if gain:
            self._loads[slot] += gain
            self._served += gain
        return gain

    def _augment(self, root: int, spare: int) -> int:
        """One augmenting path ending at the spare-capacity ``root``:
        BFS backward over the residual graph (station -> covered cell
        forward arcs, cell -> flow-owner backward arcs), then push the
        integer bottleneck along it.  Returns the units pushed (0 when no
        path exists, which certifies the current flow is maximum)."""
        covers = self._covers
        flows = self._flows
        residual = self._residual
        reached_by: dict = {}        # cell -> station that reached it
        parent_cell: dict = {}       # station -> cell it was reached via
        seen_stations = {root}
        frontier = [root]
        target = -1
        while frontier and target < 0:
            nxt: list = []
            for st in frontier:
                for c in covers[st]:
                    c = int(c)
                    if c in reached_by:
                        continue
                    reached_by[c] = st
                    if residual[c] > 0:
                        target = c
                        break
                    for other, flow in enumerate(flows):
                        if other not in seen_stations and flow.get(c, 0) > 0:
                            seen_stations.add(other)
                            parent_cell[other] = c
                            nxt.append(other)
                if target >= 0:
                    break
            frontier = nxt
        if target < 0:
            return 0
        # Walk target -> root collecting the gaining/losing flow edges and
        # the integer bottleneck.
        gains: list = []             # (station, cell) flow increases
        loses: list = []             # (station, cell) flow decreases
        bottleneck = min(spare, int(residual[target]))
        c = target
        st = reached_by[c]
        gains.append((st, c))
        while st != root:
            c = parent_cell[st]
            loses.append((st, c))
            bottleneck = min(bottleneck, flows[st][c])
            st = reached_by[c]
            gains.append((st, c))
        for st_g, c_g in gains:
            flows[st_g][c_g] = flows[st_g].get(c_g, 0) + bottleneck
        for st_l, c_l in loses:
            left = flows[st_l][c_l] - bottleneck
            if left:
                flows[st_l][c_l] = left
            else:
                del flows[st_l][c_l]
        residual[target] -= bottleneck
        self._loads[root] += bottleneck
        self._served += bottleneck
        obs.counter_inc("flow.chain_augmentations", bottleneck)
        return bottleneck


def new_engine_for(graph, chain: "str | None" = None):
    """The right incremental assignment engine for a coverage graph.

    Per-user graphs — and singleton-cell graphs, whose demands are all
    1 — get the :class:`IncrementalAssignment` bitset engine: a cell of
    demand 1 behaves exactly like a user, and singleton cell indices
    coincide with user indices, so the aggregated solve runs the
    identical code path bit for bit.  Only graphs carrying a demand > 1
    need :class:`CellAssignment`."""
    demands = getattr(graph, "cell_demands", None)
    if demands is None or demands.size == 0 or int(demands.max()) <= 1:
        return IncrementalAssignment(graph.num_users, chain=chain)
    return CellAssignment(demands)
