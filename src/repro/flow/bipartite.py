"""Incremental capacitated user-to-station assignment with rollback.

Algorithm 2 evaluates the marginal gain of deploying UAV ``k`` at every
feasible location before committing one.  Re-solving the Section II-D flow
network from scratch for each candidate costs O(K n^2) per evaluation; this
engine instead maintains a maximum assignment and, for a tentative new
station, augments it in two phases:

1. *direct phase* — one pass over the station's coverable users, assigning
   the unassigned ones until capacity;
2. *chain phase* — Kuhn-style alternating-path DFS for each remaining unit
   of capacity, stopping at the first failure.

The result is an *exact* maximum assignment after every open: each
augmentation increases the max flow by exactly one, and a failed chain
search proves no further augmentation through the new station exists (this
is Kuhn's algorithm on the capacity-expanded bipartite graph; processing
order is irrelevant to the final value).  ``try_open``/``rollback`` journal
all mutations so thousands of candidate evaluations reuse one engine.

Performance notes: visited marks use a stamp array (no per-augmentation
allocation), and an ``assigned_mask`` numpy view supports O(|cover|)
vectorised gain *bounds* (:meth:`direct_gain_bound`) for the greedy's
candidate ranking.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence

import numpy as np

from repro import obs


class IncrementalAssignment:
    """Maximum capacitated assignment of users to dynamically added stations.

    Users are integers ``0..num_users-1``; stations are arbitrary hashable
    keys (Algorithm 2 uses ``(uav_index, location_index)``).  Each user may
    be assigned to at most one station that covers it; each station serves
    at most its capacity.
    """

    def __init__(self, num_users: int) -> None:
        if num_users < 0:
            raise ValueError(f"num_users must be non-negative, got {num_users}")
        self.num_users = num_users
        self._assigned_to: list = [None] * num_users
        self._assigned_mask = np.zeros(num_users, dtype=bool)
        self._visit_stamp: list = [0] * num_users
        self._stamp = 0
        self._covers: dict = {}
        self._capacity: dict = {}
        self._load: dict = {}
        self._served = 0
        self._pending: "Hashable | None" = None
        self._journal: list = []

    # -- read API ---------------------------------------------------------

    @property
    def served_count(self) -> int:
        """Number of users currently assigned (the max-flow value)."""
        return self._served

    def station_of(self, user: int) -> "Hashable | None":
        return self._assigned_to[user]

    def load_of(self, station: Hashable) -> int:
        return self._load[station]

    def stations(self) -> list:
        return list(self._covers)

    def assignment(self) -> dict:
        """Mapping station -> sorted list of assigned users."""
        out: dict = {station: [] for station in self._covers}
        for user, station in enumerate(self._assigned_to):
            if station is not None:
                out[station].append(user)
        return out

    def direct_gain_bound(self, covered_users: "Sequence | np.ndarray",
                          capacity: int) -> int:
        """Lower bound on the gain of opening a station with this coverage:
        the unassigned covered users it could take directly, capped by
        capacity.  (The exact gain adds alternating-chain augmentations on
        top.)  Vectorised; O(|cover|)."""
        cover = np.asarray(covered_users, dtype=np.int64)
        if cover.size == 0 or capacity <= 0:
            return 0
        free = int(cover.size - np.count_nonzero(self._assigned_mask[cover]))
        return min(capacity, free)

    # -- mutation API -----------------------------------------------------

    def try_open(
        self, station: Hashable, covered_users: Sequence, capacity: int
    ) -> int:
        """Tentatively open ``station`` and return the exact gain in served
        users.  Must be followed by :meth:`commit` or :meth:`rollback`.
        """
        if self._pending is not None:
            raise RuntimeError(
                f"station {self._pending!r} is pending; commit or rollback first"
            )
        if station in self._covers:
            raise ValueError(f"station {station!r} already open")
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        cover = list(covered_users)
        for u in cover:
            if not (0 <= u < self.num_users):
                raise IndexError(f"user {u} outside [0, {self.num_users})")

        self._pending = station
        self._journal = []
        self._covers[station] = cover
        self._capacity[station] = capacity
        self._load[station] = 0

        gain = 0
        # Direct phase: grab unassigned covered users.
        for u in cover:
            if gain == capacity:
                break
            if self._assigned_to[u] is None:
                self._record_and_assign(u, station)
                self._served += 1
                gain += 1
        direct = gain
        # Chain phase: alternating-path augmentations for the remainder.
        while gain < capacity:
            if not self._augment_from(station):
                break
            gain += 1
        obs.counter_inc("flow.try_opens")
        obs.counter_inc("flow.direct_assignments", direct)
        obs.counter_inc("flow.chain_augmentations", gain - direct)
        return gain

    def commit(self) -> None:
        """Keep the pending station and all reassignments it caused."""
        if self._pending is None:
            raise RuntimeError("no pending station to commit")
        self._pending = None
        self._journal = []

    def rollback(self) -> None:
        """Undo the pending station entirely."""
        if self._pending is None:
            raise RuntimeError("no pending station to roll back")
        for user, old_station in reversed(self._journal):
            current = self._assigned_to[user]
            self._load[current] -= 1
            self._assigned_to[user] = old_station
            if old_station is not None:
                self._load[old_station] += 1
            else:
                self._assigned_mask[user] = False
                self._served -= 1
        station = self._pending
        del self._covers[station]
        del self._capacity[station]
        del self._load[station]
        self._pending = None
        self._journal = []

    def open(self, station: Hashable, covered_users: Sequence, capacity: int) -> int:
        """Open a station permanently; returns the gain."""
        gain = self.try_open(station, covered_users, capacity)
        self.commit()
        return gain

    # -- internals --------------------------------------------------------

    def _augment_from(self, root: Hashable) -> bool:
        """One unit of augmentation ending at ``root`` (which has spare
        capacity), via Kuhn-style alternating-path DFS.

        A path is root -> u1 (covered by root, assigned to T1) -> T1 -> u2
        (covered by T1, assigned to T2) -> ... -> uk unassigned; augmenting
        reassigns each user one station up the chain, netting exactly one
        newly served user.  A failed search leaves the assignment untouched
        and proves no augmentation through ``root`` exists.
        """
        self._stamp += 1
        stamp = self._stamp
        visit = self._visit_stamp
        assigned_to = self._assigned_to
        covers = self._covers

        # Iterative DFS with both sides marked per augmentation:
        # users via the stamp array, stations via ``explored``.  A station
        # is explored at most once — by the time it is popped its entire
        # cover is stamped, so re-exploring it can never find anything new
        # (standard Kuhn left-vertex marking).  Total work is O(E).
        #
        # A frame is [station, scan_index, claim_user]: ``claim_user`` is
        # the user (currently assigned to ``station``) that the *parent*
        # frame's station wants to take over.
        explored = {root}
        frames: list = [[root, 0, -1]]
        while frames:
            frame = frames[-1]
            station, idx = frame[0], frame[1]
            cover = covers[station]
            cover_len = len(cover)
            pushed = False
            while idx < cover_len:
                u = cover[idx]
                idx += 1
                if visit[u] == stamp:
                    continue
                visit[u] = stamp
                owner = assigned_to[u]
                if owner is None:
                    # Success: u joins this station; unwind the chain, each
                    # parent taking its claimed user from its child.
                    frame[1] = idx
                    self._record_and_assign(u, station)
                    for depth in range(len(frames) - 1, 0, -1):
                        child = frames[depth]
                        parent_station = frames[depth - 1][0]
                        self._record_and_assign(child[2], parent_station)
                    self._served += 1
                    return True
                if owner not in explored:
                    explored.add(owner)
                    frame[1] = idx
                    frames.append([owner, 0, u])
                    pushed = True
                    break
            if not pushed:
                frame[1] = idx
                frames.pop()
        return False

    def _record_and_assign(self, user: int, station: Hashable) -> None:
        old = self._assigned_to[user]
        if self._pending is not None:
            self._journal.append((user, old))
        if old is not None:
            self._load[old] -= 1
        else:
            self._assigned_mask[user] = True
        self._assigned_to[user] = station
        self._load[station] += 1
