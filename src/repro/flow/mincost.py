"""Minimum-cost bipartite assignment (Hungarian algorithm, the
Jonker-Volgenant / e-maxx formulation with row/column potentials and
Dijkstra-style column scans).

Used by :mod:`repro.sim.relocation` to move a UAV fleet from its current
hovering locations to a newly planned set while minimising travel cost.
Written from scratch; ``scipy.optimize.linear_sum_assignment`` serves as
the test oracle only.  Complexity O(n^2 m) for an ``n x m`` matrix.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def min_cost_assignment(costs: Sequence) -> "tuple[list, float]":
    """Assign each row to a distinct column minimising total cost.

    ``costs`` is an ``n x m`` matrix (sequence of rows) with ``n <= m``;
    entries may be ``float('inf')`` to forbid a pairing.  Returns
    ``(assignment, total)`` where ``assignment[i]`` is the column chosen
    for row ``i``.  Raises ``ValueError`` for ragged or oversized input,
    or when forbidden pairings make a complete assignment impossible.
    """
    n = len(costs)
    if n == 0:
        return [], 0.0
    m = len(costs[0])
    for row in costs:
        if len(row) != m:
            raise ValueError("cost matrix is ragged")
    if n > m:
        raise ValueError(f"need rows <= columns, got {n} x {m}")

    INF = math.inf
    # 1-indexed rows and columns; index 0 is the virtual start column.
    u = [0.0] * (n + 1)        # row potentials
    v = [0.0] * (m + 1)        # column potentials
    p = [0] * (m + 1)          # p[j] = row assigned to column j (0 = free)
    way = [0] * (m + 1)        # predecessor column on the alternating path

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [INF] * (m + 1)
        used = [False] * (m + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = INF
            j1 = -1
            row_costs = costs[i0 - 1]
            u_i0 = u[i0]
            for j in range(1, m + 1):
                if used[j]:
                    continue
                cur = row_costs[j - 1] - u_i0 - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            if j1 < 0 or delta == INF:
                raise ValueError(
                    "no finite-cost complete assignment exists (forbidden "
                    f"pairings block row {i - 1})"
                )
            for j in range(m + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        # Augment: shift assignments along the alternating path.
        while j0 != 0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment = [-1] * n
    total = 0.0
    for j in range(1, m + 1):
        if p[j] != 0:
            assignment[p[j] - 1] = j - 1
            total += costs[p[j] - 1][j - 1]
    if any(a < 0 for a in assignment):
        raise AssertionError("incomplete assignment after augmentation")
    return assignment, total


def min_max_assignment(costs: Sequence) -> "tuple[list, float]":
    """Assign rows to columns minimising the *maximum* single cost
    (bottleneck assignment), by binary searching the threshold and
    checking feasibility with forbidden pairings.

    Relocation often cares about makespan — the fleet is ready when the
    slowest UAV arrives — rather than total distance.
    """
    n = len(costs)
    if n == 0:
        return [], 0.0
    values = sorted({c for row in costs for c in row if c != math.inf})
    if not values:
        raise ValueError("all pairings forbidden")

    def feasible(threshold: float) -> "list | None":
        capped = [
            [0.0 if c <= threshold else math.inf for c in row]
            for row in costs
        ]
        try:
            assignment, _ = min_cost_assignment(capped)
        except ValueError:
            return None
        return assignment

    lo, hi = 0, len(values) - 1
    best: "list | None" = feasible(values[hi])
    if best is None:
        raise ValueError("no complete assignment exists at any threshold")
    while lo < hi:
        mid = (lo + hi) // 2
        candidate = feasible(values[mid])
        if candidate is not None:
            best = candidate
            hi = mid
        else:
            lo = mid + 1
    bottleneck = max(costs[i][j] for i, j in enumerate(best))
    return best, bottleneck
