"""Max-flow substrate.

:mod:`repro.flow.dinic` is a general integral max-flow solver (Dinic's
algorithm) used to solve the Section II-D assignment flow network exactly.
:mod:`repro.flow.bipartite` specialises the user-to-UAV assignment into an
incremental engine with try/rollback, which Algorithm 2's greedy uses to
evaluate thousands of marginal gains without rebuilding the flow network.
"""

from repro.flow.bipartite import IncrementalAssignment
from repro.flow.dinic import Dinic

__all__ = ["Dinic", "IncrementalAssignment"]
