"""Shortest-path Steiner expansion (the connection step of Section III-E).

Given terminals ``V'_j`` chosen by the greedy, the paper builds a complete
graph ``G'_j`` over the terminals weighted by hop distance in ``G``, finds
an MST ``T'_j``, and replaces each MST edge by a shortest path in ``G``;
the union is a connected subgraph ``G_j`` containing all terminals, and the
extra nodes become relay UAV positions.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.graphs.adjacency import Graph
from repro.graphs.bfs import UNREACHABLE, bfs_hops, shortest_hop_path
from repro.graphs.mst import minimum_spanning_tree


def steiner_connect(
    graph: Graph,
    terminals: Sequence,
    hop_rows: "object | None" = None,
) -> "tuple[set, list]":
    """Connect ``terminals`` in ``graph`` via MST-of-shortest-paths.

    Returns ``(nodes, tree_edges)`` where ``nodes`` is the node set of the
    connected subgraph ``G_j`` (terminals plus relays) and ``tree_edges`` is
    the list of terminal pairs that were joined, as
    ``(terminal_u, terminal_v, path)`` with ``path`` the node list used.

    ``hop_rows``, if given, is a callable ``node -> hop-distance row``
    replacing the per-terminal BFS (callers with a cached all-pairs hop
    matrix — e.g. :class:`repro.network.coverage.CoverageGraph` — pass
    theirs so the enumeration over anchor subsets amortises the BFS work).

    Raises ``ValueError`` if some terminal pair is disconnected in ``graph``.
    """
    terms = sorted(set(terminals))
    if not terms:
        return set(), []
    if len(terms) == 1:
        return {terms[0]}, []

    if hop_rows is None:
        # Pairwise hop distances among terminals via one BFS per terminal.
        rows = {t: bfs_hops(graph, t) for t in terms}
        hop_rows = rows.__getitem__
    metric = Graph(len(terms))
    for a in range(len(terms)):
        row = hop_rows(terms[a])
        for b in range(a + 1, len(terms)):
            d = row[terms[b]]
            if d == UNREACHABLE:
                raise ValueError(
                    f"terminals {terms[a]} and {terms[b]} are disconnected"
                )
            metric.add_edge(a, b, d)

    mst_edges = minimum_spanning_tree(metric)
    nodes: set = set(terms)
    expanded = []
    for a, b, _w in mst_edges:
        u, v = terms[a], terms[b]
        path = shortest_hop_path(graph, u, v)
        if path is None:  # cannot happen after the distance check above
            raise AssertionError(f"no path between terminals {u} and {v}")
        nodes.update(path)
        expanded.append((u, v, path))
    return nodes, expanded


def connection_cost_lower_bound(graph: Graph, terminals: Sequence) -> int:
    """A lower bound on ``|G_j|`` for the given terminals.

    Any connected subgraph containing the terminals contains all of them
    and a path between the two farthest ones (``max_pair_hops + 1`` nodes;
    other terminals may lie on that very path, so the two counts cannot be
    added), hence

        |G_j| >= max(len(terminals), max(hop(u, v)) + 1).

    Used by the outer enumeration to prune anchor subsets that can never
    satisfy ``q_j <= K``; see DESIGN.md §3.
    """
    terms = sorted(set(terminals))
    if len(terms) <= 1:
        return len(terms)
    worst = 0
    for t in terms[:-1]:
        row = bfs_hops(graph, t)
        for other in terms:
            if other == t:
                continue
            d = row[other]
            if d == UNREACHABLE:
                return graph.num_nodes + 1  # impossible to connect
            worst = max(worst, d)
    return max(len(terms), worst + 1)
