"""Eulerian paths over doubled spanning trees (Section III-A analysis).

The approximation analysis duplicates ``K - 2`` of the ``K - 1`` edges of an
optimal spanning tree ``T*`` so that exactly two nodes have odd degree; the
resulting multigraph admits an Eulerian path with ``2K - 3`` edges, which is
then split into sub-paths of ``L`` nodes.  The algorithm itself never runs
this on real data — it exists so the analysis objects are executable and
testable (and it powers the analysis notebook/example).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence


def eulerian_path_by_doubling(
    num_nodes: int, tree_edges: Sequence, keep_single: "tuple | None" = None
) -> list:
    """Duplicate all tree edges but one, then return an Eulerian path.

    Parameters
    ----------
    num_nodes:
        Number of tree nodes ``K``.
    tree_edges:
        The ``K - 1`` edges of a spanning tree as (u, v) pairs.
    keep_single:
        The one edge left un-duplicated, as an (u, v) pair.  Defaults to the
        first tree edge.  Its two endpoints become the odd-degree endpoints
        of the Eulerian path.

    Returns the path as a list of ``2K - 2`` node ids (``2K - 3`` edges).
    """
    edges = [(min(u, v), max(u, v)) for u, v in tree_edges]
    if num_nodes == 1 and not edges:
        return [0]
    if len(edges) != num_nodes - 1:
        raise ValueError(
            f"spanning tree over {num_nodes} nodes needs {num_nodes - 1} "
            f"edges, got {len(edges)}"
        )
    if len(set(edges)) != len(edges):
        raise ValueError("duplicate edges in spanning tree")
    if keep_single is None:
        keep = edges[0]
    else:
        keep = (min(keep_single), max(keep_single))
        if keep not in edges:
            raise ValueError(f"keep_single edge {keep} is not a tree edge")

    # Multigraph adjacency with edge multiplicities.
    multi: dict = defaultdict(lambda: defaultdict(int))
    for u, v in edges:
        count = 1 if (u, v) == keep else 2
        multi[u][v] += count
        multi[v][u] += count

    odd = [u for u in multi if sum(multi[u].values()) % 2 == 1]
    if sorted(odd) != sorted(keep):
        raise AssertionError("doubling construction must leave exactly the "
                             "kept edge's endpoints odd")

    # Hierholzer's algorithm starting from one odd-degree endpoint.
    stack = [keep[0]]
    path: list = []
    while stack:
        u = stack[-1]
        neighbours = multi[u]
        nxt = next((v for v, c in neighbours.items() if c > 0), None)
        if nxt is None:
            path.append(stack.pop())
        else:
            neighbours[nxt] -= 1
            multi[nxt][u] -= 1
            stack.append(nxt)
    path.reverse()
    expected_len = 2 * num_nodes - 2
    if len(path) != expected_len:
        raise AssertionError(
            f"Eulerian path has {len(path)} nodes, expected {expected_len}"
        )
    return path


def split_path(path: Sequence, segment_len: int) -> list:
    """Split a node path into consecutive segments of ``segment_len`` nodes.

    Matches the paper's split of ``P_Euler`` into ``Delta = ceil((2K-2)/L)``
    sub-paths: every segment has exactly ``segment_len`` nodes except
    possibly the last.
    """
    if segment_len <= 0:
        raise ValueError(f"segment length must be positive, got {segment_len}")
    nodes = list(path)
    return [nodes[i:i + segment_len] for i in range(0, len(nodes), segment_len)]


def is_eulerian_path(path: Sequence, edge_multiset: Iterable) -> bool:
    """Check that ``path`` traverses exactly the multiset of edges given."""
    want: dict = defaultdict(int)
    for u, v in edge_multiset:
        want[(min(u, v), max(u, v))] += 1
    got: dict = defaultdict(int)
    for a, b in zip(path, path[1:]):
        got[(min(a, b), max(a, b))] += 1
    return want == got
