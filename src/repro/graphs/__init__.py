"""From-scratch graph substrate.

The algorithms in :mod:`repro.core` need: BFS hop distances over the
candidate-location graph, minimum spanning trees over a hop metric, Eulerian
paths obtained by doubling tree edges (the analysis of Section III-A), and
shortest-path Steiner expansion of an MST (the connection step of
Section III-E).  networkx is deliberately *not* used here — it serves only
as a test oracle.
"""

from repro.graphs.adjacency import Graph
from repro.graphs.bfs import (
    bfs_hops,
    connected_components,
    is_connected,
    multi_source_hops,
    shortest_hop_path,
)
from repro.graphs.euler import eulerian_path_by_doubling
from repro.graphs.mst import minimum_spanning_tree
from repro.graphs.steiner import steiner_connect

__all__ = [
    "Graph",
    "bfs_hops",
    "connected_components",
    "is_connected",
    "multi_source_hops",
    "shortest_hop_path",
    "eulerian_path_by_doubling",
    "minimum_spanning_tree",
    "steiner_connect",
]
