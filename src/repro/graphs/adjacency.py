"""A minimal undirected graph over integer node ids ``0..n-1``.

Nodes are dense integers because every consumer in this library indexes
candidate hovering locations by position; adjacency is a list of lists,
which keeps BFS allocation-free and fast in pure Python.
"""

from __future__ import annotations

from collections.abc import Iterable


class Graph:
    """Undirected simple graph with optional edge weights."""

    def __init__(self, num_nodes: int) -> None:
        if num_nodes < 0:
            raise ValueError(f"num_nodes must be non-negative, got {num_nodes}")
        self._adj: list = [[] for _ in range(num_nodes)]
        self._weights: dict = {}
        self._num_edges = 0

    @classmethod
    def from_edges(
        cls, num_nodes: int, edges: Iterable, weighted: bool = False
    ) -> "Graph":
        """Build from an iterable of ``(u, v)`` or ``(u, v, w)`` tuples."""
        g = cls(num_nodes)
        for edge in edges:
            if weighted:
                u, v, w = edge
                g.add_edge(u, v, w)
            else:
                u, v = edge[0], edge[1]
                g.add_edge(u, v)
        return g

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def _check_node(self, u: int) -> None:
        if not (0 <= u < len(self._adj)):
            raise IndexError(f"node {u} outside [0, {len(self._adj)})")

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Add undirected edge (u, v).  Parallel edges and self-loops are
        rejected — neither occurs in the coverage graph."""
        self._check_node(u)
        self._check_node(v)
        if u == v:
            raise ValueError(f"self-loop on node {u} not allowed")
        if self.has_edge(u, v):
            raise ValueError(f"edge ({u}, {v}) already present")
        self._adj[u].append(v)
        self._adj[v].append(u)
        self._weights[(min(u, v), max(u, v))] = weight
        self._num_edges += 1

    def has_edge(self, u: int, v: int) -> bool:
        self._check_node(u)
        self._check_node(v)
        return (min(u, v), max(u, v)) in self._weights

    def weight(self, u: int, v: int) -> float:
        try:
            return self._weights[(min(u, v), max(u, v))]
        except KeyError:
            raise KeyError(f"no edge ({u}, {v})") from None

    def neighbours(self, u: int) -> list:
        self._check_node(u)
        return self._adj[u]

    def degree(self, u: int) -> int:
        self._check_node(u)
        return len(self._adj[u])

    def edges(self) -> list:
        """All edges as (u, v, weight) with u < v."""
        return [(u, v, w) for (u, v), w in self._weights.items()]

    def subgraph(self, nodes: Iterable) -> "tuple[Graph, dict]":
        """Induced subgraph on ``nodes``.

        Returns ``(graph, mapping)`` where ``mapping[original] = new`` and
        the new graph is indexed densely ``0..len(nodes)-1``.
        """
        node_list = sorted(set(nodes))
        mapping = {orig: new for new, orig in enumerate(node_list)}
        sub = Graph(len(node_list))
        for (u, v), w in self._weights.items():
            if u in mapping and v in mapping:
                sub.add_edge(mapping[u], mapping[v], w)
        return sub, mapping
