"""Minimum spanning tree (Prim) for the connection graph ``G'_j``.

Section III-E builds a complete graph over the greedily chosen locations
with hop-distance weights and takes an MST; the MST edges are then expanded
into shortest paths in ``G`` (see :mod:`repro.graphs.steiner`).
"""

from __future__ import annotations

import heapq

from repro.graphs.adjacency import Graph


def minimum_spanning_tree(graph: Graph) -> list:
    """Return MST edges as ``(u, v, weight)`` tuples (u < v).

    Uses Prim's algorithm with a lazy heap.  Raises ``ValueError`` if the
    graph is disconnected (an MST does not exist) — callers always build the
    complete hop-distance graph, so disconnection indicates a bug upstream.
    """
    n = graph.num_nodes
    if n == 0:
        return []
    in_tree = [False] * n
    edges: list = []
    heap: list = []
    in_tree[0] = True
    for v in graph.neighbours(0):
        heapq.heappush(heap, (graph.weight(0, v), 0, v))
    added = 1
    while heap and added < n:
        w, u, v = heapq.heappop(heap)
        if in_tree[v]:
            continue
        in_tree[v] = True
        added += 1
        edges.append((min(u, v), max(u, v), w))
        for nxt in graph.neighbours(v):
            if not in_tree[nxt]:
                heapq.heappush(heap, (graph.weight(v, nxt), v, nxt))
    if added != n:
        raise ValueError(
            f"graph is disconnected ({added} of {n} nodes reachable); "
            "no spanning tree exists"
        )
    return edges


def tree_weight(edges: list) -> float:
    """Total weight of a list of (u, v, w) edges."""
    return sum(w for _, _, w in edges)
