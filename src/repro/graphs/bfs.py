"""Breadth-first search utilities: hop distances, shortest hop paths,
connectivity.

Hop distances drive both matroid ``M2`` (how far a node is from the anchor
set, Section III-C) and the edge weights of the connection graph ``G'_j``
(Section III-E).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.graphs.adjacency import Graph

UNREACHABLE = -1
"""Marker for nodes with no path from the source set."""


def bfs_hops(graph: Graph, source: int) -> list:
    """Hop distance from ``source`` to every node (-1 if unreachable)."""
    return multi_source_hops(graph, [source])


def multi_source_hops(graph: Graph, sources: Iterable) -> list:
    """Hop distance from the nearest of ``sources`` to every node.

    This is exactly the ``d_l`` of Section III-C when ``sources`` is the
    anchor set {v*_1..v*_s}.
    """
    dist = [UNREACHABLE] * graph.num_nodes
    queue: deque = deque()
    for s in sources:
        if not (0 <= s < graph.num_nodes):
            raise IndexError(f"source {s} outside graph")
        if dist[s] == UNREACHABLE:
            dist[s] = 0
            queue.append(s)
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph.neighbours(u):
            if dist[v] == UNREACHABLE:
                dist[v] = du + 1
                queue.append(v)
    return dist


def shortest_hop_path(graph: Graph, source: int, target: int) -> "list | None":
    """One shortest path (list of nodes, inclusive) or None if disconnected."""
    if source == target:
        return [source]
    parent = [UNREACHABLE] * graph.num_nodes
    dist = [UNREACHABLE] * graph.num_nodes
    dist[source] = 0
    queue: deque = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbours(u):
            if dist[v] == UNREACHABLE:
                dist[v] = dist[u] + 1
                parent[v] = u
                if v == target:
                    path = [v]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    path.reverse()
                    return path
                queue.append(v)
    return None


def connected_components(graph: Graph) -> list:
    """All connected components as lists of nodes (each sorted)."""
    seen = [False] * graph.num_nodes
    components = []
    for start in range(graph.num_nodes):
        if seen[start]:
            continue
        comp = []
        queue: deque = deque([start])
        seen[start] = True
        while queue:
            u = queue.popleft()
            comp.append(u)
            for v in graph.neighbours(u):
                if not seen[v]:
                    seen[v] = True
                    queue.append(v)
        components.append(sorted(comp))
    return components


def is_connected(graph: Graph, nodes: "Iterable | None" = None) -> bool:
    """Whether the graph (or the induced subgraph on ``nodes``) is connected.

    An empty node set and a single node both count as connected.
    """
    if nodes is None:
        if graph.num_nodes <= 1:
            return True
        return len(connected_components(graph)) == 1
    node_set = set(nodes)
    if len(node_set) <= 1:
        return True
    start = next(iter(node_set))
    seen = {start}
    queue: deque = deque([start])
    while queue:
        u = queue.popleft()
        for v in graph.neighbours(u):
            if v in node_set and v not in seen:
                seen.add(v)
                queue.append(v)
    return len(seen) == len(node_set)
