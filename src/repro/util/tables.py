"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows/series the paper's figures show;
this module renders them as aligned ASCII tables so ``bench_output.txt`` and
``EXPERIMENTS.md`` stay readable without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {i} has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render a GitHub-flavoured markdown table (used for EXPERIMENTS.md)."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    lines.extend("| " + " | ".join(row) + " |" for row in str_rows)
    return "\n".join(lines)
