"""Packed-bitset helpers for the solver engine.

Coverage sets are stored as numpy ``uint8`` arrays of packed bits (one bit
per user, :func:`numpy.packbits` layout) so that union-coverage sizes and
marginal-gain bounds become vectorised popcounts instead of Python set
walks.  ``numpy >= 2.0`` ships a hardware popcount
(:func:`numpy.bitwise_count`); older versions fall back to an 8-bit lookup
table — same results, still vectorised.
"""

from __future__ import annotations

import numpy as np

_POPCOUNT_TABLE = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)


def _bit_counts(packed: np.ndarray) -> np.ndarray:
    """Per-byte set-bit counts of a packed ``uint8`` array."""
    packed = np.asarray(packed, dtype=np.uint8)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(packed)
    return _POPCOUNT_TABLE[packed]


def popcount(packed: np.ndarray) -> int:
    """Total number of set bits in a packed ``uint8`` array."""
    return int(_bit_counts(packed).sum())


def popcount_rows(packed: np.ndarray) -> np.ndarray:
    """Set-bit counts along the last axis of a packed ``uint8`` array
    (shape ``(..., words) -> (...)``, dtype ``int64``)."""
    packed = np.asarray(packed, dtype=np.uint8)
    if packed.ndim == 0:
        raise ValueError("popcount_rows needs at least one axis")
    return _bit_counts(packed).sum(axis=-1, dtype=np.int64)


def pack_indices(indices: np.ndarray, num_bits: int) -> np.ndarray:
    """Pack a sorted index list into a ``uint8`` bitset of ``num_bits``."""
    mask = np.zeros(num_bits, dtype=bool)
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size:
        mask[idx] = True
    return np.packbits(mask)


def unpack_indices(packed: np.ndarray, num_bits: int) -> list:
    """Inverse of :func:`pack_indices`: the sorted list of set bits."""
    if num_bits == 0:
        return []
    mask = np.unpackbits(np.asarray(packed, dtype=np.uint8), count=num_bits)
    return np.nonzero(mask)[0].tolist()
