"""Wall-clock measurement helper used by the experiment runner."""

from __future__ import annotations

import time


class Stopwatch:
    """Accumulating stopwatch with context-manager support.

    >>> sw = Stopwatch()
    >>> with sw:
    ...     pass
    >>> sw.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> "Stopwatch":
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
