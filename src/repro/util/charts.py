"""ASCII line charts for sweep results.

Terminal-only environments (like the one this reproduction targets) still
deserve figure-shaped output: multiple series over a shared numeric or
categorical x-axis, rendered with per-series marker characters.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

MARKERS = "ox+*#@%&"

#: Intensity ramp for :func:`sparkline` (pure ASCII, lowest to highest).
SPARK_LEVELS = " .:-=+*#@"


def sparkline(values: Sequence, width: int = 40) -> str:
    """Render a numeric series as a one-line ASCII sparkline.

    Longer series are bucketed down to ``width`` characters (bucket
    mean); values are scaled between the series min and max.  A constant
    series renders at mid-intensity, an empty one as ``(no data)``.
    """
    if width < 1:
        raise ValueError(f"sparkline needs width >= 1, got {width}")
    values = [float(v) for v in values]
    if not values:
        return "(no data)"
    if len(values) > width:
        bucketed = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max(lo + 1, (i + 1) * len(values) // width)
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    v_min, v_max = min(values), max(values)
    span = v_max - v_min
    top = len(SPARK_LEVELS) - 1
    if span <= 0:
        return SPARK_LEVELS[top // 2] * len(values)
    return "".join(
        SPARK_LEVELS[round((v - v_min) / span * top)] for v in values
    )


def ascii_chart(
    series: Mapping,
    width: int = 60,
    height: int = 15,
    title: "str | None" = None,
) -> str:
    """Render ``{name: {x: y}}`` as an ASCII scatter/line chart.

    X positions are spread evenly in data order (works for categorical
    axes too); Y is scaled linearly between the global min and max.  Each
    series gets a marker from :data:`MARKERS`; collisions show the later
    series' marker.
    """
    if width < 10 or height < 4:
        raise ValueError("chart needs width >= 10 and height >= 4")
    names = list(series)
    if not names:
        return "(no data)"
    xs: list = []
    for name in names:
        for x in series[name]:
            if x not in xs:
                xs.append(x)
    ys = [y for name in names for y in series[name].values()]
    if not ys:
        return "(no data)"
    y_min, y_max = min(ys), max(ys)
    span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    x_pos = {
        x: (
            round(i * (width - 1) / (len(xs) - 1))
            if len(xs) > 1 else width // 2
        )
        for i, x in enumerate(xs)
    }
    for si, name in enumerate(names):
        marker = MARKERS[si % len(MARKERS)]
        for x, y in series[name].items():
            row = height - 1 - round((y - y_min) / span * (height - 1))
            grid[row][x_pos[x]] = marker

    y_labels = [f"{y_max:g}", f"{(y_max + y_min) / 2:g}", f"{y_min:g}"]
    label_width = max(len(s) for s in y_labels)
    lines = []
    if title:
        lines.append(title)
    for r, row in enumerate(grid):
        if r == 0:
            label = y_labels[0]
        elif r == height // 2:
            label = y_labels[1]
        elif r == height - 1:
            label = y_labels[2]
        else:
            label = ""
        lines.append(f"{label.rjust(label_width)} |" + "".join(row))
    axis = " " * label_width + " +" + "-" * width
    lines.append(axis)
    x_axis = [" "] * width
    for x in (xs[0], xs[-1]):
        text = str(x)
        pos = min(x_pos[x], width - len(text))
        for i, ch in enumerate(text):
            x_axis[pos + i] = ch
    lines.append(" " * label_width + "  " + "".join(x_axis))
    legend = "  ".join(
        f"{MARKERS[i % len(MARKERS)]}={name}" for i, name in enumerate(names)
    )
    lines.append(legend)
    return "\n".join(lines)
