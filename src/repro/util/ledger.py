"""A durable ledger of completed work units for coarse-grained resume.

The chunk-level :mod:`repro.core.checkpoint` makes a *single* solve
resumable; the sweep drivers and the batch runner need something
coarser — "which sweep points / which specs already finished, and what
did they produce".  :class:`ProgressLedger` is that journal: a single
JSON file mapping unit keys to their recorded payloads, written
atomically (:mod:`repro.util.atomic`) after every completed unit, and
guarded by a *fingerprint* of the work description so a ledger can never
be resumed against a different sweep or batch.

Schema (``LEDGER_FORMAT`` bumps on any change)::

    {"kind": "progress-ledger", "format": 1,
     "fingerprint": "<sha256 of the work description>",
     "done": {"<unit key>": <payload>, ...}}
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.util.atomic import atomic_write_json

LEDGER_KIND = "progress-ledger"
LEDGER_FORMAT = 1


class LedgerError(ValueError):
    """The ledger file is unreadable or not a ledger at all."""


def work_fingerprint(description: object) -> str:
    """A stable hash of a JSON-able work description."""
    text = json.dumps(description, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class ProgressLedger:
    """Completed-unit journal keyed on a fingerprinted work description.

    ``resume=True`` loads any matching existing file; a fingerprint
    mismatch discards the stale ledger (counted by the caller) rather
    than resuming the wrong work.  ``resume=False`` always starts empty
    and overwrites.
    """

    def __init__(
        self,
        path: "str | Path",
        description: object,
        resume: bool = False,
    ):
        self.path = Path(path)
        self.fingerprint = work_fingerprint(description)
        self.done: dict = {}
        self.stale = False          # an existing file did not match
        if resume and self.path.exists():
            data = self._load()
            if data.get("fingerprint") == self.fingerprint:
                self.done = dict(data.get("done", {}))
            else:
                self.stale = True

    def _load(self) -> dict:
        try:
            data = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise LedgerError(
                f"cannot read progress ledger {self.path}: {exc}"
            ) from exc
        if not isinstance(data, dict) or data.get("kind") != LEDGER_KIND:
            raise LedgerError(
                f"{self.path} is not a progress ledger"
            )
        if data.get("format") != LEDGER_FORMAT:
            raise LedgerError(
                f"{self.path}: unsupported ledger format "
                f"{data.get('format')!r} (this build reads {LEDGER_FORMAT})"
            )
        return data

    def __contains__(self, key: str) -> bool:
        return str(key) in self.done

    def __len__(self) -> int:
        return len(self.done)

    def payload(self, key: str) -> object:
        return self.done[str(key)]

    def mark(self, key: str, payload: object, flush: bool = True) -> None:
        """Record ``key`` as done and (by default) flush durably."""
        self.done[str(key)] = payload
        if flush:
            self.flush()

    def flush(self) -> None:
        atomic_write_json(self.path, {
            "kind": LEDGER_KIND,
            "format": LEDGER_FORMAT,
            "fingerprint": self.fingerprint,
            "done": self.done,
        })
