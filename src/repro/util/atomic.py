"""Crash-safe file writes: tmp file + fsync + atomic rename.

Every durable artifact the repo produces (checkpoints, run manifests,
OpenMetrics textfiles, the ``BENCH_approx.json`` perf trajectory) goes
through :func:`atomic_write_text` / :func:`atomic_write_json` so a crash
— worker death, OOM kill, operator SIGKILL — can never leave a truncated
or half-written file behind.  The reader either sees the previous
complete version or the new complete version, nothing in between.

The protocol is the classic POSIX one:

1. write the full payload to ``<name>.<pid>.<counter>.tmp`` in the
   *same directory* (``os.replace`` is only atomic within a filesystem);
2. flush and ``fsync`` the file descriptor so the bytes are durable
   before the rename can make them visible;
3. ``os.replace`` onto the destination (atomic on POSIX and Windows).

On any failure the tmp file is removed and the destination untouched.
"""

from __future__ import annotations

import itertools
import json
import os
from pathlib import Path

_COUNTER = itertools.count()


def atomic_write_text(
    path: "str | Path",
    text: str,
    encoding: str = "utf-8",
    fsync: bool = True,
) -> Path:
    """Atomically replace ``path``'s contents with ``text``.

    ``fsync=False`` skips the durability barrier (still atomic against
    concurrent readers, but a machine crash may lose the write) — only
    worth it for high-frequency, low-value artifacts.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_COUNTER)}.tmp"
    )
    try:
        with tmp.open("w", encoding=encoding) as fh:
            fh.write(text)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return path


def atomic_write_json(
    path: "str | Path",
    payload: object,
    indent: "int | None" = 2,
    fsync: bool = True,
    **dump_kw: object,
) -> Path:
    """Atomically write ``payload`` as JSON (trailing newline included)."""
    text = json.dumps(payload, indent=indent, **dump_kw)
    return atomic_write_text(path, text + "\n", fsync=fsync)
