"""Graceful interruption: a cooperative SIGINT/SIGTERM drain flag.

Long solves and sweeps must not die with a traceback on Ctrl-C — they
should finish the chunk in flight, flush a checkpoint, and report the
partial result.  The pieces:

* :func:`graceful_shutdown` — a context manager that installs
  SIGINT/SIGTERM handlers which merely *set a flag*.  A second SIGINT
  falls through to the default ``KeyboardInterrupt`` so an operator can
  always force a hard abort.
* :func:`interrupt_requested` — the flag, checked by the solvers at
  chunk/subset boundaries (one boolean read; free when no handler is
  installed).
* :class:`SolveInterrupted` — raised by a drain point after it has
  flushed its checkpoint; carries the checkpoint path and a partial
  summary so callers can report instead of crash.

The handlers only install in the main thread of the main interpreter
(``signal.signal`` refuses anywhere else); elsewhere the context manager
degrades to a no-op flag holder, which keeps library callers and
worker processes safe.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager

_EVENT = threading.Event()
_DEPTH = 0
_LOCK = threading.Lock()


class SolveInterrupted(RuntimeError):
    """A run drained gracefully at an interrupt request.

    ``checkpoint_path`` names the flushed checkpoint (``None`` when the
    interrupted stage had no checkpointing configured); ``partial`` is a
    small stage-specific summary dict of the progress achieved.
    """

    def __init__(
        self,
        message: str = "interrupted",
        checkpoint_path: "object | None" = None,
        partial: "dict | None" = None,
    ):
        super().__init__(message)
        self.checkpoint_path = checkpoint_path
        self.partial = dict(partial or {})


def interrupt_requested() -> bool:
    """True once a graceful shutdown has been requested."""
    return _EVENT.is_set()


def request_interrupt() -> None:
    """Programmatically request a graceful drain (what the signal handler
    does; also the test hook)."""
    _EVENT.set()


def clear_interrupt() -> None:
    """Reset the flag (between independent runs in one process)."""
    _EVENT.clear()


def _handler(signum: int, frame: object) -> None:
    if _EVENT.is_set() and signum == signal.SIGINT:
        # Second Ctrl-C: the operator wants out *now*.
        raise KeyboardInterrupt
    _EVENT.set()


@contextmanager
def graceful_shutdown():
    """Install the drain handlers for the dynamic extent of the block.

    Re-entrant: nested uses keep the outermost handlers installed.  On
    exit the previous handlers are restored and the flag cleared (only
    when leaving the outermost block).
    """
    global _DEPTH
    previous: list = []
    with _LOCK:
        _DEPTH += 1
        outermost = _DEPTH == 1
    if outermost and threading.current_thread() is threading.main_thread():
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                previous.append((signum, signal.signal(signum, _handler)))
            except (ValueError, OSError):  # non-main interpreter, etc.
                pass
    try:
        yield
    finally:
        for signum, old in previous:
            try:
                signal.signal(signum, old)
            except (ValueError, OSError):
                pass
        with _LOCK:
            _DEPTH -= 1
            if _DEPTH == 0:
                _EVENT.clear()
