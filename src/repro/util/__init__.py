"""Small shared utilities: RNG discipline, timing, ASCII tables."""

from repro.util.rng import ensure_rng
from repro.util.tables import format_table
from repro.util.timing import Stopwatch

__all__ = ["ensure_rng", "format_table", "Stopwatch"]
