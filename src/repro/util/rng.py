"""Random-number-generator discipline.

Every stochastic entry point in this library accepts either a seed (``int``),
an existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy), and
normalises it through :func:`ensure_rng`.  Experiments therefore reproduce
exactly when given the same seed, and components never share hidden global
RNG state.

Seed derivation — the one documented scheme, used everywhere:

* the **scenario stream** (user placement + fleet capacities) consumes the
  root seed directly, so ``ScenarioSpec(seed=7).build()`` samples exactly
  what the historical ``paper_scenario(..., seed=7)`` call did;
* **sweeps** derive one child stream per repetition / sweep point with
  :func:`spawn_rngs`, so inserting a point never perturbs the others
  (:mod:`repro.sim.experiments`, :mod:`repro.sim.compare`);
* **named auxiliary streams** (e.g. the mission fault schedule) derive a
  child seed with :func:`derive_seed` keyed on a label path, so the faults
  are independent of the scenario draw yet fully reproducible from the one
  root seed (:mod:`repro.ops`, ``repro mission``).

Given the same root seed, every entry point — CLI, sweeps, batch runner,
mission runtime — therefore reproduces the same runs bit-exactly.
"""

from __future__ import annotations

import zlib

import numpy as np

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an ``int`` (deterministic stream), an existing generator
    (returned unchanged, so callers can thread one RNG through a pipeline),
    or ``None`` (OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_seed(seed: "int | None", *labels: str) -> "int | None":
    """Derive a named child seed from a root seed, deterministically.

    The label path is hashed into a :class:`numpy.random.SeedSequence`
    spawn key, so ``derive_seed(7, "faults")`` and ``derive_seed(7,
    "relocation")`` yield independent streams while remaining exact
    functions of the root seed.  ``None`` stays ``None`` (fresh entropy
    everywhere — nothing to reproduce).  This is the scheme behind
    ``ScenarioSpec.derived_seed`` and the mission fault schedule; see the
    module docstring for the full derivation map.
    """
    if seed is None:
        return None
    if not labels:
        raise ValueError("derive_seed needs at least one label")
    key = tuple(zlib.crc32(label.encode("utf-8")) for label in labels)
    sequence = np.random.SeedSequence(int(seed), spawn_key=key)
    return int(sequence.generate_state(1, np.uint64)[0])


def spawn_rngs(seed: "int | np.random.Generator | None", count: int) -> list:
    """Derive ``count`` independent child generators from ``seed``.

    Used by parameter sweeps so that each sweep point gets its own stream and
    inserting a new point does not perturb the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
