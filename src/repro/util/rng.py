"""Random-number-generator discipline.

Every stochastic entry point in this library accepts either a seed (``int``),
an existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy), and
normalises it through :func:`ensure_rng`.  Experiments therefore reproduce
exactly when given the same seed, and components never share hidden global
RNG state.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed: "int | np.random.Generator | None" = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``seed`` may be an ``int`` (deterministic stream), an existing generator
    (returned unchanged, so callers can thread one RNG through a pipeline),
    or ``None`` (OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: "int | np.random.Generator | None", count: int) -> list:
    """Derive ``count`` independent child generators from ``seed``.

    Used by parameter sweeps so that each sweep point gets its own stream and
    inserting a new point does not perturb the others.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    seeds = root.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
