"""Connectivity-preserving local search post-optimisation (extension; the
natural "improve the delivered solution" step the paper leaves to future
work).

Starting from any feasible deployment, hill-climb over single-UAV
relocation moves: pick up one UAV and put it on a free candidate location
such that (i) the network stays connected and (ii) the objective improves
*lexicographically*: more served users, or equal served users but smaller
total distance from UAV positions to the nearest unserved user.  The
secondary term lets the swarm drift across coverage deserts (where every
single move has zero gain) toward unserved demand — plain strict-gain
hill-climbing stalls on those plateaus.  Gains are exact (each candidate
move re-solves the assignment).  Terminates at a local optimum or after
``max_rounds`` sweeps; served users can only improve on the input.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import optimal_assignment
from repro.core.problem import ProblemInstance
from repro.graphs.bfs import is_connected
from repro.network.deployment import Deployment


@dataclass
class LocalSearchResult:
    deployment: Deployment
    served: int
    moves_applied: int
    rounds: int


def _move_keeps_connectivity(
    graph, occupied: set, src: int, dst: int
) -> bool:
    """Whether moving one UAV from ``src`` to ``dst`` keeps the occupied
    set connected (single-node networks are trivially fine)."""
    after = (occupied - {src}) | {dst}
    return is_connected(graph, after)


def local_search(
    problem: ProblemInstance,
    deployment: Deployment,
    max_rounds: int = 10,
    neighbourhood_hops: int = 2,
) -> LocalSearchResult:
    """Improve ``deployment`` by single-UAV relocation moves.

    ``neighbourhood_hops`` bounds how far (in candidate-graph hops from
    the current network) a UAV may be moved per step — moves farther out
    would disconnect it anyway unless they land next to the network, and
    the bound keeps each sweep O(K * neighbourhood * assignment).
    """
    if max_rounds < 0:
        raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
    if neighbourhood_hops < 1:
        raise ValueError("neighbourhood_hops must be at least 1")
    graph = problem.graph
    adjacency = graph.location_graph

    def potential(placement_map: dict, assignment: dict) -> float:
        """Secondary objective: total distance from each UAV to the
        nearest unserved user (0 when everyone is served)."""
        unserved = [
            graph.users[u].position
            for u in range(graph.num_users)
            if u not in assignment
        ]
        if not unserved:
            return 0.0
        total = 0.0
        for loc in placement_map.values():
            here = graph.locations[loc]
            total += min(here.distance_to(p) for p in unserved)
        return total

    placements = dict(deployment.placements)
    current = optimal_assignment(graph, problem.fleet, placements)
    best_served = current.served_count
    best_potential = potential(placements, current.assignment)

    moves = 0
    rounds = 0
    for _round in range(max_rounds):
        rounds += 1
        improved = False
        for k in sorted(placements):
            src = placements[k]
            occupied = set(placements.values())
            # Candidate destinations: within the hop neighbourhood of the
            # network, not occupied.
            frontier = set(occupied)
            for _ in range(neighbourhood_hops):
                frontier |= {
                    w for v in frontier for w in adjacency.neighbours(v)
                }
            candidates = sorted(frontier - occupied)
            for dst in candidates:
                if not _move_keeps_connectivity(adjacency, occupied, src, dst):
                    continue
                trial = dict(placements)
                trial[k] = dst
                solved = optimal_assignment(graph, problem.fleet, trial)
                served = solved.served_count
                trial_potential = potential(trial, solved.assignment)
                if served > best_served or (
                    served == best_served
                    and trial_potential < best_potential - 1e-9
                ):
                    placements = trial
                    best_served = served
                    best_potential = trial_potential
                    moves += 1
                    improved = True
                    break
        if not improved:
            break

    final = optimal_assignment(graph, problem.fleet, placements)
    return LocalSearchResult(
        deployment=final,
        served=final.served_count,
        moves_applied=moves,
        rounds=rounds,
    )
