"""Exhaustive optimum for tiny instances.

Used only by tests and examples to measure the empirical approximation
ratio of :func:`repro.core.approx.appro_alg` against the true optimum: it
enumerates every connected location subset of size at most ``K`` and every
injective mapping of UAVs onto it, solving the Section II-D assignment
exactly for each.  Exponential — guarded to tiny inputs.
"""

from __future__ import annotations

from itertools import combinations, permutations

from repro.core.assignment import optimal_assignment
from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment

_MAX_LOCATIONS = 14
_MAX_UAVS = 6


def exact_optimum(
    problem: ProblemInstance, require_connected: bool = True
) -> Deployment:
    """The optimal deployment (ties broken arbitrarily).

    Considers deployments of any size ``1..K`` — deploying fewer UAVs than
    available is feasible (and sometimes better, because connectivity binds
    harder with more nodes).  Raises ``ValueError`` on instances too large
    to enumerate.
    """
    graph = problem.graph
    fleet = problem.fleet
    m, big_k = graph.num_locations, problem.num_uavs
    if m > _MAX_LOCATIONS or big_k > _MAX_UAVS:
        raise ValueError(
            f"instance too large for brute force: m = {m} (max "
            f"{_MAX_LOCATIONS}), K = {big_k} (max {_MAX_UAVS})"
        )

    best: "Deployment | None" = None
    for size in range(1, big_k + 1):
        for locs in combinations(range(m), size):
            if require_connected and not graph.locations_connected(list(locs)):
                continue
            for uavs in permutations(range(big_k), size):
                placements = dict(zip(uavs, locs))
                deployment = optimal_assignment(graph, fleet, placements)
                if best is None or deployment.served_count > best.served_count:
                    best = deployment
    if best is None:  # m >= 1 always yields at least a single placement
        raise AssertionError("no deployment enumerated; empty location set?")
    return best


def exact_optimum_value(
    problem: ProblemInstance, require_connected: bool = True
) -> int:
    """Just the optimal served-user count."""
    return exact_optimum(problem, require_connected).served_count
