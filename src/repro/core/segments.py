"""Segment arithmetic of Section III: Eq. 1 (``Q_h``), Eq. 2 (the relay
bound ``g``), and Algorithm 1 (optimal ``L_max`` and segment sizes
``p*_1..p*_{s+1}``).

Notation: a sub-path ``P_j`` of the Eulerian tour contains ``L`` nodes, of
which ``s`` are the chosen anchors ``v*_1..v*_s``; the anchors cut ``P_j``
into ``s + 1`` segments with ``p_1, ..., p_{s+1}`` interior nodes
(``sum(p) = L - s``).  ``p_1`` and ``p_{s+1}`` hang off the path's ends
(reachable from one anchor only), the middle segments sit between two
anchors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product

from repro import obs


def _validate_p(p: list) -> None:
    if len(p) < 2:
        raise ValueError(
            f"p must have s+1 >= 2 entries (s >= 1), got {len(p)}"
        )
    if any(x < 0 for x in p):
        raise ValueError(f"segment sizes must be non-negative, got {p}")


def hmax_of(p: list) -> int:
    """``h_max = max(p_1, p_{s+1}, max_{i=2..s} ceil(p_i / 2))`` — the
    largest hop distance any sub-path node can have from the anchor set."""
    _validate_p(p)
    values = [p[0], p[-1]]
    values.extend(math.ceil(pi / 2) for pi in p[1:-1])
    return max(values)


def q_bounds(length: int, p: list) -> list:
    """Eq. 1: ``[Q_0, Q_1, ..., Q_hmax]``.

    ``Q_h`` is the number of nodes of the sub-path at least ``h`` hops from
    the anchors: ``Q_0 = L``; for ``h >= 1`` an end segment of ``p`` nodes
    contributes ``max(p - (h-1), 0)`` and a middle segment contributes
    ``max(p - 2(h-1), 0)`` (its nodes are reached from both sides).
    """
    _validate_p(p)
    if sum(p) > length:
        raise ValueError(
            f"segment sizes {p} sum to {sum(p)} > L = {length}"
        )
    out = [length]
    for h in range(1, hmax_of(p) + 1):
        q_h = max(p[0] - (h - 1), 0) + max(p[-1] - (h - 1), 0)
        q_h += sum(max(pi - 2 * (h - 1), 0) for pi in p[1:-1])
        out.append(q_h)
    return out


def _middle_cost(pi: int) -> int:
    """Relay nodes needed to hook up a middle segment of ``pi`` interior
    nodes: ``(p_i^2 + 2 p_i + (p_i mod 2)) / 4`` (always an integer)."""
    numerator = pi * pi + 2 * pi + (pi % 2)
    assert numerator % 4 == 0, f"non-integral middle cost for p_i = {pi}"
    return numerator // 4


def _end_cost(pi: int) -> int:
    """Relay nodes for an end segment: the triangular number
    ``p_i (p_i + 1) / 2``."""
    return pi * (pi + 1) // 2


def relay_bound(p: list) -> int:
    """Eq. 2: upper bound ``g(L, p_1..p_{s+1})`` on the number of UAVs in the
    connected subgraph ``G_j`` built around a feasible solution.

    ``g = s + sum_{i=2..s} p_i + end(p_1) + sum_{i=2..s} middle(p_i)
    + end(p_{s+1})``.  (``L`` enters only through ``sum(p) = L - s``, so it
    is not a separate argument.)
    """
    _validate_p(p)
    s = len(p) - 1
    return (
        s
        + sum(p[1:-1])
        + _end_cost(p[0])
        + sum(_middle_cost(pi) for pi in p[1:-1])
        + _end_cost(p[-1])
    )


@dataclass(frozen=True)
class SegmentPlan:
    """Output of Algorithm 1: the largest feasible sub-path length and the
    segment split minimising the relay bound."""

    s: int
    num_uavs: int
    lmax: int
    p: tuple
    relay_bound: int

    def q_bounds(self) -> list:
        """Eq. 1 bounds ``Q_0..Q_hmax`` for this plan."""
        return q_bounds(self.lmax, list(self.p))

    @property
    def hmax(self) -> int:
        return hmax_of(list(self.p))


def _best_split(length: int, s: int) -> "tuple[int, tuple] | None":
    """Minimum relay bound over the balanced splits Algorithm 1 scans for a
    fixed ``L``; returns ``(g, p)`` or ``None`` if no split exists.

    Middle segments take value ``p`` or ``p + 1`` (``j`` of them one
    larger); the two end segments split the remainder as evenly as possible
    (paper's structural lemma: an optimal split is balanced).
    """
    interior = length - s
    if interior < 0:
        return None
    best: "tuple[int, tuple] | None" = None
    if s == 1:
        # No middle segments: all interior nodes go to the two ends.
        p1 = math.ceil(interior / 2)
        p2 = interior - p1
        candidate = (p1, p2)
        g = relay_bound(list(candidate))
        return (g, candidate)
    for base, bumped in product(range(interior + 1), range(max(s - 1, 1))):
        middle_total = (s - 1) * base + bumped
        if middle_total > interior:
            continue
        middles = [base + 1] * bumped + [base] * (s - 1 - bumped)
        remainder = interior - middle_total
        p1 = math.ceil(remainder / 2)
        ps1 = remainder - p1
        p = tuple([p1] + middles + [ps1])
        g = relay_bound(list(p))
        if best is None or g < best[0]:
            best = (g, p)
    return best


def optimal_segments(num_uavs: int, s: int) -> SegmentPlan:
    """Algorithm 1: binary-search the largest ``L`` whose best split fits
    within ``num_uavs`` UAVs, i.e. ``min_p g(L, p) <= K``.

    The search range is ``[s, K]``; we use an exclusive upper bound ``K+1``
    so that ``L = K`` itself is tested (the paper's ``L_ub = K`` can miss it
    when ``K <= s + 2``; this is a strict improvement, never a loss).
    Runtime ``O(s^2 K log K)`` as in the paper.
    """
    if s < 1:
        raise ValueError(f"s must be a positive integer, got {s}")
    if num_uavs < s:
        raise ValueError(
            f"need at least s = {s} UAVs to place the anchors, got {num_uavs}"
        )
    # L = s is always feasible: no interior nodes, g = s <= K.
    with obs.span("segments.optimal", s=s, num_uavs=num_uavs):
        obs.counter_inc("segments.plans")
        best_l = s
        best_split = _best_split(s, s)
        assert best_split is not None
        lo, hi = s, num_uavs + 1  # invariant: lo feasible, hi infeasible-or-bound
        while lo + 1 < hi:
            obs.counter_inc("segments.search_steps")
            mid = (lo + hi) // 2
            split = _best_split(mid, s)
            if split is not None and split[0] <= num_uavs:
                lo = mid
                best_l, best_split = mid, split
            else:
                hi = mid
        g, p = best_split
    return SegmentPlan(s=s, num_uavs=num_uavs, lmax=best_l, p=p, relay_bound=g)


def brute_force_segments(num_uavs: int, s: int) -> SegmentPlan:
    """Exhaustive reference for tests: scan every ``L`` and every composition
    of ``L - s`` into ``s + 1`` parts.  Exponential; use only for tiny
    inputs."""
    if s < 1 or num_uavs < s:
        raise ValueError("need 1 <= s <= num_uavs")

    def compositions(total: int, parts: int):
        if parts == 1:
            yield (total,)
            return
        for first in range(total + 1):
            for rest in compositions(total - first, parts - 1):
                yield (first,) + rest

    best: "SegmentPlan | None" = None
    for length in range(s, num_uavs + 1):
        for p in compositions(length - s, s + 1):
            g = relay_bound(list(p))
            if g <= num_uavs and (
                best is None
                or length > best.lmax
                or (length == best.lmax and g < best.relay_bound)
            ):
                best = SegmentPlan(
                    s=s, num_uavs=num_uavs, lmax=length, p=p, relay_bound=g
                )
    assert best is not None  # L = s is always feasible
    return best
