"""Optimal user assignment for fixed UAV placements (Section II-D).

Given deployed UAVs, build the flow network ``s -> users -> locations -> t``
(unit arcs into and out of each user, capacity ``C_k`` from each location to
the sink) and compute an integral maximum flow; the saturated user-location
arcs form an optimal assignment.  This is the ``Lemma 1`` subroutine and
also the final step (line 25) of Algorithm 2.
"""

from __future__ import annotations

from repro.flow.dinic import Dinic
from repro.network.coverage import CoverageGraph
from repro.network.deployment import CellDeployment, Deployment


def optimal_assignment(
    graph: CoverageGraph, fleet: list, placements: dict
) -> Deployment:
    """Maximise the number of served users for fixed ``placements``
    (mapping ``uav_index -> location_index``).

    Connectivity is *not* required here — this solves the maximum assignment
    problem, a subproblem where the placements are given (Section II-D).
    Returns a :class:`Deployment` with the optimal assignment filled in.
    """
    deployed = sorted(placements.items())
    for k, loc in deployed:
        if not (0 <= k < len(fleet)):
            raise IndexError(f"UAV index {k} outside fleet of {len(fleet)}")
        if not (0 <= loc < graph.num_locations):
            raise IndexError(
                f"location {loc} outside [0, {graph.num_locations})"
            )

    n = graph.num_users
    num_stations = len(deployed)
    if num_stations == 0 or n == 0:
        return Deployment(placements=dict(placements), assignment={})

    # Node ids: 0 = source, 1..n = users, n+1..n+stations = stations, last = sink.
    source = 0
    sink = n + num_stations + 1
    solver = Dinic(sink + 1)
    for u in range(n):
        solver.add_edge(source, 1 + u, 1)

    user_station_arcs: list = []  # (arc_id, user, uav_index)
    for st, (k, loc) in enumerate(deployed):
        uav = fleet[k]
        station_node = n + 1 + st
        for u in graph.coverable_users(loc, uav):
            arc = solver.add_edge(1 + u, station_node, 1)
            user_station_arcs.append((arc, u, k))
        solver.add_edge(station_node, sink, uav.capacity)

    solver.max_flow(source, sink)

    assignment = {}
    for arc, u, k in user_station_arcs:
        if solver.flow_on(arc) == 1:
            if u in assignment:
                raise AssertionError(
                    f"user {u} saturates two assignment arcs; flow is corrupt"
                )
            assignment[u] = k
    return Deployment(placements=dict(placements), assignment=assignment)


def optimal_cell_assignment(
    graph: CoverageGraph, fleet: list, placements: dict
) -> CellDeployment:
    """Maximise served *units* over a demand-cell graph for fixed
    placements — the aggregated counterpart of :func:`optimal_assignment`.

    The flow network swaps the unit user arcs for capacitated cell arcs:
    ``source -(demand_c)-> cell c -(demand_c)-> station -(C_k)-> sink``.
    The max-flow value is the number of members served; saturation per
    cell may be split across stations, which :class:`CellDeployment`
    represents as a flow.
    """
    deployed = sorted(placements.items())
    for k, loc in deployed:
        if not (0 <= k < len(fleet)):
            raise IndexError(f"UAV index {k} outside fleet of {len(fleet)}")
        if not (0 <= loc < graph.num_locations):
            raise IndexError(
                f"location {loc} outside [0, {graph.num_locations})"
            )

    demands = graph.cell_demands
    d = len(demands)
    num_stations = len(deployed)
    if num_stations == 0 or d == 0:
        return CellDeployment(placements=dict(placements), flows={})

    # Node ids: 0 = source, 1..d = cells, d+1..d+stations, last = sink.
    source = 0
    sink = d + num_stations + 1
    solver = Dinic(sink + 1)
    for c in range(d):
        solver.add_edge(source, 1 + c, int(demands[c]))

    cell_station_arcs: list = []  # (arc_id, cell, uav_index)
    for st, (k, loc) in enumerate(deployed):
        uav = fleet[k]
        station_node = d + 1 + st
        for c in graph.coverable_users(loc, uav):
            arc = solver.add_edge(1 + c, station_node, int(demands[c]))
            cell_station_arcs.append((arc, c, k))
        solver.add_edge(station_node, sink, uav.capacity)

    solver.max_flow(source, sink)

    flows: dict = {}
    for arc, c, k in cell_station_arcs:
        units = solver.flow_on(arc)
        if units > 0:
            flows[(c, k)] = units
    return CellDeployment(placements=dict(placements), flows=flows)


def max_served(graph: CoverageGraph, fleet: list, placements: dict) -> int:
    """Just the optimal objective value for fixed placements."""
    return optimal_assignment(graph, fleet, placements).served_count


def max_throughput_assignment(
    graph: CoverageGraph, fleet: list, placements: dict
) -> Deployment:
    """Throughput-optimal assignment for fixed placements — the objective
    of Xu et al. [37], solved exactly.

    Maximises the sum of served users' data rates subject to the same
    coverage/capacity constraints.  Reduction: expand each UAV into
    ``C_k`` unit slots and solve a rectangular min-cost assignment of
    users to slots with cost ``-rate`` (serving nobody costs 0, encoded by
    per-user "idle" slots).  Exact but O(n^2 (slots + n)) — use for
    analysis at moderate scale, not inside placement loops.

    Note the objective trade-off this exposes: rate-optimal assignments
    may *serve fewer users* than the paper's coverage-optimal ones, since
    one excellent link can outweigh two mediocre ones in sum-rate.
    """
    deployed = sorted(placements.items())
    n = graph.num_users
    if not deployed or n == 0:
        return Deployment(placements=dict(placements), assignment={})

    # Columns: one slot per unit of UAV capacity (capped at n — a UAV can
    # never serve more than all users), then n idle slots (zero cost).
    slot_owner: list = []
    for k, _loc in deployed:
        slot_owner.extend([k] * min(fleet[k].capacity, n))
    num_service_slots = len(slot_owner)

    rates: dict = {}
    for k, loc in deployed:
        uav = fleet[k]
        for u in graph.coverable_users(loc, uav):
            rates[(u, k)] = graph.rate_bps(u, loc, uav)

    import math

    costs = []
    for u in range(n):
        row = []
        for slot, k in enumerate(slot_owner):
            rate = rates.get((u, k))
            row.append(-rate if rate is not None else math.inf)
        row.extend([0.0] * n)  # idle slots
        costs.append(row)

    from repro.flow.mincost import min_cost_assignment

    assignment_cols, _total = min_cost_assignment(costs)
    assignment = {}
    for u, col in enumerate(assignment_cols):
        if col < num_service_slots:
            assignment[u] = slot_owner[col]
    return Deployment(placements=dict(placements), assignment=assignment)


def total_rate_bps(
    graph: CoverageGraph, fleet: list, deployment: Deployment
) -> float:
    """Sum of served users' rates for any deployment (helper for the
    objective comparison)."""
    total = 0.0
    for u, k in deployment.assignment.items():
        total += graph.rate_bps(u, deployment.placements[k], fleet[k])
    return total
