"""Fault-tolerant chunk dispatch over a respawnable process pool.

The parallel subset sweep used to die with the first dead worker: one
OOM-killed process breaks the whole ``ProcessPoolExecutor`` and every
pending future with it.  :class:`ChunkDispatcher` makes the fan-out
survive any worker failure pattern while keeping results bit-identical
to the serial loop:

* a chunk whose future fails (worker death → ``BrokenProcessPool``, or
  an in-worker exception) is **re-dispatched**, with the pool respawned
  after an exponential backoff when it broke;
* chunks lost as innocent bystanders of a pool breakage are
  re-dispatched too (the executor cannot tell which in-flight chunk
  killed it, so every in-flight chunk pays one attempt — conservative
  but safe);
* a chunk that keeps failing is **quarantined** after
  :attr:`FaultPolicy.max_attempts` pool attempts and evaluated serially
  in the parent (``serial_eval``), where a genuine solver bug finally
  surfaces as its real exception instead of an opaque pool error.

Correctness requires only that the parent ``handle`` callback runs
exactly *once* per chunk — a failed future never delivered its result,
so a re-dispatch cannot double-count — and that result merging is
order-independent, which the canonical tie-break in
:mod:`repro.core.approx` provides.

Counters (through :mod:`repro.obs`): ``dispatch.retries``,
``dispatch.chunks_redispatched``, ``dispatch.chunks_quarantined``,
``dispatch.pool_respawns``.
"""

from __future__ import annotations

import math
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass

from repro import obs

#: Minimum subsets a chunk should carry before the sweep is split finer
#: than one chunk per worker (see :func:`chunk_slices`).
MIN_CHUNK_WORK = 8


def chunk_slices(n: int, workers: int) -> list:
    """Contiguous half-open chunk bounds over ``[0, n)``.

    Guarantees (property-tested):

    * never an empty chunk — ``n <= 0`` returns ``[]`` outright, and
      every emitted ``(lo, hi)`` has ``hi > lo`` (a degenerate chunk
      would waste a whole pool round-trip on pickling nothing);
    * the chunks partition ``[0, n)`` exactly, in order;
    * at least ``min(n, workers)`` chunks, so a small sweep still
      occupies every worker instead of serialising behind one;
    * chunk size capped at 64 for responsive progress, cooperative
      aborts, and bounded checkpoint loss;
    * a minimum-work floor: beyond ``workers`` chunks, extra splits are
      only taken while each chunk keeps at least ``MIN_CHUNK_WORK``
      subsets, so tiny sweeps are not shredded into per-item chunks
      whose pool round-trip (pickle + IPC) costs more than the solve.
    """
    if n <= 0 or workers < 1:
        return []
    # Aim for ~4 chunks per worker (load balancing against uneven chunk
    # cost) but never split so far that chunks drop below the work floor;
    # always emit at least one chunk per worker.
    target = max(workers, min(workers * 4, n // MIN_CHUNK_WORK))
    size = max(1, min(64, n // max(workers, 1), math.ceil(n / target)))
    return [(lo, min(lo + size, n)) for lo in range(0, n, size)]


@dataclass(frozen=True)
class FaultPolicy:
    """Retry/backoff budget for chunk dispatch.

    ``max_attempts`` counts *pool* attempts per chunk; at the budget the
    chunk falls back to serial in-parent evaluation (quarantine), so the
    sweep always terminates with the exact result.
    """

    max_attempts: int = 3
    backoff_initial_s: float = 0.05
    backoff_max_s: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_initial_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff durations must be non-negative")

    def backoff_s(self, respawn_index: int) -> float:
        """Exponential backoff before the ``respawn_index``-th respawn."""
        return min(
            self.backoff_max_s,
            self.backoff_initial_s * (2 ** max(0, respawn_index)),
        )


@dataclass
class DispatchStats:
    """What the dispatcher had to do to finish the sweep."""

    chunks: int = 0
    retries: int = 0               # failed futures observed
    chunks_redispatched: int = 0   # re-submissions after a loss
    chunks_quarantined: int = 0    # serial in-parent fallbacks
    pool_respawns: int = 0


class ChunkDispatcher:
    """Run ``chunk_fn`` over chunks with retry, respawn and quarantine.

    ``chunk_fn`` must be picklable and is invoked in a worker as
    ``chunk_fn(chunk_id, *args, attempt)``.  ``handle(chunk_id, result)``
    runs in the parent exactly once per chunk; ``serial_eval(chunk_id,
    args)`` must produce a result of the same shape for quarantined
    chunks.  ``boundary()`` (optional) runs after every handled chunk —
    the checkpoint-flush / interrupt-drain hook; it may raise to abort
    the sweep (pending futures are cancelled, the pool shut down).
    ``on_submit(chunk_id, attempt)`` (optional) observes every pool
    submission — deterministic chaos accounting hangs off it.
    """

    def __init__(
        self,
        chunk_fn,
        workers: int,
        initializer=None,
        initargs: tuple = (),
        policy: "FaultPolicy | None" = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.chunk_fn = chunk_fn
        self.workers = workers
        self.initializer = initializer
        self.initargs = initargs
        self.policy = policy if policy is not None else FaultPolicy()
        self.stats = DispatchStats()

    def _spawn(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=self.initializer,
            initargs=self.initargs,
        )

    def run(
        self,
        chunks: "list",
        handle,
        serial_eval,
        boundary=None,
        on_submit=None,
    ) -> DispatchStats:
        """Dispatch ``chunks`` (``[(chunk_id, args_tuple), ...]``) until
        every chunk has been handled exactly once."""
        self.stats.chunks = len(chunks)
        queue: deque = deque(
            (chunk_id, tuple(args), 0) for chunk_id, args in chunks
        )
        executor: "ProcessPoolExecutor | None" = None
        futures: dict = {}

        def finish(chunk_id: int, result: object) -> None:
            handle(chunk_id, result)
            if boundary is not None:
                boundary()

        try:
            while queue or futures:
                # Drain the queue: quarantine over-budget chunks, submit
                # the rest to a (possibly fresh) pool.
                while queue:
                    chunk_id, args, attempt = queue[0]
                    if attempt >= self.policy.max_attempts:
                        queue.popleft()
                        self.stats.chunks_quarantined += 1
                        obs.counter_inc("dispatch.chunks_quarantined")
                        finish(chunk_id, serial_eval(chunk_id, args))
                        continue
                    if executor is None:
                        executor = self._spawn()
                    queue.popleft()
                    if attempt > 0:
                        self.stats.chunks_redispatched += 1
                        obs.counter_inc("dispatch.chunks_redispatched")
                    if on_submit is not None:
                        on_submit(chunk_id, attempt)
                    future = executor.submit(
                        self.chunk_fn, chunk_id, *args, attempt
                    )
                    futures[future] = (chunk_id, args, attempt)
                if not futures:
                    continue
                finished, _ = wait(
                    set(futures), return_when=FIRST_COMPLETED
                )
                broken = False
                for future in finished:
                    chunk_id, args, attempt = futures.pop(future)
                    try:
                        result = future.result()
                    except BrokenExecutor:
                        broken = True
                        self.stats.retries += 1
                        obs.counter_inc("dispatch.retries")
                        queue.append((chunk_id, args, attempt + 1))
                    except Exception:
                        # The worker survived but the chunk raised
                        # (injected chaos, or a genuine bug that will
                        # resurface deterministically in quarantine).
                        self.stats.retries += 1
                        obs.counter_inc("dispatch.retries")
                        queue.append((chunk_id, args, attempt + 1))
                    else:
                        finish(chunk_id, result)
                if broken or (
                    executor is not None
                    and getattr(executor, "_broken", False)
                ):
                    # The pool is dead: every in-flight chunk is lost.
                    # Their results were never delivered, so re-running
                    # them cannot double-count.
                    for chunk_id, args, attempt in futures.values():
                        queue.append((chunk_id, args, attempt + 1))
                    futures.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    executor = None
                    delay = self.policy.backoff_s(self.stats.pool_respawns)
                    self.stats.pool_respawns += 1
                    obs.counter_inc("dispatch.pool_respawns")
                    if delay > 0:
                        time.sleep(delay)
        except BaseException:
            if executor is not None:
                for future in futures:
                    future.cancel()
                executor.shutdown(wait=False, cancel_futures=True)
            raise
        if executor is not None:
            executor.shutdown(wait=True)
        return self.stats
