"""Gateway-UAV constraint (extension; the paper's system model requires
"at least one of the UAVs serving as a gateway UAV ... connected to the
Internet with the help of satellites or emergency communication vehicles",
Fig. 1 and Section II-A, but its algorithm does not enforce it).

A ground gateway (e.g. an emergency communication vehicle) sits at a known
position; a deployment satisfies the gateway constraint when at least one
deployed UAV is within the UAV-to-UAV range of the gateway's antenna.
``ensure_gateway`` retrofits a deployment: if no deployed UAV can reach
the gateway, it extends the network with relay UAVs along a shortest hop
path to the nearest gateway-adjacent hovering location, using spare
(undeployed) UAVs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.assignment import optimal_assignment
from repro.core.problem import ProblemInstance
from repro.geometry.point import Point2D, Point3D
from repro.graphs.bfs import UNREACHABLE, multi_source_hops, shortest_hop_path
from repro.network.deployment import Deployment


@dataclass(frozen=True)
class Gateway:
    """A ground gateway with an antenna at ``mast_height_m``."""

    position: Point2D
    mast_height_m: float = 5.0

    def antenna(self) -> Point3D:
        return Point3D(self.position.x, self.position.y, self.mast_height_m)


def gateway_adjacent_locations(
    problem: ProblemInstance, gateway: Gateway
) -> list:
    """Hovering locations whose UAV could reach the gateway antenna
    (3-D distance within the UAV-to-UAV range)."""
    antenna = gateway.antenna()
    reach = problem.graph.uav_range_m
    return [
        j
        for j, loc in enumerate(problem.graph.locations)
        if loc.distance_to(antenna) <= reach
    ]


def has_gateway_link(
    problem: ProblemInstance, deployment: Deployment, gateway: Gateway
) -> bool:
    """Whether some deployed UAV reaches the gateway."""
    adjacent = set(gateway_adjacent_locations(problem, gateway))
    return any(loc in adjacent for loc in deployment.locations_used())


def ensure_gateway(
    problem: ProblemInstance, deployment: Deployment, gateway: Gateway
) -> "Deployment | None":
    """Extend ``deployment`` so it reaches the gateway, if necessary.

    Spare UAVs (not in the deployment) staff a shortest hop path from the
    current network to the nearest gateway-adjacent location.  Returns the
    (possibly unchanged) deployment, or ``None`` when the constraint
    cannot be met — no adjacent location exists, the path is disconnected,
    or too few spare UAVs remain.  The returned deployment's assignment is
    re-optimised so new relays also serve users.
    """
    adjacent = gateway_adjacent_locations(problem, gateway)
    if not adjacent:
        return None
    if has_gateway_link(problem, deployment, gateway):
        return deployment
    if not deployment.placements:
        return None

    graph = problem.graph
    used = set(deployment.locations_used())
    hops_to_adjacent = multi_source_hops(graph.location_graph, adjacent)
    # Attach from the deployed location closest (in hops) to any adjacent
    # location.
    best_src = min(
        used,
        key=lambda v: (
            hops_to_adjacent[v] if hops_to_adjacent[v] != UNREACHABLE
            else float("inf")
        ),
    )
    if hops_to_adjacent[best_src] == UNREACHABLE:
        return None
    target = min(
        adjacent,
        key=lambda a: (
            graph.hops_from(best_src)[a]
            if graph.hops_from(best_src)[a] != UNREACHABLE
            else float("inf")
        ),
    )
    path = shortest_hop_path(graph.location_graph, best_src, target)
    if path is None:
        return None
    new_locations = [v for v in path if v not in used]
    spare = [k for k in range(problem.num_uavs) if k not in deployment.placements]
    spare.sort(key=lambda k: -problem.fleet[k].capacity)
    if len(new_locations) > len(spare):
        return None

    placements = dict(deployment.placements)
    for k, loc in zip(spare, new_locations):
        placements[k] = loc
    return optimal_assignment(graph, problem.fleet, placements)


def appro_alg_with_gateway(
    problem: ProblemInstance, gateway: Gateway, **appro_kwargs: object
) -> "Deployment | None":
    """Run Algorithm 2 and retrofit the gateway constraint.

    If the unconstrained solution already reaches the gateway (or spare
    UAVs can bridge to it), done.  Otherwise UAVs are *reserved* for the
    gateway link: the plan is recomputed with the ``reserve``
    smallest-capacity UAVs withheld from placement, and those UAVs then
    staff the bridge.  ``reserve`` grows until the constraint is met or
    the fleet is exhausted (returns ``None`` only when no gateway-adjacent
    hovering location is reachable at all).
    """
    from repro.core.approx import appro_alg

    if not gateway_adjacent_locations(problem, gateway):
        return None

    by_capacity = sorted(
        range(problem.num_uavs),
        key=lambda k: (-problem.fleet[k].capacity, k),
    )
    s = appro_kwargs.get("s", 3)
    max_reserve = problem.num_uavs - max(2, int(s) if isinstance(s, int) else 2)
    for reserve in range(0, max(1, max_reserve + 1)):
        kept = by_capacity[: problem.num_uavs - reserve]
        if len(kept) < 1:
            break
        sub_fleet = [problem.fleet[k] for k in kept]
        sub_problem = ProblemInstance(graph=problem.graph, fleet=sub_fleet)
        result = appro_alg(sub_problem, **appro_kwargs)
        # Remap sub-fleet indices back to the full fleet.
        placements = {
            kept[k_sub]: loc
            for k_sub, loc in result.deployment.placements.items()
        }
        full = optimal_assignment(problem.graph, problem.fleet, placements)
        with_link = ensure_gateway(problem, full, gateway)
        if with_link is not None:
            return with_link
    return None
