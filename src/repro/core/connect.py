"""Connection step of Algorithm 2 (lines 13-18).

The greedy's chosen locations may induce a disconnected subgraph; build the
complete hop-weighted graph over them, take an MST, expand each MST edge
into a shortest path in the location graph, and deploy the remaining UAVs
(in decreasing capacity order) on the relay nodes so the final network is
connected.  If the connected subgraph needs more than ``K`` nodes the
anchor set is infeasible and ``None`` is returned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.greedy import GreedyResult
from repro.core.problem import ProblemInstance


@dataclass
class ConnectedSolution:
    """A feasible connected deployment candidate for one anchor set."""

    placements: dict   # uav_index -> location_index (greedy picks + relays)
    served: int         # optimal served users for these placements
    relay_locations: list
    subgraph_nodes: set


def connect_and_deploy(
    problem: ProblemInstance,
    greedy: GreedyResult,
    order: "list | None" = None,
    augment_leftover: bool = True,
    gain_mode: str = "exact",
    context: "object | None" = None,
) -> "ConnectedSolution | None":
    """Connect the greedy's locations and staff the relays with UAVs.

    ``context`` (a :class:`repro.core.context.SolverContext`) supplies
    precomputed coverage counts for the frontier pre-filter; the connection
    itself always runs on the graph's cached hop rows.  Results are
    identical with or without it.

    Relay staffing follows the paper's "arbitrary, e.g. greedy" guidance:
    remaining UAVs are taken in decreasing capacity order and each is put on
    the relay location with the largest exact marginal gain (relays can
    serve users too, so this only helps).  Returns ``None`` when the
    connected subgraph would need more than ``K`` UAVs.

    When ``augment_leftover`` is true (default) the ``K - q_j`` UAVs that
    Algorithm 2 as written would leave on the ground are deployed too: each
    goes, in decreasing capacity order, to the unoccupied location adjacent
    to the current network with the largest exact gain, stopping at zero
    gain.  This preserves connectivity and can only increase coverage; the
    ablation bench quantifies its effect (it is our addition, not the
    paper's — see DESIGN.md §3).
    """
    graph = problem.graph
    fleet = problem.fleet
    if order is None:
        order = problem.capacity_order()

    terminals = [loc for _, loc in greedy.chosen]
    nodes, _tree = graph.connect_terminals(terminals)
    if len(nodes) > problem.num_uavs:
        return None

    placements = {k: loc for k, loc in greedy.chosen}
    used_uavs = set(placements)
    relays = sorted(nodes - set(terminals))
    remaining = [k for k in order if k not in used_uavs]
    assert len(remaining) >= len(relays), "q_j <= K must leave enough UAVs"

    engine = greedy.engine
    fast = gain_mode == "fast"
    batched = fast and context is not None
    pending = list(relays)
    for k in remaining[: len(relays)]:
        uav = fleet[k]
        if batched:
            # One masked popcount ranks every pending relay; argmax
            # returns the first maximum, which is exactly where the scalar
            # strict-improvement scan lands.
            gains = engine.direct_gain_bounds(
                context.coverage_rows(k)[np.asarray(pending)], uav.capacity
            )
            best_loc = pending[int(np.argmax(gains))]
        else:
            best_gain = -1
            best_loc = pending[0]
            for loc in pending:
                if fast:
                    gain = engine.direct_gain_bound(
                        graph.coverable_array(loc, uav), uav.capacity
                    )
                else:
                    gain = engine.try_open(
                        (k, loc), graph.coverable_array(loc, uav), uav.capacity
                    )
                    engine.rollback()
                if gain > best_gain:
                    best_gain, best_loc = gain, loc
        engine.open(
            (k, best_loc), graph.coverable_array(best_loc, uav), uav.capacity
        )
        placements[k] = best_loc
        pending.remove(best_loc)

    occupied = set(nodes)
    if augment_leftover:
        adjacency = graph.location_graph
        frontier = {
            w
            for v in occupied
            for w in adjacency.neighbours(v)
            if w not in occupied
        }
        for k in remaining[len(relays):]:
            if not frontier:
                break
            uav = fleet[k]
            counts = None if context is None else context.counts_for_uav(k)
            if batched:
                # Batched form of the scan below: the static pre-filter is
                # subsumed (every frontier gain lands in one reduction) and
                # first-argmax-if-positive equals the scalar winner.
                locs = np.asarray(sorted(frontier))
                gains = engine.direct_gain_bounds(
                    context.coverage_rows(k)[locs], uav.capacity
                )
                pos = int(np.argmax(gains))
                best_loc = int(locs[pos]) if int(gains[pos]) > 0 else -1
            else:
                best_gain = 0
                best_loc = -1
                for loc in sorted(frontier):
                    count = (
                        int(counts[loc]) if counts is not None
                        else graph.coverage_weight(loc, uav)
                    )
                    if min(uav.capacity, count) <= best_gain:
                        continue
                    if fast:
                        gain = engine.direct_gain_bound(
                            graph.coverable_array(loc, uav), uav.capacity
                        )
                    else:
                        gain = engine.try_open(
                            (k, loc), graph.coverable_array(loc, uav),
                            uav.capacity,
                        )
                        engine.rollback()
                    if gain > best_gain:
                        best_gain, best_loc = gain, loc
            if best_loc < 0:
                break  # nothing adjacent helps; stop deploying
            engine.open(
                (k, best_loc),
                graph.coverable_array(best_loc, fleet[k]),
                fleet[k].capacity,
            )
            placements[k] = best_loc
            occupied.add(best_loc)
            frontier.discard(best_loc)
            frontier.update(
                w for w in adjacency.neighbours(best_loc) if w not in occupied
            )

    return ConnectedSolution(
        placements=placements,
        served=engine.served_count,
        relay_locations=relays,
        subgraph_nodes=occupied,
    )
