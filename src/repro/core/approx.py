"""Algorithm 2: the O(sqrt(s/K))-approximation for the maximum connected
coverage problem (Section III-E).

Outer structure: enumerate anchor subsets ``V*_j`` of ``s`` candidate
locations; for each, run the anchored matroid greedy
(:mod:`repro.core.greedy`), connect the chosen locations via
MST-of-shortest-paths and staff relays (:mod:`repro.core.connect`), and
keep the feasible candidate serving the most users.  The final assignment
is recomputed with the exact max-flow of Section II-D (line 25).

Scaling knobs (all default to the paper-faithful behaviour):

* subsets whose anchors provably cannot be connected within ``K`` UAVs are
  skipped — a lossless prune (any such subset fails the ``q_j <= K`` test);
* ``anchor_candidates`` / ``max_anchor_candidates`` restrict the anchor pool
  (e.g. to the locations covering the most users).  This breaks the formal
  guarantee but preserves solution quality in practice and makes the
  ``O(m^s)`` outer loop tractable in pure Python; benches document when
  they use it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.core.assignment import optimal_assignment
from repro.core.connect import connect_and_deploy
from repro.core.greedy import anchored_greedy, pair_greedy
from repro.core.problem import ProblemInstance
from repro.core.segments import SegmentPlan, optimal_segments
from repro.graphs.bfs import UNREACHABLE
from repro.network.deployment import Deployment


@dataclass
class ApproxStats:
    """Bookkeeping about one appro_alg run."""

    subsets_total: int = 0
    subsets_pruned: int = 0
    subsets_evaluated: int = 0
    subsets_infeasible: int = 0
    fallback_used: bool = False


@dataclass
class ApproxResult:
    """The algorithm's output: a feasible deployment plus diagnostics."""

    deployment: Deployment
    served: int
    anchors: tuple
    plan: "SegmentPlan | None"
    stats: ApproxStats = field(default_factory=ApproxStats)


def _anchor_pool(
    problem: ProblemInstance,
    anchor_candidates: "list | None",
    max_anchor_candidates: "int | None",
) -> list:
    """The locations anchors may be drawn from."""
    if anchor_candidates is not None:
        pool = sorted(set(anchor_candidates))
        for v in pool:
            if not (0 <= v < problem.num_locations):
                raise IndexError(f"anchor candidate {v} outside location range")
    else:
        pool = list(range(problem.num_locations))
    if max_anchor_candidates is not None and len(pool) > max_anchor_candidates:
        # Keep the locations that can cover the most users (evaluated with
        # the largest-capacity UAV's radio), ties to lower index.
        strongest = problem.fleet[problem.capacity_order()[0]]
        graph = problem.graph
        pool.sort(key=lambda v: (-graph.coverage_count(v, strongest), v))
        pool = sorted(pool[:max_anchor_candidates])
    return pool


def _prunable(problem: ProblemInstance, subset: tuple) -> bool:
    """True if the anchors provably cannot appear in any feasible solution:
    some pair is disconnected, or the path joining the two farthest anchors
    alone already needs more than ``K`` nodes (a valid lower bound on any
    connected subgraph containing the anchors; see
    :func:`repro.graphs.steiner.connection_cost_lower_bound`)."""
    graph = problem.graph
    worst = 0
    for a_pos in range(len(subset) - 1):
        row = graph.hops_from(subset[a_pos])
        for b in subset[a_pos + 1:]:
            d = row[b]
            if d == UNREACHABLE:
                return True
            worst = max(worst, d)
    return max(len(subset), worst + 1) > problem.num_uavs


def _fallback_single(problem: ProblemInstance) -> ApproxResult:
    """Last-resort feasible solution: the strongest UAV alone at the single
    location covering the most users."""
    graph = problem.graph
    order = problem.capacity_order()
    strongest = problem.fleet[order[0]]
    best_loc = max(
        range(problem.num_locations),
        key=lambda v: (graph.coverage_count(v, strongest), -v),
    )
    deployment = optimal_assignment(
        graph, problem.fleet, {order[0]: best_loc}
    )
    stats = ApproxStats(fallback_used=True)
    return ApproxResult(
        deployment=deployment,
        served=deployment.served_count,
        anchors=(best_loc,),
        plan=None,
        stats=stats,
    )


def appro_alg(
    problem: ProblemInstance,
    s: int = 3,
    anchor_candidates: "list | None" = None,
    max_anchor_candidates: "int | None" = None,
    augment_leftover: bool = True,
    gain_mode: str = "exact",
    inner: str = "sorted",
    progress: "object | None" = None,
) -> ApproxResult:
    """Run Algorithm 2 with parameter ``s`` (paper default 3).

    ``s`` is clamped to ``K``; if no anchor subset of size ``s`` yields a
    feasible connected deployment the algorithm retries with smaller ``s``
    and ultimately falls back to a single-UAV deployment (always feasible).
    ``augment_leftover`` additionally deploys the UAVs Algorithm 2 would
    leave unused (see :func:`repro.core.connect.connect_and_deploy`); pass
    ``False`` for the paper-strict behaviour.  ``gain_mode`` is ``"exact"``
    (paper-faithful marginal gains) or ``"fast"`` (direct-bound candidate
    ranking; see :func:`repro.core.greedy.anchored_greedy`).  ``inner``
    selects the greedy flavour: ``"sorted"`` is Algorithm 2's
    capacity-sorted loop, ``"pairs"`` the textbook FNW greedy over (UAV,
    location) pairs (slower; ablation).  ``progress``, if given, is called
    as ``progress(done, total)`` after each subset.
    """
    if s < 1:
        raise ValueError(f"s must be a positive integer, got {s}")
    if inner not in ("sorted", "pairs"):
        raise ValueError(f"inner must be 'sorted' or 'pairs', got {inner!r}")
    s = min(s, problem.num_uavs)
    pool = _anchor_pool(problem, anchor_candidates, max_anchor_candidates)
    if len(pool) < s:
        raise ValueError(
            f"anchor pool of {len(pool)} locations cannot host s = {s} anchors"
        )

    order = problem.capacity_order()
    stats = ApproxStats()
    best: "tuple[int, dict, tuple] | None" = None  # (served, placements, anchors)
    plan = optimal_segments(problem.num_uavs, s)

    subsets = list(combinations(pool, s))
    stats.subsets_total = len(subsets)
    for done, subset in enumerate(subsets, start=1):
        if _prunable(problem, subset):
            stats.subsets_pruned += 1
        else:
            stats.subsets_evaluated += 1
            if inner == "pairs":
                greedy = pair_greedy(problem, list(subset), plan)
            else:
                greedy = anchored_greedy(
                    problem, list(subset), plan, order, gain_mode=gain_mode
                )
            solution = connect_and_deploy(
                problem,
                greedy,
                order,
                augment_leftover=augment_leftover,
                gain_mode=gain_mode,
            )
            if solution is None:
                stats.subsets_infeasible += 1
            elif best is None or solution.served > best[0]:
                best = (solution.served, solution.placements, subset)
        if progress is not None:
            progress(done, stats.subsets_total)

    if best is None:
        if s > 1:
            smaller = appro_alg(
                problem,
                s=s - 1,
                anchor_candidates=anchor_candidates,
                max_anchor_candidates=max_anchor_candidates,
                augment_leftover=augment_leftover,
                gain_mode=gain_mode,
                inner=inner,
                progress=progress,
            )
            smaller.stats.fallback_used = True
            return smaller
        return _fallback_single(problem)

    served, placements, anchors = best
    deployment = optimal_assignment(problem.graph, problem.fleet, placements)
    assert deployment.served_count == served, (
        f"incremental engine served {served} but exact max-flow served "
        f"{deployment.served_count}; the two must agree"
    )
    return ApproxResult(
        deployment=deployment,
        served=deployment.served_count,
        anchors=anchors,
        plan=plan,
        stats=stats,
    )
