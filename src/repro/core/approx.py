"""Algorithm 2: the O(sqrt(s/K))-approximation for the maximum connected
coverage problem (Section III-E).

Outer structure: enumerate anchor subsets ``V*_j`` of ``s`` candidate
locations; for each, run the anchored matroid greedy
(:mod:`repro.core.greedy`), connect the chosen locations via
MST-of-shortest-paths and staff relays (:mod:`repro.core.connect`), and
keep the feasible candidate serving the most users.  The final assignment
is recomputed with the exact max-flow of Section II-D (line 25).

The enumeration runs on a shared :class:`repro.core.context.SolverContext`
(all-pairs hop matrix + per-radio coverage bitsets), with three scaling
layers on top of the paper-faithful loop:

* the connectivity prune is evaluated for all subsets at once
  (vectorised; decisions identical to the scalar reference, so the serial
  default stays bit-identical to the historical implementation);
* ``bound_prune=True`` visits subsets in descending order of an admissible
  upper bound (:func:`repro.core.context.subset_bounds`) and skips any
  subset whose bound cannot beat the best found — a lossless prune whose
  skips are counted in :class:`ApproxStats`;
* ``workers=N`` fans the surviving subsets out over a process pool; each
  worker receives the context once via the pool initializer, and per-chunk
  bests merge under the canonical tie-break (served descending, then
  anchors lexicographic) — the same winner the serial loop produces.

On top of those sits the resilience layer (this is what makes long runs
crash-safe; see ``docs/RESILIENCE.md``):

* the fan-out goes through :class:`repro.core.dispatch.ChunkDispatcher`,
  so a dead worker breaks only its in-flight chunks — the pool respawns
  with exponential backoff, lost chunks are re-dispatched, and chunks
  that keep failing are quarantined into serial in-parent evaluation.
  Because a failed future never delivered a result and the merge is
  order-independent, the recovered result is bit-identical to the serial
  loop no matter what was killed.
* ``checkpoint=CheckpointConfig(...)`` snapshots progress atomically at
  chunk/subset boundaries (:mod:`repro.core.checkpoint`); with
  ``resume=True`` a killed run restores the completed ranges, running
  counters and best-so-far and finishes to the identical assignment.
* a :func:`repro.util.interrupt.graceful_shutdown` drain request makes
  both loops stop at the next boundary, flush a final checkpoint and
  raise :class:`repro.util.interrupt.SolveInterrupted` with a partial
  summary instead of dying mid-chunk.
* ``chaos`` accepts a :class:`repro.ops.chaos.ChaosSpec` (duck-typed —
  core never imports :mod:`repro.ops`) that injects deterministic worker
  kills / exceptions / delays at chosen chunk ids, for the fault-
  tolerance tests and the CI chaos job.

Scaling knobs that trade fidelity for speed (``anchor_candidates`` /
``max_anchor_candidates`` restrict the anchor pool to the best-covering
locations) remain available; benches document when they use them.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from itertools import chain, combinations

import numpy as np

from repro import obs
from repro.core.assignment import optimal_assignment, optimal_cell_assignment
from repro.core.checkpoint import (
    CheckpointConfig,
    SolveCheckpoint,
    missing_ranges,
    solve_run_key,
)
from repro.core.connect import connect_and_deploy
from repro.core.context import SolverContext, prunable_mask, subset_bounds
from repro.core.dispatch import ChunkDispatcher, FaultPolicy
from repro.core.dispatch import chunk_slices as _chunk_slices
from repro.core.greedy import anchored_greedy, pair_greedy
from repro.core.problem import ProblemInstance
from repro.core.segments import SegmentPlan, optimal_segments
from repro.flow.bipartite import new_engine_for
from repro.graphs.bfs import UNREACHABLE
from repro.network.deployment import Deployment
from repro.util.interrupt import SolveInterrupted, interrupt_requested


@dataclass
class ApproxStats:
    """Bookkeeping about one appro_alg run.

    ``subsets_total == subsets_pruned + subsets_bound_skipped +
    subsets_evaluated`` always holds; with ``bound_prune`` off the skip
    count is zero.  Bound skips depend on visit order, so their split
    against ``subsets_evaluated`` may differ between worker counts — the
    returned solution never does.

    The resilience fields record what fault tolerance had to do:
    ``retries`` counts failed chunk futures, ``chunks_redispatched`` the
    re-submissions they caused, ``chunks_quarantined`` the serial
    in-parent fallbacks, ``pool_respawns`` the executor rebuilds.
    ``resume_chunks_skipped`` / ``resume_subsets_skipped`` say how much
    completed work a ``--resume`` restored instead of recomputing, and
    ``checkpoint_writes`` how many durable snapshots were flushed.
    """

    subsets_total: int = 0
    subsets_pruned: int = 0
    subsets_evaluated: int = 0
    subsets_infeasible: int = 0
    subsets_bound_skipped: int = 0
    fallback_used: bool = False
    workers: int = 1
    context_build_s: float = 0.0
    retries: int = 0
    chunks_redispatched: int = 0
    chunks_quarantined: int = 0
    pool_respawns: int = 0
    resume_chunks_skipped: int = 0
    resume_subsets_skipped: int = 0
    checkpoint_writes: int = 0


@dataclass
class ApproxResult:
    """The algorithm's output: a feasible deployment plus diagnostics."""

    deployment: Deployment
    served: int
    anchors: tuple
    plan: "SegmentPlan | None"
    stats: ApproxStats = field(default_factory=ApproxStats)


def _anchor_pool(
    problem: ProblemInstance,
    anchor_candidates: "list | None",
    max_anchor_candidates: "int | None",
    s: int,
) -> list:
    """The locations anchors may be drawn from."""
    if max_anchor_candidates is not None and max_anchor_candidates < s:
        raise ValueError(
            f"max_anchor_candidates = {max_anchor_candidates} is smaller "
            f"than s = {s}: the restricted anchor pool could never host an "
            "anchor subset; raise max_anchor_candidates or lower s"
        )
    if anchor_candidates is not None:
        pool = sorted(set(anchor_candidates))
        for v in pool:
            if not (0 <= v < problem.num_locations):
                raise IndexError(f"anchor candidate {v} outside location range")
    else:
        pool = list(range(problem.num_locations))
    if max_anchor_candidates is not None and len(pool) > max_anchor_candidates:
        # Keep the locations that can cover the most users (evaluated with
        # the largest-capacity UAV's radio), ties to lower index.
        strongest = problem.fleet[problem.capacity_order()[0]]
        graph = problem.graph
        pool.sort(key=lambda v: (-graph.coverage_weight(v, strongest), v))
        pool = sorted(pool[:max_anchor_candidates])
    return pool


def _final_assignment(graph, fleet, placements: dict):
    """The exact max-flow final assignment (line 25), dispatched on the
    graph kind: demand-cell graphs with a demand > 1 need the capacitated
    cell-arc network; per-user and singleton-cell graphs keep the unit
    network (singleton cells behave exactly like users, preserving the
    bit-identity of the aggregated degenerate path)."""
    demands = getattr(graph, "cell_demands", None)
    if demands is not None and demands.size and int(demands.max()) > 1:
        return optimal_cell_assignment(graph, fleet, placements)
    return optimal_assignment(graph, fleet, placements)


def _prunable(problem: ProblemInstance, subset: tuple) -> bool:
    """Scalar reference for the connectivity prune (the vectorised
    :func:`repro.core.context.prunable_mask` must agree with it; property
    tests assert this).  True if the anchors provably cannot appear in any
    feasible solution: some pair is disconnected, or the path joining the
    two farthest anchors alone already needs more than ``K`` nodes (a valid
    lower bound on any connected subgraph containing the anchors; see
    :func:`repro.graphs.steiner.connection_cost_lower_bound`)."""
    graph = problem.graph
    worst = 0
    for a_pos in range(len(subset) - 1):
        row = graph.hops_from(subset[a_pos])
        for b in subset[a_pos + 1:]:
            d = row[b]
            if d == UNREACHABLE:
                return True
            worst = max(worst, d)
    return max(len(subset), worst + 1) > problem.num_uavs


def _fallback_single(problem: ProblemInstance) -> ApproxResult:
    """Last-resort feasible solution: the strongest UAV alone at the single
    location covering the most users."""
    graph = problem.graph
    order = problem.capacity_order()
    strongest = problem.fleet[order[0]]
    best_loc = max(
        range(problem.num_locations),
        key=lambda v: (graph.coverage_weight(v, strongest), -v),
    )
    deployment = _final_assignment(
        graph, problem.fleet, {order[0]: best_loc}
    )
    stats = ApproxStats(fallback_used=True)
    return ApproxResult(
        deployment=deployment,
        served=deployment.served_count,
        anchors=(best_loc,),
        plan=None,
        stats=stats,
    )


# -- subset evaluation (shared by the serial loop and pool workers) ----------


def _evaluate_subset(
    problem: ProblemInstance,
    subset: tuple,
    plan: SegmentPlan,
    order: list,
    inner: str,
    gain_mode: str,
    augment_leftover: bool,
    context: "SolverContext | None",
    engine: "IncrementalAssignment | None" = None,
) -> "tuple[int, dict] | None":
    """Greedy + connect for one anchor subset; ``(served, placements)`` or
    ``None`` when the connected subgraph would exceed ``K`` UAVs.

    ``engine`` optionally supplies a warm flow engine shared across the
    sweep: the evaluation runs inside a :meth:`~repro.flow.bipartite.
    IncrementalAssignment.fork` scope that is rolled back afterwards, so
    adjacent subsets reuse one engine instead of rebuilding it."""
    if engine is not None:
        engine.fork()
    try:
        with obs.span("approx.subset", anchors=list(subset)):
            with obs.span("approx.greedy"):
                if inner == "pairs":
                    greedy = pair_greedy(problem, list(subset), plan,
                                         context=context, engine=engine)
                else:
                    greedy = anchored_greedy(
                        problem, list(subset), plan, order,
                        gain_mode=gain_mode, context=context, engine=engine,
                    )
            with obs.span("approx.connect"):
                solution = connect_and_deploy(
                    problem,
                    greedy,
                    order,
                    augment_leftover=augment_leftover,
                    gain_mode=gain_mode,
                    context=context,
                )
        if solution is None:
            return None
        return solution.served, solution.placements
    finally:
        if engine is not None:
            engine.rollback_fork()


def _better(candidate: "tuple[int, dict, tuple]",
            best: "tuple[int, dict, tuple] | None") -> bool:
    """Canonical tie-break: served descending, then anchors lexicographic.

    In lexicographic visit order the tie clause never fires (later subsets
    compare greater), so this reproduces the historical first-strict-winner
    exactly; under bound order or parallel merge it pins the same winner
    regardless of execution order.
    """
    if best is None:
        return True
    return candidate[0] > best[0] or (
        candidate[0] == best[0] and candidate[2] < best[2]
    )


def _bound_skippable(bound: int, subset: tuple,
                     best: "tuple[int, dict, tuple] | None") -> bool:
    """Whether an admissible ``bound`` proves ``subset`` cannot change the
    canonical winner: it can neither beat the best served count nor, on a
    tie, improve the lexicographic anchor tie-break."""
    if best is None:
        return False
    return bound < best[0] or (bound == best[0] and subset > best[2])


def _subset_array(pool: list, s: int) -> np.ndarray:
    total = math.comb(len(pool), s)
    arr = np.fromiter(
        chain.from_iterable(combinations(pool, s)),
        dtype=np.int32,
        count=total * s,
    )
    return arr.reshape(total, s)


def _eval_chunk(problem, context, plan, order, eval_kw,
                subsets: np.ndarray, bounds: "np.ndarray | None"):
    """Evaluate one contiguous chunk of subsets: the chunk-local best (or
    ``None``) plus (evaluated, infeasible, bound_skipped) counts.  Shared
    by pool workers and the parent-side quarantine fallback, so a
    quarantined chunk produces exactly what the worker would have."""
    best: "tuple[int, dict, tuple] | None" = None
    evaluated = infeasible = skipped = 0
    engine = new_engine_for(problem.graph)
    for i in range(subsets.shape[0]):
        subset = tuple(int(x) for x in subsets[i])
        if bounds is not None and _bound_skippable(
            int(bounds[i]), subset, best
        ):
            skipped += 1
            continue
        evaluated += 1
        outcome = _evaluate_subset(
            problem, subset, plan, order, context=context, engine=engine,
            **eval_kw
        )
        if outcome is None:
            infeasible += 1
        else:
            candidate = (outcome[0], outcome[1], subset)
            if _better(candidate, best):
                best = candidate
    return best, evaluated, infeasible, skipped


# -- process-parallel fan-out ------------------------------------------------

_WORKER_STATE: dict = {}


def _worker_init(problem, context, plan, order, eval_kw,
                 obs_enabled: bool = False, chaos=None) -> None:
    """Pool initializer: adopt the shipped context so every hop/coverage
    lookup in this process is a warm-cache hit.  Observability state is
    reset (forked workers inherit the parent's buffers) and re-enabled
    only when the parent traces.  ``chaos`` (a duck-typed
    ``repro.ops.chaos.ChaosSpec``) is stashed for per-chunk injection."""
    obs.worker_init(obs_enabled)
    context.install_into(problem.graph)
    _WORKER_STATE.update(
        problem=problem, context=context, plan=plan, order=order,
        eval_kw=eval_kw, chaos=chaos,
    )


def _worker_chunk(chunk_id: int, subsets: np.ndarray,
                  bounds: "np.ndarray | None", attempt: int = 0):
    """Evaluate one chunk of surviving subsets in a pool worker; returns
    the chunk-local best (or ``None``), the chunk counts, the worker pid
    and the worker's observability delta (spans + metrics, ``None`` when
    tracing is off).  Any configured chaos event for ``(chunk_id,
    attempt)`` fires *before* evaluation, so a killed chunk never ships a
    partial result."""
    chaos = _WORKER_STATE.get("chaos")
    if chaos is not None:
        chaos.apply(chunk_id, attempt)
    best, evaluated, infeasible, skipped = _eval_chunk(
        _WORKER_STATE["problem"], _WORKER_STATE["context"],
        _WORKER_STATE["plan"], _WORKER_STATE["order"],
        _WORKER_STATE["eval_kw"], subsets, bounds,
    )
    return (best, evaluated, infeasible, skipped, os.getpid(),
            obs.export_obs_state())


def _drain(ckpt: "SolveCheckpoint | None", stats: ApproxStats,
           best, s: int, done: int, total: int) -> None:
    """A graceful-shutdown request reached a chunk/subset boundary: flush
    a final checkpoint (when configured) and surface the partial run."""
    path = None
    if ckpt is not None:
        ckpt.record_counts(
            stats.subsets_pruned, stats.subsets_evaluated,
            stats.subsets_infeasible, stats.subsets_bound_skipped,
        )
        ckpt.set_best(best)
        ckpt.flush()
        path = ckpt.path
    obs.counter_inc("approx.interrupted")
    raise SolveInterrupted(
        f"solve interrupted at subset {done}/{total} (s={s}); "
        + (f"checkpoint flushed to {path}" if path is not None
           else "no checkpoint configured"),
        checkpoint_path=path,
        partial={
            "s": s, "done": int(done), "total": int(total),
            "best_served": None if best is None else int(best[0]),
        },
    )


def _restore_level(ckpt: SolveCheckpoint, stats: ApproxStats):
    """Adopt a resumed level's counters into ``stats``; returns the
    restored best-so-far."""
    stats.subsets_pruned = ckpt.counts["pruned"]
    stats.subsets_evaluated = ckpt.counts["evaluated"]
    stats.subsets_infeasible = ckpt.counts["infeasible"]
    stats.subsets_bound_skipped = ckpt.counts["bound_skipped"]
    stats.resume_chunks_skipped += ckpt.resumed_chunks
    stats.resume_subsets_skipped += ckpt.resumed_units
    return ckpt.best


def _run_parallel(
    problem, context, plan, order, eval_kw, stats, progress,
    subsets, prunable, bounds, workers, s,
    ckpt: "SolveCheckpoint | None" = None, chaos=None,
    policy: "FaultPolicy | None" = None,
):
    total = stats.subsets_total
    stats.subsets_pruned = int(prunable.sum())
    surviving = np.nonzero(~prunable)[0]
    if bounds is not None:
        live = bounds[surviving]
        keys = tuple(subsets[surviving, col] for col in
                     range(subsets.shape[1] - 1, -1, -1))
        surviving = surviving[np.lexsort(keys + (-live,))]
    sub = subsets[surviving]
    live_bounds = None if bounds is None else bounds[surviving]

    best: "tuple[int, dict, tuple] | None" = None
    done = stats.subsets_pruned
    if ckpt is not None:
        ckpt.enter_level(s, "surviving", sub.shape[0])
        if ckpt.resumed:
            best = _restore_level(ckpt, stats)
            stats.subsets_pruned = int(prunable.sum())
            done = stats.subsets_pruned + ckpt.resumed_units
    if done:
        obs.counter_inc("approx.subsets_done", done)
    if progress is not None and done:
        progress(done, total)

    # Chunk only the ranges a resume did not already cover; any chunking
    # of the gaps is fine because completed ranges are stored as arbitrary
    # half-open intervals, not chunk ids.
    gaps = ([(0, sub.shape[0])] if ckpt is None
            else missing_ranges(sub.shape[0], ckpt.completed))
    chunks: list = []
    ranges: dict = {}
    for glo, ghi in gaps:
        for lo, hi in _chunk_slices(ghi - glo, workers):
            clo, chi = glo + lo, glo + hi
            chunk_id = len(chunks)
            ranges[chunk_id] = (clo, chi)
            chunk_bounds = (
                None if live_bounds is None else live_bounds[clo:chi]
            )
            chunks.append((chunk_id, (sub[clo:chi], chunk_bounds)))
    if not chunks:
        return best

    worker_done: dict = {}

    def handle(chunk_id: int, result) -> None:
        nonlocal best, done
        chunk_best, evaluated, infeasible, skipped, pid, payload = result
        obs.absorb_obs_state(payload)
        stats.subsets_evaluated += evaluated
        stats.subsets_infeasible += infeasible
        stats.subsets_bound_skipped += skipped
        if chunk_best is not None and _better(chunk_best, best):
            best = chunk_best
        lo, hi = ranges[chunk_id]
        done += hi - lo
        # Parent-side progress telemetry: the done counter mirrors
        # the serial loop exactly (both sum to subsets_total), and
        # per-worker absorption lands in gauges so worker skew is
        # visible live without perturbing counter equality.
        obs.counter_inc("approx.subsets_done", hi - lo)
        worker_done[pid] = worker_done.get(pid, 0) + (hi - lo)
        obs.gauge_set(f"approx.worker.{pid}.subsets", worker_done[pid])
        if progress is not None:
            progress(done, total)
        if ckpt is not None:
            ckpt.mark_range(lo, hi)
            ckpt.record_counts(
                stats.subsets_pruned, stats.subsets_evaluated,
                stats.subsets_infeasible, stats.subsets_bound_skipped,
            )
            ckpt.set_best(best)
            ckpt.maybe_flush()

    def serial_eval(chunk_id: int, args):
        # Quarantine: the chunk exhausted its pool attempts; evaluate it
        # in the parent, where a genuine solver bug raises as itself.
        chunk_subsets, chunk_bounds = args
        chunk_best, evaluated, infeasible, skipped = _eval_chunk(
            problem, context, plan, order, eval_kw,
            chunk_subsets, chunk_bounds,
        )
        return (chunk_best, evaluated, infeasible, skipped,
                os.getpid(), None)

    def boundary() -> None:
        if interrupt_requested():
            _drain(ckpt, stats, best, s, done, total)

    def on_submit(chunk_id: int, attempt: int) -> None:
        # Chaos accounting happens parent-side at submission: a killed
        # worker can never report what was injected into it.
        if chaos is not None:
            event = chaos.event_for(chunk_id, attempt)
            if event is not None:
                obs.counter_inc(f"chaos.injected.{event.action}")

    initargs = (problem, context, plan, order, eval_kw,
                obs.is_enabled(), chaos)
    dispatcher = ChunkDispatcher(
        _worker_chunk, workers,
        initializer=_worker_init, initargs=initargs, policy=policy,
    )
    try:
        dispatcher.run(
            chunks, handle, serial_eval,
            boundary=boundary, on_submit=on_submit,
        )
    finally:
        stats.retries += dispatcher.stats.retries
        stats.chunks_redispatched += dispatcher.stats.chunks_redispatched
        stats.chunks_quarantined += dispatcher.stats.chunks_quarantined
        stats.pool_respawns += dispatcher.stats.pool_respawns
    return best


def _run_serial(
    problem, context, plan, order, eval_kw, stats, progress,
    subsets, prunable, bounds, s,
    ckpt: "SolveCheckpoint | None" = None,
):
    total = stats.subsets_total
    best: "tuple[int, dict, tuple] | None" = None
    engine = new_engine_for(problem.graph)

    def evaluate(subset: tuple) -> None:
        nonlocal best
        stats.subsets_evaluated += 1
        outcome = _evaluate_subset(
            problem, subset, plan, order, context=context, engine=engine,
            **eval_kw
        )
        if outcome is None:
            stats.subsets_infeasible += 1
        else:
            candidate = (outcome[0], outcome[1], subset)
            if _better(candidate, best):
                best = candidate

    def after(lo: int, hi: int) -> None:
        if ckpt is not None:
            ckpt.mark_range(lo, hi, chunk=False)
            ckpt.record_counts(
                stats.subsets_pruned, stats.subsets_evaluated,
                stats.subsets_infeasible, stats.subsets_bound_skipped,
            )
            ckpt.set_best(best)
            ckpt.maybe_flush()

    if bounds is None:
        # Paper-faithful lexicographic visit order (bit-identical to the
        # historical loop, including the progress call series).  The
        # checkpoint cursor lives in the *raw* index domain here: every
        # subset — pruned or evaluated — advances it.
        done = 0
        if ckpt is not None:
            ckpt.enter_level(s, "raw", total)
            if ckpt.resumed:
                best = _restore_level(ckpt, stats)
                done = ckpt.resumed_units
                if done:
                    obs.counter_inc("approx.subsets_done", done)
                    if progress is not None:
                        progress(done, total)
        gaps = ([(0, total)] if ckpt is None
                else missing_ranges(total, ckpt.completed))
        for glo, ghi in gaps:
            for i in range(glo, ghi):
                if interrupt_requested():
                    _drain(ckpt, stats, best, s, done, total)
                if prunable[i]:
                    stats.subsets_pruned += 1
                else:
                    evaluate(tuple(int(x) for x in subsets[i]))
                done += 1
                obs.counter_inc("approx.subsets_done")
                if progress is not None:
                    progress(done, total)
                after(i, i + 1)
        return best

    stats.subsets_pruned = int(prunable.sum())
    surviving = np.nonzero(~prunable)[0]
    keys = tuple(subsets[surviving, col] for col in
                 range(subsets.shape[1] - 1, -1, -1))
    surviving = surviving[np.lexsort(keys + (-bounds[surviving],))]
    n = int(surviving.shape[0])
    done = stats.subsets_pruned
    if ckpt is not None:
        ckpt.enter_level(s, "surviving", n)
        if ckpt.resumed:
            best = _restore_level(ckpt, stats)
            stats.subsets_pruned = int(prunable.sum())
            done = stats.subsets_pruned + ckpt.resumed_units
    if done:
        obs.counter_inc("approx.subsets_done", done)
    if progress is not None and done:
        progress(done, total)
    gaps = ([(0, n)] if ckpt is None
            else missing_ranges(n, ckpt.completed))
    for glo, ghi in gaps:
        for pos in range(glo, ghi):
            if interrupt_requested():
                _drain(ckpt, stats, best, s, done, total)
            i = surviving[pos]
            subset = tuple(int(x) for x in subsets[i])
            if _bound_skippable(int(bounds[i]), subset, best):
                stats.subsets_bound_skipped += 1
            else:
                evaluate(subset)
            done += 1
            obs.counter_inc("approx.subsets_done")
            if progress is not None:
                progress(done, total)
            after(pos, pos + 1)
    return best


def _carry_resilience(child: ApproxStats, parent: ApproxStats,
                      ckpt: "SolveCheckpoint | None") -> None:
    """Fold a fallback level's fault-tolerance accounting into the stats
    the caller actually sees (the child result's)."""
    child.retries += parent.retries
    child.chunks_redispatched += parent.chunks_redispatched
    child.chunks_quarantined += parent.chunks_quarantined
    child.pool_respawns += parent.pool_respawns
    child.resume_chunks_skipped += parent.resume_chunks_skipped
    child.resume_subsets_skipped += parent.resume_subsets_skipped
    if ckpt is not None:
        child.checkpoint_writes = ckpt.writes


def appro_alg(
    problem: ProblemInstance,
    s: int = 3,
    anchor_candidates: "list | None" = None,
    max_anchor_candidates: "int | None" = None,
    augment_leftover: bool = True,
    gain_mode: str = "exact",
    inner: str = "sorted",
    progress: "object | None" = None,
    workers: int = 1,
    bound_prune: bool = False,
    context: "SolverContext | None" = None,
    checkpoint: "CheckpointConfig | None" = None,
    chaos=None,
    policy: "FaultPolicy | None" = None,
    _ckpt_state: "SolveCheckpoint | None" = None,
) -> ApproxResult:
    """Run Algorithm 2 with parameter ``s`` (paper default 3).

    ``s`` is clamped to ``K``; if no anchor subset of size ``s`` yields a
    feasible connected deployment the algorithm retries with smaller ``s``
    and ultimately falls back to a single-UAV deployment (always feasible).
    ``augment_leftover`` additionally deploys the UAVs Algorithm 2 would
    leave unused (see :func:`repro.core.connect.connect_and_deploy`); pass
    ``False`` for the paper-strict behaviour.  ``gain_mode`` is ``"exact"``
    (paper-faithful marginal gains) or ``"fast"`` (direct-bound candidate
    ranking; see :func:`repro.core.greedy.anchored_greedy`).  ``inner``
    selects the greedy flavour: ``"sorted"`` is Algorithm 2's
    capacity-sorted loop, ``"pairs"`` the textbook FNW greedy over (UAV,
    location) pairs (slower; ablation).

    ``progress``, if given, is called as ``progress(done, total)``; ``done``
    is monotonically non-decreasing across the whole run, including the
    ``s - 1`` fallback retries, during which ``total`` grows by the retry's
    subset count (one continuous series, never a restart from zero).

    Engine knobs — all default to the paper-faithful serial behaviour,
    whose results are bit-identical to the historical implementation:

    * ``workers`` > 1 fans subset evaluation out over a process pool; the
      merged result is identical to the serial one, even when workers die
      mid-sweep (lost chunks are re-dispatched, poison chunks quarantined
      to serial in-parent evaluation; see :mod:`repro.core.dispatch`).
    * ``bound_prune`` visits subsets in descending optimistic-bound order
      and skips provably non-improving ones (lossless; identical result).
    * ``context`` reuses a prebuilt :class:`SolverContext` (e.g. across
      repeated solves of the same instance); by default one is built and
      its build time recorded in ``stats.context_build_s``.

    Resilience knobs:

    * ``checkpoint`` (:class:`repro.core.checkpoint.CheckpointConfig`)
      enables durable progress snapshots; with ``checkpoint.resume`` a
      matching snapshot restores completed work, and the run finishes to
      the bit-identical final assignment.  A snapshot from *different*
      work is ignored and overwritten (``checkpoint.mismatches``).
    * ``chaos`` (:class:`repro.ops.chaos.ChaosSpec`, duck-typed) injects
      deterministic worker faults — test/ops harness only.
    * ``policy`` (:class:`repro.core.dispatch.FaultPolicy`) tunes the
      retry budget and respawn backoff of the parallel fan-out.

    Under a :func:`repro.util.interrupt.graceful_shutdown` drain request
    the run stops at the next chunk/subset boundary, flushes a final
    checkpoint and raises :class:`SolveInterrupted` with a partial
    summary.
    """
    if s < 1:
        raise ValueError(f"s must be a positive integer, got {s}")
    if inner not in ("sorted", "pairs"):
        raise ValueError(f"inner must be 'sorted' or 'pairs', got {inner!r}")
    if workers < 1:
        raise ValueError(f"workers must be a positive integer, got {workers}")
    s = min(s, problem.num_uavs)
    pool = _anchor_pool(problem, anchor_candidates, max_anchor_candidates, s)
    if len(pool) < s:
        raise ValueError(
            f"anchor pool of {len(pool)} locations cannot host s = {s} anchors"
        )

    obs.counter_inc("approx.runs")
    order = problem.capacity_order()
    stats = ApproxStats(workers=workers)
    plan = optimal_segments(problem.num_uavs, s)
    if context is None:
        with obs.span("approx.context_build"):
            context = SolverContext.from_problem(problem)
        stats.context_build_s = context.build_seconds
    elif not context.matches(problem):
        raise ValueError(
            "supplied SolverContext does not match the problem shape "
            f"(context: {context.num_locations} locations, "
            f"{context.num_users} users, {context.num_uavs} UAVs)"
        )

    eval_kw = dict(
        inner=inner, gain_mode=gain_mode, augment_leftover=augment_leftover
    )
    ckpt = _ckpt_state
    if ckpt is None and checkpoint is not None:
        # run_key is s-independent: the same checkpoint file carries the
        # whole run including its s-1 fallback levels.
        run_key = solve_run_key(
            problem, pool, eval_kw, bound_prune, checkpoint.key
        )
        ckpt = SolveCheckpoint(checkpoint, run_key)

    def recurse_fallback() -> ApproxResult:
        inner_progress = progress
        if progress is not None:
            base = stats.subsets_total

            def inner_progress(done, total, _cb=progress, _base=base):
                _cb(_base + done, _base + total)

        smaller = appro_alg(
            problem,
            s=s - 1,
            anchor_candidates=anchor_candidates,
            max_anchor_candidates=max_anchor_candidates,
            augment_leftover=augment_leftover,
            gain_mode=gain_mode,
            inner=inner,
            progress=inner_progress,
            workers=workers,
            bound_prune=bound_prune,
            context=context,
            chaos=chaos,
            policy=policy,
            _ckpt_state=ckpt,
        )
        smaller.stats.fallback_used = True
        _carry_resilience(smaller.stats, stats, ckpt)
        return smaller

    if ckpt is not None and ckpt.is_exhausted(s):
        # A previous (checkpointed) run already proved level s yields no
        # feasible candidate: fast-forward past the whole enumeration.
        obs.counter_inc("approx.fallbacks")
        if s > 1:
            return recurse_fallback()
        result = _fallback_single(problem)
        _carry_resilience(result.stats, stats, ckpt)
        return result

    subsets = _subset_array(pool, s)
    stats.subsets_total = subsets.shape[0]
    # Announce the denominator before enumerating so live progress
    # (repro.obs.live) can render a completion fraction and an ETA; the
    # matching approx.subsets_done counter advances parent-side in both
    # the serial loop and the parallel absorption loop, so done/planned
    # is exact for any worker count (and sums across s-1 fallbacks).
    obs.counter_inc("approx.subsets_planned", stats.subsets_total)
    prunable = prunable_mask(context, subsets, problem.num_uavs)
    bounds = (
        subset_bounds(context, subsets, problem.num_uavs)
        if bound_prune else None
    )

    surviving_count = int(subsets.shape[0] - prunable.sum())
    # The enumeration is the allocation hot spot; bracket it with the
    # profiler's memory watermark (shared no-op unless one is active).
    with obs.span("approx.enumerate", s=s, subsets=int(stats.subsets_total),
                  workers=workers), obs.stage_watermark("approx.enumerate"):
        if workers > 1 and surviving_count >= 2 * workers:
            best = _run_parallel(
                problem, context, plan, order, eval_kw, stats, progress,
                subsets, prunable, bounds, workers, s,
                ckpt=ckpt, chaos=chaos, policy=policy,
            )
        else:
            best = _run_serial(
                problem, context, plan, order, eval_kw, stats, progress,
                subsets, prunable, bounds, s, ckpt=ckpt,
            )
    obs.counter_inc("approx.subsets_pruned", stats.subsets_pruned)
    obs.counter_inc("approx.subsets_evaluated", stats.subsets_evaluated)
    obs.counter_inc("approx.subsets_infeasible", stats.subsets_infeasible)
    obs.counter_inc("approx.subsets_bound_skipped",
                    stats.subsets_bound_skipped)

    if best is None:
        obs.counter_inc("approx.fallbacks")
        if ckpt is not None:
            ckpt.mark_exhausted(s)
        if s > 1:
            return recurse_fallback()
        result = _fallback_single(problem)
        _carry_resilience(result.stats, stats, ckpt)
        return result

    if ckpt is not None:
        ckpt.set_best(best)
        ckpt.mark_complete()
        stats.checkpoint_writes = ckpt.writes

    served, placements, anchors = best
    with obs.span("approx.final_assignment"):
        deployment = _final_assignment(
            problem.graph, problem.fleet, placements
        )
    assert deployment.served_count == served, (
        f"incremental engine served {served} but exact max-flow served "
        f"{deployment.served_count}; the two must agree"
    )
    return ApproxResult(
        deployment=deployment,
        served=deployment.served_count,
        anchors=anchors,
        plan=plan,
        stats=stats,
    )
