"""Shared solver context: the per-run hot data of the appro_alg engine.

Algorithm 2's outer loop touches the same derived structure for every
anchor subset: hop distances in the candidate-location graph and per-radio
coverage sets.  :class:`SolverContext` precomputes both once, immutably and
pickle-friendly, so that

* the connectivity prune and the optimistic upper bound are evaluated for
  *all* subsets at once with vectorised numpy (see :func:`prunable_mask`
  and :func:`subset_bounds`), and
* worker processes of the parallel fan-out receive the whole structure a
  single time via the pool initializer and :meth:`install_into` it,
  instead of re-deriving it per process.

The context stores coverage as packed bitsets (one bit per user) keyed by
radio signature — UAVs sharing a radio share coverage — so union-coverage
sizes are popcounts (:mod:`repro.util.bits`), not Python set walks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.problem import ProblemInstance
from repro.graphs.bfs import UNREACHABLE
from repro.network.coverage import CoverageGraph
from repro.util.bits import popcount, popcount_rows, unpack_indices

_INT16_INF = np.int16(np.iinfo(np.int16).max)


@dataclass(frozen=True)
class SolverContext:
    """Immutable precomputation shared by every subset evaluation.

    All fields are plain numpy arrays and tuples, so a context pickles
    cheaply and identically across process boundaries.
    """

    hop_matrix: np.ndarray      # (m, m) int16; UNREACHABLE = -1
    radio_keys: tuple           # distinct radio signatures, sorted
    coverage_bits: np.ndarray   # (r, m, words) uint8 packed user bitsets
    coverage_counts: np.ndarray  # (r, m) int32 popcounts of the above
    best_counts: np.ndarray     # (m,) int32 elementwise max over radios
    fleet_radio_index: tuple    # uav index -> row in radio_keys
    capacities: tuple           # uav index -> service capacity
    num_users: int
    build_seconds: float = 0.0
    #: Per-cell integer demands for aggregated (demand-cell) problems with
    #: at least one demand > 1; ``None`` on per-user and singleton-cell
    #: problems, whose build path is untouched.  When set, the count
    #: arrays above hold demand-weighted sums instead of popcounts.
    demands: "tuple | None" = None

    # -- construction --------------------------------------------------------

    @classmethod
    def from_problem(cls, problem: ProblemInstance) -> "SolverContext":
        """Precompute the context for one problem instance.

        Warms the problem's own graph caches as a side effect (the hop
        matrix and coverage sets are shared structure, not copies).
        """
        start = time.perf_counter()
        hop = problem.graph.hop_matrix()
        return cls._build(problem, hop, start)

    def updated(self, problem: ProblemInstance) -> "SolverContext":
        """Incremental rebuild for a problem whose *users* changed but whose
        candidate locations (and hence hop structure) did not.

        Reuses this context's hop matrix verbatim — skipping the
        one-BFS-per-location all-pairs build, the expensive half of a cold
        :meth:`from_problem` — and recomputes only the user-dependent
        coverage bitsets/counts through the exact same code path, so the
        result is bit-identical to a cold build on an equivalent graph.
        """
        start = time.perf_counter()
        graph = problem.graph
        if self.hop_matrix.shape[0] != graph.num_locations:
            raise ValueError(
                f"context covers {self.hop_matrix.shape[0]} locations, "
                f"problem has {graph.num_locations}; locations must be "
                "unchanged for an incremental update"
            )
        graph.warm_hops(self.hop_matrix)
        return type(self)._build(problem, self.hop_matrix, start)

    @classmethod
    def _build(
        cls, problem: ProblemInstance, hop: np.ndarray, start: float
    ) -> "SolverContext":
        """The user-dependent half of context construction, shared by the
        cold (:meth:`from_problem`) and incremental (:meth:`updated`)
        paths so both produce bit-identical fields."""
        graph = problem.graph
        m = graph.num_locations

        representative: dict = {}
        fleet_index = []
        for uav in problem.fleet:
            key = graph.radio_signature(uav)
            representative.setdefault(key, uav)
        radio_keys = tuple(sorted(representative))
        key_row = {key: r for r, key in enumerate(radio_keys)}
        fleet_index = tuple(
            key_row[graph.radio_signature(uav)] for uav in problem.fleet
        )

        words = np.packbits(np.zeros(graph.num_users, dtype=bool)).size
        bits = np.zeros((len(radio_keys), m, words), dtype=np.uint8)
        for key, r in key_row.items():
            bits[r, :, :] = graph.coverage_bits_matrix(representative[key])
        demands_arr = getattr(graph, "cell_demands", None)
        if (
            demands_arr is not None and demands_arr.size
            and int(demands_arr.max()) > 1
        ):
            # Demand-cell graph: weight every count by cell demand, so
            # the greedy's static bounds and the subset bounds stay
            # admissible in served *units*.  Singleton-cell graphs (all
            # demands 1) deliberately fall through to the per-user path —
            # weighted sums equal popcounts there, and the identical code
            # path is what the bit-identity oracle relies on.
            demands = tuple(int(x) for x in demands_arr)
            weights = np.asarray(demands_arr, dtype=np.int64)
            unpacked = np.unpackbits(
                bits.reshape(-1, words), axis=1, count=graph.num_users
            )
            counts = (
                (unpacked.astype(np.int64) @ weights)
                .reshape(len(radio_keys), m).astype(np.int32)
            )
        else:
            demands = None
            counts = popcount_rows(bits).astype(np.int32)
        best = (
            counts.max(axis=0)
            if counts.size
            else np.zeros(m, dtype=np.int32)
        )
        return cls(
            hop_matrix=hop,
            radio_keys=radio_keys,
            coverage_bits=bits,
            coverage_counts=counts,
            best_counts=best,
            fleet_radio_index=fleet_index,
            capacities=tuple(uav.capacity for uav in problem.fleet),
            num_users=graph.num_users,
            build_seconds=time.perf_counter() - start,
            demands=demands,
        )

    def matches(self, problem: ProblemInstance) -> bool:
        """Cheap sanity check that a (possibly recycled) context belongs to
        this problem's shape."""
        return (
            self.hop_matrix.shape[0] == problem.num_locations
            and self.num_users == problem.num_users
            and len(self.capacities) == problem.num_uavs
        )

    # -- sizes ---------------------------------------------------------------

    @property
    def num_locations(self) -> int:
        return int(self.hop_matrix.shape[0])

    @property
    def num_uavs(self) -> int:
        return len(self.capacities)

    # -- hop structure -------------------------------------------------------

    def hops_between(self, a: int, b: int) -> int:
        return int(self.hop_matrix[a, b])

    def hops_to_set_array(self, sources: list) -> np.ndarray:
        """Hop distance from each location to the nearest of ``sources``
        as an int64 array; identical to :meth:`CoverageGraph.hops_to_set`
        but a masked matrix min instead of a multi-source BFS."""
        rows = self.hop_matrix[np.asarray(list(sources), dtype=np.int64)]
        masked = np.where(rows == UNREACHABLE, _INT16_INF, rows)
        nearest = masked.min(axis=0).astype(np.int64)
        nearest[nearest == int(_INT16_INF)] = UNREACHABLE
        return nearest

    def hops_to_set(self, sources: list) -> list:
        """List form of :meth:`hops_to_set_array` (the graph-API shape)."""
        return self.hops_to_set_array(sources).tolist()

    # -- coverage ------------------------------------------------------------

    def counts_for_uav(self, uav_index: int) -> np.ndarray:
        """Per-location coverage counts under UAV ``uav_index``'s radio."""
        return self.coverage_counts[self.fleet_radio_index[uav_index]]

    def coverage_rows(self, uav_index: int) -> np.ndarray:
        """The ``(m, words)`` packed coverage matrix under UAV
        ``uav_index``'s radio — one row per candidate location, ready for
        batched masked-popcount scoring (e.g.
        :meth:`repro.flow.bipartite.IncrementalAssignment.direct_gain_bounds`).
        A view, not a copy."""
        return self.coverage_bits[self.fleet_radio_index[uav_index]]

    def coverage_count(self, loc_index: int, uav_index: int) -> int:
        return int(self.counts_for_uav(uav_index)[loc_index])

    def union_coverage_count(self, loc_indices: list, uav_index: int) -> int:
        """Distinct users coverable from any of ``loc_indices`` under one
        UAV's radio (bitset union + popcount)."""
        if not loc_indices:
            return 0
        rows = self.coverage_bits[self.fleet_radio_index[uav_index]]
        union = np.bitwise_or.reduce(
            rows[np.asarray(loc_indices, dtype=np.int64)], axis=0
        )
        return popcount(union)

    def union_coverage_counts(
        self, loc_matrix: np.ndarray, uav_index: int
    ) -> np.ndarray:
        """Batched :meth:`union_coverage_count`: for an ``(n, t)`` matrix
        of location indices, the distinct coverable users of each row's
        union under one UAV's radio, as one stacked bitset OR-reduce plus
        :func:`repro.util.bits.popcount_rows`.  Row order is irrelevant
        (unions commute)."""
        locs = np.asarray(loc_matrix, dtype=np.int64)
        if locs.size == 0:
            return np.zeros(locs.shape[0], dtype=np.int64)
        rows = self.coverage_bits[self.fleet_radio_index[uav_index]]
        out = np.empty(locs.shape[0], dtype=np.int64)
        for lo in range(0, locs.shape[0], _UNION_CHUNK):
            stacked = rows[locs[lo:lo + _UNION_CHUNK]]     # (c, t, words)
            out[lo:lo + stacked.shape[0]] = popcount_rows(
                np.bitwise_or.reduce(stacked, axis=1)
            )
        return out

    def coverable_users(self, loc_index: int, uav_index: int) -> list:
        """Decode one coverage bitset back to the sorted user-index list."""
        rows = self.coverage_bits[self.fleet_radio_index[uav_index]]
        return unpack_indices(rows[loc_index], self.num_users)

    # -- worker adoption -----------------------------------------------------

    def install_into(self, graph: CoverageGraph) -> None:
        """Warm ``graph``'s hop and coverage caches from this context.

        Worker processes call this once in the pool initializer: afterwards
        every ``hops_from`` / ``coverable_users`` lookup is a cache hit with
        values bit-identical to what the parent computed.
        """
        graph.warm_hops(self.hop_matrix)
        for r, key in enumerate(self.radio_keys):
            for v in range(self.num_locations):
                graph.warm_coverage(
                    v, key,
                    unpack_indices(self.coverage_bits[r, v], self.num_users),
                )


# -- vectorised subset-level operations -------------------------------------

_CHUNK = 8192
# Sub-chunk for the union-coverage OR-reduce, whose (chunk, m, words)
# temporary would otherwise dominate memory at paper scale.
_UNION_CHUNK = 512
# The union pass of ``subset_bounds`` prefers a float32 matmul over the
# unpacked (m, num_users) coverage matrix — exact, since the products are
# location counts far below 2**24 — but falls back to the byte-OR path
# when that matrix would not comfortably fit in memory.
_MATMUL_CELLS = 64_000_000


def prunable_mask(
    context: SolverContext, subsets: np.ndarray, num_uavs: int
) -> np.ndarray:
    """Vectorised form of the connectivity prune: ``True`` where an anchor
    subset provably cannot appear in any feasible solution (some pair
    disconnected, or the farthest pair's path alone already needs more than
    ``K`` nodes).  Decisions are identical to the scalar ``_prunable``
    reference in :mod:`repro.core.approx`."""
    n, s = subsets.shape
    out = np.zeros(n, dtype=bool)
    hop = context.hop_matrix
    for lo in range(0, n, _CHUNK):
        chunk = subsets[lo:lo + _CHUNK]
        pairwise = hop[chunk[:, :, None], chunk[:, None, :]]
        disconnected = (pairwise == UNREACHABLE).any(axis=(1, 2))
        worst = pairwise.max(axis=(1, 2)).astype(np.int64)
        need = np.maximum(s, worst + 1)
        out[lo:lo + chunk.shape[0]] = disconnected | (need > num_uavs)
    return out


def subset_bounds(
    context: SolverContext, subsets: np.ndarray, num_uavs: int
) -> np.ndarray:
    """Optimistic upper bound on served users per anchor subset.

    Any deployment for anchor set ``A`` occupies a connected subgraph of at
    most ``K`` nodes containing ``A``; by the subgraph-size lemma (see
    :func:`repro.graphs.steiner.connection_cost_lower_bound`) a location
    ``v`` can be occupied only if

        max(|A ∪ {v}|, max-pairwise-hops(A ∪ {v}) + 1) <= K.

    Two admissible caps are intersected over the occupiable set:

    * **capacity pairing** — a UAV of capacity ``c`` at location ``v``
      serves at most ``min(c, best_counts[v])`` users, and locations are
      distinct, so pairing the top-``K`` occupiable coverage counts with
      the capacities (both descending) bounds any deployment, users
      double-counted in the UAVs' favour;
    * **union coverage** — served users are distinct and each is coverable
      (under *some* radio) from an occupiable location, so the popcount of
      the occupiable locations' any-radio coverage union bounds the total.

    The result is never below the true achievable served count, which
    makes bound-ordered skipping lossless.
    """
    n, s = subsets.shape
    m = context.num_locations
    caps = np.sort(np.asarray(context.capacities, dtype=np.int64))[::-1]
    top_k = min(num_uavs, m)
    caps = caps[:top_k]
    # Demand-cell contexts bound in served *units*: best_counts are
    # already demand-weighted, the union pass weights each covered cell
    # by its demand, and the global cap is the total demand.
    demand_vec = (
        None if context.demands is None
        else np.asarray(context.demands, dtype=np.int64)
    )
    total_units = (
        context.num_users if demand_vec is None else int(demand_vec.sum())
    )
    bits = context.coverage_bits
    if bits.shape[0]:
        any_bits = np.bitwise_or.reduce(bits, axis=0)      # (m, words)
    else:
        any_bits = np.zeros((m, bits.shape[2]), dtype=np.uint8)
    # Matmul form of the union popcount: (occupiable @ unpacked)[i, u] is
    # the number of occupiable locations covering user u, so the union
    # size is the count of nonzero columns per row — one sgemm instead of
    # a masked byte OR-reduce.  Exact (counts are integers < 2**24);
    # gated on the unpacked matrix fitting comfortably in memory.
    use_matmul = m * context.num_users <= _MATMUL_CELLS
    if use_matmul:
        unpacked = (
            np.unpackbits(any_bits, axis=1)[:, : context.num_users]
            .astype(np.float32)
        )
        # Keep the (rows, num_users) float32 product bounded too.
        matmul_rows = max(1, min(
            _UNION_CHUNK * 16, 32_000_000 // max(1, context.num_users)
        ))
    out = np.zeros(n, dtype=np.int64)
    hop = context.hop_matrix
    inf = np.int64(1) << 30
    for lo in range(0, n, _CHUNK):
        chunk = subsets[lo:lo + _CHUNK]
        rows = hop[chunk].astype(np.int64)                 # (c, s, m)
        rows[rows == UNREACHABLE] = inf
        farthest = rows.max(axis=1)                        # (c, m)
        pairwise = np.take_along_axis(
            rows, chunk[:, None, :].astype(np.int64), axis=2
        )                                                  # (c, s, s)
        worst = pairwise.max(axis=(1, 2))                  # (c,)
        # Non-anchor occupiable test: |A| + 1 nodes and the widened
        # diameter must fit in K.  Anchors of a non-pruned subset always
        # pass it (their farthest hop is within the anchor diameter).
        occupiable = (
            np.maximum(farthest, worst[:, None]) + 1 <= num_uavs
        )
        if s + 1 > num_uavs:
            anchor_mask = np.zeros((chunk.shape[0], m), dtype=bool)
            np.put_along_axis(
                anchor_mask, chunk.astype(np.int64), True, axis=1
            )
            occupiable &= anchor_mask
        counts = np.where(occupiable, context.best_counts[None, :], 0)
        top = -np.sort(-counts, axis=1)[:, :top_k]         # (c, top_k) desc
        bound = np.minimum(top, caps[None, :]).sum(axis=1)
        c = chunk.shape[0]
        union_pop = np.empty(c, dtype=np.int64)
        if use_matmul:
            for sub in range(0, c, matmul_rows):
                occ = occupiable[sub:sub + matmul_rows]
                prod = occ.astype(np.float32) @ unpacked
                if demand_vec is None:
                    union_pop[sub:sub + occ.shape[0]] = np.count_nonzero(
                        prod, axis=1
                    )
                else:
                    union_pop[sub:sub + occ.shape[0]] = (
                        (prod > 0).astype(np.int64) @ demand_vec
                    )
        else:
            for sub in range(0, c, _UNION_CHUNK):
                occ = occupiable[sub:sub + _UNION_CHUNK]
                masked = np.where(
                    occ[:, :, None], any_bits[None, :, :], np.uint8(0)
                )
                union_bits = np.bitwise_or.reduce(masked, axis=1)
                if demand_vec is None:
                    union_pop[sub:sub + occ.shape[0]] = popcount_rows(
                        union_bits
                    )
                else:
                    union_pop[sub:sub + occ.shape[0]] = (
                        np.unpackbits(
                            union_bits, axis=1, count=context.num_users
                        ).astype(np.int64) @ demand_vec
                    )
        bound = np.minimum(bound, union_pop)
        out[lo:lo + c] = np.minimum(bound, total_units)
    return out
