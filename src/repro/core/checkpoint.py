"""Durable checkpoint/resume for the anchor-subset sweep.

:func:`repro.core.approx.appro_alg` enumerates a deterministic sequence
of anchor subsets; a checkpoint snapshots how far that enumeration got —
the completed index ranges over the canonical visit order, the
best-so-far candidate, and the running subset counters — so a run killed
at any chunk boundary resumes to the *bit-identical* final assignment
instead of restarting.  Snapshots are written atomically
(:mod:`repro.util.atomic`: tmp + fsync + rename), so a crash mid-write
leaves the previous complete snapshot intact.

Identity is two fingerprints (:func:`repro.util.ledger.work_fingerprint`
hashes):

* ``run_key`` — the problem + solver options, independent of ``s``
  (shape, fleet capacities, anchor pool, greedy flavour, prune mode, and
  the caller-supplied ``CheckpointConfig.key`` such as a
  ``scenario_key()``).  A file whose ``run_key`` differs is *stale*: it
  is ignored (``checkpoint.mismatches`` counter) and overwritten, never
  resumed.
* ``work_key`` — ``run_key`` plus the enumeration level ``s``, the index
  ``domain`` (``"raw"`` for the paper-faithful serial order,
  ``"surviving"`` for the pruned/sorted order the parallel and
  bound-prune paths share) and the total index count.  Completed ranges
  only restore when the work key matches exactly.

The ``s - 1`` fallback is first-class: when a level exhausts with no
feasible candidate it lands in ``exhausted_s`` and the resumed run skips
straight past it.

Schema — any change to :data:`CHECKPOINT_FIELDS` must bump
:data:`CHECKPOINT_FORMAT`; ``tests/test_checkpoint_schema_guard.py``
fails the build otherwise.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.util.atomic import atomic_write_json
from repro.util.ledger import work_fingerprint

CHECKPOINT_KIND = "solve-checkpoint"
CHECKPOINT_FORMAT = 1

#: The exact top-level keys of a checkpoint file, frozen per format
#: version (see the schema guard test).
CHECKPOINT_FIELDS = (
    "kind", "format", "run_key", "work_key", "s", "domain", "total",
    "completed", "best", "counts", "exhausted_s", "complete",
    "created_unix",
)

#: The subset-accounting counters a checkpoint carries.
COUNT_KEYS = ("pruned", "evaluated", "infeasible", "bound_skipped")


class CheckpointError(ValueError):
    """The checkpoint file is unreadable, foreign, or from an
    incompatible format version."""


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often to checkpoint one solve.

    ``every_chunks`` / ``every_subsets`` bound the work lost to a crash:
    the parallel dispatcher flushes after that many completed chunks, the
    serial loop after that many visited subsets (whichever cadence a path
    hits first).  ``key`` folds an external identity — typically a
    spec's ``scenario_key()`` — into the fingerprint so checkpoints of
    different scenarios can never cross-resume even at equal shapes.
    ``resume=True`` loads a matching existing file; a missing file just
    starts fresh.
    """

    path: "str | Path"
    resume: bool = False
    every_chunks: int = 1
    every_subsets: int = 64
    key: "str | None" = None

    def __post_init__(self) -> None:
        if self.every_chunks < 1:
            raise ValueError(
                f"every_chunks must be >= 1, got {self.every_chunks}"
            )
        if self.every_subsets < 1:
            raise ValueError(
                f"every_subsets must be >= 1, got {self.every_subsets}"
            )


# -- range arithmetic --------------------------------------------------------


def merge_ranges(ranges: "list") -> list:
    """Sorted, coalesced copy of half-open ``[lo, hi)`` ranges."""
    out: list = []
    for lo, hi in sorted((int(lo), int(hi)) for lo, hi in ranges):
        if hi <= lo:
            continue
        if out and lo <= out[-1][1]:
            out[-1][1] = max(out[-1][1], hi)
        else:
            out.append([lo, hi])
    return [(lo, hi) for lo, hi in out]


def missing_ranges(total: int, completed: "list") -> list:
    """The complement of ``completed`` within ``[0, total)``."""
    gaps: list = []
    cursor = 0
    for lo, hi in merge_ranges(completed):
        if lo > cursor:
            gaps.append((cursor, min(lo, total)))
        cursor = max(cursor, hi)
        if cursor >= total:
            break
    if cursor < total:
        gaps.append((cursor, total))
    return gaps


def covered_units(completed: "list") -> int:
    return sum(hi - lo for lo, hi in merge_ranges(completed))


# -- fingerprints ------------------------------------------------------------


def solve_run_key(problem, pool, eval_kw: dict, bound_prune: bool,
                  external_key: "str | None") -> str:
    """The s-independent identity of one appro_alg work description."""
    return work_fingerprint({
        "num_users": problem.num_users,
        "num_locations": problem.num_locations,
        "num_uavs": problem.num_uavs,
        "capacities": [uav.capacity for uav in problem.fleet],
        "pool": list(pool),
        "eval_kw": {k: eval_kw[k] for k in sorted(eval_kw)},
        "bound_prune": bool(bound_prune),
        "key": external_key,
    })


def solve_work_key(run_key: str, s: int, domain: str, total: int) -> str:
    """The per-level identity: which index space the ranges live in."""
    return work_fingerprint({
        "run_key": run_key, "s": s, "domain": domain, "total": total,
    })


# -- the live checkpoint state -----------------------------------------------


class SolveCheckpoint:
    """Mutable checkpoint state threaded through one appro_alg run
    (including its ``s - 1`` fallback levels)."""

    def __init__(self, config: CheckpointConfig, run_key: str):
        self.config = config
        self.path = Path(config.path)
        self.run_key = run_key
        self.exhausted_s: list = []
        self.s: "int | None" = None
        self.work_key: "str | None" = None
        self.domain = ""
        self.total = 0
        self.completed: list = []
        self.best: "tuple | None" = None       # (served, placements, anchors)
        self.counts = dict.fromkeys(COUNT_KEYS, 0)
        self.complete = False
        self.resumed = False
        self.resumed_chunks = 0
        self.resumed_units = 0
        self.mismatched = False
        self.writes = 0
        self._payload: "dict | None" = None
        self._chunks_since_flush = 0
        self._units_since_flush = 0
        if config.resume and self.path.exists():
            payload = self._load()
            if payload.get("run_key") == run_key:
                self._payload = payload
                self.exhausted_s = [
                    int(x) for x in payload.get("exhausted_s", [])
                ]
            else:
                # Stale file from different work: never resume it.
                self.mismatched = True
                obs.counter_inc("checkpoint.mismatches")

    def _load(self) -> dict:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"cannot read checkpoint {self.path}: {exc}"
            ) from exc
        if not isinstance(payload, dict) or (
            payload.get("kind") != CHECKPOINT_KIND
        ):
            raise CheckpointError(f"{self.path} is not a solve checkpoint")
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"{self.path}: unsupported checkpoint format "
                f"{payload.get('format')!r} (this build reads "
                f"{CHECKPOINT_FORMAT})"
            )
        return payload

    # -- level lifecycle -----------------------------------------------------

    def is_exhausted(self, s: int) -> bool:
        return s in self.exhausted_s

    def enter_level(self, s: int, domain: str, total: int) -> None:
        """Start (or resume) enumeration level ``s``.

        Restores completed ranges / best / counts only when the stored
        work key matches this level exactly; anything else starts the
        level fresh.
        """
        self.s = s
        self.domain = domain
        self.total = int(total)
        self.work_key = solve_work_key(self.run_key, s, domain, self.total)
        self.completed = []
        self.best = None
        self.counts = dict.fromkeys(COUNT_KEYS, 0)
        self.complete = False
        self.resumed = False
        self.resumed_chunks = 0
        self.resumed_units = 0
        payload = self._payload
        if payload and payload.get("work_key") == self.work_key:
            self.completed = merge_ranges(payload.get("completed", []))
            self.best = _best_from_json(payload.get("best"))
            stored = payload.get("counts", {})
            self.counts = {
                key: int(stored.get(key, 0)) for key in COUNT_KEYS
            }
            self.complete = bool(payload.get("complete", False))
            self.resumed = True
            self.resumed_chunks = len(self.completed)
            self.resumed_units = covered_units(self.completed)
            obs.counter_inc("checkpoint.resumes")
            if self.resumed_chunks:
                obs.counter_inc("resume.chunks_skipped", self.resumed_chunks)
                obs.counter_inc("resume.subsets_skipped", self.resumed_units)
        self._payload = None if payload is not None else self._payload

    def mark_exhausted(self, s: int) -> None:
        """Record that level ``s`` finished with no feasible candidate."""
        if s not in self.exhausted_s:
            self.exhausted_s.append(s)
        self.flush()

    def mark_complete(self) -> None:
        self.complete = True
        self.flush()

    # -- progress ------------------------------------------------------------

    def mark_range(self, lo: int, hi: int, chunk: bool = True) -> None:
        """One contiguous index range finished.  ``chunk=True`` (a pool
        chunk) counts toward the ``every_chunks`` flush cadence; the
        serial loop passes ``chunk=False`` for its per-subset marks so
        only the ``every_subsets`` cadence applies."""
        if hi <= lo:
            return
        self.completed = merge_ranges(self.completed + [(lo, hi)])
        if chunk:
            self._chunks_since_flush += 1
        self._units_since_flush += hi - lo

    def record_counts(self, pruned: int, evaluated: int, infeasible: int,
                      bound_skipped: int) -> None:
        self.counts = {
            "pruned": int(pruned),
            "evaluated": int(evaluated),
            "infeasible": int(infeasible),
            "bound_skipped": int(bound_skipped),
        }

    def set_best(self, best: "tuple | None") -> None:
        self.best = best

    def maybe_flush(self) -> None:
        if (
            self._chunks_since_flush >= self.config.every_chunks
            or self._units_since_flush >= self.config.every_subsets
        ):
            self.flush()

    def flush(self) -> None:
        atomic_write_json(self.path, {
            "kind": CHECKPOINT_KIND,
            "format": CHECKPOINT_FORMAT,
            "run_key": self.run_key,
            "work_key": self.work_key,
            "s": self.s,
            "domain": self.domain,
            "total": self.total,
            "completed": [[lo, hi] for lo, hi in self.completed],
            "best": _best_to_json(self.best),
            "counts": dict(self.counts),
            "exhausted_s": list(self.exhausted_s),
            "complete": self.complete,
            "created_unix": time.time(),
        })
        self._chunks_since_flush = 0
        self._units_since_flush = 0
        self.writes += 1
        obs.counter_inc("checkpoint.writes")


def _best_to_json(best: "tuple | None") -> "dict | None":
    if best is None:
        return None
    served, placements, anchors = best
    return {
        "served": int(served),
        "placements": {str(k): int(v) for k, v in placements.items()},
        "anchors": [int(a) for a in anchors],
    }


def _best_from_json(data: "dict | None") -> "tuple | None":
    if data is None:
        return None
    return (
        int(data["served"]),
        {int(k): int(v) for k, v in data["placements"].items()},
        tuple(int(a) for a in data["anchors"]),
    )
