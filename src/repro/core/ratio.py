"""Theorem 1: the approximation guarantee of the proposed algorithm.

The algorithm is a ``1 / (3 * ceil((2K - 2) / L_1))``-approximation with
``L_1 = floor(sqrt(4sK + 4s^2 - 8.5s)) - 2s + 2``, which is
``Theta(sqrt(s / K))``.
"""

from __future__ import annotations

import math


def l1_of(num_uavs: int, s: int) -> int:
    """``L_1 = floor(sqrt(4sK + 4s^2 - 8.5s)) - 2s + 2`` (Theorem 1)."""
    if s < 1:
        raise ValueError(f"s must be positive, got {s}")
    if num_uavs < s:
        raise ValueError(f"need K >= s, got K = {num_uavs}, s = {s}")
    radicand = 4 * s * num_uavs + 4 * s * s - 8.5 * s
    if radicand < 0:
        raise ValueError(
            f"degenerate parameters: radicand {radicand} < 0 for "
            f"K = {num_uavs}, s = {s}"
        )
    return math.floor(math.sqrt(radicand)) - 2 * s + 2


def approximation_ratio(num_uavs: int, s: int) -> float:
    """The Theorem 1 guarantee ``1 / (3 * ceil((2K - 2) / L_1))``.

    For very small ``K`` the closed-form ``L_1`` can be non-positive; the
    guarantee then degrades to the trivial ``1 / (3 * (2K - 2))`` (one node
    per sub-path).
    """
    if num_uavs < 2:
        raise ValueError(f"the problem requires K >= 2 UAVs, got {num_uavs}")
    l1 = max(1, l1_of(num_uavs, s))
    delta = math.ceil((2 * num_uavs - 2) / l1)
    return 1.0 / (3.0 * delta)


def ratio_order_of_magnitude(num_uavs: int, s: int) -> float:
    """The asymptotic form ``sqrt(s / K) / 3`` (up to constants), useful for
    sanity plots against :func:`approximation_ratio`."""
    if num_uavs < 1 or s < 1:
        raise ValueError("K and s must be positive")
    return math.sqrt(s / num_uavs) / 3.0
