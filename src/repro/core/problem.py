"""The maximum connected coverage problem instance (Section II-C).

Bundles the coverage graph and the heterogeneous fleet, validates the basic
sanity conditions, and is the single argument every solver takes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.coverage import CoverageGraph


@dataclass(frozen=True)
class ProblemInstance:
    """An instance: deploy ``K = len(fleet)`` UAVs on ``graph.locations`` to
    maximise served users subject to capacities and connectivity."""

    graph: CoverageGraph
    fleet: list = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.fleet) < 1:
            raise ValueError("fleet must contain at least one UAV")
        if len(self.fleet) > self.graph.num_locations:
            raise ValueError(
                f"cannot deploy {len(self.fleet)} UAVs on only "
                f"{self.graph.num_locations} candidate locations "
                "(at most one UAV per grid)"
            )

    @property
    def num_uavs(self) -> int:
        return len(self.fleet)

    @property
    def num_users(self) -> int:
        return self.graph.num_users

    @property
    def num_locations(self) -> int:
        return self.graph.num_locations

    def capacity_order(self) -> list:
        """Fleet indices sorted by service capacity, largest first (the order
        Algorithm 2 deploys UAVs in); ties broken by index for determinism."""
        return sorted(
            range(len(self.fleet)),
            key=lambda k: (-self.fleet[k].capacity, k),
        )

    def total_capacity(self) -> int:
        return sum(u.capacity for u in self.fleet)
