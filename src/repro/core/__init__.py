"""The paper's primary contribution: the O(sqrt(s/K))-approximation
algorithm for the maximum connected coverage problem (Section III), its
subroutines, and an exact brute-force reference for tiny instances.
"""

from repro.core.approx import ApproxResult, ApproxStats, appro_alg
from repro.core.assignment import optimal_assignment
from repro.core.context import SolverContext
from repro.core.exact import exact_optimum
from repro.core.gateway import Gateway, appro_alg_with_gateway, ensure_gateway
from repro.core.local_search import LocalSearchResult, local_search
from repro.core.problem import ProblemInstance
from repro.core.ratio import approximation_ratio, l1_of
from repro.core.segments import (
    SegmentPlan,
    hmax_of,
    optimal_segments,
    q_bounds,
    relay_bound,
)

__all__ = [
    "ApproxResult",
    "ApproxStats",
    "SolverContext",
    "appro_alg",
    "optimal_assignment",
    "exact_optimum",
    "Gateway",
    "appro_alg_with_gateway",
    "ensure_gateway",
    "LocalSearchResult",
    "local_search",
    "ProblemInstance",
    "approximation_ratio",
    "l1_of",
    "SegmentPlan",
    "hmax_of",
    "optimal_segments",
    "q_bounds",
    "relay_bound",
]
