"""The anchored submodular greedy — Algorithm 2, lines 5-12.

For a fixed anchor set ``V*_j`` the greedy deploys UAVs in decreasing
capacity order; in the k-th iteration it places the k-th UAV at the hop-
matroid-feasible location with the largest *exact* marginal gain in served
users (marginal gains are computed with the incremental max-flow engine,
so they equal re-solving Section II-D from scratch).

Performance notes (results are identical to the naive implementation):

* ``min(capacity, |coverable|)`` upper-bounds any station's marginal gain,
  so candidates are scanned in decreasing bound order and the scan stops
  once the bound falls to the best exact gain already found;
* in the first iteration the gain is exactly ``min(capacity, |coverable|)``
  (no other stations to interact with), so no flow computation is needed;
* with a :class:`~repro.core.context.SolverContext` the whole inner loop is
  numpy-native: matroid feasibility is one comparison against the hop
  array (:meth:`IncrementalHopFilter.max_addable_hop`), candidate gains
  are one masked popcount over the context's packed coverage matrix
  (:meth:`IncrementalAssignment.direct_gain_bounds`), and in exact mode
  the batched direct bounds additionally pre-shrink the scan: any
  candidate whose static bound is below the best batched *lower* bound
  can never be scanned before the cutoff fires, so it is dropped without
  changing a single oracle call.

Zero-gain ties are broken in favour of anchors, then lowest location index
(determinism).  The counting bounds ``Q_h`` guarantee all ``s`` anchors are
in the solution at termination; this is asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.core.problem import ProblemInstance
from repro.core.segments import SegmentPlan
from repro.flow.bipartite import IncrementalAssignment, new_engine_for
from repro.matroid.hop import HopCountingMatroid, IncrementalHopFilter


@dataclass
class GreedyResult:
    """Outcome of the anchored greedy for one anchor set."""

    chosen: list            # [(uav_index, location_index)] in deployment order
    engine: IncrementalAssignment  # live assignment state over the chosen stations
    served: int              # users served by the chosen stations


def _pick_max(cand: np.ndarray, gains: np.ndarray,
              cand_anchor: np.ndarray) -> "tuple[int, int]":
    """Vectorised winner rule over ascending candidate indices: among the
    max-gain candidates prefer anchors, then the lowest location index —
    exactly what the scalar scan's ``gain > best or (tie and anchor)``
    update converges to."""
    best_gain = int(gains.max())
    ties = gains == best_gain
    tie_anchor = ties & cand_anchor
    pick = tie_anchor if tie_anchor.any() else ties
    return int(cand[pick][0]), best_gain


def anchored_greedy(
    problem: ProblemInstance,
    anchors: list,
    plan: SegmentPlan,
    order: "list | None" = None,
    gain_mode: str = "exact",
    context: "object | None" = None,
    engine: "IncrementalAssignment | None" = None,
) -> GreedyResult:
    """Run the greedy for anchor set ``anchors`` under segment plan ``plan``.

    ``order`` is the UAV deployment order (defaults to decreasing capacity);
    at most ``plan.lmax`` UAVs are placed.

    ``gain_mode`` selects how candidates are compared in each iteration:

    * ``"exact"`` (paper-faithful): the exact marginal gain of every
      feasible candidate is computed via try/rollback augmentation;
    * ``"fast"``: candidates are ranked by the *direct* gain bound (the
      unassigned users they cover, capped by capacity — a lower bound that
      omits alternating-chain gains); only the winner is opened, exactly.
      The maintained assignment stays an exact maximum either way; only the
      selection score is approximated.  The ablation bench quantifies the
      difference (typically nil to a fraction of a percent of coverage).

    ``context`` (a :class:`repro.core.context.SolverContext`) supplies hop
    rows and coverage counts from its precomputed arrays — same values as
    the graph lookups, so results are identical either way — and switches
    the candidate loop to its batched numpy form.

    ``engine`` optionally supplies a warm :class:`IncrementalAssignment`
    with no open stations — typically one the caller has :meth:`~
    repro.flow.bipartite.IncrementalAssignment.fork`-ed so the subset
    sweep reuses a single engine.  All stations this greedy opens are
    committed into the caller's fork scope.
    """
    if gain_mode not in ("exact", "fast"):
        raise ValueError(f"gain_mode must be 'exact' or 'fast', got {gain_mode!r}")
    graph = problem.graph
    fleet = problem.fleet
    anchor_set = set(anchors)
    if len(anchor_set) != plan.s:
        raise ValueError(
            f"expected {plan.s} distinct anchors, got {sorted(anchor_set)}"
        )
    if order is None:
        order = problem.capacity_order()

    if context is not None:
        hops = context.hops_to_set(list(anchor_set))
    else:
        hops = graph.hops_to_set(list(anchor_set))
    matroid = HopCountingMatroid(hops, plan.q_bounds())
    hop_filter = IncrementalHopFilter(matroid)
    universe = sorted(matroid.ground_set())
    if engine is None:
        engine = new_engine_for(graph)

    if context is not None:
        universe_arr = np.asarray(universe, dtype=np.int64)
        uhops = np.asarray(hops, dtype=np.int64)[universe_arr]
        anchor_flags = np.isin(
            universe_arr, np.fromiter(anchor_set, dtype=np.int64)
        )
        avail = np.ones(universe_arr.size, dtype=bool)

    chosen: list = []
    used_locations: set = set()
    rounds = min(plan.lmax, len(order))
    for k_pos in range(rounds):
        k = order[k_pos]
        uav = fleet[k]
        first_iteration = not chosen

        if context is not None:
            # Numpy-native round: feasibility is one hop comparison,
            # gains one batched reduction over the coverage matrix.
            cand_mask = avail & (uhops <= hop_filter.max_addable_hop())
            if not cand_mask.any():
                break
            cand = universe_arr[cand_mask]
            cand_anchor = anchor_flags[cand_mask]
            static = np.minimum(
                uav.capacity,
                context.counts_for_uav(k)[cand].astype(np.int64),
            )
            if first_iteration:
                # With no open stations the static bound is the exact gain.
                best_v, _ = _pick_max(cand, static, cand_anchor)
            elif gain_mode == "fast":
                gains = engine.direct_gain_bounds(
                    context.coverage_rows(k)[cand], uav.capacity
                )
                best_v, _ = _pick_max(cand, gains, cand_anchor)
            else:
                # Exact mode: the batched direct bounds are *lower* bounds,
                # so any candidate whose static upper bound falls below the
                # best of them would only ever be reached after the scan
                # cutoff fires — dropping it changes nothing, including the
                # oracle-call count.
                lower = engine.direct_gain_bounds(
                    context.coverage_rows(k)[cand], uav.capacity
                )
                keep = static >= int(lower.max())
                best_v = _exact_scan(
                    engine, graph, uav, k, anchor_set,
                    static[keep].tolist(), cand[keep].tolist(),
                )
            avail[np.searchsorted(universe_arr, best_v)] = False
        else:
            candidates = [
                v for v in universe
                if v not in used_locations and hop_filter.can_add(v)
            ]
            if not candidates:
                break
            if first_iteration or gain_mode == "fast":
                # With no open stations, min(capacity, |cover|) is the exact
                # gain; in fast mode the direct bound is the selection score.
                best_gain = -1
                best_v = -1
                best_is_anchor = False
                for v in candidates:
                    if first_iteration:
                        gain = min(
                            uav.capacity, graph.coverage_weight(v, uav)
                        )
                    else:
                        gain = engine.direct_gain_bound(
                            graph.coverable_array(v, uav), uav.capacity
                        )
                    is_anchor = v in anchor_set
                    if gain > best_gain or (
                        gain == best_gain and is_anchor and not best_is_anchor
                    ):
                        best_gain, best_v, best_is_anchor = gain, v, is_anchor
            else:
                static = [
                    min(uav.capacity, graph.coverage_weight(v, uav))
                    for v in candidates
                ]
                best_v = _exact_scan(
                    engine, graph, uav, k, anchor_set, static, candidates
                )

        assert best_v >= 0
        engine.open(
            (k, best_v), graph.coverable_array(best_v, fleet[k]), fleet[k].capacity
        )
        hop_filter.add(best_v)
        used_locations.add(best_v)
        chosen.append((k, best_v))

    missing = anchor_set - used_locations
    assert not missing, (
        f"anchors {sorted(missing)} not selected; the Q_h counting bounds "
        "should force all anchors into the solution"
    )
    obs.counter_inc("greedy.runs")
    obs.counter_inc("greedy.placements", len(chosen))
    return GreedyResult(chosen=chosen, engine=engine, served=engine.served_count)


def _exact_scan(
    engine: IncrementalAssignment,
    graph,
    uav,
    k: int,
    anchor_set: set,
    static_bounds: list,
    candidates: list,
) -> int:
    """Bound-ordered exact-gain scan: try candidates in decreasing
    ``min(capacity, |cover|)`` order, stopping once the bound can no longer
    strictly improve (or tie in the anchors' favour).  The coverage list
    itself is only fetched for candidates that survive the cutoff."""
    scored = sorted(zip(static_bounds, candidates), key=lambda t: (-t[0], t[1]))
    best_gain = -1
    best_v = -1
    best_is_anchor = False
    for bound, v in scored:
        if bound < best_gain or (bound == best_gain and best_is_anchor):
            break  # no remaining candidate can strictly improve
        obs.counter_inc("greedy.oracle_calls")
        gain = engine.try_open(
            (k, v), graph.coverable_array(v, uav), uav.capacity
        )
        engine.rollback()
        is_anchor = v in anchor_set
        if gain > best_gain or (
            gain == best_gain and is_anchor and not best_is_anchor
        ):
            best_gain, best_v, best_is_anchor = gain, v, is_anchor
    return best_v


def pair_greedy(
    problem: ProblemInstance,
    anchors: list,
    plan: SegmentPlan,
    context: "object | None" = None,
    engine: "IncrementalAssignment | None" = None,
) -> GreedyResult:
    """Textbook FNW greedy over the full ``X × V`` ground set.

    Unlike Algorithm 2's capacity-sorted specialisation (UAV ``k`` is fixed
    in iteration ``k``), each iteration here picks the best *(UAV,
    location)* pair among those feasible in both matroids — ``M1`` (each
    UAV once; plus each location once, which deployments require) and
    ``M2`` (hop counting).  This is the form the 1/3 guarantee is stated
    for; the ablation bench compares it against Algorithm 2's loop.

    Gains are exact (try/rollback); the ``min(capacity, |cover|)`` bound
    prunes the pair scan.  Zero-gain ties prefer anchor locations so the
    anchors always enter the solution.  ``engine`` works as in
    :func:`anchored_greedy`.
    """
    graph = problem.graph
    fleet = problem.fleet
    anchor_set = set(anchors)
    if len(anchor_set) != plan.s:
        raise ValueError(
            f"expected {plan.s} distinct anchors, got {sorted(anchor_set)}"
        )
    if context is not None:
        hops = context.hops_to_set(list(anchor_set))
    else:
        hops = graph.hops_to_set(list(anchor_set))
    matroid = HopCountingMatroid(hops, plan.q_bounds())
    hop_filter = IncrementalHopFilter(matroid)
    universe = sorted(matroid.ground_set())
    if engine is None:
        engine = new_engine_for(graph)

    chosen: list = []
    used_uavs: set = set()
    used_locations: set = set()
    for _round in range(min(plan.lmax, len(fleet))):
        free_uavs = [k for k in range(len(fleet)) if k not in used_uavs]
        candidates = [
            v for v in universe
            if v not in used_locations and hop_filter.can_add(v)
        ]
        if not free_uavs or not candidates:
            break
        scored = []
        for k in free_uavs:
            uav = fleet[k]
            counts = None if context is None else context.counts_for_uav(k)
            for v in candidates:
                count = (
                    int(counts[v]) if counts is not None
                    else graph.coverage_weight(v, uav)
                )
                scored.append((min(uav.capacity, count), k, v))
        scored.sort(key=lambda t: (-t[0], t[1], t[2]))

        best = (-1, -1, -1, False)  # gain, k, v, is_anchor
        for bound, k, v in scored:
            if bound < best[0] or (bound == best[0] and best[3]):
                break
            if chosen:
                obs.counter_inc("greedy.oracle_calls")
                gain = engine.try_open(
                    (k, v), graph.coverable_array(v, fleet[k]),
                    fleet[k].capacity,
                )
                engine.rollback()
            else:
                gain = bound
            is_anchor = v in anchor_set
            if gain > best[0] or (
                gain == best[0] and is_anchor and not best[3]
            ):
                best = (gain, k, v, is_anchor)
        _gain, k, v, _ = best
        assert k >= 0 and v >= 0
        engine.open((k, v), graph.coverable_array(v, fleet[k]),
                    fleet[k].capacity)
        hop_filter.add(v)
        used_uavs.add(k)
        used_locations.add(v)
        chosen.append((k, v))

    missing = anchor_set - used_locations
    assert not missing, "anchors must end up in the pair-greedy solution"
    obs.counter_inc("greedy.runs")
    obs.counter_inc("greedy.placements", len(chosen))
    return GreedyResult(chosen=chosen, engine=engine, served=engine.served_count)
