"""The anchored submodular greedy — Algorithm 2, lines 5-12.

For a fixed anchor set ``V*_j`` the greedy deploys UAVs in decreasing
capacity order; in the k-th iteration it places the k-th UAV at the hop-
matroid-feasible location with the largest *exact* marginal gain in served
users (marginal gains are computed with the incremental max-flow engine,
so they equal re-solving Section II-D from scratch).

Performance notes (results are identical to the naive implementation):

* ``min(capacity, |coverable|)`` upper-bounds any station's marginal gain,
  so candidates are scanned in decreasing bound order and the scan stops
  once the bound falls to the best exact gain already found;
* in the first iteration the gain is exactly ``min(capacity, |coverable|)``
  (no other stations to interact with), so no flow computation is needed.

Zero-gain ties are broken in favour of anchors, then lowest location index
(determinism).  The counting bounds ``Q_h`` guarantee all ``s`` anchors are
in the solution at termination; this is asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.core.problem import ProblemInstance
from repro.core.segments import SegmentPlan
from repro.flow.bipartite import IncrementalAssignment
from repro.matroid.hop import HopCountingMatroid, IncrementalHopFilter


@dataclass
class GreedyResult:
    """Outcome of the anchored greedy for one anchor set."""

    chosen: list            # [(uav_index, location_index)] in deployment order
    engine: IncrementalAssignment  # live assignment state over the chosen stations
    served: int              # users served by the chosen stations


def anchored_greedy(
    problem: ProblemInstance,
    anchors: list,
    plan: SegmentPlan,
    order: "list | None" = None,
    gain_mode: str = "exact",
    context: "object | None" = None,
) -> GreedyResult:
    """Run the greedy for anchor set ``anchors`` under segment plan ``plan``.

    ``order`` is the UAV deployment order (defaults to decreasing capacity);
    at most ``plan.lmax`` UAVs are placed.

    ``gain_mode`` selects how candidates are compared in each iteration:

    * ``"exact"`` (paper-faithful): the exact marginal gain of every
      feasible candidate is computed via try/rollback augmentation;
    * ``"fast"``: candidates are ranked by the *direct* gain bound (the
      unassigned users they cover, capped by capacity — a lower bound that
      omits alternating-chain gains); only the winner is opened, exactly.
      The maintained assignment stays an exact maximum either way; only the
      selection score is approximated.  The ablation bench quantifies the
      difference (typically nil to a fraction of a percent of coverage).

    ``context`` (a :class:`repro.core.context.SolverContext`) supplies hop
    rows and coverage counts from its precomputed arrays — same values as
    the graph lookups, so results are identical either way.
    """
    if gain_mode not in ("exact", "fast"):
        raise ValueError(f"gain_mode must be 'exact' or 'fast', got {gain_mode!r}")
    graph = problem.graph
    fleet = problem.fleet
    anchor_set = set(anchors)
    if len(anchor_set) != plan.s:
        raise ValueError(
            f"expected {plan.s} distinct anchors, got {sorted(anchor_set)}"
        )
    if order is None:
        order = problem.capacity_order()

    if context is not None:
        hops = context.hops_to_set(list(anchor_set))
    else:
        hops = graph.hops_to_set(list(anchor_set))
    matroid = HopCountingMatroid(hops, plan.q_bounds())
    hop_filter = IncrementalHopFilter(matroid)
    universe = sorted(matroid.ground_set())
    engine = IncrementalAssignment(graph.num_users)

    chosen: list = []
    used_locations: set = set()
    rounds = min(plan.lmax, len(order))
    for k_pos in range(rounds):
        k = order[k_pos]
        uav = fleet[k]
        counts = None if context is None else context.counts_for_uav(k)
        candidates = [
            v for v in universe
            if v not in used_locations and hop_filter.can_add(v)
        ]
        if not candidates:
            break

        first_iteration = not chosen
        best_gain = -1
        best_v = -1
        best_is_anchor = False
        if first_iteration or gain_mode == "fast":
            # With no open stations, min(capacity, |cover|) is the exact
            # gain; in fast mode the direct bound is the selection score.
            for v in candidates:
                if first_iteration:
                    count = (
                        int(counts[v]) if counts is not None
                        else len(graph.coverable_users(v, uav))
                    )
                    gain = min(uav.capacity, count)
                else:
                    gain = engine.direct_gain_bound(
                        graph.coverable_array(v, uav), uav.capacity
                    )
                is_anchor = v in anchor_set
                if gain > best_gain or (
                    gain == best_gain and is_anchor and not best_is_anchor
                ):
                    best_gain, best_v, best_is_anchor = gain, v, is_anchor
        else:
            # Rank by the capacity-capped coverage bound; the coverage list
            # itself is only fetched for candidates that survive the scan
            # cutoff below.
            scored = []
            for v in candidates:
                count = (
                    int(counts[v]) if counts is not None
                    else len(graph.coverable_users(v, uav))
                )
                scored.append((min(uav.capacity, count), v))
            scored.sort(key=lambda t: (-t[0], t[1]))
            for bound, v in scored:
                if bound < best_gain or (bound == best_gain and best_is_anchor):
                    break  # no remaining candidate can strictly improve
                obs.counter_inc("greedy.oracle_calls")
                gain = engine.try_open(
                    (k, v), graph.coverable_users(v, uav), uav.capacity
                )
                engine.rollback()
                is_anchor = v in anchor_set
                if gain > best_gain or (
                    gain == best_gain and is_anchor and not best_is_anchor
                ):
                    best_gain, best_v, best_is_anchor = gain, v, is_anchor

        assert best_v >= 0
        engine.open(
            (k, best_v), graph.coverable_users(best_v, fleet[k]), fleet[k].capacity
        )
        hop_filter.add(best_v)
        used_locations.add(best_v)
        chosen.append((k, best_v))

    missing = anchor_set - used_locations
    assert not missing, (
        f"anchors {sorted(missing)} not selected; the Q_h counting bounds "
        "should force all anchors into the solution"
    )
    obs.counter_inc("greedy.runs")
    obs.counter_inc("greedy.placements", len(chosen))
    return GreedyResult(chosen=chosen, engine=engine, served=engine.served_count)


def pair_greedy(
    problem: ProblemInstance,
    anchors: list,
    plan: SegmentPlan,
    context: "object | None" = None,
) -> GreedyResult:
    """Textbook FNW greedy over the full ``X × V`` ground set.

    Unlike Algorithm 2's capacity-sorted specialisation (UAV ``k`` is fixed
    in iteration ``k``), each iteration here picks the best *(UAV,
    location)* pair among those feasible in both matroids — ``M1`` (each
    UAV once; plus each location once, which deployments require) and
    ``M2`` (hop counting).  This is the form the 1/3 guarantee is stated
    for; the ablation bench compares it against Algorithm 2's loop.

    Gains are exact (try/rollback); the ``min(capacity, |cover|)`` bound
    prunes the pair scan.  Zero-gain ties prefer anchor locations so the
    anchors always enter the solution.
    """
    graph = problem.graph
    fleet = problem.fleet
    anchor_set = set(anchors)
    if len(anchor_set) != plan.s:
        raise ValueError(
            f"expected {plan.s} distinct anchors, got {sorted(anchor_set)}"
        )
    if context is not None:
        hops = context.hops_to_set(list(anchor_set))
    else:
        hops = graph.hops_to_set(list(anchor_set))
    matroid = HopCountingMatroid(hops, plan.q_bounds())
    hop_filter = IncrementalHopFilter(matroid)
    universe = sorted(matroid.ground_set())
    engine = IncrementalAssignment(graph.num_users)

    chosen: list = []
    used_uavs: set = set()
    used_locations: set = set()
    for _round in range(min(plan.lmax, len(fleet))):
        free_uavs = [k for k in range(len(fleet)) if k not in used_uavs]
        candidates = [
            v for v in universe
            if v not in used_locations and hop_filter.can_add(v)
        ]
        if not free_uavs or not candidates:
            break
        scored = []
        for k in free_uavs:
            uav = fleet[k]
            counts = None if context is None else context.counts_for_uav(k)
            for v in candidates:
                count = (
                    int(counts[v]) if counts is not None
                    else len(graph.coverable_users(v, uav))
                )
                scored.append((min(uav.capacity, count), k, v))
        scored.sort(key=lambda t: (-t[0], t[1], t[2]))

        best = (-1, -1, -1, False)  # gain, k, v, is_anchor
        for bound, k, v in scored:
            if bound < best[0] or (bound == best[0] and best[3]):
                break
            if chosen:
                obs.counter_inc("greedy.oracle_calls")
                gain = engine.try_open(
                    (k, v), graph.coverable_users(v, fleet[k]),
                    fleet[k].capacity,
                )
                engine.rollback()
            else:
                gain = bound
            is_anchor = v in anchor_set
            if gain > best[0] or (
                gain == best[0] and is_anchor and not best[3]
            ):
                best = (gain, k, v, is_anchor)
        _gain, k, v, _ = best
        assert k >= 0 and v >= 0
        engine.open((k, v), graph.coverable_users(v, fleet[k]),
                    fleet[k].capacity)
        hop_filter.add(v)
        used_uavs.add(k)
        used_locations.add(v)
        chosen.append((k, v))

    missing = anchor_set - used_locations
    assert not missing, "anchors must end up in the pair-greedy solution"
    obs.counter_inc("greedy.runs")
    obs.counter_inc("greedy.placements", len(chosen))
    return GreedyResult(chosen=chosen, engine=engine, served=engine.served_count)
