"""Result containers and table rendering for experiment sweeps."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.tables import format_markdown_table, format_table


@dataclass(frozen=True)
class RunRecord:
    """One algorithm run on one scenario.

    ``status`` is ``"ok"`` for a successful validated run; non-strict runs
    and the watchdog executor (:mod:`repro.sim.runner`) also produce
    ``"error"`` (the solver raised), ``"invalid"`` (the output failed
    :func:`repro.network.validate.validate_deployment`) and ``"failed"``
    (every fallback tier was exhausted).  ``attempts`` holds one
    :class:`AttemptRecord` per solver tried, in order, so experiments keep
    a full audit trail instead of crashing.
    """

    algorithm: str
    served: int
    runtime_s: float
    num_users: int
    num_uavs: int
    params: dict = field(default_factory=dict)
    status: str = "ok"
    error: "str | None" = None
    attempts: tuple = ()

    @property
    def served_fraction(self) -> float:
        return self.served / self.num_users if self.num_users else 0.0

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def to_dict(self) -> dict:
        """JSON-ready representation (progress-ledger / resume payload)."""
        return {
            "algorithm": self.algorithm,
            "served": self.served,
            "runtime_s": self.runtime_s,
            "num_users": self.num_users,
            "num_uavs": self.num_uavs,
            "params": _json_safe_params(self.params),
            "status": self.status,
            "error": self.error,
            "attempts": [a.to_dict() for a in self.attempts],
        }

    @staticmethod
    def from_dict(data: dict) -> "RunRecord":
        return RunRecord(
            algorithm=data["algorithm"],
            served=int(data["served"]),
            runtime_s=float(data["runtime_s"]),
            num_users=int(data["num_users"]),
            num_uavs=int(data["num_uavs"]),
            params=dict(data.get("params", {})),
            status=data.get("status", "ok"),
            error=data.get("error"),
            attempts=tuple(
                AttemptRecord.from_dict(a) for a in data.get("attempts", ())
            ),
        )


def _json_safe_params(params: dict) -> dict:
    """Solve params restricted to JSON-representable values (a prebuilt
    context or checkpoint object is process-local state, not a result)."""
    out: dict = {}
    for key, value in params.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        elif isinstance(value, (list, tuple)):
            out[key] = [v for v in value
                        if isinstance(v, (str, int, float, bool))]
        elif isinstance(value, dict):
            out[key] = _json_safe_params(value)
        else:
            out[key] = repr(value)
    return out


@dataclass(frozen=True)
class AttemptRecord:
    """One solver attempt inside a watchdog/fallback run."""

    algorithm: str
    elapsed_s: float
    status: str            # "ok" | "timeout" | "error" | "invalid"
    error: "str | None" = None

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "elapsed_s": self.elapsed_s,
            "status": self.status,
            "error": self.error,
        }

    @staticmethod
    def from_dict(data: dict) -> "AttemptRecord":
        return AttemptRecord(
            algorithm=data["algorithm"],
            elapsed_s=float(data["elapsed_s"]),
            status=data["status"],
            error=data.get("error"),
        )


@dataclass
class SweepResult:
    """A table of runs over a swept parameter, mirroring one paper figure."""

    name: str                # e.g. "fig4"
    sweep_param: str          # e.g. "K"
    records: list = field(default_factory=list)

    def add(self, sweep_value: object, record: RunRecord) -> None:
        self.records.append((sweep_value, record))

    def algorithms(self) -> list:
        seen: dict = {}
        for _, rec in self.records:
            seen.setdefault(rec.algorithm, None)
        return list(seen)

    def sweep_values(self) -> list:
        seen: dict = {}
        for value, _ in self.records:
            seen.setdefault(value, None)
        return list(seen)

    def samples(self, metric: str = "served") -> dict:
        """algorithm -> {sweep_value: [raw samples]} across repetitions."""
        out: dict = {}
        for value, rec in self.records:
            out.setdefault(rec.algorithm, {}).setdefault(value, []).append(
                getattr(rec, metric)
            )
        return out

    def series(self, metric: str = "served") -> dict:
        """algorithm -> {sweep_value: metric} (mean over repetitions)."""
        return {
            alg: {value: sum(vals) / len(vals) for value, vals in points.items()}
            for alg, points in self.samples(metric).items()
        }

    def series_std(self, metric: str = "served") -> dict:
        """algorithm -> {sweep_value: sample standard deviation} (0 for a
        single repetition)."""
        import math

        out: dict = {}
        for alg, points in self.samples(metric).items():
            out[alg] = {}
            for value, vals in points.items():
                if len(vals) < 2:
                    out[alg][value] = 0.0
                    continue
                mean = sum(vals) / len(vals)
                var = sum((v - mean) ** 2 for v in vals) / (len(vals) - 1)
                out[alg][value] = math.sqrt(var)
        return out

    def rows(self, metric: str = "served") -> "tuple[list, list]":
        """(headers, rows): sweep value per row, one column per algorithm."""
        algorithms = self.algorithms()
        table = self.series(metric)
        headers = [self.sweep_param] + algorithms
        rows = []
        for value in self.sweep_values():
            row = [value]
            for alg in algorithms:
                cell = table.get(alg, {}).get(value)
                row.append("-" if cell is None else round(cell, 3))
            rows.append(row)
        return headers, rows

    def to_text(self, metric: str = "served", title: "str | None" = None) -> str:
        headers, rows = self.rows(metric)
        return format_table(headers, rows, title=title or f"{self.name} ({metric})")

    def to_markdown(self, metric: str = "served") -> str:
        headers, rows = self.rows(metric)
        return format_markdown_table([str(h) for h in headers], rows)

    def to_csv(self, metric: str = "served") -> str:
        """Comma-separated rendering (RFC-4180-ish: values here never need
        quoting — numbers and identifier-like names only)."""
        headers, rows = self.rows(metric)
        lines = [",".join(str(h) for h in headers)]
        lines.extend(",".join(str(c) for c in row) for row in rows)
        return "\n".join(lines) + "\n"
