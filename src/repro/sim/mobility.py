"""User mobility and periodic re-deployment (extension; Section II-C notes
"users in the disaster zone may move around ... we thus need to re-deploy
the UAVs ... invoking the proposed algorithm", citing the strategy of
[37]).

This module simulates that loop: users perform a bounded Gaussian random
walk; the UAV network is either left where it was (``stale``) or re-planned
every ``redeploy_every`` steps (``refresh``).  The served-user count per
step is computed with the exact Section II-D assignment against the users'
*current* positions, so the trace quantifies how fast a deployment decays
and how much periodic re-deployment recovers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.assignment import optimal_assignment
from repro.core.problem import ProblemInstance
from repro.network.coverage import CoverageGraph
from repro.network.deployment import Deployment
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class GaussianWalk:
    """Per-step displacement ~ N(0, sigma^2) in each axis, reflected at the
    area boundary (users stay inside the disaster zone)."""

    sigma_m: float = 30.0

    def __post_init__(self) -> None:
        if self.sigma_m < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma_m}")

    def step(self, xy: np.ndarray, bounds: tuple, rng: np.random.Generator) -> np.ndarray:
        moved = xy + rng.normal(0.0, self.sigma_m, size=xy.shape)
        lo_x, hi_x, lo_y, hi_y = bounds
        out = moved.copy()
        # Reflect into the box (one reflection suffices for sigma << span).
        out[:, 0] = np.clip(
            np.where(out[:, 0] < lo_x, 2 * lo_x - out[:, 0], out[:, 0]),
            lo_x, hi_x,
        )
        out[:, 0] = np.where(out[:, 0] > hi_x, 2 * hi_x - out[:, 0], out[:, 0])
        out[:, 1] = np.clip(
            np.where(out[:, 1] < lo_y, 2 * lo_y - out[:, 1], out[:, 1]),
            lo_y, hi_y,
        )
        out[:, 1] = np.where(out[:, 1] > hi_y, 2 * hi_y - out[:, 1], out[:, 1])
        return np.clip(out, [lo_x, lo_y], [hi_x, hi_y])


@dataclass
class MobilityTrace:
    """Served users per step for one policy."""

    policy: str
    served: list = field(default_factory=list)
    redeploys: int = 0
    transit_steps: int = 0   # steps spent flying to new positions

    @property
    def mean_served(self) -> float:
        return float(np.mean(self.served)) if self.served else 0.0

    @property
    def final_served(self) -> int:
        return self.served[-1] if self.served else 0


def _working_graph(base: CoverageGraph) -> CoverageGraph:
    """A private mutable clone of ``base`` for the step loop.

    :meth:`CoverageGraph.with_users` shares the location graph / hop
    structure by reference and starts a fresh coverage cache, so each
    step's :meth:`~CoverageGraph.move_users` invalidates only the
    user-side coverage sets instead of reconstructing the whole graph
    (location edges + spatial hashes) from scratch.  The caller's graph
    is never mutated.
    """
    return base.with_users(base.users)


def simulate_mobility(
    problem: ProblemInstance,
    planner,
    steps: int = 20,
    mobility: "GaussianWalk | None" = None,
    redeploy_every: "int | None" = None,
    relocation_speed_mps: "float | None" = None,
    step_s: float = 60.0,
    seed: "int | np.random.Generator | None" = None,
) -> MobilityTrace:
    """Simulate ``steps`` mobility steps under one re-deployment policy.

    ``planner`` maps a :class:`ProblemInstance` to a Deployment (e.g.
    ``lambda p: appro_alg(p, s=2).deployment``).  ``redeploy_every=None``
    plans once and keeps the placement (stale policy); ``redeploy_every=r``
    re-plans every ``r`` steps.  The served count at each step always uses
    the exact optimal *assignment* for the current user positions — only
    the *placement* goes stale.

    ``relocation_speed_mps`` (optional) makes re-deployment cost real
    flight time: the relocation makespan (bottleneck pairing via
    :mod:`repro.sim.relocation`) divided by the speed determines how many
    ``step_s``-second steps the fleet keeps serving from the *old*
    positions before the new placement takes effect.  ``None`` keeps the
    paper-style instantaneous re-deployment.
    """
    if steps < 1:
        raise ValueError(f"steps must be positive, got {steps}")
    if redeploy_every is not None and redeploy_every < 1:
        raise ValueError("redeploy_every must be positive or None")
    if relocation_speed_mps is not None and relocation_speed_mps <= 0:
        raise ValueError("relocation speed must be positive")
    if step_s <= 0:
        raise ValueError("step duration must be positive")
    mobility = mobility if mobility is not None else GaussianWalk()
    rng = ensure_rng(seed)

    base_graph = problem.graph
    xy = np.array(
        [[u.position.x, u.position.y] for u in base_graph.users], dtype=float
    ).reshape(len(base_graph.users), 2)
    xs = xy[:, 0]
    ys = xy[:, 1]
    loc_x = [loc.x for loc in base_graph.locations]
    loc_y = [loc.y for loc in base_graph.locations]
    bounds = (
        min(xs.min(initial=0.0), min(loc_x, default=0.0)),
        max(xs.max(initial=0.0), max(loc_x, default=0.0)),
        min(ys.min(initial=0.0), min(loc_y, default=0.0)),
        max(ys.max(initial=0.0), max(loc_y, default=0.0)),
    )

    policy = "stale" if redeploy_every is None else f"refresh/{redeploy_every}"
    trace = MobilityTrace(policy=policy)
    deployment = planner(problem)
    trace.redeploys += 1
    placements = deployment.placements
    pending: "tuple | None" = None  # (new_placements, steps_remaining)

    graph_now = _working_graph(base_graph)
    for step in range(steps):
        xy = mobility.step(xy, bounds, rng)
        graph_now.move_users(xy)
        problem_now = ProblemInstance(graph=graph_now, fleet=problem.fleet)

        if pending is not None:
            new_placements, remaining = pending
            if remaining <= 0:
                placements = new_placements
                pending = None
            else:
                pending = (new_placements, remaining - 1)
                trace.transit_steps += 1

        if (
            pending is None
            and redeploy_every is not None
            and step > 0
            and step % redeploy_every == 0
        ):
            new_deployment = planner(problem_now)
            trace.redeploys += 1
            if relocation_speed_mps is None:
                placements = new_deployment.placements
            else:
                from repro.sim.relocation import plan_relocation

                old_dep = Deployment(placements=placements)
                plan = plan_relocation(
                    problem_now, old_dep, new_deployment, policy="makespan"
                )
                transit = int(
                    np.ceil(
                        plan.max_distance_m / relocation_speed_mps / step_s
                    )
                )
                if transit <= 0:
                    placements = new_deployment.placements
                else:
                    pending = (new_deployment.placements, transit - 1)
                    trace.transit_steps += 1

        served = optimal_assignment(
            graph_now, problem.fleet, placements
        ).served_count
        trace.served.append(served)
    return trace


def compare_policies(
    problem: ProblemInstance,
    planner,
    steps: int = 20,
    redeploy_every: int = 5,
    mobility: "GaussianWalk | None" = None,
    seed: int = 0,
) -> "tuple[MobilityTrace, MobilityTrace]":
    """(stale, refreshed) traces over the same mobility realisation."""
    stale = simulate_mobility(
        problem, planner, steps=steps, mobility=mobility,
        redeploy_every=None, seed=seed,
    )
    refreshed = simulate_mobility(
        problem, planner, steps=steps, mobility=mobility,
        redeploy_every=redeploy_every, seed=seed,
    )
    return stale, refreshed
