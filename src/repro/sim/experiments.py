"""Sweep drivers regenerating each figure of Section IV.

* Fig. 4 — served users vs number of UAVs ``K`` (n = 3000, s = 3);
* Fig. 5 — served users vs number of users ``n`` (K = 20, s = 3);
* Fig. 6(a) — served users vs parameter ``s`` (n = 3000, K = 20);
* Fig. 6(b) — running time vs parameter ``s`` (same runs as 6(a)).

Scaling: the authors' machine ran a compiled implementation on a fine
grid; this pure-Python reproduction defaults to the "bench" scale (coarse
36-location grid) and restricts approAlg's anchor pool to the
``max_anchor_candidates`` best-covering locations (see DESIGN.md §3).  The
sweeps accept overrides to run closer to paper scale when time permits.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro import obs
from repro.core.checkpoint import CheckpointConfig
from repro.scenario.pipeline import SolvePipeline
from repro.sim.results import RunRecord, SweepResult
from repro.util.interrupt import SolveInterrupted, interrupt_requested
from repro.util.ledger import ProgressLedger
from repro.util.rng import ensure_rng, spawn_rngs
from repro.workload.scenarios import SCALES, paper_scenario

# One shared pipeline for every sweep point.  ``prebuild_context=False``
# keeps the per-point cost (and the solve timings feeding Fig. 6(b))
# exactly as they were before the sweeps moved onto the pipeline: each
# solver builds its own context, inside its timed solve stage.
_PIPELINE = SolvePipeline(prebuild_context=False)

PAPER_ALGORITHMS = (
    "approAlg",
    "maxThroughput",
    "MotionCtrl",
    "MCS",
    "GreedyAssign",
)

DEFAULT_ANCHOR_POOL = 10


def _appro_params(
    s: int,
    max_anchor_candidates: "int | None",
    gain_mode: str = "fast",
    workers: int = 1,
    bound_prune: bool = False,
) -> dict:
    params: dict = {"s": s, "gain_mode": gain_mode}
    if max_anchor_candidates is not None:
        params["max_anchor_candidates"] = max_anchor_candidates
    if workers != 1:
        params["workers"] = workers
    if bound_prune:
        params["bound_prune"] = bound_prune
    return params


class _SweepJournal:
    """Crash-safe progress for one sweep: a :class:`ProgressLedger` of
    finished (point, algorithm) runs plus per-solve chunk checkpoints for
    checkpoint-capable solvers.

    ``description`` fingerprints the sweep's full parameterization
    (excluding ``workers`` — a resumed sweep may use a different worker
    count), so a ledger can never be resumed against a different sweep.
    """

    def __init__(self, name: str, description: dict,
                 checkpoint_dir: "str | Path", resume: bool):
        self.dir = Path(checkpoint_dir)
        self.resume = resume
        self.ledger = ProgressLedger(
            self.dir / f"{name}-ledger.json",
            {"kind": "sweep", "name": name, **description},
            resume=resume,
        )
        if self.ledger.stale:
            obs.counter_inc("checkpoint.mismatches")
        self.point_index = 0

    @staticmethod
    def create(name: str, description: dict,
               checkpoint_dir: "str | Path | None",
               resume: bool) -> "_SweepJournal | None":
        if checkpoint_dir is None:
            return None
        return _SweepJournal(name, description, checkpoint_dir, resume)

    def has(self, key: str) -> bool:
        return self.resume and key in self.ledger

    def record(self, key: str) -> RunRecord:
        obs.counter_inc("resume.points_skipped")
        return RunRecord.from_dict(self.ledger.payload(key))

    def mark(self, key: str, record: RunRecord) -> None:
        self.ledger.mark(key, record.to_dict())

    def solve_checkpoint(self, key: str) -> CheckpointConfig:
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in key)
        return CheckpointConfig(
            path=self.dir / f"solve-{safe}.json",
            resume=self.resume,
            key=f"{self.ledger.fingerprint}:{key}",
        )


def _run_point(
    result: SweepResult,
    sweep_value: object,
    problem,
    algorithms: Sequence,
    appro_params: dict,
    journal: "_SweepJournal | None" = None,
) -> None:
    point = 0
    if journal is not None:
        point = journal.point_index
        journal.point_index += 1
    with obs.span("sweep.point", sweep=result.name, value=str(sweep_value)):
        obs.counter_inc("sweep.points")
        for name in algorithms:
            key = f"{point}:{sweep_value}:{name}"
            if journal is not None and journal.has(key):
                # This (point, algorithm) run already finished before the
                # crash/interrupt: rehydrate its record from the ledger.
                result.add(sweep_value, journal.record(key))
                continue
            if interrupt_requested():
                raise SolveInterrupted(
                    f"sweep {result.name} interrupted at point "
                    f"{sweep_value!r} ({len(result.records)} runs recorded)",
                    checkpoint_path=(
                        None if journal is None else journal.ledger.path
                    ),
                    partial={"sweep": result.name, "runs": len(result.records),
                             "value": str(sweep_value)},
                )
            params = appro_params if name == "approAlg" else {}
            checkpoint = (
                journal.solve_checkpoint(key) if journal is not None else None
            )
            state = _PIPELINE.solve(problem, name, params,
                                    checkpoint=checkpoint)
            result.add(sweep_value, state.record)
            if journal is not None:
                journal.mark(key, state.record)


def _announce_points(count: int) -> None:
    """Declare the sweep's total point count up front so live telemetry
    can pair it with the ``sweep.points`` completions."""
    obs.counter_inc("sweep.points_planned", count)


def _num_locations(scale: str) -> int:
    """Candidate hovering locations of a scale preset (no users built)."""
    from repro.geometry.area import DisasterArea

    config = SCALES[scale]
    area = DisasterArea(config.area_length_m, config.area_width_m)
    altitudes = config.altitude_layers_m or (config.altitude_m,)
    return sum(
        len(area.hovering_grid(config.grid_side_m, alt).centers)
        for alt in altitudes
    )


def _feasible_ks(ks: Sequence, scale: str) -> list:
    """The K values deployable at this scale.

    Constraint (ii) allows at most one UAV per candidate location, so on
    coarse scales (``small`` has m = 9) the default fig4 range reaches
    into infeasible territory; those points are skipped (counted in
    ``sweep.points_skipped``) instead of aborting the whole sweep.
    """
    limit = _num_locations(scale)
    feasible = [k for k in ks if k <= limit]
    if not feasible:
        raise ValueError(
            f"no feasible sweep point: every K in {list(ks)} exceeds the "
            f"{limit} candidate locations of scale {scale!r}"
        )
    if len(feasible) < len(ks):
        obs.counter_inc("sweep.points_skipped", len(ks) - len(feasible))
    return feasible


def fig4_sweep(
    ks: Sequence = (2, 4, 6, 8, 10, 12, 14, 16, 18, 20),
    num_users: int = 3000,
    s: int = 3,
    scale: str = "bench",
    seed: int = 7,
    repetitions: int = 1,
    algorithms: Sequence = PAPER_ALGORITHMS,
    max_anchor_candidates: "int | None" = DEFAULT_ANCHOR_POOL,
    gain_mode: str = "fast",
    workers: int = 1,
    bound_prune: bool = False,
    checkpoint_dir: "str | Path | None" = None,
    resume: bool = False,
) -> SweepResult:
    """Fig. 4: served users vs K.

    Within one repetition the users and the fleet are held fixed: the
    scenario is drawn once with ``max(ks)`` UAVs and each sweep point uses
    the first ``K`` of them, so the series isolates the effect of adding
    UAVs (as the paper's "increasing the number K of UAVs" does).
    """
    from repro.core.problem import ProblemInstance

    ks = _feasible_ks(list(ks), scale)
    result = SweepResult(name="fig4", sweep_param="K")
    journal = _SweepJournal.create("fig4", {
        "ks": list(ks), "num_users": num_users, "s": s, "scale": scale,
        "seed": seed, "repetitions": repetitions,
        "algorithms": list(algorithms),
        "max_anchor_candidates": max_anchor_candidates,
        "gain_mode": gain_mode, "bound_prune": bound_prune,
    }, checkpoint_dir, resume)
    _announce_points(len(ks) * repetitions)
    for rep_rng in spawn_rngs(seed, repetitions):
        base = paper_scenario(
            num_users=num_users, num_uavs=max(ks), scale=scale, seed=rep_rng
        )
        for k in ks:
            problem = ProblemInstance(graph=base.graph, fleet=base.fleet[:k])
            appro = _appro_params(
                min(s, k), max_anchor_candidates, gain_mode,
                workers, bound_prune,
            )
            _run_point(result, k, problem, algorithms, appro, journal)
    return result


def fig5_sweep(
    ns: Sequence = (1000, 1500, 2000, 2500, 3000),
    num_uavs: int = 20,
    s: int = 3,
    scale: str = "bench",
    seed: int = 11,
    repetitions: int = 1,
    algorithms: Sequence = PAPER_ALGORITHMS,
    max_anchor_candidates: "int | None" = DEFAULT_ANCHOR_POOL,
    gain_mode: str = "fast",
    workers: int = 1,
    bound_prune: bool = False,
    checkpoint_dir: "str | Path | None" = None,
    resume: bool = False,
) -> SweepResult:
    """Fig. 5: served users vs n."""
    ns = list(ns)
    result = SweepResult(name="fig5", sweep_param="n")
    journal = _SweepJournal.create("fig5", {
        "ns": list(ns), "num_uavs": num_uavs, "s": s, "scale": scale,
        "seed": seed, "repetitions": repetitions,
        "algorithms": list(algorithms),
        "max_anchor_candidates": max_anchor_candidates,
        "gain_mode": gain_mode, "bound_prune": bound_prune,
    }, checkpoint_dir, resume)
    _announce_points(len(ns) * repetitions)
    appro = _appro_params(
        s, max_anchor_candidates, gain_mode, workers, bound_prune
    )
    for rep_rng in spawn_rngs(seed, repetitions):
        point_rngs = spawn_rngs(rep_rng, len(ns))
        for n, rng in zip(ns, point_rngs):
            problem = paper_scenario(
                num_users=n, num_uavs=num_uavs, scale=scale, seed=rng
            )
            _run_point(result, n, problem, algorithms, appro, journal)
    return result


def capacity_spread_sweep(
    spreads: Sequence = ((175, 175), (125, 225), (50, 300)),
    num_users: int = 2000,
    num_uavs: int = 12,
    s: int = 2,
    scale: str = "bench",
    seed: int = 29,
    max_anchor_candidates: "int | None" = 8,
    gain_mode: str = "fast",
    checkpoint_dir: "str | Path | None" = None,
    resume: bool = False,
) -> SweepResult:
    """Extended evaluation (ours): served users vs the heterogeneity
    spread ``[C_min, C_max]`` at (roughly) fixed mean capacity.  Isolates
    the paper's thesis that a capacity-aware algorithm benefits from
    spread."""
    from repro.core.problem import ProblemInstance
    from repro.network.fleet import heterogeneous_fleet

    spreads = list(spreads)
    result = SweepResult(name="capacity-spread", sweep_param="C range")
    journal = _SweepJournal.create("capacity-spread", {
        "spreads": [list(sp) for sp in spreads], "num_users": num_users,
        "num_uavs": num_uavs, "s": s, "scale": scale, "seed": seed,
        "max_anchor_candidates": max_anchor_candidates,
        "gain_mode": gain_mode,
    }, checkpoint_dir, resume)
    _announce_points(len(spreads))
    base = paper_scenario(num_users=num_users, num_uavs=num_uavs,
                          scale=scale, seed=seed)
    appro = _appro_params(s, max_anchor_candidates, gain_mode)
    for lo, hi in spreads:
        fleet = heterogeneous_fleet(
            num_uavs, capacity_min=lo, capacity_max=hi, seed=seed
        )
        problem = ProblemInstance(graph=base.graph, fleet=fleet)
        _run_point(result, f"[{lo},{hi}]", problem, ("approAlg",), appro,
                   journal)
    return result


def environment_sweep(
    environments: Sequence = ("suburban", "urban", "dense-urban",
                              "highrise-urban"),
    num_users: int = 1500,
    num_uavs: int = 10,
    min_rate_bps: float = 2.5e6,
    s: int = 2,
    scale: str = "bench",
    seed: int = 23,
    max_anchor_candidates: "int | None" = 8,
    gain_mode: str = "fast",
    checkpoint_dir: "str | Path | None" = None,
    resume: bool = False,
) -> SweepResult:
    """Extended evaluation (ours): served users vs propagation
    environment.  A demanding ``min_rate_bps`` (default video-grade) makes
    the environment matter; the paper's 2 kbps floor never binds."""
    from repro.workload.fat_tailed import FatTailedWorkload
    from repro.workload.scenarios import SCALES, build_scenario

    environments = list(environments)
    result = SweepResult(name="environment", sweep_param="environment")
    journal = _SweepJournal.create("environment", {
        "environments": list(environments), "num_users": num_users,
        "num_uavs": num_uavs, "min_rate_bps": min_rate_bps, "s": s,
        "scale": scale, "seed": seed,
        "max_anchor_candidates": max_anchor_candidates,
        "gain_mode": gain_mode,
    }, checkpoint_dir, resume)
    _announce_points(len(environments))
    appro = _appro_params(s, max_anchor_candidates, gain_mode)
    for env in environments:
        config = SCALES[scale].with_overrides(
            num_users=num_users,
            num_uavs=num_uavs,
            environment=env,
            workload=FatTailedWorkload(min_rate_bps=min_rate_bps),
        )
        problem = build_scenario(config, seed=seed)
        _run_point(result, env, problem, ("approAlg",), appro, journal)
    return result


def fig6_sweep(
    ss: Sequence = (1, 2, 3, 4),
    num_users: int = 3000,
    num_uavs: int = 20,
    scale: str = "bench",
    seed: int = 13,
    repetitions: int = 1,
    algorithms: Sequence = PAPER_ALGORITHMS,
    max_anchor_candidates: "int | None" = DEFAULT_ANCHOR_POOL,
    gain_mode: str = "fast",
    workers: int = 1,
    bound_prune: bool = False,
    checkpoint_dir: "str | Path | None" = None,
    resume: bool = False,
) -> SweepResult:
    """Fig. 6: served users (a) and running time (b) vs s.

    Baselines do not depend on ``s``; the paper still plots them as flat
    series, so they are re-run at every sweep point (their runtimes feed
    Fig. 6(b)).
    """
    ss = list(ss)
    result = SweepResult(name="fig6", sweep_param="s")
    journal = _SweepJournal.create("fig6", {
        "ss": list(ss), "num_users": num_users, "num_uavs": num_uavs,
        "scale": scale, "seed": seed, "repetitions": repetitions,
        "algorithms": list(algorithms),
        "max_anchor_candidates": max_anchor_candidates,
        "gain_mode": gain_mode, "bound_prune": bound_prune,
    }, checkpoint_dir, resume)
    _announce_points(len(ss) * repetitions)
    rng = ensure_rng(seed)
    for rep_rng in spawn_rngs(rng, repetitions):
        problem = paper_scenario(
            num_users=num_users, num_uavs=num_uavs, scale=scale, seed=rep_rng
        )
        for s in ss:
            appro = _appro_params(
                s, max_anchor_candidates, gain_mode, workers, bound_prune
            )
            _run_point(result, s, problem, algorithms, appro, journal)
    return result
