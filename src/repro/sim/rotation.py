"""Battery-rotation scheduling (extension).

A deployment's mission endurance is bounded by its first empty battery
(:mod:`repro.network.energy`), yet rescue missions run for days ("the
first 72 golden hours", Section II-C).  Operators therefore rotate UAVs:
when one runs low it lands to recharge and a charged one takes its
position.  This module builds such a rotation schedule.

Model: every hovering *position* of the deployment must be staffed
continuously for ``mission_s`` seconds.  A physical UAV flies at most its
endurance per sortie, then needs ``recharge_s`` on the ground before the
next sortie.  Spare UAVs (fleet members the deployment left grounded) are
part of the pool.  A greedy earliest-deadline scheduler assigns sorties;
it is optimal for this identical-machines-with-availability structure in
the sense that if the greedy leaves a gap, no schedule avoids one (the
pool's aggregate flight-time supply is exhausted at that moment).

Simplification (documented): swaps are instantaneous hand-offs (the
relief UAV launches early enough to arrive before the hand-off); capacity
differences between the UAV and the position's planned role are checked
the same way relocation does — the replacement must cover the position's
assigned load.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment
from repro.network.energy import EnergyModel


@dataclass(frozen=True)
class Sortie:
    """One continuous stint of one UAV at one position."""

    position: int       # location index
    uav_index: int
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class RotationSchedule:
    """A full rotation plan for one mission."""

    mission_s: float
    sorties: list = field(default_factory=list)
    feasible: bool = True
    first_gap_s: "float | None" = None   # when coverage first breaks

    def sorties_at(self, position: int) -> list:
        return sorted(
            (s for s in self.sorties if s.position == position),
            key=lambda s: s.start_s,
        )

    def swaps(self) -> int:
        """Number of hand-offs (sorties beyond the first per position)."""
        positions = {s.position for s in self.sorties}
        return len(self.sorties) - len(positions)


def plan_rotation(
    problem: ProblemInstance,
    deployment: Deployment,
    mission_s: float,
    model: "EnergyModel | None" = None,
    recharge_s: float = 3600.0,
) -> RotationSchedule:
    """Schedule sorties keeping every deployed position staffed for
    ``mission_s``.

    Returns a schedule with ``feasible=False`` and the time of the first
    coverage gap when the pool cannot sustain the mission.
    """
    if mission_s <= 0:
        raise ValueError(f"mission duration must be positive, got {mission_s}")
    if recharge_s < 0:
        raise ValueError(f"recharge time must be non-negative, got {recharge_s}")
    model = model if model is not None else EnergyModel()

    loads = deployment.loads()
    positions = [
        (loc, loads[k]) for k, loc in sorted(deployment.placements.items())
    ]
    schedule = RotationSchedule(mission_s=mission_s)
    if not positions:
        return schedule

    endurance = {
        k: model.endurance_s(problem.fleet[k]) for k in range(problem.num_uavs)
    }
    # Pool of (available_at, uav).  Deployed UAVs start on their position
    # at t = 0: seed each position with its own UAV's first sortie.
    pool: list = []
    occupied_until: dict = {}
    for k, loc in sorted(deployment.placements.items()):
        first = Sortie(position=loc, uav_index=k, start_s=0.0,
                       end_s=min(endurance[k], mission_s))
        schedule.sorties.append(first)
        occupied_until[loc] = first.end_s
        heapq.heappush(pool, (first.end_s + recharge_s, k))
    spares = sorted(
        set(range(problem.num_uavs)) - set(deployment.placements)
    )
    for k in spares:
        heapq.heappush(pool, (0.0, k))

    need = {loc: load for loc, load in positions}
    # Repeatedly staff the position whose coverage ends soonest.
    while True:
        open_positions = [
            (until, loc) for loc, until in occupied_until.items()
            if until < mission_s
        ]
        if not open_positions:
            break
        until, loc = min(open_positions)
        # Pull available UAVs; those not yet available may still be the
        # only option — greedy takes the earliest-available *compatible*.
        compatible: list = []
        incompatible: list = []
        while pool:
            avail, k = heapq.heappop(pool)
            if problem.fleet[k].capacity >= need[loc]:
                compatible.append((avail, k))
                break
            incompatible.append((avail, k))
        for item in incompatible:
            heapq.heappush(pool, item)
        if not compatible:
            schedule.feasible = False
            schedule.first_gap_s = until
            break
        avail, k = compatible[0]
        start = max(until, avail)
        if start > until:  # the relief arrives after coverage expired
            schedule.feasible = False
            schedule.first_gap_s = until
            break
        end = min(start + endurance[k], mission_s)
        sortie = Sortie(position=loc, uav_index=k, start_s=start, end_s=end)
        schedule.sorties.append(sortie)
        occupied_until[loc] = end
        heapq.heappush(pool, (end + recharge_s, k))
    return schedule


def max_sustainable_mission_s(
    problem: ProblemInstance,
    deployment: Deployment,
    model: "EnergyModel | None" = None,
    recharge_s: float = 3600.0,
    horizon_s: float = 72 * 3600.0,
) -> float:
    """Longest mission (up to ``horizon_s``) the pool can sustain, by
    bisection over :func:`plan_rotation` feasibility."""
    model = model if model is not None else EnergyModel()

    def ok(duration: float) -> bool:
        return plan_rotation(
            problem, deployment, duration, model, recharge_s
        ).feasible

    if not deployment.placements:
        return horizon_s
    lo = 1.0
    if not ok(lo):
        return 0.0
    if ok(horizon_s):
        return horizon_s
    hi = horizon_s
    while hi - lo > 60.0:  # one-minute resolution
        mid = (lo + hi) / 2.0
        if ok(mid):
            lo = mid
        else:
            hi = mid
    return lo
