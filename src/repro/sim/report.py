"""Operational deployment reports (extension): one text artefact that
composes everything an operator needs before launching the fleet —
coverage metrics, per-UAV loads, endurance, worst failures, spectrum
needs, and an ASCII map.
"""

from __future__ import annotations

from repro.channel.interference import audit_interference
from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment
from repro.network.energy import EnergyModel, fleet_endurance_s
from repro.network.resilience import single_failure_impacts
from repro.network.spectrum import allocate_channels
from repro.sim.metrics import summarize
from repro.sim.render import ascii_map
from repro.util.tables import format_table


def deployment_report(
    problem: ProblemInstance,
    deployment: Deployment,
    energy_model: "EnergyModel | None" = None,
    include_map: bool = True,
) -> str:
    """A multi-section plain-text report for one deployment."""
    sections = []
    metrics = summarize(problem, deployment)
    sections.append(
        "== coverage ==\n"
        f"served {metrics.served}/{problem.num_users} users "
        f"({metrics.served_fraction:.0%}) with {metrics.num_deployed} UAVs; "
        f"throughput {metrics.throughput_bps / 1e6:.1f} Mbps; capacity "
        f"utilisation {metrics.capacity_utilisation:.0%}; load fairness "
        f"{metrics.load_fairness:.2f}"
    )

    if deployment.placements:
        model = energy_model if energy_model is not None else EnergyModel()
        endurance = fleet_endurance_s(problem.fleet, deployment, model)
        loads = deployment.loads()
        rows = [
            [
                k,
                deployment.placements[k],
                problem.fleet[k].capacity,
                loads[k],
                f"{endurance[k] / 60:.0f} min",
            ]
            for k in sorted(deployment.placements)
        ]
        sections.append(format_table(
            ["UAV", "location", "capacity", "load", "endurance"],
            rows,
            title="== fleet ==",
        ))

        impacts = single_failure_impacts(problem, deployment)
        worst = impacts[:3]
        rows = [
            [
                fi.uav_index,
                "yes" if fi.splits_network else "no",
                fi.served_lost,
            ]
            for fi in worst
        ]
        sections.append(format_table(
            ["failed UAV", "splits network", "users lost"],
            rows,
            title="== worst single failures ==",
        ))

        plan = allocate_channels(problem, deployment)
        audit = audit_interference(problem, deployment, channel_plan=plan)
        sections.append(
            "== spectrum ==\n"
            f"{plan.num_channels} channel(s) orthogonalise coupled "
            f"neighbours; {audit.still_satisfied}/{audit.served} links meet "
            "their QoS under residual interference "
            f"(mean SINR loss {audit.mean_sinr_loss_db:.1f} dB)"
        )

    if include_map:
        sections.append("== map ==\n" + ascii_map(problem, deployment))
    return "\n\n".join(sections)


def mission_report(
    problem: ProblemInstance,
    result,
    include_map: bool = True,
) -> str:
    """Render a :class:`repro.ops.mission.MissionResult`: the headline
    numbers, the initial watchdog trail, the structured fault/recovery log,
    and the final network state."""
    record = result.initial_record
    sections = [
        "== mission ==\n"
        f"initial plan by {record.algorithm} "
        f"({record.status}, {record.runtime_s:.2f}s): "
        f"{result.served_initial}/{problem.num_users} users served; "
        f"{result.faults_injected} fault(s) injected, "
        f"{result.repairs} repair(s) adopted; served dipped to "
        f"{result.served_min}, ended at {result.served_final} "
        f"({'valid' if result.final_valid else 'INVALID'}, "
        f"{'connected' if result.final_connected else 'PARTITIONED'})"
    ]
    if record.attempts:
        rows = [
            [a.algorithm, f"{a.elapsed_s:.2f}", a.status, a.error or "-"]
            for a in record.attempts
        ]
        sections.append(format_table(
            ["solver", "elapsed (s)", "status", "error"],
            rows,
            title="== initial watchdog trail ==",
        ))
    sections.append(result.log.to_text(title="== mission log =="))
    if include_map and result.final_deployment.placements:
        sections.append(
            "== final map ==\n" + ascii_map(problem, result.final_deployment)
        )
    return "\n\n".join(sections)
