"""ASCII rendering of scenarios and deployments (extension; used by the
examples and handy in a terminal-only environment).

The map bins users into character cells: digits show user density per
cell (log-ish scale capped at 9), ``U`` marks an occupied hovering
location (overrides the density digit), ``+`` marks an unoccupied
candidate location in an otherwise empty cell, and ``.`` is empty ground.
"""

from __future__ import annotations

from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment


def ascii_map(
    problem: ProblemInstance,
    deployment: "Deployment | None" = None,
    cols: int = 36,
    rows: int = 18,
) -> str:
    """Render the scenario (and optionally a deployment) as ASCII art."""
    if cols < 1 or rows < 1:
        raise ValueError("map must have at least one cell")
    graph = problem.graph
    xs = [loc.x for loc in graph.locations] + [u.position.x for u in graph.users]
    ys = [loc.y for loc in graph.locations] + [u.position.y for u in graph.users]
    if not xs:
        return "(empty scenario)"
    min_x, max_x = min(xs), max(xs)
    min_y, max_y = min(ys), max(ys)
    span_x = max(max_x - min_x, 1e-9)
    span_y = max(max_y - min_y, 1e-9)

    def cell_of(x: float, y: float) -> tuple:
        c = min(int((x - min_x) / span_x * cols), cols - 1)
        r = min(int((y - min_y) / span_y * rows), rows - 1)
        return c, r

    counts = [[0] * cols for _ in range(rows)]
    for u in graph.users:
        c, r = cell_of(u.position.x, u.position.y)
        counts[r][c] += 1

    max_count = max((max(row) for row in counts), default=0)
    grid = []
    for r in range(rows):
        line = []
        for c in range(cols):
            if counts[r][c] == 0:
                line.append(".")
            elif max_count <= 9:
                line.append(str(counts[r][c]))
            else:
                scaled = max(1, round(counts[r][c] / max_count * 9))
                line.append(str(min(9, scaled)))
        grid.append(line)

    occupied = set()
    if deployment is not None:
        occupied = set(deployment.locations_used())
    for j, loc in enumerate(graph.locations):
        c, r = cell_of(loc.x, loc.y)
        if j in occupied:
            grid[r][c] = "U"
        elif grid[r][c] == ".":
            grid[r][c] = "+"

    # Row 0 is the south edge; print north-up.
    lines = ["".join(row) for row in reversed(grid)]
    legend = (
        "legend: digits = user density, U = deployed UAV, "
        "+ = free hovering location"
    )
    return "\n".join(lines + [legend])
