"""Paired statistical comparison of placement algorithms (extension).

A single seed can flatter either side; this module runs two algorithms on
the *same* sequence of random scenarios (paired design) and tests whether
the served-user difference is real, using a paired sign test and a paired
permutation test — both implemented from scratch (scipy is a test oracle
only elsewhere in this repo; here the statistics are simple enough to own).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.scenario.pipeline import SolvePipeline
from repro.util.rng import ensure_rng, spawn_rngs
from repro.workload.scenarios import paper_scenario

# Context prebuilding off: each paired solve is timed end to end, exactly
# as the comparison historically measured it.
_PIPELINE = SolvePipeline(prebuild_context=False)


@dataclass
class PairedComparison:
    """Outcome of a paired A-vs-B run."""

    algorithm_a: str
    algorithm_b: str
    served_a: list = field(default_factory=list)
    served_b: list = field(default_factory=list)
    wins_a: int = 0
    wins_b: int = 0
    ties: int = 0
    mean_diff: float = 0.0          # mean(A - B)
    sign_test_p: float = 1.0        # two-sided
    permutation_p: float = 1.0      # two-sided, sign-flip permutation

    @property
    def n(self) -> int:
        return len(self.served_a)


def _binomial_two_sided_p(wins: int, trials: int) -> float:
    """Exact two-sided sign-test p-value under P(win) = 1/2 (ties dropped
    before calling)."""
    if trials == 0:
        return 1.0
    k = max(wins, trials - wins)
    tail = sum(math.comb(trials, i) for i in range(k, trials + 1))
    return min(1.0, 2.0 * tail / (2 ** trials))


def _sign_flip_permutation_p(
    diffs: list, iterations: int, rng: np.random.Generator
) -> float:
    """Two-sided paired permutation test: under H0 the sign of each paired
    difference is arbitrary; compare |mean| against the flip distribution."""
    arr = np.asarray(diffs, dtype=float)
    if arr.size == 0 or np.allclose(arr, 0.0):
        return 1.0
    observed = abs(arr.mean())
    signs = rng.choice((-1.0, 1.0), size=(iterations, arr.size))
    permuted = np.abs((signs * arr).mean(axis=1))
    # Add-one smoothing keeps the estimate conservative.
    return float((np.sum(permuted >= observed - 1e-12) + 1) / (iterations + 1))


def compare_algorithms(
    algorithm_a: str,
    algorithm_b: str,
    repetitions: int = 10,
    num_users: int = 800,
    num_uavs: int = 10,
    scale: str = "bench",
    seed: int = 101,
    params_a: "dict | None" = None,
    params_b: "dict | None" = None,
    permutation_iterations: int = 5000,
) -> PairedComparison:
    """Run both algorithms on ``repetitions`` paired random scenarios and
    test the served-user difference.

    ``params_a`` / ``params_b`` are forwarded to the algorithms (e.g.
    ``{"s": 2, "gain_mode": "fast"}`` for approAlg).
    """
    if repetitions < 1:
        raise ValueError(f"repetitions must be positive, got {repetitions}")
    result = PairedComparison(algorithm_a=algorithm_a, algorithm_b=algorithm_b)
    rng = ensure_rng(seed)
    for child in spawn_rngs(rng, repetitions):
        problem = paper_scenario(
            num_users=num_users, num_uavs=num_uavs, scale=scale, seed=child
        )
        served_a = _PIPELINE.solve(problem, algorithm_a, params_a).served
        served_b = _PIPELINE.solve(problem, algorithm_b, params_b).served
        result.served_a.append(served_a)
        result.served_b.append(served_b)
        if served_a > served_b:
            result.wins_a += 1
        elif served_b > served_a:
            result.wins_b += 1
        else:
            result.ties += 1

    diffs = [a - b for a, b in zip(result.served_a, result.served_b)]
    result.mean_diff = float(np.mean(diffs))
    decisive = result.wins_a + result.wins_b
    result.sign_test_p = _binomial_two_sided_p(result.wins_a, decisive)
    result.permutation_p = _sign_flip_permutation_p(
        diffs, permutation_iterations, ensure_rng(seed + 1)
    )
    return result
