"""Experiment harness: algorithm registry, sweep runners and result tables
for regenerating every figure of the paper's Section IV."""

from repro.sim.compare import PairedComparison, compare_algorithms
from repro.sim.experiments import fig4_sweep, fig5_sweep, fig6_sweep
from repro.sim.metrics import DeploymentMetrics, summarize
from repro.sim.mobility import GaussianWalk, compare_policies, simulate_mobility
from repro.sim.planning import coverage_curve, uavs_needed_for_target
from repro.sim.relocation import naive_relocation, plan_relocation
from repro.sim.render import ascii_map
from repro.sim.report import deployment_report
from repro.sim.results import RunRecord, SweepResult
from repro.sim.rotation import max_sustainable_mission_s, plan_rotation
from repro.sim.runner import ALGORITHMS

__all__ = [
    "PairedComparison",
    "compare_algorithms",
    "coverage_curve",
    "uavs_needed_for_target",
    "naive_relocation",
    "plan_relocation",
    "deployment_report",
    "max_sustainable_mission_s",
    "plan_rotation",
    "fig4_sweep",
    "fig5_sweep",
    "fig6_sweep",
    "DeploymentMetrics",
    "summarize",
    "GaussianWalk",
    "compare_policies",
    "simulate_mobility",
    "ascii_map",
    "RunRecord",
    "SweepResult",
    "ALGORITHMS",
]
