"""Algorithm registry, timed runner, and the solver watchdog.

Every algorithm takes a :class:`ProblemInstance` and returns a
:class:`Deployment`; the runner times it, validates the output against the
problem constraints, and wraps everything into a :class:`RunRecord`.

:func:`solve_with_fallback` adds the fault-tolerant path used by the
mission runtime (:mod:`repro.ops`): run the preferred solver under a
wall-clock budget and, when it times out, raises, or produces an invalid
deployment, fall back deterministically through a configured chain
(default ``approAlg -> MCS -> GreedyAssign``), recording every attempt
instead of crashing the experiment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro import obs
from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment
from repro.network.validate import ValidationError, validate_deployment
from repro.scenario.registry import DEFAULT_REGISTRY
from repro.sim.results import AttemptRecord, RunRecord
from repro.util.timing import Stopwatch

# The dispatch tables are *views* of the algorithm registry
# (:mod:`repro.scenario.registry`), which owns the solver entries and
# their capability flags.  ALGORITHMS stays a plain mutable dict so tests
# and callers can still patch one-off solvers into this module without
# touching the shared registry.
ALGORITHMS = DEFAULT_REGISTRY.callables()

# The connectivity-free reference point intentionally violates constraint
# (iii); every other algorithm must produce connected deployments.
_UNCONNECTED_OK = DEFAULT_REGISTRY.unconnected_ok()

# Solvers whose inner loop accepts a ``progress`` callback, so the watchdog
# can abort them mid-run when the wall-clock budget expires.  This covers
# the parallel engine too: ``appro_alg(workers=N)`` invokes ``progress``
# from the parent process between completed chunks, and a SolverTimeout
# raised there cancels the outstanding futures and shuts the pool down.
_COOPERATIVE = DEFAULT_REGISTRY.cooperative()


class SolverTimeout(Exception):
    """Raised inside a cooperative solver when its wall-clock budget expires."""


def run_algorithm(
    problem: ProblemInstance,
    name: str,
    validate: bool = True,
    strict: bool = True,
    **params: object,
) -> RunRecord:
    """Run one registered algorithm, timed and (by default) validated.

    With ``strict=True`` (default) a raising solver or an invalid
    deployment propagates, as experiments historically expected.  With
    ``strict=False`` the error is captured instead: the returned record
    carries ``status`` (``"error"`` / ``"invalid"``) and ``error``, so a
    sweep survives one bad run and keeps the evidence.
    """
    try:
        algorithm = ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None

    obs.counter_inc("runner.solves")
    watch = Stopwatch()
    try:
        with watch, obs.span("runner.solve", algorithm=name):
            deployment = algorithm(problem, **params)
        # One observation per solve (parent-side), so the distribution is
        # identical for any worker count and feeds `repro perf-diff`-style
        # after-the-fact analysis without a trace file.
        obs.observe("runner.solve_seconds", watch.elapsed)
    except Exception as exc:  # noqa: BLE001 - captured into the record
        if strict:
            raise
        return RunRecord(
            algorithm=name,
            served=0,
            runtime_s=watch.elapsed,
            num_users=problem.num_users,
            num_uavs=problem.num_uavs,
            params=dict(params),
            status="error",
            error=f"{type(exc).__name__}: {exc}",
        )

    status, error = "ok", None
    if validate:
        try:
            validate_deployment(
                problem.graph,
                problem.fleet,
                deployment,
                require_connected=name not in _UNCONNECTED_OK,
            )
        except ValidationError as exc:
            if strict:
                raise
            status, error = "invalid", str(exc)
    return RunRecord(
        algorithm=name,
        served=deployment.served_count,
        runtime_s=watch.elapsed,
        num_users=problem.num_users,
        num_uavs=problem.num_uavs,
        params=dict(params),
        status=status,
        error=error,
    )


# Watchdog fallback order, derived from the registry's tier flags
# (approAlg -> MCS -> GreedyAssign with the built-in entries).
DEFAULT_FALLBACK_CHAIN = DEFAULT_REGISTRY.fallback_chain()


@dataclass(frozen=True)
class FallbackResult:
    """Outcome of a watchdog run: the first deployment that survived
    timing, exceptions and validation, plus the full attempt trail."""

    deployment: "Deployment | None"
    record: RunRecord

    @property
    def ok(self) -> bool:
        return self.deployment is not None

    @property
    def answered_by(self) -> "str | None":
        return self.record.algorithm if self.ok else None


@dataclass(frozen=True)
class WatchdogConfig:
    """Configuration of :func:`solve_with_fallback`."""

    chain: tuple = DEFAULT_FALLBACK_CHAIN
    budget_s: "float | None" = None          # wall clock across all tiers
    validate: bool = True
    params: dict = field(default_factory=dict)  # algorithm name -> kwargs

    def __post_init__(self) -> None:
        if not self.chain:
            raise ValueError("fallback chain must name at least one solver")
        for name in self.chain:
            if name not in ALGORITHMS:
                known = ", ".join(sorted(ALGORITHMS))
                raise ValueError(
                    f"unknown algorithm {name!r} in chain; known: {known}"
                )
        if self.budget_s is not None and self.budget_s < 0:
            raise ValueError(f"budget must be non-negative, got {self.budget_s}")


def _deadline_progress(deadline: float, inner: "object | None"):
    """A progress callback that aborts a cooperative solver at ``deadline``
    (chaining any caller-supplied callback first)."""

    def progress(done: int, total: int) -> None:
        if inner is not None:
            inner(done, total)
        if time.perf_counter() >= deadline:
            raise SolverTimeout(
                f"aborted after {done}/{total} subsets: budget exhausted"
            )

    return progress


def solve_with_fallback(
    problem: ProblemInstance,
    config: "WatchdogConfig | None" = None,
) -> FallbackResult:
    """Run the configured solver chain under one wall-clock budget.

    Tiers are tried in order; a tier is charged against the shared budget,
    and cooperative solvers (``approAlg``) are aborted mid-run via their
    ``progress`` hook once the budget expires.  Non-cooperative baselines
    run to completion — their completed result is kept even if late, since
    discarding a valid answer helps nobody.  The final tier always runs
    (the chain's last resort must answer).  A tier whose output fails
    validation is recorded as ``"invalid"`` and the chain continues.

    Never raises on solver failure: if every tier fails, the returned
    record has ``status="failed"`` and ``deployment`` is ``None``.
    """
    config = config if config is not None else WatchdogConfig()
    start = time.perf_counter()
    deadline = None if config.budget_s is None else start + config.budget_s
    attempts: list = []
    last = len(config.chain) - 1

    for i, name in enumerate(config.chain):
        params = dict(config.params.get(name, {}))
        if deadline is not None and i < last and time.perf_counter() >= deadline:
            attempts.append(AttemptRecord(
                algorithm=name, elapsed_s=0.0, status="timeout",
                error="budget exhausted before start",
            ))
            continue
        if deadline is not None and name in _COOPERATIVE:
            params["progress"] = _deadline_progress(
                deadline, params.get("progress")
            )

        watch = Stopwatch()
        try:
            with watch, obs.span("runner.tier", algorithm=name, tier=i):
                deployment = ALGORITHMS[name](problem, **params)
            obs.observe("runner.tier_seconds", watch.elapsed)
        except SolverTimeout as exc:
            obs.counter_inc("runner.timeouts")
            attempts.append(AttemptRecord(
                algorithm=name, elapsed_s=watch.elapsed, status="timeout",
                error=str(exc),
            ))
            continue
        except Exception as exc:  # noqa: BLE001 - captured into the trail
            attempts.append(AttemptRecord(
                algorithm=name, elapsed_s=watch.elapsed, status="error",
                error=f"{type(exc).__name__}: {exc}",
            ))
            continue

        if config.validate:
            try:
                validate_deployment(
                    problem.graph,
                    problem.fleet,
                    deployment,
                    require_connected=name not in _UNCONNECTED_OK,
                )
            except ValidationError as exc:
                attempts.append(AttemptRecord(
                    algorithm=name, elapsed_s=watch.elapsed, status="invalid",
                    error=str(exc),
                ))
                continue

        attempts.append(AttemptRecord(
            algorithm=name, elapsed_s=watch.elapsed, status="ok",
        ))
        record = RunRecord(
            algorithm=name,
            served=deployment.served_count,
            runtime_s=time.perf_counter() - start,
            num_users=problem.num_users,
            num_uavs=problem.num_uavs,
            params=dict(config.params.get(name, {})),
            status="ok",
            attempts=tuple(attempts),
        )
        return FallbackResult(deployment=deployment, record=record)

    record = RunRecord(
        algorithm=config.chain[-1],
        served=0,
        runtime_s=time.perf_counter() - start,
        num_users=problem.num_users,
        num_uavs=problem.num_uavs,
        params=dict(config.params.get(config.chain[-1], {})),
        status="failed",
        error="; ".join(
            f"{a.algorithm}: {a.status}" for a in attempts
        ) or "empty chain",
        attempts=tuple(attempts),
    )
    return FallbackResult(deployment=None, record=record)
