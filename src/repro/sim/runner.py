"""Algorithm registry and timed runner.

Every algorithm takes a :class:`ProblemInstance` and returns a
:class:`Deployment`; the runner times it, validates the output against the
problem constraints, and wraps everything into a :class:`RunRecord`.
"""

from __future__ import annotations

from repro.baselines.greedy_assign import greedy_assign
from repro.baselines.max_throughput import max_throughput
from repro.baselines.mcs import mcs
from repro.baselines.motionctrl import motion_ctrl
from repro.baselines.random_connected import random_connected
from repro.baselines.unconstrained import unconstrained_greedy
from repro.core.approx import appro_alg
from repro.core.problem import ProblemInstance
from repro.network.validate import validate_deployment
from repro.sim.results import RunRecord
from repro.util.timing import Stopwatch


def _appro(problem: ProblemInstance, **kw: object):
    return appro_alg(problem, **kw).deployment


ALGORITHMS = {
    "approAlg": _appro,
    "MCS": mcs,
    "MotionCtrl": motion_ctrl,
    "GreedyAssign": greedy_assign,
    "maxThroughput": max_throughput,
    "RandomConnected": random_connected,
    "Unconstrained": unconstrained_greedy,
}

# The connectivity-free reference point intentionally violates constraint
# (iii); every other algorithm must produce connected deployments.
_UNCONNECTED_OK = {"Unconstrained"}


def run_algorithm(
    problem: ProblemInstance, name: str, validate: bool = True, **params: object
) -> RunRecord:
    """Run one registered algorithm, timed and (by default) validated."""
    try:
        algorithm = ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None

    watch = Stopwatch()
    with watch:
        deployment = algorithm(problem, **params)
    if validate:
        validate_deployment(
            problem.graph,
            problem.fleet,
            deployment,
            require_connected=name not in _UNCONNECTED_OK,
        )
    return RunRecord(
        algorithm=name,
        served=deployment.served_count,
        runtime_s=watch.elapsed,
        num_users=problem.num_users,
        num_uavs=problem.num_uavs,
        params=dict(params),
    )
