"""UAV relocation planning between consecutive deployments (extension).

When users move and the network is re-planned (Section II-C), the fleet
must physically fly from the old hovering locations to the new ones.
Which UAV should take which new position?  Capacities are heterogeneous,
so the *role* mapping matters (the re-planner decides which capacity goes
where); what remains free is pairing equal-capacity UAVs to positions —
and, more generally, evaluating the travel cost of the transition.

This module computes relocation plans between two deployments:

* ``total`` policy — minimise the summed flight distance (fuel);
* ``makespan`` policy — minimise the arrival time of the slowest UAV
  (service restored fastest), via bottleneck assignment.

Both respect capacity requirements exactly: a UAV may take over a new
position only if its capacity is at least the capacity the plan assumed
there, so the served-user count of the new plan is preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.problem import ProblemInstance
from repro.flow.mincost import min_cost_assignment, min_max_assignment
from repro.network.deployment import Deployment


@dataclass(frozen=True)
class RelocationPlan:
    """How the fleet moves from an old deployment to a new one."""

    moves: dict              # uav_index -> (from_location | None, to_location)
    total_distance_m: float
    max_distance_m: float
    policy: str

    @property
    def num_moves(self) -> int:
        """UAVs that actually change position (launches count as moves)."""
        return sum(1 for src, dst in self.moves.values() if src != dst)


def _distance(problem: ProblemInstance, a: "int | None", b: int) -> float:
    """Flight distance from location a (or the staging point when None —
    UAVs not previously deployed launch from the area's origin corner)."""
    locations = problem.graph.locations
    target = locations[b]
    if a is None:
        return math.hypot(target.x, target.y) + target.z
    return locations[a].distance_to(target)


def plan_relocation(
    problem: ProblemInstance,
    old: Deployment,
    new: Deployment,
    policy: str = "makespan",
) -> RelocationPlan:
    """Pair the fleet's UAVs to the new deployment's positions.

    The new deployment dictates what each position must be able to serve:
    UAV ``k`` may take the position planned for UAV ``k'`` iff
    ``capacity_k`` covers the *load* the plan actually assigns there
    (``new.load_of(k')``) — then the plan's assignment stays feasible and
    the served-user count is preserved (re-optimising the assignment
    afterwards can only help).  This is weaker than requiring
    ``capacity_k >= capacity_{k'}`` and unlocks swaps between UAVs whose
    spare capacity is not needed.
    """
    if policy not in ("total", "makespan"):
        raise ValueError(f"policy must be 'total' or 'makespan', got {policy!r}")
    fleet = problem.fleet
    targets = sorted(new.placements.items())  # (planned_uav, location)
    if not targets:
        return RelocationPlan(moves={}, total_distance_m=0.0,
                              max_distance_m=0.0, policy=policy)

    loads = new.loads()
    candidates = sorted(
        set(old.placements) | set(k for k, _ in targets)
    )
    # Build cost matrix rows = target positions, cols = candidate UAVs.
    rows = []
    for planned_uav, loc in targets:
        need = loads.get(planned_uav, 0)
        row = []
        for k in candidates:
            if fleet[k].capacity < need:
                row.append(math.inf)
            else:
                row.append(_distance(problem, old.placements.get(k), loc))
        rows.append(row)

    if policy == "total":
        assignment, _ = min_cost_assignment(rows)
    else:
        assignment, _ = min_max_assignment(rows)

    moves: dict = {}
    for (planned_uav, loc), col in zip(targets, assignment):
        k = candidates[col]
        moves[k] = (old.placements.get(k), loc)
    distances = [
        _distance(problem, src, dst) for src, dst in moves.values()
    ]
    return RelocationPlan(
        moves=moves,
        total_distance_m=sum(distances),
        max_distance_m=max(distances, default=0.0),
        policy=policy,
    )


def naive_relocation(
    problem: ProblemInstance, old: Deployment, new: Deployment
) -> RelocationPlan:
    """The baseline a planner-less operator uses: each UAV keeps its
    planned role (UAV k flies to new.placements[k])."""
    moves = {
        k: (old.placements.get(k), loc)
        for k, loc in sorted(new.placements.items())
    }
    distances = [_distance(problem, src, dst) for src, dst in moves.values()]
    return RelocationPlan(
        moves=moves,
        total_distance_m=sum(distances),
        max_distance_m=max(distances, default=0.0),
        policy="naive",
    )
