"""Deployment metrics beyond the served-user objective.

The paper's objective is the number of served users; its closest prior
work ([37], the maxThroughput baseline) optimises the *sum of data rates*
instead.  This module computes both, plus load-balance statistics, so the
two objectives can be compared on any deployment (the tension between
them is exactly the paper's Section V discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment


def deployment_throughput_bps(
    problem: ProblemInstance, deployment: Deployment
) -> float:
    """Sum of achievable data rates of all served users (the [37]
    objective evaluated on this deployment's assignment)."""
    graph = problem.graph
    total = 0.0
    for user, k in deployment.assignment.items():
        loc = deployment.placements[k]
        total += graph.rate_bps(user, loc, problem.fleet[k])
    return total


def jain_fairness(values: list) -> float:
    """Jain's fairness index of a list of non-negative values; 1.0 means
    perfectly even, 1/n means all mass on one element.  Empty or all-zero
    input yields 1.0 (trivially fair)."""
    if not values:
        return 1.0
    if any(v < 0 for v in values):
        raise ValueError("fairness is defined for non-negative values")
    total = sum(values)
    if total == 0:
        return 1.0
    squares = sum(v * v for v in values)
    return total * total / (len(values) * squares)


@dataclass(frozen=True)
class DeploymentMetrics:
    """Summary statistics of one deployment."""

    served: int
    served_fraction: float
    throughput_bps: float
    mean_rate_bps: float
    capacity_utilisation: float   # served / total deployed capacity
    load_fairness: float          # Jain index over per-UAV utilisation
    num_deployed: int


def summarize(problem: ProblemInstance, deployment: Deployment) -> DeploymentMetrics:
    """Compute all metrics for a deployment."""
    served = deployment.served_count
    throughput = deployment_throughput_bps(problem, deployment)
    loads = deployment.loads()
    capacities = {k: problem.fleet[k].capacity for k in loads}
    total_capacity = sum(capacities.values())
    utilisations = [
        loads[k] / capacities[k] for k in loads if capacities[k] > 0
    ]
    return DeploymentMetrics(
        served=served,
        served_fraction=served / problem.num_users if problem.num_users else 0.0,
        throughput_bps=throughput,
        mean_rate_bps=throughput / served if served else 0.0,
        capacity_utilisation=served / total_capacity if total_capacity else 0.0,
        load_fairness=jain_fairness(utilisations),
        num_deployed=deployment.num_deployed,
    )
