"""Fleet-sizing helpers (extension): how many UAVs does a target need?

The paper fixes ``K`` and asks how many users it can serve; operators ask
the inverse — "how many UAVs until 90% of the zone is covered?"  These
helpers walk the coverage curve by deploying growing prefixes of a fleet
(largest assets first would be another policy; we keep the fleet's given
order so the answer matches what the operator owns).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.problem import ProblemInstance


@dataclass(frozen=True)
class CoveragePoint:
    num_uavs: int
    served: int
    fraction: float


@dataclass
class FleetSizing:
    """Result of a fleet-sizing walk."""

    target_fraction: float
    required_uavs: "int | None"    # None = target unreachable with this fleet
    curve: list = field(default_factory=list)

    @property
    def achieved(self) -> bool:
        return self.required_uavs is not None


def coverage_curve(
    problem: ProblemInstance,
    planner,
    ks: "list | None" = None,
) -> list:
    """Served users for growing fleet prefixes.

    ``planner`` maps a ProblemInstance to a Deployment.  ``ks`` defaults
    to ``1..K``.  Returns a list of :class:`CoveragePoint`.
    """
    if ks is None:
        ks = list(range(1, problem.num_uavs + 1))
    for k in ks:
        if not (1 <= k <= problem.num_uavs):
            raise ValueError(
                f"fleet prefix {k} outside [1, {problem.num_uavs}]"
            )
    points = []
    for k in ks:
        sub = ProblemInstance(graph=problem.graph, fleet=problem.fleet[:k])
        deployment = planner(sub)
        served = deployment.served_count
        points.append(
            CoveragePoint(
                num_uavs=k,
                served=served,
                fraction=served / problem.num_users if problem.num_users else 0.0,
            )
        )
    return points


def uavs_needed_for_target(
    problem: ProblemInstance,
    planner,
    target_fraction: float,
) -> FleetSizing:
    """Smallest fleet prefix reaching ``target_fraction`` of users served.

    Walks ``k = 1..K`` (stopping early at the first success); reports the
    whole measured curve for context.  ``required_uavs`` is ``None`` when
    even the full fleet misses the target.
    """
    if not (0.0 < target_fraction <= 1.0):
        raise ValueError(
            f"target fraction must be in (0, 1], got {target_fraction}"
        )
    sizing = FleetSizing(target_fraction=target_fraction, required_uavs=None)
    for k in range(1, problem.num_uavs + 1):
        point = coverage_curve(problem, planner, ks=[k])[0]
        sizing.curve.append(point)
        if point.fraction >= target_fraction:
            sizing.required_uavs = k
            break
    return sizing
