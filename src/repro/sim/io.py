"""JSON serialisation of scenarios and deployments.

Field teams (and CI) need to hand a computed deployment to another tool or
re-load a scenario bit-exactly; this module round-trips both through plain
JSON.  Scenario files store the *generating parameters* (config + seed),
not the sampled users, so they stay small and exact; deployment files
store the full placement and assignment.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment
from repro.workload.fat_tailed import FatTailedWorkload
from repro.workload.scenarios import ScenarioConfig, build_scenario
from repro.workload.uniform import UniformWorkload

FORMAT_VERSION = 1

_WORKLOADS = {
    "FatTailedWorkload": FatTailedWorkload,
    "UniformWorkload": UniformWorkload,
}


def scenario_to_dict(config: ScenarioConfig, seed: int) -> dict:
    """JSON-ready description of (config, seed)."""
    body = asdict(config)
    workload = body.pop("workload")
    return {
        "format": FORMAT_VERSION,
        "kind": "scenario",
        "seed": seed,
        "config": body,
        "workload": {
            "type": type(config.workload).__name__,
            "params": workload,
        },
    }


def scenario_from_dict(data: dict) -> "tuple[ScenarioConfig, int]":
    """Inverse of :func:`scenario_to_dict`."""
    _check(data, "scenario")
    workload_type = data["workload"]["type"]
    try:
        cls = _WORKLOADS[workload_type]
    except KeyError:
        known = ", ".join(sorted(_WORKLOADS))
        raise ValueError(
            f"unknown workload type {workload_type!r}; known: {known}"
        ) from None
    workload = cls(**data["workload"]["params"])
    config = ScenarioConfig(workload=workload, **data["config"])
    return config, int(data["seed"])


def save_scenario(path: "str | Path", config: ScenarioConfig, seed: int) -> None:
    Path(path).write_text(
        json.dumps(scenario_to_dict(config, seed), indent=2) + "\n"
    )


def load_scenario(path: "str | Path") -> ProblemInstance:
    """Load and *rebuild* the scenario (users and fleet re-sampled from the
    stored seed — deterministic, so bit-identical to the original)."""
    config, seed = scenario_from_dict(json.loads(Path(path).read_text()))
    return build_scenario(config, seed)


def deployment_to_dict(deployment: Deployment) -> dict:
    return {
        "format": FORMAT_VERSION,
        "kind": "deployment",
        "placements": {str(k): loc for k, loc in deployment.placements.items()},
        "assignment": {str(u): k for u, k in deployment.assignment.items()},
    }


def deployment_from_dict(data: dict) -> Deployment:
    _check(data, "deployment")
    return Deployment(
        placements={int(k): int(v) for k, v in data["placements"].items()},
        assignment={int(u): int(k) for u, k in data["assignment"].items()},
    )


def save_deployment(path: "str | Path", deployment: Deployment) -> None:
    Path(path).write_text(
        json.dumps(deployment_to_dict(deployment), indent=2) + "\n"
    )


def load_deployment(path: "str | Path") -> Deployment:
    return deployment_from_dict(json.loads(Path(path).read_text()))


def _check(data: dict, kind: str) -> None:
    if data.get("kind") != kind:
        raise ValueError(
            f"expected a {kind} file, got kind = {data.get('kind')!r}"
        )
    if data.get("format") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {data.get('format')!r} "
            f"(this build reads {FORMAT_VERSION})"
        )
