"""A minimal discrete-event engine: a time-ordered event queue.

Events are ``(time, payload)``; ties break by insertion order (FIFO), so
simultaneous events are deterministic.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable


class EventQueue:
    """Priority queue of timestamped events."""

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = 0
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time: float, payload: Hashable) -> None:
        """Schedule ``payload`` at absolute ``time`` (>= now)."""
        if time < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule into the past: {time} < now {self.now}"
            )
        heapq.heappush(self._heap, (time, self._counter, payload))
        self._counter += 1

    def schedule_in(self, delay: float, payload: Hashable) -> None:
        """Schedule ``payload`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        self.schedule(self.now + delay, payload)

    def pop(self) -> "tuple[float, object]":
        """Advance the clock to the next event and return (time, payload)."""
        if not self._heap:
            raise IndexError("event queue is empty")
        time, _, payload = heapq.heappop(self._heap)
        self.now = time
        return time, payload

    def peek_time(self) -> "float | None":
        return self._heap[0][0] if self._heap else None
