"""A minimal discrete-event engine: a time-ordered event queue.

Events are ``(time, payload)``; ties break by insertion order (FIFO), so
simultaneous events are deterministic.  :meth:`EventQueue.schedule` returns
a token that can later be passed to :meth:`EventQueue.cancel` — the mission
runtime uses this to withdraw a pending recovery retry when a newer fault
supersedes it.
"""

from __future__ import annotations

import heapq
from collections.abc import Hashable, Iterator


class EventQueue:
    """Priority queue of timestamped events.

    **Tie-break contract.**  Each :meth:`schedule` call stamps the event
    with a monotonically increasing sequence number, and the heap orders
    by ``(time, seq)``.  Events sharing a timestamp therefore pop in
    exactly the order they were scheduled (FIFO), independent of payload
    contents — the property every consumer (mission runtime, dynamics
    engine) relies on for deterministic replays.  The sequence number is
    also the cancellation token, so a token never collides with another
    event's and cancelling one of several same-timestamp events leaves
    the others' relative order intact.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._counter = 0
        self._cancelled: set = set()
        self.now = 0.0

    def __len__(self) -> int:
        return len(self._heap) - len(self._cancelled)

    def __bool__(self) -> bool:
        return len(self) > 0

    def schedule(self, time: float, payload: Hashable) -> int:
        """Schedule ``payload`` at absolute ``time`` (>= now).

        Returns a token identifying the event for :meth:`cancel`.
        """
        if time < self.now - 1e-12:
            raise ValueError(
                f"cannot schedule into the past: {time} < now {self.now}"
            )
        token = self._counter
        heapq.heappush(self._heap, (time, token, payload))
        self._counter += 1
        return token

    def schedule_in(self, delay: float, payload: Hashable) -> int:
        """Schedule ``payload`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, payload)

    def cancel(self, token: int) -> bool:
        """Withdraw a scheduled event.  Returns whether it was still pending
        (cancelling an already-popped or already-cancelled token is a no-op)."""
        if any(tok == token for _, tok, _ in self._heap) and (
            token not in self._cancelled
        ):
            self._cancelled.add(token)
            return True
        return False

    def pop(self) -> "tuple[float, object]":
        """Advance the clock to the next live event and return
        (time, payload).  Cancelled events are skipped silently."""
        while self._heap:
            time, token, payload = heapq.heappop(self._heap)
            if token in self._cancelled:
                self._cancelled.discard(token)
                continue
            self.now = time
            return time, payload
        raise IndexError("event queue is empty")

    def peek_time(self) -> "float | None":
        while self._heap and self._heap[0][1] in self._cancelled:
            _, token, _ = heapq.heappop(self._heap)
            self._cancelled.discard(token)
        return self._heap[0][0] if self._heap else None

    def drain(self, until: "float | None" = None) -> Iterator:
        """Iterate ``(time, payload)`` over live events, advancing the
        clock, until the queue empties or the next event lies strictly
        beyond ``until`` (which then stays scheduled).  The shared mission
        clock of the mission runtime and the dynamics engine: handlers may
        schedule or cancel further events mid-iteration and the generator
        picks them up, exactly like the explicit peek/pop loop it
        replaces."""
        while True:
            next_time = self.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                return
            yield self.pop()
