"""Discrete-event simulation of a deployed UAV network.

Users assigned to each UAV generate Poisson requests; each UAV station
serves them FIFO with exponential service times sized by its capacity
class (see :mod:`repro.simnet.station`).  The simulator measures per-
request sojourn times (queueing + service) per station and network-wide.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment
from repro.simnet.events import EventQueue
from repro.simnet.station import StationModel
from repro.util.rng import ensure_rng


@dataclass
class StationStats:
    """Measured behaviour of one UAV station."""

    uav_index: int
    assigned_users: int
    load_factor: float
    completed: int = 0
    mean_sojourn_s: float = 0.0
    p95_sojourn_s: float = 0.0
    max_queue: int = 0


@dataclass
class NetworkStats:
    """Network-wide summary."""

    duration_s: float
    stations: list = field(default_factory=list)
    completed: int = 0
    mean_sojourn_s: float = 0.0
    p95_sojourn_s: float = 0.0

    def station(self, uav_index: int) -> StationStats:
        for st in self.stations:
            if st.uav_index == uav_index:
                return st
        raise KeyError(f"no station for UAV {uav_index}")


_ARRIVAL = 0
_DEPARTURE = 1


def simulate_network(
    problem: ProblemInstance,
    deployment: Deployment,
    duration_s: float = 60.0,
    model: "StationModel | None" = None,
    warmup_s: float = 5.0,
    seed: "int | np.random.Generator | None" = None,
) -> NetworkStats:
    """Simulate the deployment's request traffic for ``duration_s``.

    Sojourn times from requests arriving before ``warmup_s`` are dropped
    (transient).  Stations with zero assigned users are reported with zero
    load and no samples.
    """
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    if not (0 <= warmup_s < duration_s):
        raise ValueError("need 0 <= warmup < duration")
    model = model if model is not None else StationModel()
    rng = ensure_rng(seed)

    loads = deployment.loads()
    stations = sorted(loads)
    lam = {k: loads[k] * model.request_rate_per_user_hz for k in stations}
    mu = {
        k: model.service_rate_hz(max(problem.fleet[k].capacity, 1))
        for k in stations
    }

    queue_depth = {k: 0 for k in stations}   # waiting + in service
    arrivals: dict = {k: [] for k in stations}  # FIFO arrival times
    sojourns: dict = {k: [] for k in stations}
    max_queue = {k: 0 for k in stations}

    events = EventQueue()
    for k in stations:
        if lam[k] > 0:
            events.schedule(float(rng.exponential(1.0 / lam[k])), (_ARRIVAL, k))

    while True:
        next_time = events.peek_time()
        if next_time is None or next_time > duration_s:
            break
        now, (kind, k) = events.pop()
        if kind == _ARRIVAL:
            arrivals[k].append(now)
            queue_depth[k] += 1
            max_queue[k] = max(max_queue[k], queue_depth[k])
            if queue_depth[k] == 1:  # server idle: start service now
                events.schedule_in(
                    float(rng.exponential(1.0 / mu[k])), (_DEPARTURE, k)
                )
            events.schedule_in(
                float(rng.exponential(1.0 / lam[k])), (_ARRIVAL, k)
            )
        else:
            arrived = arrivals[k].pop(0)
            queue_depth[k] -= 1
            if arrived >= warmup_s:
                sojourns[k].append(now - arrived)
            if queue_depth[k] > 0:
                events.schedule_in(
                    float(rng.exponential(1.0 / mu[k])), (_DEPARTURE, k)
                )

    station_stats = []
    all_sojourns: list = []
    for k in stations:
        samples = sojourns[k]
        all_sojourns.extend(samples)
        station_stats.append(
            StationStats(
                uav_index=k,
                assigned_users=loads[k],
                load_factor=model.load_factor(
                    max(problem.fleet[k].capacity, 1), loads[k]
                ),
                completed=len(samples),
                mean_sojourn_s=float(np.mean(samples)) if samples else 0.0,
                p95_sojourn_s=(
                    float(np.percentile(samples, 95)) if samples else 0.0
                ),
                max_queue=max_queue[k],
            )
        )
    return NetworkStats(
        duration_s=duration_s,
        stations=station_stats,
        completed=len(all_sojourns),
        mean_sojourn_s=float(np.mean(all_sojourns)) if all_sojourns else 0.0,
        p95_sojourn_s=(
            float(np.percentile(all_sojourns, 95)) if all_sojourns else 0.0
        ),
    )


def overload_assignment(
    problem: ProblemInstance, deployment: Deployment
) -> Deployment:
    """A capacity-*ignoring* counterfactual of ``deployment``: every user
    coverable by some deployed UAV is assigned to the nearest one,
    regardless of C_k.  Used to demonstrate why the capacity constraint
    exists (simulate both and compare latency)."""
    graph = problem.graph
    coverable = {
        k: set(graph.coverable_users(loc, problem.fleet[k]))
        for k, loc in deployment.placements.items()
    }
    assignment: dict = {}
    for user in range(graph.num_users):
        best_k = None
        best_dist = float("inf")
        for k, loc in deployment.placements.items():
            if user not in coverable[k]:
                continue
            dist = graph.users[user].position.distance_to(graph.locations[loc])
            if dist < best_dist:
                best_dist = dist
                best_k = k
        if best_k is not None:
            assignment[user] = best_k
    return Deployment(placements=dict(deployment.placements),
                      assignment=assignment)
