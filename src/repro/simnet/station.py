"""The onboard base-station processing model.

Each UAV's SkyCore-style server handles user requests (control-plane
transactions, data-plane flow setups) one at a time, FIFO, with
exponential service times.  Its service rate scales with the station's
capacity class: a station rated for ``C_k`` simultaneous users is
provisioned to sustain their aggregate request rate with a configurable
headroom, so load factor rho = (assigned users) / (C_k * headroom).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StationModel:
    """Sizing of the onboard server relative to the capacity rating.

    ``request_rate_per_user_hz`` — Poisson request rate of one user;
    ``headroom`` — provisioning margin: a station at exactly ``C_k``
    assigned users runs at rho = 1 / headroom.
    """

    request_rate_per_user_hz: float = 2.0
    headroom: float = 1.25

    def __post_init__(self) -> None:
        if self.request_rate_per_user_hz <= 0:
            raise ValueError("request rate must be positive")
        if self.headroom <= 0:
            raise ValueError("headroom must be positive")

    def service_rate_hz(self, capacity: int) -> float:
        """Exponential service rate of a station rated for ``capacity``."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        return capacity * self.request_rate_per_user_hz * self.headroom

    def load_factor(self, capacity: int, assigned_users: int) -> float:
        """Offered load rho = lambda / mu for ``assigned_users`` users."""
        lam = assigned_users * self.request_rate_per_user_hz
        return lam / self.service_rate_hz(capacity)

    def mm1_mean_sojourn_s(self, capacity: int, assigned_users: int) -> float:
        """Analytic M/M/1 mean sojourn time 1 / (mu - lambda); ``inf`` at
        or beyond saturation.  Used as the theory oracle in tests."""
        mu = self.service_rate_hz(capacity)
        lam = assigned_users * self.request_rate_per_user_hz
        if lam >= mu:
            return float("inf")
        return 1.0 / (mu - lam)
