"""Discrete-event simulation of the deployed UAV network (substrate).

The paper's capacity constraint rests on a systems claim (Section I,
citing SkyCore [27]): a UAV base station runs its control/data plane on a
resource-constrained onboard server, so "if too many users access the
UAV, each user will experience a very long service delay, e.g., a few
seconds, and the network throughput also significantly decreases".  This
package makes that claim executable: users assigned to a UAV generate
Poisson request traffic, each station serves requests FIFO with
exponential service times sized by its capacity class, and the simulator
measures per-request sojourn times.  Deployments that respect ``C_k``
stay in the stable-queue regime; over-assignment pushes stations past
saturation and latency diverges — exactly the behaviour the constraint
encodes.
"""

from repro.simnet.events import EventQueue
from repro.simnet.sim import NetworkStats, StationStats, simulate_network
from repro.simnet.station import StationModel

__all__ = [
    "EventQueue",
    "NetworkStats",
    "StationStats",
    "simulate_network",
    "StationModel",
]
