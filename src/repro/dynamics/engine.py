"""The unified discrete-event mission loop (ROADMAP item 4).

One :class:`~repro.simnet.events.EventQueue` carries every time-dimension
concern that used to live in five silos — user churn and mobility
(:mod:`repro.sim.mobility`), battery rotation (:mod:`repro.sim.rotation`),
relocation transit (:mod:`repro.sim.relocation`), fault injection
(:mod:`repro.ops.faults`) — and a pluggable re-solve policy
(:mod:`repro.dynamics.policy`) decides when to re-plan.

Epoch re-solves are **warm-started**: the previous epoch's
:class:`~repro.core.context.SolverContext` is refreshed through
:meth:`~repro.core.context.SolverContext.updated` — only the
user-dependent coverage bitsets are recomputed, the all-pairs hop matrix
and the working graph's Steiner memo carry over — and injected into the
standard :class:`~repro.scenario.pipeline.SolvePipeline`.  A cold
re-solve (``warm=False``) rebuilds the :class:`CoverageGraph` and context
from scratch.  Both paths produce bit-identical deployments (the oracle
suite pins this across seeds); warm is just faster.

Consecutive placements become minimal-motion transitions via
:func:`~repro.sim.relocation.plan_relocation` (bottleneck pairing), with
transit modelled as a delayed adoption event when the spec carries a
relocation speed.

Observability: the engine sets ``dynamic.*`` gauges/counters, records
re-solve latency histograms, and calls :func:`repro.obs.record_mark`
after every state change so ``--timeline`` / ``--archive`` runs carry the
full coverage-over-time curve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.core.problem import ProblemInstance
from repro.dynamics.policy import EPOCH, FAULT, make_policy
from repro.dynamics.sources import ChurnModel, Hotspots, rotation_swaps
from repro.dynamics.spec import DynamicSpec
from repro.dynamics.world import WorldState
from repro.network.coverage import CoverageGraph
from repro.network.deployment import Deployment
from repro.ops.faults import BATTERY, CRASH, FaultSchedule
from repro.scenario.pipeline import SolvePipeline
from repro.scenario.registry import DEFAULT_REGISTRY
from repro.sim.mobility import GaussianWalk
from repro.sim.relocation import plan_relocation
from repro.simnet.events import EventQueue
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class EpochSolve:
    """One re-solve the mission performed."""

    t_s: float
    trigger: str                 # "initial" / "epoch" / "fault"
    warm: bool
    latency_s: float
    served: int
    num_placed: int


@dataclass
class DynamicResult:
    """Everything one dynamic mission produced."""

    name: str
    policy: str
    warm: bool
    duration_s: float
    timeline: list = field(default_factory=list)  # (t_s, served, active)
    epochs: list = field(default_factory=list)    # EpochSolve records
    arrivals: int = 0
    departures: int = 0
    faults: int = 0
    rotations: int = 0
    final_placements: dict = field(default_factory=dict)
    time_to_serve_s: list = field(default_factory=list)
    unserved_users: int = 0
    wall_s: float = 0.0

    @property
    def resolve_latencies_s(self) -> list:
        """Re-solve latencies *excluding* the initial plan (the warm-vs-
        cold comparison is about epoch re-solves)."""
        return [e.latency_s for e in self.epochs if e.trigger != "initial"]

    @property
    def median_resolve_latency_s(self) -> "float | None":
        lat = self.resolve_latencies_s
        return float(np.median(lat)) if lat else None

    @property
    def coverage_series(self) -> list:
        return [
            served / active if active else 1.0
            for _, served, active in self.timeline
        ]

    @property
    def mean_coverage(self) -> float:
        series = self.coverage_series
        return float(np.mean(series)) if series else 0.0

    @property
    def min_coverage(self) -> float:
        series = self.coverage_series
        return float(min(series)) if series else 0.0

    @property
    def final_coverage(self) -> float:
        series = self.coverage_series
        return float(series[-1]) if series else 0.0

    @property
    def final_served(self) -> int:
        return self.timeline[-1][1] if self.timeline else 0

    @property
    def p95_time_to_serve_s(self) -> "float | None":
        if not self.time_to_serve_s:
            return None
        return float(np.percentile(np.asarray(self.time_to_serve_s), 95))

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "policy": self.policy,
            "warm": self.warm,
            "duration_s": self.duration_s,
            "resolves": len(self.epochs),
            "median_resolve_latency_s": self.median_resolve_latency_s,
            "mean_coverage": round(self.mean_coverage, 4),
            "min_coverage": round(self.min_coverage, 4),
            "final_coverage": round(self.final_coverage, 4),
            "final_served": self.final_served,
            "arrivals": self.arrivals,
            "departures": self.departures,
            "faults": self.faults,
            "rotations": self.rotations,
            "p95_time_to_serve_s": self.p95_time_to_serve_s,
            "wall_s": round(self.wall_s, 4),
        }


def _solve_params(spec: DynamicSpec, entry) -> dict:
    """Engine options for epoch solves, mirroring ``SolvePipeline.run``."""
    params = dict(spec.algorithm_params)
    if entry.supports_workers and spec.workers != 1:
        params["workers"] = spec.workers
    if entry.supports_bound_prune and spec.bound_prune:
        params["bound_prune"] = True
    return params


class _Engine:
    """One mission run's mutable machinery (see :func:`run_dynamic`)."""

    def __init__(self, spec: DynamicSpec, warm: "bool | None"):
        self.spec = spec
        self.entry = DEFAULT_REGISTRY.get(spec.algorithm)
        wanted = spec.warm_start if warm is None else warm
        self.warm = wanted and self.entry.supports_warm_start \
            and self.entry.supports_context
        self.params = _solve_params(spec, self.entry)
        self.pipeline = SolvePipeline(prebuild_context=True)
        self.policy = make_policy(spec.resolve_policy, spec.drift_threshold)
        self.world = WorldState.from_problem(spec.build())
        self.queue = EventQueue()
        self.churn_rng = ensure_rng(spec.derived_seed("churn"))
        self.mobility_rng = ensure_rng(spec.derived_seed("mobility"))
        self.walk = GaussianWalk(sigma_m=spec.mobility_sigma_m)
        self.bounds = self.world.bounds()
        self.hotspots = Hotspots.draw(
            spec.num_hotspots, self.bounds, spec.hotspot_drift_mps,
            self.churn_rng,
        )
        self.churn = ChurnModel(
            arrival_rate_per_s=spec.arrival_rate_per_s,
            mean_dwell_s=spec.mean_dwell_s,
            sigma_m=spec.hotspot_sigma_m,
            rng=self.churn_rng,
        )
        self.context = None           # last epoch's SolverContext
        self.coverage_at_solve = 0.0
        self.rotation_tokens: list = []
        self.pending_relocate: "int | None" = None
        self.result = DynamicResult(
            name=spec.name, policy=self.policy.name, warm=self.warm,
            duration_s=spec.duration_s,
        )

    # -- solving -------------------------------------------------------------

    def resolve(self, trigger: str, now: float) -> None:
        """Re-plan with the flyable fleet; warm or cold per the mode."""
        world = self.world
        available = world.available_uavs()
        if not available or not world.users:
            return
        fleet_sub = [world.fleet[k] for k in available]
        start = time.perf_counter()
        with obs.span("dynamic.resolve", trigger=trigger, warm=self.warm):
            if self.warm and self.context is not None:
                problem = ProblemInstance(graph=world.graph, fleet=fleet_sub)
                context = self.context.updated(problem)
                state = self.pipeline.solve(
                    problem, self.spec.algorithm, self.params,
                    context=context,
                )
            else:
                # Cold: a re-solve that rebuilds everything from scratch,
                # hop matrix included (the historical per-epoch cost).
                graph = CoverageGraph(
                    users=list(world.users),
                    locations=world.graph.locations,
                    uav_range_m=world.graph.uav_range_m,
                    channel=world.graph.channel,
                    bandwidth_hz=world.graph.bandwidth_hz,
                )
                problem = ProblemInstance(graph=graph, fleet=fleet_sub)
                state = self.pipeline.solve(
                    problem, self.spec.algorithm, self.params
                )
        latency = time.perf_counter() - start
        self.context = state.context
        deployment = state.deployment
        placements = {
            available[i]: loc for i, loc in deployment.placements.items()
        }
        assignment = {
            u: available[i] for u, i in deployment.assignment.items()
        }
        self.result.epochs.append(EpochSolve(
            t_s=now, trigger=trigger, warm=self.warm
            and trigger != "initial",
            latency_s=latency, served=deployment.served_count,
            num_placed=len(placements),
        ))
        obs.counter_inc("dynamic.resolves")
        obs.observe("dynamic.resolve_seconds", latency)
        self._transition(placements, assignment, now)

    def _transition(
        self, placements: dict, assignment: dict, now: float
    ) -> None:
        """Turn the new plan into a minimal-motion transition."""
        if self.pending_relocate is not None:
            self.queue.cancel(self.pending_relocate)
            self.pending_relocate = None
        old_active = self.world.active_placements()
        speed = self.spec.relocation_speed_mps
        if not old_active or speed is None:
            self._adopt(placements, now)
            return
        full = ProblemInstance(
            graph=self.world.graph, fleet=self.world.fleet
        )
        plan = plan_relocation(
            full,
            Deployment(placements=old_active),
            Deployment(placements=placements, assignment=assignment),
            policy="makespan",
        )
        moved = {k: dst for k, (_, dst) in plan.moves.items()}
        transit_s = plan.max_distance_m / speed
        if transit_s <= 0:
            self._adopt(moved, now)
            return
        self.pending_relocate = self.queue.schedule(
            now + transit_s, ("relocate", tuple(sorted(moved.items())))
        )

    def _adopt(self, placements: dict, now: float) -> None:
        self.world.placements = dict(placements)
        for token in self.rotation_tokens:
            self.queue.cancel(token)
        self.rotation_tokens = []
        if self.spec.recharge_s is not None:
            full = ProblemInstance(
                graph=self.world.graph, fleet=self.world.fleet
            )
            swaps = rotation_swaps(
                full, self.world.active_placements(), now,
                self.spec.duration_s, self.spec.recharge_s,
            )
            self.rotation_tokens = [
                self.queue.schedule(t, ("rotation", (loc, old, new)))
                for t, loc, old, new in swaps
            ]
        self._refresh_baseline = True

    # -- event handlers ------------------------------------------------------

    def handle(self, now: float, payload: tuple) -> None:
        kind, arg = payload
        if kind == "arrival":
            x, y = self.churn.draw_position(self.hotspots)
            uid = self.world.add_user(x, y, now)
            self.queue.schedule_in(
                self.churn.draw_dwell_s(), ("departure", uid)
            )
            self.queue.schedule_in(
                self.churn.next_arrival_gap_s(), ("arrival", None)
            )
            self.result.arrivals += 1
            obs.counter_inc("dynamic.arrivals")
        elif kind == "departure":
            if self.world.remove_user(arg):
                self.result.departures += 1
                obs.counter_inc("dynamic.departures")
        elif kind == "mobility":
            self.hotspots.step(self.spec.mobility_step_s)
            if self.spec.mobility_sigma_m > 0 and self.world.users:
                xy = self.walk.step(
                    self.world.user_xy(), self.bounds, self.mobility_rng
                )
                self.world.move_users(xy)
            self.queue.schedule_in(
                self.spec.mobility_step_s, ("mobility", None)
            )
        elif kind == "epoch":
            self._maybe_resolve(EPOCH, now)
            self.queue.schedule_in(self.spec.epoch_s, ("epoch", None))
        elif kind == "fault":
            self.result.faults += 1
            obs.counter_inc("dynamic.faults")
            if arg.kind in (CRASH, BATTERY):
                self.world.down.add(arg.uav_index)
                if arg.kind == BATTERY and arg.duration_s is not None:
                    self.queue.schedule(
                        now + arg.duration_s, ("uav_restored", arg.uav_index)
                    )
            else:
                a, b = arg.link
                self.world.degraded_links.add((min(a, b), max(a, b)))
            self._maybe_resolve(FAULT, now)
        elif kind == "link_restored":
            a, b = arg
            self.world.degraded_links.discard((min(a, b), max(a, b)))
            self._maybe_resolve(FAULT, now)
        elif kind == "uav_restored":
            self.world.down.discard(arg)
            self._maybe_resolve(FAULT, now)
        elif kind == "rotation":
            loc, old, new = arg
            world = self.world
            if world.placements.get(old) == loc and new not in world.down:
                del world.placements[old]
                world.placements[new] = loc
                self.result.rotations += 1
                obs.counter_inc("dynamic.rotations")
        elif kind == "relocate":
            self.pending_relocate = None
            self._adopt(dict(arg), now)
        else:
            raise AssertionError(f"unhandled dynamics event {kind!r}")

    def _maybe_resolve(self, trigger: str, now: float) -> None:
        served = self.world.evaluate(now).served_count
        coverage = self.world.coverage_fraction(served)
        if self.policy.should_resolve(
            trigger, coverage, self.coverage_at_solve
        ):
            self.resolve(trigger, now)

    # -- the loop ------------------------------------------------------------

    def run(self) -> DynamicResult:
        spec, world, queue = self.spec, self.world, self.queue
        wall_start = time.perf_counter()
        self._refresh_baseline = False

        with obs.span("dynamic.plan"):
            self.resolve("initial", 0.0)
        self._observe(0.0)

        if self.churn.active:
            queue.schedule_in(
                self.churn.next_arrival_gap_s(), ("arrival", None)
            )
            for uid in list(world.user_ids):
                queue.schedule_in(
                    self.churn.draw_dwell_s(), ("departure", uid)
                )
        if spec.mobility_sigma_m > 0 or (
            spec.hotspot_drift_mps > 0 and self.churn.active
        ):
            queue.schedule_in(spec.mobility_step_s, ("mobility", None))
        queue.schedule_in(spec.epoch_s, ("epoch", None))
        if spec.num_crashes or spec.num_links:
            FaultSchedule.random(
                num_uavs=len(world.fleet),
                num_crashes=spec.num_crashes,
                num_links=spec.num_links,
                window_s=(spec.duration_s * 0.1, spec.duration_s * 0.7),
                seed=spec.derived_seed("faults"),
            ).inject(queue)

        for now, payload in queue.drain(until=spec.duration_s):
            self.handle(now, payload)
            self._observe(now)

        self._observe(spec.duration_s)
        result = self.result
        result.final_placements = dict(world.active_placements())
        result.time_to_serve_s = [
            world.first_served_s[uid] - world.arrival_s[uid]
            for uid in world.first_served_s
        ]
        result.unserved_users = len(
            set(world.arrival_s) - set(world.first_served_s)
        )
        result.wall_s = time.perf_counter() - wall_start
        return result

    def _observe(self, now: float) -> None:
        """Evaluate, record the timeline point, update gauges."""
        served = self.world.evaluate(now).served_count
        self.result.timeline.append((now, served, self.world.num_active))
        if self._refresh_baseline:
            self.coverage_at_solve = self.world.coverage_fraction(served)
            self._refresh_baseline = False
        obs.gauge_set("dynamic.clock_s", now)
        obs.gauge_set("dynamic.served", served)
        obs.gauge_set("dynamic.active_users", self.world.num_active)
        obs.record_mark()


@obs.traced("dynamic.run")
def run_dynamic(
    spec: DynamicSpec, warm: "bool | None" = None
) -> DynamicResult:
    """Run one long-horizon dynamic mission end to end.

    ``warm`` overrides the spec's ``warm_start`` (the oracle suite and the
    bench runner force both modes over identical event streams).  Event
    times and deployments are deterministic in the spec seed; only wall-
    clock latencies differ between warm and cold.
    """
    return _Engine(spec, warm).run()
