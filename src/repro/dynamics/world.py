"""The single mutable world every dynamics event source acts on.

:class:`WorldState` owns the live population (users arrive, depart and
move), the fleet's current placements and health, and one persistent
working :class:`~repro.network.coverage.CoverageGraph` kept in sync via
the incremental user-update API (:meth:`~CoverageGraph.replace_users`) —
location-derived structure (hop matrix, Steiner memo) survives every
churn event, which is what makes warm epoch re-solves cheap.

Users carry stable ids across their lifetime so the engine can attribute
"time to serve" per arrival: :meth:`evaluate` computes the exact
Section II-D assignment for the current placements and stamps the first
time each user id was actually served.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.assignment import optimal_assignment
from repro.core.problem import ProblemInstance
from repro.geometry.point import Point3D
from repro.network.coverage import CoverageGraph
from repro.network.deployment import Deployment
from repro.network.users import DEFAULT_MIN_RATE_BPS, User


@dataclass
class WorldState:
    """Mutable mission state shared by every event handler."""

    base_problem: ProblemInstance
    graph: CoverageGraph                  # persistent working graph
    users: list = field(default_factory=list)
    user_ids: list = field(default_factory=list)
    placements: dict = field(default_factory=dict)
    down: set = field(default_factory=set)        # grounded UAV indices
    degraded_links: set = field(default_factory=set)
    arrival_s: dict = field(default_factory=dict)     # uid -> arrival time
    first_served_s: dict = field(default_factory=dict)  # uid -> first served
    _next_uid: int = 0

    @classmethod
    def from_problem(cls, problem: ProblemInstance) -> "WorldState":
        """Start a mission world from a built (static) scenario.

        The working graph is a :meth:`~CoverageGraph.with_users` clone, so
        the caller's problem keeps its pristine graph while the world
        mutates its own.
        """
        graph = problem.graph.with_users(problem.graph.users)
        world = cls(base_problem=problem, graph=graph)
        world.users = list(graph.users)
        world.user_ids = list(range(len(world.users)))
        world._next_uid = len(world.users)
        world.arrival_s = {uid: 0.0 for uid in world.user_ids}
        return world

    # -- sizes / views -------------------------------------------------------

    @property
    def fleet(self) -> list:
        return self.base_problem.fleet

    @property
    def num_active(self) -> int:
        return len(self.users)

    def available_uavs(self) -> list:
        return sorted(set(range(len(self.fleet))) - self.down)

    def active_placements(self) -> dict:
        """Current placements minus grounded UAVs."""
        return {
            k: loc for k, loc in self.placements.items()
            if k not in self.down
        }

    def bounds(self) -> tuple:
        """(lo_x, hi_x, lo_y, hi_y) box spanning users and locations."""
        xs = [loc.x for loc in self.graph.locations]
        ys = [loc.y for loc in self.graph.locations]
        xs += [u.position.x for u in self.users]
        ys += [u.position.y for u in self.users]
        return (
            min(xs, default=0.0), max(xs, default=0.0),
            min(ys, default=0.0), max(ys, default=0.0),
        )

    def problem_now(self) -> ProblemInstance:
        """The current instantaneous problem over the working graph."""
        return ProblemInstance(graph=self.graph, fleet=self.fleet)

    # -- population updates (keep the working graph in sync) -----------------

    def add_user(
        self, x: float, y: float, now: float,
        min_rate_bps: float = DEFAULT_MIN_RATE_BPS,
    ) -> int:
        uid = self._next_uid
        self._next_uid += 1
        self.users.append(User(
            position=Point3D(float(x), float(y), 0.0),
            min_rate_bps=min_rate_bps,
        ))
        self.user_ids.append(uid)
        self.arrival_s[uid] = now
        self.graph.replace_users(self.users)
        return uid

    def remove_user(self, uid: int) -> bool:
        """Depart a user by id; False when already gone."""
        try:
            idx = self.user_ids.index(uid)
        except ValueError:
            return False
        self.users.pop(idx)
        self.user_ids.pop(idx)
        self.graph.replace_users(self.users)
        return True

    def move_users(self, xy: np.ndarray) -> None:
        """Relocate the active population (aligned with ``self.users``)."""
        self.graph.move_users(xy)
        self.users = list(self.graph.users)

    def user_xy(self) -> np.ndarray:
        return np.array(
            [[u.position.x, u.position.y] for u in self.users], dtype=float
        ).reshape(len(self.users), 2)

    # -- serving evaluation --------------------------------------------------

    def evaluate(self, now: float) -> Deployment:
        """Exact max-assignment for the current placements; stamps each
        newly served user id's first-served time."""
        deployment = optimal_assignment(
            self.graph, self.fleet, self.active_placements()
        )
        for user_index in deployment.assignment:
            uid = self.user_ids[user_index]
            self.first_served_s.setdefault(uid, now)
        return deployment

    def coverage_fraction(self, served: int) -> float:
        return served / self.num_active if self.num_active else 1.0
