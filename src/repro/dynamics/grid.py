"""Multi-seed batch driver for dynamic missions.

Long-horizon results are noisy in any single seed's event stream, so the
headline numbers come from a seed grid: the same :class:`DynamicSpec`
re-rooted at each seed, run end to end, and aggregated into one table
(mean/min/final coverage, p95 time-to-serve, re-solve count and latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.dynamics.engine import DynamicResult, run_dynamic
from repro.dynamics.spec import DynamicSpec
from repro.util.tables import format_table


@dataclass
class GridResult:
    """Per-seed mission results plus aggregate statistics."""

    spec: DynamicSpec
    seeds: list
    results: list = field(default_factory=list)  # DynamicResult per seed

    def aggregate(self) -> dict:
        mean_cov = [r.mean_coverage for r in self.results]
        min_cov = [r.min_coverage for r in self.results]
        final_cov = [r.final_coverage for r in self.results]
        p95 = [
            r.p95_time_to_serve_s for r in self.results
            if r.p95_time_to_serve_s is not None
        ]
        latencies = [
            lat for r in self.results for lat in r.resolve_latencies_s
        ]
        return {
            "seeds": len(self.seeds),
            "mean_coverage": float(np.mean(mean_cov)) if mean_cov else 0.0,
            "min_coverage": float(min(min_cov)) if min_cov else 0.0,
            "final_coverage": float(np.mean(final_cov)) if final_cov else 0.0,
            "p95_time_to_serve_s": float(np.mean(p95)) if p95 else None,
            "resolves": int(sum(len(r.epochs) for r in self.results)),
            "median_resolve_latency_s":
                float(np.median(latencies)) if latencies else None,
        }

    def to_dict(self) -> dict:
        return {
            "name": self.spec.name,
            "policy": self.spec.resolve_policy,
            "warm": self.results[0].warm if self.results else None,
            "per_seed": [
                {"seed": seed, **result.to_dict()}
                for seed, result in zip(self.seeds, self.results)
            ],
            "aggregate": self.aggregate(),
        }

    def to_text(self) -> str:
        def fmt(value: "float | None", scale: float = 1.0) -> str:
            return "-" if value is None else f"{value * scale:.3f}"

        rows = []
        for seed, result in zip(self.seeds, self.results):
            rows.append([
                str(seed),
                f"{result.mean_coverage:.3f}",
                f"{result.min_coverage:.3f}",
                f"{result.final_coverage:.3f}",
                fmt(result.p95_time_to_serve_s),
                str(len(result.epochs)),
                fmt(result.median_resolve_latency_s, 1e3),
            ])
        agg = self.aggregate()
        rows.append([
            "all",
            f"{agg['mean_coverage']:.3f}",
            f"{agg['min_coverage']:.3f}",
            f"{agg['final_coverage']:.3f}",
            fmt(agg["p95_time_to_serve_s"]),
            str(agg["resolves"]),
            fmt(agg["median_resolve_latency_s"], 1e3),
        ])
        title = (
            f"dynamic mission grid: {self.spec.name} "
            f"({self.spec.resolve_policy} policy, "
            f"{'warm' if self.results and self.results[0].warm else 'cold'})"
        )
        return format_table(
            ["seed", "mean cov", "min cov", "final cov", "p95 tts (s)",
             "resolves", "med latency (ms)"],
            rows, title=title,
        )


def run_seed_grid(
    spec: DynamicSpec,
    seeds: "list | None" = None,
    num_seeds: int = 3,
    warm: "bool | None" = None,
) -> GridResult:
    """Run ``spec`` across a seed grid (``seeds`` wins over ``num_seeds``,
    which enumerates ``spec.seed, spec.seed + 1, ...``)."""
    if seeds is None:
        seeds = [spec.seed + i for i in range(num_seeds)]
    grid = GridResult(spec=spec, seeds=list(seeds))
    for seed in grid.seeds:
        result = run_dynamic(replace(spec, seed=seed), warm=warm)
        grid.results.append(result)
    return grid
