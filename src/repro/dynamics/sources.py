"""Event sources feeding the dynamics mission loop.

Each source turns one slice of a :class:`~repro.dynamics.spec.DynamicSpec`
into payloads for the shared :class:`~repro.simnet.events.EventQueue`:

* :class:`Hotspots` + :class:`ChurnModel` — Poisson user arrivals around
  drifting demand hotspots, exponential dwell times (the ``"churn"``
  seed stream);
* :class:`Hotspots` drift and per-user Gaussian walks on the mobility
  tick (the ``"mobility"`` stream, reusing
  :class:`repro.sim.mobility.GaussianWalk`);
* :func:`rotation_swaps` — battery-driven hand-offs, derived from a
  :func:`repro.sim.rotation.plan_rotation` schedule of the *current*
  deployment;
* fault injection rides on :meth:`repro.ops.faults.FaultSchedule.inject`
  unchanged (the ``"faults"`` stream).

Everything here is plain data + seeded draws: the engine owns the clock
and the handlers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment
from repro.sim.rotation import plan_rotation


@dataclass
class Hotspots:
    """Drifting demand centres users arrive around."""

    centers: np.ndarray               # (h, 2)
    velocities: np.ndarray            # (h, 2) unit directions
    speed_mps: float
    bounds: tuple                     # (lo_x, hi_x, lo_y, hi_y)

    @classmethod
    def draw(
        cls, count: int, bounds: tuple, speed_mps: float,
        rng: np.random.Generator,
    ) -> "Hotspots":
        lo_x, hi_x, lo_y, hi_y = bounds
        centers = np.column_stack([
            rng.uniform(lo_x, hi_x, size=count),
            rng.uniform(lo_y, hi_y, size=count),
        ])
        angles = rng.uniform(0.0, 2.0 * np.pi, size=count)
        velocities = np.column_stack([np.cos(angles), np.sin(angles)])
        return cls(
            centers=centers, velocities=velocities,
            speed_mps=speed_mps, bounds=bounds,
        )

    def step(self, dt_s: float) -> None:
        """Drift every centre, reflecting at the area boundary."""
        if self.speed_mps <= 0:
            return
        lo_x, hi_x, lo_y, hi_y = self.bounds
        self.centers = self.centers + self.velocities * self.speed_mps * dt_s
        for axis, (lo, hi) in enumerate(((lo_x, hi_x), (lo_y, hi_y))):
            below = self.centers[:, axis] < lo
            above = self.centers[:, axis] > hi
            self.centers[below, axis] = 2 * lo - self.centers[below, axis]
            self.centers[above, axis] = 2 * hi - self.centers[above, axis]
            self.velocities[below | above, axis] *= -1.0
            self.centers[:, axis] = np.clip(self.centers[:, axis], lo, hi)


@dataclass
class ChurnModel:
    """Poisson arrivals around hotspots, exponential dwell (departures)."""

    arrival_rate_per_s: float
    mean_dwell_s: float
    sigma_m: float
    rng: np.random.Generator = field(repr=False, default=None)

    @property
    def active(self) -> bool:
        return self.arrival_rate_per_s > 0

    def next_arrival_gap_s(self) -> float:
        return float(self.rng.exponential(1.0 / self.arrival_rate_per_s))

    def draw_dwell_s(self) -> float:
        return float(self.rng.exponential(self.mean_dwell_s))

    def draw_position(self, hotspots: Hotspots) -> tuple:
        """A new user's ground position: Gaussian around a uniformly
        chosen hotspot, clipped to the area."""
        h = int(self.rng.integers(len(hotspots.centers)))
        cx, cy = hotspots.centers[h]
        x = cx + float(self.rng.normal(0.0, self.sigma_m))
        y = cy + float(self.rng.normal(0.0, self.sigma_m))
        lo_x, hi_x, lo_y, hi_y = hotspots.bounds
        return (
            float(np.clip(x, lo_x, hi_x)), float(np.clip(y, lo_y, hi_y))
        )


def rotation_swaps(
    problem: ProblemInstance,
    placements: dict,
    now_s: float,
    horizon_s: float,
    recharge_s: float,
) -> list:
    """Battery hand-offs implied by the current deployment.

    Plans a rotation over the remaining mission (``horizon_s - now_s``)
    and returns absolute-time swap events ``(t_s, location, old_uav,
    new_uav)``, one per hand-off.  An infeasible rotation simply yields
    the swaps up to the first gap — the engine surfaces the gap through
    coverage itself when the battery model grounds the UAV.
    """
    remaining = horizon_s - now_s
    if remaining <= 0 or not placements:
        return []
    deployment = Deployment(placements=dict(placements))
    schedule = plan_rotation(
        problem, deployment, mission_s=remaining, recharge_s=recharge_s
    )
    swaps: list = []
    for loc in {s.position for s in schedule.sorties}:
        sorties = schedule.sorties_at(loc)
        for prev, nxt in zip(sorties, sorties[1:]):
            swaps.append((
                now_s + nxt.start_s, loc, prev.uav_index, nxt.uav_index
            ))
    swaps.sort()
    return swaps
