"""repro.dynamics — the unified long-horizon dynamic mission engine.

This layer sits **above** scenario, sim, simnet and ops (it may import
all of them; none of them may import it — see ARCHITECTURE.md).  It
replaces the five siloed time loops with one discrete-event mission:

* :class:`DynamicSpec` — a :class:`~repro.scenario.spec.ScenarioSpec`
  extended with the time dimension (churn, mobility, rotation, faults,
  epochs) plus named presets;
* :class:`WorldState` — the single mutable world every event acts on,
  kept in sync with a persistent working coverage graph;
* :func:`run_dynamic` — the mission loop over one shared
  :class:`~repro.simnet.events.EventQueue`, with warm-started epoch
  re-solves (result-identical to cold, pinned by the oracle suite);
* :func:`run_seed_grid` — multi-seed batches with an aggregate table.
"""

from repro.dynamics.engine import DynamicResult, EpochSolve, run_dynamic
from repro.dynamics.grid import GridResult, run_seed_grid
from repro.dynamics.policy import (
    DriftPolicy,
    EventPolicy,
    PeriodicPolicy,
    make_policy,
)
from repro.dynamics.spec import (
    DYNAMIC_PRESETS,
    DynamicSpec,
    dynamic_preset_names,
    get_dynamic_preset,
)
from repro.dynamics.world import WorldState

__all__ = [
    "DYNAMIC_PRESETS",
    "DriftPolicy",
    "DynamicResult",
    "DynamicSpec",
    "EpochSolve",
    "EventPolicy",
    "GridResult",
    "PeriodicPolicy",
    "WorldState",
    "dynamic_preset_names",
    "get_dynamic_preset",
    "make_policy",
    "run_dynamic",
    "run_seed_grid",
]
