"""Declarative long-horizon mission descriptions: :class:`DynamicSpec`.

A :class:`DynamicSpec` extends :class:`~repro.scenario.spec.ScenarioSpec`
with the time dimension: mission duration, epoch cadence, the re-solve
policy, churn (streaming arrivals/departures around drifting hotspots),
user mobility, battery rotation and fault injection.  The static half —
scale, fleet, channel, algorithm, seed — is inherited unchanged, so a
dynamic spec builds the exact same initial scenario a static spec with
the same knobs would, and all auxiliary event streams derive from the one
root seed via :meth:`~repro.scenario.spec.ScenarioSpec.derived_seed`
(``"churn"``, ``"mobility"``, ``"faults"``), never perturbing the
scenario draw.

JSON round-trip mirrors the parent but under its own document kind
(``dynamic-spec``), so ``repro dynamic`` can load either a preset name or
a spec file, and a dynamic spec file can never be mistaken for a static
one.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

from repro.scenario.spec import ScenarioSpec, _require

DYNAMIC_SPEC_FORMAT = 1
DYNAMIC_SPEC_KIND = "dynamic-spec"

#: Re-solve policies the engine knows (see :mod:`repro.dynamics.policy`).
RESOLVE_POLICIES = ("periodic", "drift", "event")


def _check_positive(value: object, name: str) -> None:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        and value > 0,
        f"{name} must be a positive number, got {value!r}",
    )


def _check_non_negative(value: object, name: str) -> None:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool)
        and value >= 0,
        f"{name} must be a number >= 0, got {value!r}",
    )


@dataclass(frozen=True)
class DynamicSpec(ScenarioSpec):
    """One declarative long-horizon mission.

    Rates default to a gentle churn profile; zeroing a knob disables its
    event source entirely (no events scheduled), so a ``DynamicSpec`` with
    everything zeroed degenerates to the static scenario it inherits.
    """

    # -- horizon / epochs ----------------------------------------------------
    duration_s: float = 600.0
    epoch_s: float = 120.0
    #: "periodic" re-solves every epoch; "drift" re-solves at an epoch tick
    #: (or fault) only once coverage decayed by ``drift_threshold``;
    #: "event" re-solves only on structural events (faults, restores).
    resolve_policy: str = "periodic"
    drift_threshold: float = 0.15
    # -- churn (seeded via derived_seed("churn")) ----------------------------
    arrival_rate_per_s: float = 0.02
    mean_dwell_s: float = 300.0
    num_hotspots: int = 3
    hotspot_sigma_m: float = 150.0
    # -- mobility (seeded via derived_seed("mobility")) ----------------------
    hotspot_drift_mps: float = 2.0
    mobility_sigma_m: float = 0.0
    mobility_step_s: float = 30.0
    # -- rotation / faults / relocation --------------------------------------
    #: Battery-swap turnaround; ``None`` disables rotation sorties.
    recharge_s: "float | None" = None
    num_crashes: int = 0
    num_links: int = 0
    #: Fleet cruise speed for relocation transit; ``None`` adopts new
    #: placements instantaneously (the paper's snapshot idealisation).
    relocation_speed_mps: "float | None" = None
    # -- engine --------------------------------------------------------------
    #: Warm-start epoch re-solves from the previous epoch's context
    #: (result-identical to cold; see the oracle suite).
    warm_start: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        _check_positive(self.duration_s, "duration_s")
        _check_positive(self.epoch_s, "epoch_s")
        _require(
            self.resolve_policy in RESOLVE_POLICIES,
            f"resolve_policy must be one of {', '.join(RESOLVE_POLICIES)}, "
            f"got {self.resolve_policy!r}",
        )
        _require(
            isinstance(self.drift_threshold, (int, float))
            and not isinstance(self.drift_threshold, bool)
            and 0 < self.drift_threshold <= 1,
            f"drift_threshold must be in (0, 1], got {self.drift_threshold!r}",
        )
        _check_non_negative(self.arrival_rate_per_s, "arrival_rate_per_s")
        _check_positive(self.mean_dwell_s, "mean_dwell_s")
        _require(
            isinstance(self.num_hotspots, int)
            and not isinstance(self.num_hotspots, bool)
            and self.num_hotspots >= 1,
            f"num_hotspots must be an integer >= 1, got {self.num_hotspots!r}",
        )
        _check_positive(self.hotspot_sigma_m, "hotspot_sigma_m")
        _check_non_negative(self.hotspot_drift_mps, "hotspot_drift_mps")
        _check_non_negative(self.mobility_sigma_m, "mobility_sigma_m")
        _check_positive(self.mobility_step_s, "mobility_step_s")
        if self.recharge_s is not None:
            _check_non_negative(self.recharge_s, "recharge_s")
        for name in ("num_crashes", "num_links"):
            value = getattr(self, name)
            _require(
                isinstance(value, int) and not isinstance(value, bool)
                and value >= 0,
                f"{name} must be an integer >= 0, got {value!r}",
            )
        if self.relocation_speed_mps is not None:
            _check_positive(self.relocation_speed_mps, "relocation_speed_mps")
        _require(
            isinstance(self.warm_start, bool),
            f"warm_start must be a boolean, got {self.warm_start!r}",
        )

    # -- JSON round-trip (own document kind) ---------------------------------

    def to_dict(self) -> dict:
        body = asdict(self)
        body["altitude_layers_m"] = list(self.altitude_layers_m)
        return {
            "format": DYNAMIC_SPEC_FORMAT,
            "kind": DYNAMIC_SPEC_KIND,
            **body,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DynamicSpec":
        _require(
            isinstance(data, dict), f"spec must be an object, got {data!r}"
        )
        kind = data.get("kind", DYNAMIC_SPEC_KIND)
        _require(
            kind == DYNAMIC_SPEC_KIND,
            f"expected a {DYNAMIC_SPEC_KIND} document, got kind = {kind!r}",
        )
        version = data.get("format", DYNAMIC_SPEC_FORMAT)
        _require(
            version == DYNAMIC_SPEC_FORMAT,
            f"unsupported dynamic-spec format {version!r} (this build "
            f"reads {DYNAMIC_SPEC_FORMAT})",
        )
        known = {f.name for f in fields(cls)}
        body = {k: v for k, v in data.items() if k not in ("format", "kind")}
        unknown = sorted(set(body) - known)
        _require(
            not unknown,
            f"unknown spec field(s): {', '.join(unknown)}; known: "
            f"{', '.join(sorted(known))}",
        )
        return cls(**body)


#: Named ready-to-run dynamic missions.
DYNAMIC_PRESETS = {
    # A two-minute, small-scale mission for tests and demos: light churn,
    # periodic epochs, no faults.
    "dynamic-small": DynamicSpec(
        name="dynamic-small", scale="small", num_users=150, num_uavs=6,
        seed=42, algorithm="approAlg",
        algorithm_params={"s": 1, "gain_mode": "fast",
                          "max_anchor_candidates": 6},
        duration_s=300.0, epoch_s=75.0, arrival_rate_per_s=0.05,
        mean_dwell_s=240.0, mobility_sigma_m=25.0,
    ),
    # Surge relief: heavy arrivals around drifting hotspots plus crashes,
    # with drift-triggered re-solves.
    "dynamic-surge": DynamicSpec(
        name="dynamic-surge", scale="small", num_users=200, num_uavs=8,
        seed=7, algorithm="approAlg",
        algorithm_params={"s": 1, "gain_mode": "fast",
                          "max_anchor_candidates": 6},
        duration_s=600.0, epoch_s=60.0, resolve_policy="drift",
        drift_threshold=0.1, arrival_rate_per_s=0.25, mean_dwell_s=180.0,
        hotspot_drift_mps=4.0, mobility_sigma_m=30.0, num_crashes=2,
        relocation_speed_mps=10.0,
    ),
    # The benchmark mission: paper-scale candidate grid (where the hop
    # rebuild dominates a cold re-solve) with three altitude layers,
    # periodic epochs and moderate churn — the warm-vs-cold latency gate
    # runs here.
    "dynamic-headline": DynamicSpec(
        name="dynamic-headline", scale="paper", num_users=800, num_uavs=10,
        seed=7, algorithm="approAlg",
        altitude_layers_m=(200.0, 300.0, 400.0),
        algorithm_params={"s": 1, "gain_mode": "fast",
                          "max_anchor_candidates": 6},
        duration_s=600.0, epoch_s=100.0, arrival_rate_per_s=0.2,
        mean_dwell_s=400.0, mobility_sigma_m=40.0,
    ),
}


def dynamic_preset_names() -> list:
    return sorted(DYNAMIC_PRESETS)


def get_dynamic_preset(name: str) -> DynamicSpec:
    """Look up a named dynamic preset (KeyError lists the known names)."""
    try:
        return DYNAMIC_PRESETS[name]
    except KeyError:
        known = ", ".join(dynamic_preset_names())
        raise KeyError(f"unknown dynamic preset {name!r}; known: {known}") \
            from None
