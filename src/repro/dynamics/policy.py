"""Pluggable re-solve policies for the dynamics engine.

A policy decides, at each trigger point, whether the engine should
re-plan the placement.  Triggers are ``"epoch"`` (the periodic tick) and
``"fault"`` (a structural event: crash, battery, link change, restore).
Policies see only coverage numbers — they never touch the solver — so
swapping one changes *when* re-solves happen, never *what* they compute.
"""

from __future__ import annotations

from dataclasses import dataclass

EPOCH = "epoch"
FAULT = "fault"


@dataclass(frozen=True)
class PeriodicPolicy:
    """Re-solve on every epoch tick (the baseline cadence)."""

    name: str = "periodic"

    def should_resolve(
        self, trigger: str, coverage_now: float, coverage_at_solve: float
    ) -> bool:
        return trigger == EPOCH


@dataclass(frozen=True)
class DriftPolicy:
    """Re-solve once coverage decayed by ``threshold`` (absolute fraction
    of active users) since the last adopted solve; faults always count as
    maximal drift."""

    threshold: float = 0.15
    name: str = "drift"

    def should_resolve(
        self, trigger: str, coverage_now: float, coverage_at_solve: float
    ) -> bool:
        if trigger == FAULT:
            return True
        return (coverage_at_solve - coverage_now) >= self.threshold


@dataclass(frozen=True)
class EventPolicy:
    """Re-solve only on structural events (faults, restores); churn and
    mobility decay are tolerated between them."""

    name: str = "event"

    def should_resolve(
        self, trigger: str, coverage_now: float, coverage_at_solve: float
    ) -> bool:
        return trigger == FAULT


def make_policy(name: str, drift_threshold: float = 0.15):
    """Instantiate a policy by its spec name."""
    if name == "periodic":
        return PeriodicPolicy()
    if name == "drift":
        return DriftPolicy(threshold=drift_threshold)
    if name == "event":
        return EventPolicy()
    raise ValueError(
        f"unknown resolve policy {name!r}; known: periodic, drift, event"
    )
