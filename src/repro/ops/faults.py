"""Deterministic failure injection for mission timelines.

A :class:`FaultSchedule` is a time-ordered list of :class:`Fault` events —
UAV crashes, battery depletions, and inter-UAV link degradations — that the
mission runtime (:mod:`repro.ops.mission`) feeds into the existing
:class:`repro.simnet.events.EventQueue`.  Schedules are plain data: build
them explicitly for scripted scenarios, draw them from a seeded RNG
(:meth:`FaultSchedule.random`, via :mod:`repro.util.rng` discipline so the
same seed always yields the same faults), or derive battery events from the
energy model (:meth:`FaultSchedule.from_endurance`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.network.energy import EnergyModel, fleet_endurance_s
from repro.simnet.events import EventQueue
from repro.util.rng import ensure_rng

CRASH = "crash"        # airframe lost: the UAV is gone for the mission
BATTERY = "battery"    # battery depleted: the UAV lands and stays down
LINK = "link"          # inter-UAV link degraded (optionally heals later)

KINDS = (CRASH, BATTERY, LINK)


@dataclass(frozen=True)
class Fault:
    """One scheduled fault.

    ``uav_index`` names the failing UAV for :data:`CRASH` / :data:`BATTERY`;
    ``link`` names the degraded UAV pair for :data:`LINK`.  A link fault
    with ``duration_s`` heals that long after it hits; ``None`` means it
    stays degraded for the rest of the mission.
    """

    time_s: float
    kind: str
    uav_index: "int | None" = None
    link: "tuple | None" = None
    duration_s: "float | None" = None

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise ValueError(f"fault time must be non-negative, got {self.time_s}")
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; known: {', '.join(KINDS)}"
            )
        if self.kind in (CRASH, BATTERY):
            if self.uav_index is None:
                raise ValueError(f"{self.kind} fault needs a uav_index")
            if self.link is not None:
                raise ValueError(f"{self.kind} fault must not carry a link")
        else:
            if self.link is None:
                raise ValueError("link fault needs a (uav_a, uav_b) pair")
            a, b = self.link
            if a == b:
                raise ValueError(f"link fault endpoints must differ, got {a}")
        if self.duration_s is not None and self.duration_s <= 0:
            raise ValueError(
                f"duration must be positive, got {self.duration_s}"
            )

    def describe(self) -> str:
        if self.kind == LINK:
            a, b = self.link
            healing = (
                f", heals after {self.duration_s:.0f}s"
                if self.duration_s is not None else ""
            )
            return f"link {a}<->{b} degraded{healing}"
        verb = "crashed" if self.kind == CRASH else "battery depleted"
        return f"UAV {self.uav_index} {verb}"


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, time-sorted fault timeline."""

    faults: tuple = field(default_factory=tuple)

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.faults, key=lambda f: (f.time_s, KINDS.index(f.kind)))
        )
        object.__setattr__(self, "faults", ordered)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def uavs_lost(self) -> set:
        """UAV indices permanently removed by the schedule."""
        return {
            f.uav_index for f in self.faults if f.kind in (CRASH, BATTERY)
        }

    def inject(self, queue: EventQueue) -> None:
        """Schedule every fault (and every link healing) into ``queue``.

        Payloads are ``("fault", Fault)`` and ``("link_restored", pair)``
        tuples, matching what the mission runtime dispatches on.
        """
        for fault in self.faults:
            queue.schedule(fault.time_s, ("fault", fault))
            if fault.kind == LINK and fault.duration_s is not None:
                queue.schedule(
                    fault.time_s + fault.duration_s,
                    ("link_restored", fault.link),
                )

    @classmethod
    def random(
        cls,
        num_uavs: int,
        num_crashes: int = 2,
        num_battery: int = 0,
        num_links: int = 0,
        window_s: "tuple" = (10.0, 100.0),
        link_duration_s: "float | None" = 30.0,
        seed: "int | np.random.Generator | None" = None,
    ) -> "FaultSchedule":
        """Draw a deterministic schedule from a seeded RNG.

        Each crashed/depleted UAV is distinct (a UAV fails at most once);
        link faults pick distinct unordered UAV pairs.  Times are uniform
        in ``window_s``.
        """
        if num_crashes + num_battery > num_uavs:
            raise ValueError(
                f"cannot fail {num_crashes + num_battery} distinct UAVs "
                f"out of {num_uavs}"
            )
        lo, hi = window_s
        if not (0 <= lo <= hi):
            raise ValueError(f"need 0 <= start <= end, got {window_s}")
        rng = ensure_rng(seed)
        victims = rng.permutation(num_uavs)[: num_crashes + num_battery]
        faults = []
        for i, uav in enumerate(victims):
            kind = CRASH if i < num_crashes else BATTERY
            faults.append(Fault(
                time_s=float(rng.uniform(lo, hi)),
                kind=kind,
                uav_index=int(uav),
            ))
        pairs_seen: set = set()
        while len(pairs_seen) < min(
            num_links, num_uavs * (num_uavs - 1) // 2
        ):
            a, b = (int(x) for x in rng.permutation(num_uavs)[:2])
            pair = (min(a, b), max(a, b))
            if pair in pairs_seen:
                continue
            pairs_seen.add(pair)
            faults.append(Fault(
                time_s=float(rng.uniform(lo, hi)),
                kind=LINK,
                link=pair,
                duration_s=link_duration_s,
            ))
        return cls(faults=tuple(faults))

    @classmethod
    def from_endurance(
        cls,
        fleet: list,
        deployment,
        model: "EnergyModel | None" = None,
        horizon_s: "float | None" = None,
    ) -> "FaultSchedule":
        """Battery-depletion faults at each deployed UAV's hover endurance
        (from :mod:`repro.network.energy`), optionally clipped to a mission
        horizon."""
        model = model if model is not None else EnergyModel()
        endurance = fleet_endurance_s(fleet, deployment, model)
        faults = [
            Fault(time_s=float(secs), kind=BATTERY, uav_index=k)
            for k, secs in sorted(endurance.items())
            if horizon_s is None or secs <= horizon_s
        ]
        return cls(faults=tuple(faults))
