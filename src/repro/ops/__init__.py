"""Fault-tolerant mission operations (extension).

The paper plans one deployment for a disaster area; this package keeps it
alive once UAVs start failing.  Three pieces compose into a self-healing
runtime:

* :mod:`repro.ops.faults` — deterministic failure injection
  (:class:`FaultSchedule`): UAV crashes, battery depletions and inter-UAV
  link degradations on a mission timeline;
* :mod:`repro.ops.recovery` — graceful degradation to the largest
  connected remnant plus watchdog-guarded re-planning with bounded,
  exponentially backed-off retries (:class:`RecoveryPolicy`);
* :mod:`repro.ops.mission` — the event loop (:func:`run_mission`) tying
  both to the :mod:`repro.simnet` event queue, producing a structured
  :class:`~repro.ops.log.MissionLog`.

The solver watchdog itself lives with the algorithm registry in
:mod:`repro.sim.runner` (``solve_with_fallback``).

A fourth piece targets the *solver process* rather than the mission:
:mod:`repro.ops.chaos` injects deterministic worker kills / exceptions /
delays into the parallel subset fan-out, exercising the fault-tolerant
dispatch and checkpoint/resume machinery of :mod:`repro.core.dispatch`
and :mod:`repro.core.checkpoint` (see ``docs/RESILIENCE.md``).
"""

from repro.ops.chaos import ChaosError, ChaosEvent, ChaosSpec
from repro.ops.faults import BATTERY, CRASH, LINK, Fault, FaultSchedule
from repro.ops.log import MissionEvent, MissionLog
from repro.ops.mission import (
    MissionConfig,
    MissionResult,
    run_mission,
    run_mission_spec,
)
from repro.ops.recovery import (
    DegradeResult,
    RecoveryPolicy,
    RepairOutcome,
    degrade_to_remnant,
    plan_repair,
    residual_connected,
    uav_components,
)

__all__ = [
    "BATTERY",
    "CRASH",
    "LINK",
    "ChaosError",
    "ChaosEvent",
    "ChaosSpec",
    "Fault",
    "FaultSchedule",
    "MissionEvent",
    "MissionLog",
    "MissionConfig",
    "MissionResult",
    "run_mission",
    "run_mission_spec",
    "DegradeResult",
    "RecoveryPolicy",
    "RepairOutcome",
    "degrade_to_remnant",
    "plan_repair",
    "residual_connected",
    "uav_components",
]
