"""Structured mission logging.

Every noteworthy moment of a fault-injected mission — fault hits,
degradation to a connected remnant, re-plan attempts, backoff waits,
repairs, validation failures — becomes one :class:`MissionEvent`.  The log
is the mission's audit trail: :mod:`repro.sim.report` renders it for
operators and tests assert on it directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.util.tables import format_table

#: Canonical event kinds, in the order a typical recovery unfolds.
FAULT = "fault"                    # a scheduled fault hit the network
DEGRADE = "degrade"                # shrunk to the largest connected remnant
REPLAN_ATTEMPT = "replan_attempt"  # a repair re-plan started
BACKOFF = "backoff"                # attempt failed; waiting before retrying
REPAIR = "repair"                  # a validated repair was adopted
REPAIR_FAILED = "repair_failed"    # retries exhausted; staying degraded
VALIDATION_FAILURE = "validation_failure"  # a re-plan produced an invalid plan
LINK_RESTORED = "link_restored"    # a degraded link healed
UAV_RESTORED = "uav_restored"      # a battery-swapped UAV rejoined the pool
MISSION_END = "mission_end"

KINDS = (
    FAULT,
    DEGRADE,
    REPLAN_ATTEMPT,
    BACKOFF,
    REPAIR,
    REPAIR_FAILED,
    VALIDATION_FAILURE,
    LINK_RESTORED,
    UAV_RESTORED,
    MISSION_END,
)


@dataclass(frozen=True)
class MissionEvent:
    """One timestamped structured event."""

    time_s: float
    kind: str
    detail: str
    data: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r}; known: {', '.join(KINDS)}"
            )


@dataclass
class MissionLog:
    """Append-only, time-ordered record of a mission's fault/recovery story."""

    events: list = field(default_factory=list)

    def record(
        self, time_s: float, kind: str, detail: str, **data: object
    ) -> MissionEvent:
        event = MissionEvent(
            time_s=time_s, kind=kind, detail=detail, data=dict(data)
        )
        self.events.append(event)
        # Mirror every event into the metrics registry so mission
        # telemetry shows up in --metrics-out / OpenMetrics exports
        # without parsing the mission log (no-op while obs is off).
        obs.counter_inc(f"mission.event.{kind}")
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def of_kind(self, kind: str) -> list:
        """Events of one kind, in occurrence order."""
        if kind not in KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; known: {', '.join(KINDS)}"
            )
        return [e for e in self.events if e.kind == kind]

    def counts(self) -> dict:
        """kind -> occurrence count (zero-count kinds omitted)."""
        out: dict = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def to_text(self, title: str = "mission log") -> str:
        rows = [
            [f"{e.time_s:.1f}", e.kind, e.detail] for e in self.events
        ]
        return format_table(["t (s)", "event", "detail"], rows, title=title)
