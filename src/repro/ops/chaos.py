"""Seed-deterministic chaos injection for the solver fan-out.

A :class:`ChaosSpec` names *which chunks of the parallel subset sweep
fail, how, and for how many attempts*:

* ``kill`` — the worker process hard-exits (``os._exit``) mid-chunk,
  breaking the whole pool exactly like an OOM kill would;
* ``raise`` — the chunk raises :class:`ChaosError` while the worker
  survives (a poisoned input / transient bug);
* ``delay`` — the chunk sleeps before evaluating (a straggler).

Events trigger while ``attempt < attempts``, so ``attempts=1`` models a
transient fault (the re-dispatch succeeds) and a large ``attempts``
models a *poison chunk* that the dispatcher must quarantine into serial
in-parent evaluation.  Because the spec is applied worker-side keyed on
``(chunk_id, attempt)`` — both deterministic — a chaos run is exactly
reproducible, and the fault-tolerance tests can assert bit-identical
results against the undisturbed serial loop.

Wire a spec in with ``appro_alg(..., workers=N, chaos=spec)``.  The
parent counts what it injects (``chaos.injected.kill`` / ``.raise`` /
``.delay`` through :mod:`repro.obs`) at submission time, since a killed
worker can never report back.

This is a test/ops harness: never enable chaos in production runs.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

ACTIONS = ("kill", "raise", "delay")

#: Exit status of a chaos-killed worker (visible in pool diagnostics).
KILL_EXIT_CODE = 23


class ChaosError(RuntimeError):
    """The exception an injected ``raise`` event throws in the worker."""


@dataclass(frozen=True)
class ChaosEvent:
    """One injected fault: ``action`` on ``chunk`` while
    ``attempt < attempts``."""

    chunk: int
    action: str
    attempts: int = 1
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(
                f"unknown chaos action {self.action!r}; "
                f"known: {', '.join(ACTIONS)}"
            )
        if self.chunk < 0:
            raise ValueError(f"chunk must be >= 0, got {self.chunk}")
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.delay_s < 0:
            raise ValueError(f"delay_s must be >= 0, got {self.delay_s}")

    def triggers(self, chunk: int, attempt: int) -> bool:
        return chunk == self.chunk and attempt < self.attempts


@dataclass(frozen=True)
class ChaosSpec:
    """A deterministic set of :class:`ChaosEvent`\\ s.

    Picklable by design: the spec ships to pool workers through the
    initializer and is consulted at the top of every chunk.
    """

    events: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, ChaosEvent):
                raise TypeError(f"not a ChaosEvent: {event!r}")

    def event_for(self, chunk: int, attempt: int) -> "ChaosEvent | None":
        """The first event triggering for ``(chunk, attempt)``, if any."""
        for event in self.events:
            if event.triggers(chunk, attempt):
                return event
        return None

    def apply(self, chunk: int, attempt: int) -> None:
        """Worker-side: enact the event for this ``(chunk, attempt)``.

        ``kill`` never returns; ``raise`` raises :class:`ChaosError`;
        ``delay`` sleeps then returns so the chunk evaluates normally.
        """
        event = self.event_for(chunk, attempt)
        if event is None:
            return
        if event.action == "kill":
            os._exit(KILL_EXIT_CODE)
        if event.action == "raise":
            raise ChaosError(
                f"injected failure at chunk {chunk} attempt {attempt}"
            )
        time.sleep(event.delay_s)

    # -- constructors --------------------------------------------------------

    @staticmethod
    def kills(*chunks: int, attempts: int = 1) -> "ChaosSpec":
        """Kill the worker at each named chunk (transient by default;
        pass a large ``attempts`` for a poison chunk)."""
        return ChaosSpec(tuple(
            ChaosEvent(chunk=c, action="kill", attempts=attempts)
            for c in chunks
        ))

    @staticmethod
    def raises(*chunks: int, attempts: int = 1) -> "ChaosSpec":
        return ChaosSpec(tuple(
            ChaosEvent(chunk=c, action="raise", attempts=attempts)
            for c in chunks
        ))

    @staticmethod
    def poison(*chunks: int) -> "ChaosSpec":
        """Chunks that fail on *every* pool attempt — the dispatcher must
        quarantine them into serial evaluation to finish."""
        return ChaosSpec.kills(*chunks, attempts=10 ** 9)

    @staticmethod
    def random(
        num_chunks: int,
        seed: int,
        kills: int = 1,
        raises: int = 0,
        delays: int = 0,
        attempts: int = 1,
        delay_s: float = 0.05,
    ) -> "ChaosSpec":
        """A seed-deterministic draw of distinct victim chunks."""
        from repro.util.rng import ensure_rng

        wanted = kills + raises + delays
        if wanted > num_chunks:
            raise ValueError(
                f"cannot draw {wanted} distinct victim chunks from "
                f"{num_chunks}"
            )
        rng = ensure_rng(seed)
        victims = [
            int(v) for v in
            rng.choice(num_chunks, size=wanted, replace=False)
        ]
        events = []
        for action, count in (
            ("kill", kills), ("raise", raises), ("delay", delays)
        ):
            for _ in range(count):
                events.append(ChaosEvent(
                    chunk=victims.pop(0), action=action,
                    attempts=attempts, delay_s=delay_s,
                ))
        return ChaosSpec(tuple(events))
