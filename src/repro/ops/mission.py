"""The fault-tolerant mission runtime.

:func:`run_mission` turns the one-shot planner into a timeline: plan an
initial deployment through the solver watchdog, inject a
:class:`~repro.ops.faults.FaultSchedule` into the discrete-event queue
(:mod:`repro.simnet.events`), and on every fault degrade gracefully, then
self-heal — re-plan with the flyable fleet, retry with exponential backoff
while conditions are unfavourable, and adopt only re-validated, connected
deployments.  Battery-depleted UAVs with a swap turnaround rejoin the
reserve pool mid-mission; degraded links may heal; both restart the
recovery loop.

Everything is deterministic given the schedule and the scenario seed, and
every decision lands in the :class:`~repro.ops.log.MissionLog`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment
from repro.network.validate import is_feasible
from repro.ops import log as evt
from repro.ops.faults import BATTERY, CRASH, Fault, FaultSchedule
from repro.ops.log import MissionLog
from repro.ops.recovery import (
    RecoveryPolicy,
    degrade_to_remnant,
    plan_repair,
    residual_connected,
)
from repro.scenario.spec import ScenarioSpec
from repro.sim.results import RunRecord
from repro.sim.runner import solve_with_fallback
from repro.simnet.events import EventQueue

_REPAIR = "repair"            # internal event: run one repair attempt
_UAV_RESTORED = "uav_restored"


@dataclass(frozen=True)
class MissionConfig:
    """Knobs of one mission run."""

    duration_s: float = 120.0
    policy: RecoveryPolicy = field(default_factory=RecoveryPolicy)
    uav_speed_mps: float = 10.0   # used to report repair restore times

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError(
                f"duration must be positive, got {self.duration_s}"
            )
        if self.uav_speed_mps <= 0:
            raise ValueError(
                f"uav_speed_mps must be positive, got {self.uav_speed_mps}"
            )


@dataclass
class MissionResult:
    """Everything a mission produced."""

    initial_record: RunRecord
    initial_deployment: Deployment
    final_deployment: Deployment
    log: MissionLog
    timeline: list                 # [(time_s, served)] at every state change
    faults_injected: int
    repairs: int
    final_valid: bool
    final_connected: bool

    @property
    def served_initial(self) -> int:
        return self.initial_deployment.served_count

    @property
    def served_final(self) -> int:
        return self.final_deployment.served_count

    @property
    def served_min(self) -> int:
        return min((s for _, s in self.timeline), default=0)


def _telemetry(time_s: float, served: int) -> None:
    """Mission-clock gauges for live observers (no-op while obs is off)."""
    obs.gauge_set("mission.clock_s", time_s)
    obs.gauge_set("mission.served", served)


class _MissionState:
    """Mutable runtime state threaded through event handling."""

    def __init__(self, problem: ProblemInstance, deployment: Deployment):
        self.problem = problem
        self.current = deployment
        self.crashed: set = set()
        self.down: set = set()             # battery-swapping UAVs
        self.degraded_links: set = set()
        self.attempt = 0
        self.pending_retry: "int | None" = None
        self.repairs = 0

    def available(self) -> list:
        return sorted(
            set(range(self.problem.num_uavs)) - self.crashed - self.down
        )


@obs.traced("mission.run")
def run_mission(
    problem: ProblemInstance,
    schedule: FaultSchedule,
    config: "MissionConfig | None" = None,
) -> MissionResult:
    """Run one fault-injected mission end to end.  Never raises on solver
    or recovery failure — the log carries the story either way."""
    config = config if config is not None else MissionConfig()
    policy = config.policy
    log = MissionLog()
    timeline: list = []

    with obs.span("mission.plan"), obs.stage_watermark("mission.plan"):
        initial = solve_with_fallback(problem, policy.watchdog)
    if not initial.ok:
        log.record(
            0.0, evt.MISSION_END,
            f"initial planning failed: {initial.record.error}",
            status="failed",
        )
        empty = Deployment.empty()
        return MissionResult(
            initial_record=initial.record,
            initial_deployment=empty,
            final_deployment=empty,
            log=log,
            timeline=[(0.0, 0)],
            faults_injected=0,
            repairs=0,
            final_valid=False,
            final_connected=False,
        )

    state = _MissionState(problem, initial.deployment)
    timeline.append((0.0, state.current.served_count))
    _telemetry(0.0, state.current.served_count)

    queue = EventQueue()
    schedule.inject(queue)
    faults_injected = 0

    # The mission runtime is a consumer of the shared discrete-event
    # clock; the dynamics engine (repro.dynamics) drains the same
    # primitive, so both advance time with identical semantics.
    for now, payload in queue.drain(until=config.duration_s):
        kind, arg = payload
        if kind == "fault":
            faults_injected += 1
            obs.counter_inc("mission.faults")
            with obs.span("mission.fault", kind=arg.kind, time_s=now):
                _handle_fault(state, arg, now, queue, policy, log)
        elif kind == "link_restored":
            _handle_link_restored(state, arg, now, queue, log)
        elif kind == _UAV_RESTORED:
            _handle_uav_restored(state, arg, now, queue, log)
        elif kind == _REPAIR:
            with obs.span("mission.repair", attempt=arg, time_s=now), \
                    obs.stage_watermark("mission.repair"):
                _handle_repair(state, arg, now, queue, policy, config, log)
        else:
            raise AssertionError(f"unhandled mission event {kind!r}")
        timeline.append((now, state.current.served_count))
        _telemetry(now, state.current.served_count)

    final_valid = is_feasible(problem.graph, problem.fleet, state.current)
    final_connected = residual_connected(
        problem, state.current.placements, state.degraded_links
    )
    log.record(
        config.duration_s,
        evt.MISSION_END,
        f"served {state.current.served_count}/{problem.num_users} with "
        f"{state.current.num_deployed} UAVs "
        f"({'valid' if final_valid else 'INVALID'}, "
        f"{'connected' if final_connected else 'PARTITIONED'})",
        served=state.current.served_count,
        valid=final_valid,
        connected=final_connected,
    )
    return MissionResult(
        initial_record=initial.record,
        initial_deployment=initial.deployment,
        final_deployment=state.current,
        log=log,
        timeline=timeline,
        faults_injected=faults_injected,
        repairs=state.repairs,
        final_valid=final_valid,
        final_connected=final_connected,
    )


def run_mission_spec(
    spec: ScenarioSpec,
    schedule: "FaultSchedule | None" = None,
    config: "MissionConfig | None" = None,
    num_crashes: int = 2,
    num_battery: int = 0,
    num_links: int = 0,
) -> MissionResult:
    """Thin adapter: a fault-injected mission from a declarative spec.

    The problem comes from the spec's scenario stream; when no explicit
    ``schedule`` is given, one is drawn from the spec's derived
    ``"faults"`` stream (see :func:`repro.util.rng.derive_seed`), so one
    root seed reproduces both the scenario and the fault timeline — and
    the fault draw never perturbs the scenario draw.
    """
    config = config if config is not None else MissionConfig()
    problem = spec.build()
    if schedule is None:
        schedule = FaultSchedule.random(
            num_uavs=problem.num_uavs,
            num_crashes=num_crashes,
            num_battery=num_battery,
            num_links=num_links,
            window_s=(config.duration_s * 0.1, config.duration_s * 0.7),
            seed=spec.derived_seed("faults"),
        )
    return run_mission(problem, schedule, config)


def _start_repair_cycle(
    state: _MissionState, queue: EventQueue, delay_s: float = 0.0
) -> None:
    """(Re)start the recovery loop at attempt 1, superseding any pending
    backoff retry."""
    if state.pending_retry is not None:
        queue.cancel(state.pending_retry)
    state.attempt = 1
    state.pending_retry = queue.schedule_in(delay_s, (_REPAIR, 1))


def _handle_fault(
    state: _MissionState,
    fault: Fault,
    now: float,
    queue: EventQueue,
    policy: RecoveryPolicy,
    log: MissionLog,
) -> None:
    log.record(now, evt.FAULT, fault.describe(), fault_kind=fault.kind)
    failed_location = None
    if fault.kind in (CRASH, BATTERY):
        k = fault.uav_index
        if fault.kind == CRASH:
            state.crashed.add(k)
        else:
            state.down.add(k)
            if fault.duration_s is not None:
                queue.schedule(now + fault.duration_s, (_UAV_RESTORED, k))
        failed_location = state.current.placements.get(k)
        if failed_location is None:
            # A reserve failed on the ground: coverage is untouched, but
            # the repair pool shrank — no degradation, no re-plan needed.
            return
    else:
        state.degraded_links.add(
            (min(fault.link), max(fault.link))
        )

    survivors = {
        k: loc
        for k, loc in state.current.placements.items()
        if k not in state.crashed and k not in state.down
    }
    before = state.current.served_count
    result = degrade_to_remnant(
        state.problem,
        survivors,
        state.degraded_links,
        failed_location=failed_location,
    )
    state.current = result.deployment
    detail = (
        f"serving {result.deployment.served_count}/{before} users with "
        f"{result.deployment.num_deployed} UAVs"
    )
    if result.hit_articulation_point:
        detail += " (lost an articulation point: network split)"
    if result.dropped_uavs:
        detail += f"; stranded UAVs {list(result.dropped_uavs)} grounded"
    log.record(
        now, evt.DEGRADE, detail,
        served=result.deployment.served_count,
        components=result.num_components,
        dropped=list(result.dropped_uavs),
    )
    if result.deployment.served_count < before or result.dropped_uavs:
        _start_repair_cycle(state, queue)


def _handle_link_restored(
    state: _MissionState, pair: tuple, now: float, queue: EventQueue,
    log: MissionLog,
) -> None:
    key = (min(pair), max(pair))
    state.degraded_links.discard(key)
    log.record(now, evt.LINK_RESTORED, f"link {key[0]}<->{key[1]} healed")
    _start_repair_cycle(state, queue)


def _handle_uav_restored(
    state: _MissionState, k: int, now: float, queue: EventQueue,
    log: MissionLog,
) -> None:
    state.down.discard(k)
    log.record(
        now, evt.UAV_RESTORED, f"UAV {k} battery swapped, back in reserve"
    )
    _start_repair_cycle(state, queue)


def _handle_repair(
    state: _MissionState,
    attempt: int,
    now: float,
    queue: EventQueue,
    policy: RecoveryPolicy,
    config: MissionConfig,
    log: MissionLog,
) -> None:
    state.pending_retry = None
    if attempt != state.attempt:
        return  # superseded by a newer cycle that was not cancellable
    available = state.available()
    log.record(
        now, evt.REPLAN_ATTEMPT,
        f"attempt {attempt}/{policy.max_retries} with "
        f"{len(available)} flyable UAVs",
        attempt=attempt,
        available=available,
    )
    outcome = plan_repair(
        state.problem, state.current, available, state.degraded_links, policy
    )
    if outcome.ok:
        obs.counter_inc("mission.repairs")
        state.current = outcome.deployment
        state.repairs += 1
        state.attempt = 0
        restore_s = outcome.relocation.max_distance_m / config.uav_speed_mps
        log.record(
            now, evt.REPAIR,
            f"{outcome.detail}; slowest relocation "
            f"{outcome.relocation.max_distance_m:.0f} m "
            f"(~{restore_s:.0f}s at {config.uav_speed_mps:.0f} m/s)",
            served=outcome.deployment.served_count,
            answered_by=outcome.solver.answered_by,
            solver_attempts=[
                (a.algorithm, a.status) for a in outcome.solver.record.attempts
            ],
        )
        return
    if outcome.status == "invalid":
        log.record(
            now, evt.VALIDATION_FAILURE, outcome.detail, status=outcome.status
        )
    if attempt < policy.max_retries:
        wait = policy.backoff_s(attempt)
        log.record(
            now, evt.BACKOFF,
            f"{outcome.status}: {outcome.detail or 'no progress'}; "
            f"retrying in {wait:.0f}s",
            attempt=attempt,
            wait_s=wait,
        )
        state.attempt = attempt + 1
        state.pending_retry = queue.schedule_in(
            wait, (_REPAIR, attempt + 1)
        )
    else:
        log.record(
            now, evt.REPAIR_FAILED,
            f"gave up after {attempt} attempts ({outcome.status}); "
            "staying degraded until conditions change",
            attempts=attempt,
            status=outcome.status,
        )
        state.attempt = 0
