"""Fault recovery: graceful degradation and watchdog-guarded repair.

On each fault the mission runtime calls into this module to

1. **degrade** — detect whether the surviving UAV network is partitioned
   (reusing :func:`repro.network.resilience.articulation_points` for the
   diagnosis) and shrink service to the largest connected remnant, with
   users re-assigned optimally (Section II-D max-flow); then
2. **repair** — re-plan with every UAV still flyable (survivors plus
   never-launched reserves) through the solver watchdog's fallback chain,
   pair physical UAVs to the new positions with the relocation planner
   (:mod:`repro.sim.relocation`), and re-validate the result from first
   principles before adopting it.

Repair attempts are bounded: the runtime retries with exponential backoff
(:meth:`RecoveryPolicy.backoff_s`) and gives up after
``max_retries`` failures, staying degraded rather than crashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.assignment import optimal_assignment
from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment
from repro.network.resilience import articulation_points
from repro.network.validate import ValidationError, validate_deployment
from repro.sim.relocation import RelocationPlan, plan_relocation
from repro.sim.runner import FallbackResult, WatchdogConfig, solve_with_fallback


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the self-healing loop."""

    max_retries: int = 3
    backoff_initial_s: float = 5.0
    backoff_factor: float = 2.0
    relocation: str = "makespan"         # restore service fastest
    watchdog: WatchdogConfig = field(default_factory=WatchdogConfig)

    def __post_init__(self) -> None:
        if self.max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {self.max_retries}")
        if self.backoff_initial_s < 0:
            raise ValueError(
                "backoff_initial_s must be non-negative, got "
                f"{self.backoff_initial_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Wait before retry number ``attempt`` (1-based): exponential."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.backoff_initial_s * self.backoff_factor ** (attempt - 1)


def _degraded_location_pairs(placements: dict, degraded_links: set) -> set:
    """Map degraded UAV pairs to location pairs under current placements."""
    pairs = set()
    for a, b in degraded_links:
        if a in placements and b in placements:
            la, lb = placements[a], placements[b]
            pairs.add((min(la, lb), max(la, lb)))
    return pairs


def uav_components(
    problem: ProblemInstance, placements: dict, degraded_links: set = frozenset()
) -> list:
    """Connected components of the deployed UAV network, as sorted lists of
    fleet indices.  Adjacency is the candidate-location graph induced on
    the occupied locations, minus any degraded links."""
    adjacency = problem.graph.location_graph
    dead_pairs = _degraded_location_pairs(placements, degraded_links)
    uav_at = {loc: k for k, loc in placements.items()}
    components = []
    seen: set = set()
    for start in sorted(placements):
        if start in seen:
            continue
        comp = [start]
        seen.add(start)
        queue = [start]
        while queue:
            k = queue.pop()
            loc = placements[k]
            for w in adjacency.neighbours(loc):
                other = uav_at.get(w)
                if other is None or other in seen:
                    continue
                if (min(loc, w), max(loc, w)) in dead_pairs:
                    continue
                seen.add(other)
                comp.append(other)
                queue.append(other)
        components.append(sorted(comp))
    return components


def residual_connected(
    problem: ProblemInstance, placements: dict, degraded_links: set = frozenset()
) -> bool:
    """Whether the deployed network is one component once degraded links are
    subtracted (empty and single-UAV deployments count as connected)."""
    return len(uav_components(problem, placements, degraded_links)) <= 1


@dataclass(frozen=True)
class DegradeResult:
    """Outcome of shrinking to the largest connected remnant."""

    deployment: Deployment
    dropped_uavs: tuple         # stranded outside the chosen remnant
    num_components: int
    hit_articulation_point: bool


def degrade_to_remnant(
    problem: ProblemInstance,
    placements: dict,
    degraded_links: set = frozenset(),
    failed_location: "int | None" = None,
) -> DegradeResult:
    """Keep the largest connected remnant online and re-assign users
    optimally to it.

    The remnant is the component with the most UAVs (ties: largest total
    capacity, then smallest fleet index — deterministic).  When
    ``failed_location`` is given, the result reports whether the fault
    removed an articulation point of the pre-fault topology (that is, the
    locations in ``placements`` plus the failed one).
    """
    hit_cut = False
    if failed_location is not None:
        before = sorted(set(placements.values()) | {failed_location})
        cuts = articulation_points(problem.graph.location_graph, before)
        hit_cut = failed_location in cuts

    components = uav_components(problem, placements, degraded_links)
    if not components:
        return DegradeResult(
            deployment=Deployment.empty(),
            dropped_uavs=(),
            num_components=0,
            hit_articulation_point=hit_cut,
        )
    fleet = problem.fleet
    best = max(
        components,
        key=lambda comp: (
            len(comp),
            sum(fleet[k].capacity for k in comp),
            -min(comp),
        ),
    )
    keep = set(best)
    remnant = {k: loc for k, loc in placements.items() if k in keep}
    dropped = tuple(sorted(set(placements) - keep))
    deployment = optimal_assignment(problem.graph, fleet, remnant)
    return DegradeResult(
        deployment=deployment,
        dropped_uavs=dropped,
        num_components=len(components),
        hit_articulation_point=hit_cut,
    )


@dataclass(frozen=True)
class RepairOutcome:
    """One repair attempt's result.

    ``status``: ``"repaired"`` (validated plan adopted), ``"no_better"``
    (plan valid but serves no more than the degraded remnant),
    ``"no_uavs"`` (nothing left to fly), ``"solver_failed"`` (every
    watchdog tier failed), ``"invalid"`` (plan failed re-validation or is
    disconnected under currently degraded links).
    """

    status: str
    deployment: "Deployment | None" = None
    relocation: "RelocationPlan | None" = None
    solver: "FallbackResult | None" = None
    detail: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "repaired"


def plan_repair(
    problem: ProblemInstance,
    current: Deployment,
    available: list,
    degraded_links: set = frozenset(),
    policy: "RecoveryPolicy | None" = None,
) -> RepairOutcome:
    """Re-plan the network with the ``available`` fleet subset and pair
    surviving/reserve UAVs to the new positions.

    The sub-fleet re-plan runs through :func:`solve_with_fallback`, so a
    stuck or crashing solver degrades to a baseline instead of aborting
    recovery.  The candidate plan is adopted only if it (a) re-validates
    with :func:`validate_deployment`, (b) stays connected after removing
    currently degraded links, and (c) serves strictly more users than the
    degraded ``current`` deployment.
    """
    policy = policy if policy is not None else RecoveryPolicy()
    available = sorted(set(available))
    if not available:
        return RepairOutcome(status="no_uavs", detail="no flyable UAVs remain")
    sub_fleet = [problem.fleet[k] for k in available]
    if len(sub_fleet) > problem.num_locations:
        sub_fleet = sub_fleet[: problem.num_locations]
        available = available[: problem.num_locations]
    sub_problem = ProblemInstance(graph=problem.graph, fleet=sub_fleet)

    solved = solve_with_fallback(sub_problem, policy.watchdog)
    if not solved.ok:
        return RepairOutcome(
            status="solver_failed",
            solver=solved,
            detail=solved.record.error or "all fallback tiers failed",
        )

    # Pair physical UAVs to the planned positions (capacity-aware), then
    # translate sub-fleet indices back to fleet indices.
    old_sub = Deployment(placements={
        i: current.placements[k]
        for i, k in enumerate(available)
        if k in current.placements
    })
    relocation_sub = plan_relocation(
        sub_problem, old_sub, solved.deployment, policy=policy.relocation
    )
    placements = {
        available[i]: dst for i, (_, dst) in relocation_sub.moves.items()
    }
    moves = {
        available[i]: (src, dst)
        for i, (src, dst) in relocation_sub.moves.items()
    }
    relocation = RelocationPlan(
        moves=moves,
        total_distance_m=relocation_sub.total_distance_m,
        max_distance_m=relocation_sub.max_distance_m,
        policy=relocation_sub.policy,
    )
    repaired = optimal_assignment(problem.graph, problem.fleet, placements)

    try:
        validate_deployment(problem.graph, problem.fleet, repaired)
    except ValidationError as exc:
        return RepairOutcome(
            status="invalid", solver=solved, detail=str(exc)
        )
    if not residual_connected(problem, repaired.placements, degraded_links):
        return RepairOutcome(
            status="invalid",
            solver=solved,
            detail="plan disconnected under currently degraded links",
        )
    if repaired.served_count <= current.served_count:
        return RepairOutcome(
            status="no_better",
            deployment=repaired,
            relocation=relocation,
            solver=solved,
            detail=(
                f"plan serves {repaired.served_count} <= degraded "
                f"{current.served_count}"
            ),
        )
    return RepairOutcome(
        status="repaired",
        deployment=repaired,
        relocation=relocation,
        solver=solved,
        detail=(
            f"{solved.answered_by} restored {repaired.served_count} served "
            f"with {len(placements)} UAVs"
        ),
    )
