"""Uniformly distributed users — the control workload."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.area import DisasterArea
from repro.network.users import DEFAULT_MIN_RATE_BPS, users_from_points
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class UniformWorkload:
    """Users placed independently and uniformly over the ground plane."""

    min_rate_bps: float = DEFAULT_MIN_RATE_BPS

    def generate(
        self,
        area: DisasterArea,
        count: int,
        seed: "int | np.random.Generator | None" = None,
    ) -> list:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = ensure_rng(seed)
        xs = rng.uniform(0.0, area.length, size=count)
        ys = rng.uniform(0.0, area.width, size=count)
        return users_from_points(zip(xs, ys), self.min_rate_bps)
