"""User-distribution workloads for the evaluation (Section IV-A).

The paper places 1,000-3,000 users with a fat-tailed density — "many users
are located at a small portion of places while a few users are sparsely
located at many other places" (citing Song et al. [30]).
:mod:`repro.workload.fat_tailed` implements that as Pareto-weighted
Gaussian hotspots over a uniform background; :mod:`repro.workload.uniform`
provides the uniform control; :mod:`repro.workload.scenarios` bundles the
paper's full experimental setup into ready-to-run problem instances.
"""

from repro.workload.aggregate import (
    CellCoverageGraph,
    DemandCell,
    aggregate_problem,
    aggregate_users,
    singleton_cells,
)
from repro.workload.fat_tailed import FatTailedWorkload
from repro.workload.scenarios import ScenarioConfig, build_scenario, paper_scenario
from repro.workload.uniform import UniformWorkload

__all__ = [
    "CellCoverageGraph",
    "DemandCell",
    "FatTailedWorkload",
    "ScenarioConfig",
    "aggregate_problem",
    "aggregate_users",
    "build_scenario",
    "paper_scenario",
    "singleton_cells",
    "UniformWorkload",
]
