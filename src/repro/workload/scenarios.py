"""Ready-made experimental scenarios.

``paper_scenario`` reproduces Section IV-A: a 3 x 3 km disaster zone,
fat-tailed users, heterogeneous capacities in [50, 300], ``H_uav = 300 m``,
``R_uav = 600 m``, ``R_user = 500 m``.

The one knob the paper leaves unstated in its evaluation is the grid side
``lambda`` (Section II-A uses 50 m as an *example*, which yields m = 3600
candidate locations — far beyond what the O(m^{s+1}) algorithm can scan in
pure Python).  ``grid_side_m`` therefore defaults per scale preset:
``paper`` = 300 m (m = 100), ``bench`` = 500 m (m = 36), ``small`` = a
1.5 x 1.5 km zone with 500 m cells (m = 9).  See DESIGN.md "Substitutions".
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.channel.atg import AirToGroundChannel
from repro.channel.presets import get_environment
from repro.core.problem import ProblemInstance
from repro.geometry.area import DisasterArea
from repro.network.coverage import CoverageGraph
from repro.network.fleet import heterogeneous_fleet
from repro.util.rng import ensure_rng
from repro.workload.fat_tailed import FatTailedWorkload


@dataclass(frozen=True)
class ScenarioConfig:
    """All knobs of one experimental scenario."""

    area_length_m: float = 3000.0
    area_width_m: float = 3000.0
    grid_side_m: float = 500.0
    altitude_m: float = 300.0
    #: Optional multi-layer candidate space (extension): when non-empty,
    #: candidate hovering locations are the grid centres at *each* listed
    #: altitude instead of the single ``altitude_m`` plane.  The paper
    #: fixes one optimal altitude; extra layers trade UAV-to-user link
    #: quality for denser UAV-to-UAV connectivity options.
    altitude_layers_m: tuple = ()
    uav_range_m: float = 600.0
    user_range_m: float = 500.0
    num_users: int = 3000
    num_uavs: int = 20
    capacity_min: int = 50
    capacity_max: int = 300
    environment: str = "urban"
    workload: FatTailedWorkload = field(default_factory=FatTailedWorkload)

    def with_overrides(self, **kwargs: object) -> "ScenarioConfig":
        return replace(self, **kwargs)


SCALES = {
    # paper: full 3x3 km zone, fine-ish grid (m = 100 candidates).
    "paper": ScenarioConfig(grid_side_m=300.0),
    # bench: full zone, coarse grid (m = 36) - the default for benchmarks.
    "bench": ScenarioConfig(grid_side_m=500.0),
    # small: quarter-size zone for tests and examples (m = 9).
    "small": ScenarioConfig(
        area_length_m=1500.0,
        area_width_m=1500.0,
        grid_side_m=500.0,
        num_users=300,
        num_uavs=6,
    ),
}


def build_scenario(
    config: ScenarioConfig, seed: "int | np.random.Generator | None" = None
) -> ProblemInstance:
    """Instantiate a :class:`ProblemInstance` from a config and a seed.

    The seed drives both the user placement and the fleet capacities, so a
    (config, seed) pair identifies a scenario exactly.
    """
    rng = ensure_rng(seed)
    area = DisasterArea(config.area_length_m, config.area_width_m)
    altitudes = config.altitude_layers_m or (config.altitude_m,)
    locations: list = []
    for altitude in altitudes:
        grid = area.hovering_grid(config.grid_side_m, altitude)
        locations.extend(grid.centers)
    users = config.workload.generate(area, config.num_users, rng)
    fleet = heterogeneous_fleet(
        config.num_uavs,
        capacity_min=config.capacity_min,
        capacity_max=config.capacity_max,
        user_range_m=config.user_range_m,
        seed=rng,
    )
    graph = CoverageGraph(
        users=users,
        locations=locations,
        uav_range_m=config.uav_range_m,
        channel=AirToGroundChannel(get_environment(config.environment)),
    )
    return ProblemInstance(graph=graph, fleet=fleet)


def paper_scenario(
    num_users: int = 3000,
    num_uavs: int = 20,
    scale: str = "bench",
    seed: "int | np.random.Generator | None" = 0,
    **overrides: object,
) -> ProblemInstance:
    """The Section IV-A scenario at a given scale preset."""
    if scale not in SCALES:
        known = ", ".join(sorted(SCALES))
        raise KeyError(f"unknown scale {scale!r}; known: {known}")
    config = SCALES[scale].with_overrides(
        num_users=num_users, num_uavs=num_uavs, **overrides
    )
    return build_scenario(config, seed)
