"""Fat-tailed hotspot user distribution (Section IV-A, after Song et al.).

Hotspot centres are uniform over the area; hotspot popularity follows a
Pareto (power-law) distribution, so a few hotspots attract most users —
the "fat tail".  Each hotspot user is displaced from its centre by an
isotropic Gaussian; a small background fraction is uniform.  Samples
falling outside the area are redrawn (truncation, not clipping, so no
artificial mass piles up on the boundary).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.area import DisasterArea
from repro.network.users import DEFAULT_MIN_RATE_BPS, users_from_points
from repro.util.rng import ensure_rng


@dataclass(frozen=True)
class FatTailedWorkload:
    """Pareto-weighted Gaussian hotspots over a uniform background.

    Parameters
    ----------
    num_hotspots:
        Number of hotspot centres.
    pareto_alpha:
        Pareto shape for hotspot popularity; smaller = heavier tail
        (Song et al. report exponents near 1.5 for human mobility).
    hotspot_sigma_m:
        Gaussian spread of users around their hotspot centre.
    background_fraction:
        Fraction of users placed uniformly instead of at hotspots.
    rate_classes:
        Optional mixed QoS classes as ``((fraction, min_rate_bps), ...)``;
        fractions must sum to 1.  Users are split into the classes at
        random (e.g. 80% voice at 2 kbps, 20% video at 2.5 Mbps).  When
        ``None`` every user requires ``min_rate_bps``.
    """

    num_hotspots: int = 12
    pareto_alpha: float = 1.5
    hotspot_sigma_m: float = 220.0
    background_fraction: float = 0.15
    min_rate_bps: float = DEFAULT_MIN_RATE_BPS
    rate_classes: "tuple | None" = None

    def __post_init__(self) -> None:
        if self.num_hotspots < 1:
            raise ValueError(
                f"need at least one hotspot, got {self.num_hotspots}"
            )
        if self.pareto_alpha <= 0:
            raise ValueError(
                f"pareto_alpha must be positive, got {self.pareto_alpha}"
            )
        if self.hotspot_sigma_m <= 0:
            raise ValueError(
                f"hotspot_sigma_m must be positive, got {self.hotspot_sigma_m}"
            )
        if not (0.0 <= self.background_fraction <= 1.0):
            raise ValueError(
                "background_fraction must be in [0, 1], got "
                f"{self.background_fraction}"
            )
        if self.rate_classes is not None:
            total = sum(f for f, _ in self.rate_classes)
            if abs(total - 1.0) > 1e-9:
                raise ValueError(
                    f"rate-class fractions must sum to 1, got {total}"
                )
            if any(f < 0 or r < 0 for f, r in self.rate_classes):
                raise ValueError("rate-class entries must be non-negative")

    def generate(
        self,
        area: DisasterArea,
        count: int,
        seed: "int | np.random.Generator | None" = None,
    ) -> list:
        """Generate ``count`` users inside ``area``."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        rng = ensure_rng(seed)
        centres = np.column_stack(
            [
                rng.uniform(0.0, area.length, size=self.num_hotspots),
                rng.uniform(0.0, area.width, size=self.num_hotspots),
            ]
        )
        weights = rng.pareto(self.pareto_alpha, size=self.num_hotspots) + 1.0
        weights /= weights.sum()

        num_background = int(round(count * self.background_fraction))
        num_hotspot_users = count - num_background

        points = []
        if num_background:
            xs = rng.uniform(0.0, area.length, size=num_background)
            ys = rng.uniform(0.0, area.width, size=num_background)
            points.extend(zip(xs, ys))

        assignments = rng.choice(
            self.num_hotspots, size=num_hotspot_users, p=weights
        )
        for h in assignments:
            cx, cy = centres[h]
            # Redraw until inside the area (truncated Gaussian).
            for _ in range(1000):
                x = rng.normal(cx, self.hotspot_sigma_m)
                y = rng.normal(cy, self.hotspot_sigma_m)
                if 0.0 <= x <= area.length and 0.0 <= y <= area.width:
                    points.append((x, y))
                    break
            else:  # pragma: no cover - sigma tiny vs area, cannot trigger
                points.append((cx, cy))

        if self.rate_classes is None:
            return users_from_points(points, self.min_rate_bps)
        # Mixed QoS: draw each user's class from the configured mix.
        fractions = [f for f, _ in self.rate_classes]
        rates = [r for _, r in self.rate_classes]
        picks = rng.choice(len(rates), size=len(points), p=fractions)
        users = []
        for (x, y), cls in zip(points, picks):
            users.extend(users_from_points([(x, y)], rates[int(cls)]))
        return users
