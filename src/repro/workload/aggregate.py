"""Spatial demand-cell aggregation: the million-user scaling layer.

The paper's objective treats every ground user as an individual flow
node, which caps tractable instances far below the "millions of users"
north star.  Disaster-area planning work (Malandrino et al.) aggregates
users into spatial *demand cells* for exactly this reason: users are
binned into a square grid, each non-empty bin becomes one
:class:`DemandCell` with an integer demand (its member count), a
centroid, a covering radius (the farthest member's distance from the
centroid) and a minimum-rate requirement (the most demanding member's).

The aggregated problem is *conservative*: a cell is declared coverable
from a location only if its **farthest, most demanding** member provably
is (the coverage test pads the centroid distance by the cell radius, and
path loss is monotone in ground distance).  Any cell-level assignment
therefore induces a feasible per-user assignment, so the aggregated
served count is a lower bound on the per-user optimum:

* ``served_cells_units <= served_users_optimum`` (admissibility);
* ``sum(cell demands) == num_users`` (demand conservation);
* with **singleton cells** (radius 0, demand 1, centroid = the exact
  user position) the padded test degenerates to the per-user test
  bit-for-bit, so the aggregated solve runs the identical code path and
  returns identical results — the equivalence the oracle suite pins.

The fat-tailed hotspot generator clusters most users around a few
centres, so a modest grid (``cell_size_m`` of 100–200 m) collapses
10^6 users into a few hundred cells.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.problem import ProblemInstance
from repro.geometry.point import Point3D
from repro.network.coverage import CoverageGraph
from repro.network.uav import UAV
from repro.network.users import User


@dataclass(frozen=True)
class DemandCell:
    """One aggregated spatial demand cell.

    Attributes
    ----------
    index:
        The cell's position in its cell list (stable, sorted by grid key).
    x, y:
        Member centroid (metres).
    radius_m:
        Maximum member ground distance from the centroid; the coverage
        test pads by this, so every member is provably in range.
    min_rate_bps:
        Maximum member minimum-rate requirement (most demanding member).
    demand:
        Integer member count — the cell's flow supply.
    members:
        Original user indices, sorted ascending.
    """

    index: int
    x: float
    y: float
    radius_m: float
    min_rate_bps: float
    demand: int
    members: tuple

    def __post_init__(self) -> None:
        if self.demand < 1:
            raise ValueError(f"cell demand must be >= 1, got {self.demand}")
        if self.radius_m < 0:
            raise ValueError(
                f"cell radius must be non-negative, got {self.radius_m}"
            )
        if len(self.members) != self.demand:
            raise ValueError(
                f"cell lists {len(self.members)} members but demand "
                f"{self.demand}"
            )


def aggregate_users(users: list, cell_size_m: float) -> list:
    """Bin users into a square grid of ``cell_size_m`` demand cells.

    Cells are ordered by grid key (lexicographic on the integer bin
    coordinates), so the output is a deterministic function of the user
    list.  Empty bins produce no cell; ``sum(c.demand) == len(users)``.
    """
    if cell_size_m <= 0:
        raise ValueError(f"cell_size_m must be positive, got {cell_size_m}")
    if not users:
        return []
    xy = np.array(
        [[u.position.x, u.position.y] for u in users], dtype=float
    ).reshape(len(users), 2)
    rates = np.array([u.min_rate_bps for u in users], dtype=float)
    keys = np.floor_divide(xy, float(cell_size_m)).astype(np.int64)
    uniq, inverse = np.unique(keys, axis=0, return_inverse=True)
    inverse = inverse.ravel()
    num_cells = len(uniq)
    counts = np.bincount(inverse, minlength=num_cells)
    cx = np.bincount(inverse, weights=xy[:, 0], minlength=num_cells) / counts
    cy = np.bincount(inverse, weights=xy[:, 1], minlength=num_cells) / counts
    spread = np.hypot(xy[:, 0] - cx[inverse], xy[:, 1] - cy[inverse])
    radius = np.zeros(num_cells, dtype=float)
    np.maximum.at(radius, inverse, spread)
    min_rate = np.zeros(num_cells, dtype=float)
    np.maximum.at(min_rate, inverse, rates)
    order = np.argsort(inverse, kind="stable")
    starts = np.searchsorted(inverse[order], np.arange(num_cells))
    bounds = np.append(starts, len(order))
    cells = []
    for c in range(num_cells):
        members = tuple(int(u) for u in order[bounds[c]:bounds[c + 1]])
        cells.append(DemandCell(
            index=c, x=float(cx[c]), y=float(cy[c]),
            radius_m=float(radius[c]), min_rate_bps=float(min_rate[c]),
            demand=int(counts[c]), members=members,
        ))
    return cells


def singleton_cells(users: list) -> list:
    """One cell per user: radius 0, demand 1, centroid = exact position.

    The degenerate aggregation whose solve is bit-identical to the
    per-user path (see module docstring)."""
    return [
        DemandCell(
            index=i, x=u.position.x, y=u.position.y, radius_m=0.0,
            min_rate_bps=u.min_rate_bps, demand=1, members=(i,),
        )
        for i, u in enumerate(users)
    ]


class CellCoverageGraph(CoverageGraph):
    """A coverage graph whose "users" are demand cells.

    The node set reuses the whole :class:`CoverageGraph` machinery (the
    spatial hash, bitset caches, hop structure) with one pseudo-user per
    cell at the cell centroid; only the coverability test changes — it
    pads the centroid distance by the cell radius so that *every* member
    of a coverable cell is provably within range and rate.  With
    singleton cells the pad is 0.0 and the test is bit-identical to the
    base class.
    """

    def __init__(self, cells: list, locations: list, uav_range_m: float,
                 channel=None, bandwidth_hz=None, **kwargs) -> None:
        pseudo_users = [
            User(Point3D(c.x, c.y, 0.0), c.min_rate_bps) for c in cells
        ]
        extra = {} if bandwidth_hz is None else {"bandwidth_hz": bandwidth_hz}
        extra.update(kwargs)
        super().__init__(
            users=pseudo_users, locations=locations,
            uav_range_m=uav_range_m, channel=channel, **extra,
        )
        self.cells: list = list(cells)
        self.cell_radii = np.array([c.radius_m for c in cells], dtype=float)
        self.cell_demands = np.array([c.demand for c in cells], dtype=np.int64)

    # The padded-radius membership test below differs from the base
    # geometry, so the batched all-locations mask does not apply; the
    # bits matrix falls back to stacking this class's coverable_bits.
    _BATCHED_COVERAGE = False

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def total_demand(self) -> int:
        """Total member count over all cells (== original user count)."""
        return int(self.cell_demands.sum())

    def coverable_users(self, loc_index: int, uav: UAV) -> list:
        """Cells whose farthest, most demanding member is provably
        coverable from ``loc_index`` (padded-radius test)."""
        key = (loc_index, self._radio_key(uav))
        cached = self._coverage_cache.get(key)
        if cached is not None:
            return cached
        loc = self.locations[loc_index]
        if self._user_hash is None:
            self._coverage_cache[key] = []
            return []
        # Any cell passing the padded test has a centroid ground distance
        # <= range, so the base prefilter disc still over-covers it.
        candidates = self._user_hash.query_disc(loc.ground(), uav.user_range_m)
        if not candidates:
            self._coverage_cache[key] = []
            return []
        idx = np.array(sorted(candidates), dtype=int)
        dx = self._user_xy[idx, 0] - loc.x
        dy = self._user_xy[idx, 1] - loc.y
        # Pad the centroid distance by the cell radius: the worst-placed
        # member sits at most this far out, and path loss is monotone in
        # ground distance.  radius 0.0 reduces to the per-user test
        # bit-for-bit (x + 0.0 == x in IEEE arithmetic).
        horiz = np.hypot(dx, dy) + self.cell_radii[idx]
        dist3 = np.hypot(horiz, loc.z)
        in_range = dist3 <= uav.user_range_m
        idx = idx[in_range]
        if idx.size == 0:
            self._coverage_cache[key] = []
            return []
        horiz = horiz[in_range]
        pl = self.channel.pathloss_vector_db(horiz, loc.z)
        snr_db = uav.tx_power_dbm + uav.antenna_gain_db - pl - self.noise_dbm
        rates = self.bandwidth_hz * np.log2(1.0 + 10.0 ** (snr_db / 10.0))
        ok = rates >= self._user_min_rate[idx]
        covered = [int(i) for i in idx[ok]]
        self._coverage_cache[key] = covered
        return covered

    def coverage_weight(self, loc_index: int, uav: UAV) -> int:
        """Total demand coverable from ``loc_index`` — the greedy's gain
        unit on cell graphs."""
        key = (loc_index, self._radio_key(uav), "wt")
        cached = self._coverage_cache.get(key)
        if cached is None:
            cached = int(
                self.cell_demands[self.coverable_array(loc_index, uav)].sum()
            )
            self._coverage_cache[key] = cached
        return cached


def aggregate_problem(
    problem: ProblemInstance, cell_size_m: "float | None" = None
) -> ProblemInstance:
    """Re-express a per-user problem over demand cells (same fleet, same
    candidate locations).

    ``cell_size_m=None`` builds singleton cells — the bit-identical
    degenerate aggregation used by the equivalence oracles.
    """
    graph = problem.graph
    cells = (
        singleton_cells(graph.users) if cell_size_m is None
        else aggregate_users(graph.users, cell_size_m)
    )
    cell_graph = CellCoverageGraph(
        cells=cells,
        locations=graph.locations,
        uav_range_m=graph.uav_range_m,
        channel=graph.channel,
        bandwidth_hz=graph.bandwidth_hz,
    )
    # The base graph stores only the derived noise power; copy it so the
    # cell graph's rate test matches the per-user one exactly.
    cell_graph.noise_dbm = graph.noise_dbm
    return ProblemInstance(graph=cell_graph, fleet=problem.fleet)
