"""Optimal LAP (low-altitude platform) altitude — Al-Hourani et al. [2].

The paper assumes "all UAVs hover at the same altitude H_uav ... the
optimal altitude for the maximum coverage from the sky and the value of
H_uav can be calculated by the algorithms in [2], [39]" (Section II-A).
This module implements that computation: for a maximum allowed pathloss
(the link budget), the coverage radius R(h) at altitude h is the largest
horizontal distance whose expected ATG pathloss stays within budget;
R(h) is unimodal in h (low altitudes are NLoS-dominated, high altitudes
pay free-space distance), so ternary search finds the optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.channel.atg import AirToGroundChannel


def coverage_radius_m(
    channel: AirToGroundChannel,
    altitude_m: float,
    max_pathloss_db: float,
    precision_m: float = 1.0,
) -> float:
    """Largest horizontal distance with expected pathloss <= budget.

    The expected ATG pathloss increases monotonically with horizontal
    distance at fixed altitude, so bisection applies.  Returns 0 when even
    the nadir link exceeds the budget.
    """
    if altitude_m <= 0:
        raise ValueError(f"altitude must be positive, got {altitude_m}")
    if precision_m <= 0:
        raise ValueError(f"precision must be positive, got {precision_m}")

    def loss(r: float) -> float:
        return channel.pathloss_at_db(r, altitude_m)

    if loss(0.0) > max_pathloss_db:
        return 0.0
    lo, hi = 0.0, max(altitude_m, precision_m)
    while loss(hi) <= max_pathloss_db and hi < 1e7:
        hi *= 2.0
    while hi - lo > precision_m:
        mid = (lo + hi) / 2.0
        if loss(mid) <= max_pathloss_db:
            lo = mid
        else:
            hi = mid
    return lo


@dataclass(frozen=True)
class OptimalAltitude:
    """Result of the altitude optimisation."""

    altitude_m: float
    coverage_radius_m: float


def optimal_altitude(
    channel: AirToGroundChannel,
    max_pathloss_db: float,
    min_altitude_m: float = 10.0,
    max_altitude_m: float = 5000.0,
    precision_m: float = 1.0,
) -> OptimalAltitude:
    """Altitude maximising the coverage radius, by ternary search.

    ``R(h)`` is unimodal in ``h`` for the Al-Hourani model (validated both
    analytically and empirically in [2]); ternary search over
    ``[min_altitude, max_altitude]`` converges to the maximiser.
    """
    if not (0 < min_altitude_m < max_altitude_m):
        raise ValueError(
            f"need 0 < min < max altitude, got [{min_altitude_m}, "
            f"{max_altitude_m}]"
        )

    def radius(h: float) -> float:
        return coverage_radius_m(channel, h, max_pathloss_db, precision_m)

    lo, hi = min_altitude_m, max_altitude_m
    while hi - lo > precision_m:
        m1 = lo + (hi - lo) / 3.0
        m2 = hi - (hi - lo) / 3.0
        if radius(m1) < radius(m2):
            lo = m1
        else:
            hi = m2
    best_h = (lo + hi) / 2.0
    return OptimalAltitude(
        altitude_m=best_h, coverage_radius_m=radius(best_h)
    )
