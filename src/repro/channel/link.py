"""Link budget: SNR and achievable data rate (Section II-B).

The SNR received by user ``u_i`` from the UAV at ``v_j`` is

    SNR_ij = 10 ** ((P_t^j + g_t^j - PL_ij - P_N) / 10)      [linear]

and the average data rate is ``r_ij = B_w log2(1 + SNR_ij)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.channel.atg import AirToGroundChannel
from repro.channel.constants import (
    DEFAULT_BANDWIDTH_HZ,
    THERMAL_NOISE_DBM_PER_HZ,
)
from repro.geometry.point import Point3D


def noise_power_dbm(bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ,
                    noise_figure_db: float = 7.0) -> float:
    """Receiver noise power ``P_N`` over ``bandwidth_hz`` in dBm.

    Thermal floor (-174 dBm/Hz) integrated over the bandwidth plus the
    receiver noise figure.
    """
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    return THERMAL_NOISE_DBM_PER_HZ + 10.0 * math.log10(bandwidth_hz) + noise_figure_db


def snr_db(tx_power_dbm: float, antenna_gain_db: float,
           pathloss_db: float, noise_dbm: float) -> float:
    """Link SNR in dB: ``P_t + g_t - PL - P_N``."""
    return tx_power_dbm + antenna_gain_db - pathloss_db - noise_dbm


def snr_linear(tx_power_dbm: float, antenna_gain_db: float,
               pathloss_db: float, noise_dbm: float) -> float:
    """Link SNR as a linear ratio (the paper's ``SNR_ij``)."""
    return 10.0 ** (snr_db(tx_power_dbm, antenna_gain_db, pathloss_db, noise_dbm) / 10.0)


def shannon_rate_bps(snr: float, bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ) -> float:
    """Average data rate ``r = B_w log2(1 + SNR)`` in bit/s (SNR linear)."""
    if snr < 0:
        raise ValueError(f"linear SNR must be non-negative, got {snr}")
    if bandwidth_hz <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth_hz}")
    return bandwidth_hz * math.log2(1.0 + snr)


@dataclass(frozen=True, slots=True)
class LinkBudget:
    """End-to-end UAV-to-user link evaluation for one base station.

    Bundles the ATG channel with a base station's transmit power and antenna
    gain so callers can ask directly for the rate a user would see.
    """

    channel: AirToGroundChannel
    tx_power_dbm: float
    antenna_gain_db: float = 0.0
    bandwidth_hz: float = DEFAULT_BANDWIDTH_HZ
    noise_figure_db: float = 7.0

    @property
    def noise_dbm(self) -> float:
        return noise_power_dbm(self.bandwidth_hz, self.noise_figure_db)

    def snr(self, user: Point3D, uav: Point3D) -> float:
        """Linear SNR of the user <- UAV downlink."""
        pl = self.channel.pathloss_db(user, uav)
        return snr_linear(self.tx_power_dbm, self.antenna_gain_db, pl, self.noise_dbm)

    def rate_bps(self, user: Point3D, uav: Point3D) -> float:
        """Achievable Shannon rate of the user <- UAV downlink in bit/s."""
        return shannon_rate_bps(self.snr(user, uav), self.bandwidth_hz)

    def max_horizontal_range_m(
        self, altitude_m: float, min_rate_bps: float, precision_m: float = 1.0
    ) -> float:
        """Largest horizontal distance at which the rate still meets
        ``min_rate_bps``, found by bisection (rate decreases with distance).

        Provides a physically derived alternative to the paper's fixed
        ``R_user`` radii.
        """
        if min_rate_bps <= 0:
            raise ValueError(f"min rate must be positive, got {min_rate_bps}")
        user = Point3D(0.0, 0.0, 0.0)

        def rate_at(r: float) -> float:
            return self.rate_bps(user, Point3D(r, 0.0, altitude_m))

        if rate_at(0.0 + precision_m) < min_rate_bps:
            return 0.0
        lo, hi = precision_m, precision_m * 2
        while rate_at(hi) >= min_rate_bps and hi < 1e7:
            hi *= 2
        while hi - lo > precision_m:
            mid = (lo + hi) / 2
            if rate_at(mid) >= min_rate_bps:
                lo = mid
            else:
                hi = mid
        return lo
