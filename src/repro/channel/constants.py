"""Physical constants and common defaults for the channel models."""

SPEED_OF_LIGHT = 299_792_458.0
"""Velocity of light ``c`` in m/s."""

DEFAULT_CARRIER_HZ = 2.0e9
"""Default carrier frequency ``f_c`` (2 GHz LTE band, as in [2], [37])."""

DEFAULT_BANDWIDTH_HZ = 180e3
"""Default per-user channel bandwidth ``B_w`` (one OFDMA resource block,
180 kHz, Section II-B)."""

THERMAL_NOISE_DBM_PER_HZ = -174.0
"""Thermal noise power spectral density at ~290 K."""
