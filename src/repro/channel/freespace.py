"""Free-space pathloss, used directly for UAV-to-UAV links (Section II-B)
and as the base term of the air-to-ground model."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.channel.constants import DEFAULT_CARRIER_HZ, SPEED_OF_LIGHT


def free_space_pathloss_db(distance_m: float, carrier_hz: float) -> float:
    """Free-space pathloss ``20 log10(4 pi f_c d / c)`` in dB.

    Raises for non-positive distances: the model diverges at d = 0 and the
    simulation never evaluates co-located transceivers.
    """
    if distance_m <= 0:
        raise ValueError(f"distance must be positive, got {distance_m}")
    if carrier_hz <= 0:
        raise ValueError(f"carrier frequency must be positive, got {carrier_hz}")
    return 20.0 * math.log10(4.0 * math.pi * carrier_hz * distance_m / SPEED_OF_LIGHT)


@dataclass(frozen=True, slots=True)
class FreeSpaceChannel:
    """UAV-to-UAV channel: pure free-space propagation."""

    carrier_hz: float = DEFAULT_CARRIER_HZ

    def pathloss_db(self, distance_m: float) -> float:
        return free_space_pathloss_db(distance_m, self.carrier_hz)

    def max_range_m(self, max_pathloss_db: float) -> float:
        """Distance at which pathloss reaches ``max_pathloss_db`` (link-budget
        inversion of the pathloss formula)."""
        if max_pathloss_db <= 0:
            raise ValueError("max pathloss must be positive dB")
        return (
            SPEED_OF_LIGHT
            * 10.0 ** (max_pathloss_db / 20.0)
            / (4.0 * math.pi * self.carrier_hz)
        )
