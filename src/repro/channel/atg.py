"""Probabilistic LoS/NLoS air-to-ground channel (Al-Hourani et al. [2]).

Section II-B of the paper: the expected pathloss between ground user ``u_i``
and a UAV at hovering location ``v_j`` is

    PL_ij = P_LoS * L_LoS + P_NLoS * L_NLoS,

with ``L_LoS/NLoS = FSPL(d_ij) + eta_LoS/NLoS`` and the LoS probability a
sigmoid in the elevation angle theta (degrees):

    P_LoS = 1 / (1 + a * exp(-b * (theta - a))).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.channel.constants import DEFAULT_CARRIER_HZ
from repro.channel.freespace import free_space_pathloss_db
from repro.channel.presets import Environment, URBAN
from repro.geometry.point import Point3D, elevation_angle_deg


def los_probability(elevation_deg: float, env: Environment) -> float:
    """LoS probability for an elevation angle in degrees.

    Monotonically increasing in the angle: straight overhead (90°) is almost
    surely LoS, grazing angles are mostly NLoS in built-up environments.
    """
    if not (0.0 <= elevation_deg <= 90.0):
        raise ValueError(
            f"elevation angle must be within [0, 90] degrees, got {elevation_deg}"
        )
    return 1.0 / (1.0 + env.a * math.exp(-env.b * (elevation_deg - env.a)))


@dataclass(frozen=True, slots=True)
class AirToGroundChannel:
    """Expected-pathloss ATG channel for one propagation environment."""

    environment: Environment = field(default=URBAN)
    carrier_hz: float = DEFAULT_CARRIER_HZ

    def pathloss_db(self, user: Point3D, uav: Point3D) -> float:
        """Expected pathloss PL_ij (dB) between a ground user and a UAV."""
        distance = user.distance_to(uav)
        theta = elevation_angle_deg(user, uav)
        p_los = los_probability(theta, self.environment)
        fspl = free_space_pathloss_db(distance, self.carrier_hz)
        loss_los = fspl + self.environment.eta_los_db
        loss_nlos = fspl + self.environment.eta_nlos_db
        return p_los * loss_los + (1.0 - p_los) * loss_nlos

    def pathloss_at_db(self, horizontal_m: float, altitude_m: float) -> float:
        """Pathloss for given horizontal separation and UAV altitude."""
        if altitude_m <= 0:
            raise ValueError(f"altitude must be positive, got {altitude_m}")
        user = Point3D(0.0, 0.0, 0.0)
        uav = Point3D(horizontal_m, 0.0, altitude_m)
        return self.pathloss_db(user, uav)

    def pathloss_vector_db(self, horizontal_m, altitude_m: float):
        """Vectorised :meth:`pathloss_at_db` over a numpy array of
        horizontal distances (metres).  Used to build coverage sets for
        thousands of users at once."""
        import numpy as np

        if altitude_m <= 0:
            raise ValueError(f"altitude must be positive, got {altitude_m}")
        horizontal = np.asarray(horizontal_m, dtype=float)
        distance = np.hypot(horizontal, altitude_m)
        theta = np.degrees(np.arctan2(altitude_m, horizontal))
        env = self.environment
        p_los = 1.0 / (1.0 + env.a * np.exp(-env.b * (theta - env.a)))
        fspl = 20.0 * np.log10(
            4.0 * math.pi * self.carrier_hz * distance
            / 299_792_458.0
        )
        return fspl + p_los * env.eta_los_db + (1.0 - p_los) * env.eta_nlos_db
