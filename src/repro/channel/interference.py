"""Co-channel interference audit (extension).

The paper — like most UAV-placement work — evaluates links by SNR,
implicitly assuming orthogonal resources across UAVs.  With aggressive
frequency reuse, neighbouring UAVs transmit on the same resource blocks
and a user's link quality is governed by SINR instead.  This module
audits a finished deployment under a reuse-1 worst case: for each served
user, interference is the sum of received powers from every *other*
deployed UAV (scaled by an activity factor), and the user's achievable
rate is recomputed with SINR.

It is an analysis tool, not a constraint in the optimisation — it
quantifies how much of the SNR-based plan survives interference, i.e. the
modelling gap the paper accepts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment


@dataclass(frozen=True)
class UserLinkAudit:
    """One served user's link under interference."""

    user: int
    uav_index: int
    snr_db: float
    sinr_db: float
    rate_snr_bps: float
    rate_sinr_bps: float
    meets_requirement: bool


@dataclass
class InterferenceAudit:
    """Deployment-wide audit results."""

    activity_factor: float
    links: list = field(default_factory=list)
    served: int = 0
    still_satisfied: int = 0
    mean_sinr_loss_db: float = 0.0

    @property
    def survival_fraction(self) -> float:
        return self.still_satisfied / self.served if self.served else 1.0


def audit_interference(
    problem: ProblemInstance,
    deployment: Deployment,
    activity_factor: float = 1.0,
    channel_plan: "object | None" = None,
) -> InterferenceAudit:
    """Recompute every served user's link as SINR.

    ``activity_factor`` in (0, 1] scales interferers' power (fraction of
    time/resources a neighbouring UAV actually transmits on the user's
    resource block; 1.0 is the worst case).  With ``channel_plan`` (a
    :class:`repro.network.spectrum.ChannelPlan`) only *co-channel* UAVs
    interfere — the reuse-N case; without it every other UAV does
    (reuse-1).
    """
    if not (0.0 < activity_factor <= 1.0):
        raise ValueError(
            f"activity factor must be in (0, 1], got {activity_factor}"
        )
    graph = problem.graph
    fleet = problem.fleet
    noise_mw = 10.0 ** (graph.noise_dbm / 10.0)

    def received_mw(user: int, k: int) -> float:
        loc = deployment.placements[k]
        pl = graph.channel.pathloss_db(
            graph.users[user].position, graph.locations[loc]
        )
        rx_dbm = fleet[k].tx_power_dbm + fleet[k].antenna_gain_db - pl
        return 10.0 ** (rx_dbm / 10.0)

    import math

    audit = InterferenceAudit(activity_factor=activity_factor)
    losses = []
    for user, serving_k in sorted(deployment.assignment.items()):
        signal = received_mw(user, serving_k)
        interference = activity_factor * sum(
            received_mw(user, other_k)
            for other_k in deployment.placements
            if other_k != serving_k
            and (
                channel_plan is None
                or channel_plan.co_channel(serving_k, other_k)
            )
        )
        snr = signal / noise_mw
        sinr = signal / (noise_mw + interference)
        rate_snr = graph.bandwidth_hz * math.log2(1.0 + snr)
        rate_sinr = graph.bandwidth_hz * math.log2(1.0 + sinr)
        required = graph.users[user].min_rate_bps
        ok = rate_sinr >= required
        audit.links.append(
            UserLinkAudit(
                user=user,
                uav_index=serving_k,
                snr_db=10.0 * math.log10(snr) if snr > 0 else -math.inf,
                sinr_db=10.0 * math.log10(sinr) if sinr > 0 else -math.inf,
                rate_snr_bps=rate_snr,
                rate_sinr_bps=rate_sinr,
                meets_requirement=ok,
            )
        )
        audit.served += 1
        audit.still_satisfied += int(ok)
        losses.append(
            (10.0 * math.log10(snr) - 10.0 * math.log10(sinr))
            if snr > 0 and sinr > 0 else 0.0
        )
    audit.mean_sinr_loss_db = sum(losses) / len(losses) if losses else 0.0
    return audit
