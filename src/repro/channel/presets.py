"""Propagation-environment presets for the air-to-ground model.

The (a, b) sigmoid parameters and the LoS/NLoS excess losses
``eta_los`` / ``eta_nlos`` (dB) come from Al-Hourani et al. [2], Table/
fitted values widely reused in the UAV-placement literature (e.g. [37],
[45]).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Environment:
    """Fitted parameters of one propagation environment.

    ``a`` and ``b`` parameterise the elevation-angle sigmoid of the LoS
    probability; ``eta_los``/``eta_nlos`` are the average excess shadowing
    losses (dB) added to free-space pathloss on LoS/NLoS links.
    """

    name: str
    a: float
    b: float
    eta_los_db: float
    eta_nlos_db: float


SUBURBAN = Environment("suburban", a=4.88, b=0.43, eta_los_db=0.1, eta_nlos_db=21.0)
URBAN = Environment("urban", a=9.61, b=0.16, eta_los_db=1.0, eta_nlos_db=20.0)
DENSE_URBAN = Environment(
    "dense-urban", a=12.08, b=0.11, eta_los_db=1.6, eta_nlos_db=23.0
)
HIGHRISE_URBAN = Environment(
    "highrise-urban", a=27.23, b=0.08, eta_los_db=2.3, eta_nlos_db=34.0
)

ENVIRONMENTS = {
    env.name: env for env in (SUBURBAN, URBAN, DENSE_URBAN, HIGHRISE_URBAN)
}


def get_environment(name: str) -> Environment:
    """Look up a preset by name, with a helpful error on typos."""
    try:
        return ENVIRONMENTS[name]
    except KeyError:
        known = ", ".join(sorted(ENVIRONMENTS))
        raise KeyError(f"unknown environment {name!r}; known: {known}") from None
