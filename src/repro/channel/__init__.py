"""Wireless channel models (Section II-B).

UAV-to-user links follow the probabilistic LoS/NLoS air-to-ground model of
Al-Hourani et al. ("Optimal LAP altitude for maximum coverage", IEEE WCL
2014): the expected pathloss mixes free-space pathloss plus LoS or NLoS
excess shadowing, weighted by an elevation-angle-dependent LoS probability.
UAV-to-UAV links are pure free-space pathloss (no obstacles in the air).

On top of the pathloss models, :mod:`repro.channel.link` computes SNR and
the Shannon data rate used for the users' minimum-rate constraint.
"""

from repro.channel.atg import AirToGroundChannel, los_probability
from repro.channel.constants import SPEED_OF_LIGHT
from repro.channel.freespace import FreeSpaceChannel, free_space_pathloss_db
from repro.channel.link import LinkBudget, noise_power_dbm, shannon_rate_bps, snr_db
from repro.channel.presets import Environment, ENVIRONMENTS

__all__ = [
    "AirToGroundChannel",
    "los_probability",
    "SPEED_OF_LIGHT",
    "FreeSpaceChannel",
    "free_space_pathloss_db",
    "LinkBudget",
    "noise_power_dbm",
    "shannon_rate_bps",
    "snr_db",
    "Environment",
    "ENVIRONMENTS",
]
