"""GreedyAssign — after Khuller, Purohit and Sarpatwar, "Analyzing the
optimal neighborhood: algorithms for partial and budgeted connected
dominating set problems" (SIAM J. Discrete Math 2020); baseline (iii).

The paper describes this baseline as: "first assigns each candidate
hovering location a profit in a greedy way, then deploys a network
consisting of K UAVs such that the sum of profits in the network is
maximized".  Faithful parts: set-cover-style greedy profits (each
location's profit is the number of users it newly covers when locations
are taken in greedy order, so overlapping locations don't double-count)
and a budgeted connected subgraph maximising total profit.  Simplified:
the budgeted connected optimisation is realised as best-of-seeds greedy
tree growth along the adjacency graph.  Homogeneous and capacity-oblivious
by design, like its source.
"""

from __future__ import annotations

from repro.baselines.common import finalize, grow_connected_greedy, reference_uav
from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment

DEFAULT_SEEDS = 10


def _greedy_profits(problem: ProblemInstance) -> list:
    """Residual set-cover profits: process locations by current marginal
    coverage; a location's profit is the users it covers that no earlier-
    processed location already claimed."""
    graph = problem.graph
    ref = reference_uav(problem)
    remaining = [
        set(graph.coverable_users(v, ref)) for v in range(graph.num_locations)
    ]
    profits = [0] * graph.num_locations
    unprocessed = set(range(graph.num_locations))
    claimed: set = set()
    while unprocessed:
        v = max(
            sorted(unprocessed), key=lambda w: len(remaining[w] - claimed)
        )
        profit = len(remaining[v] - claimed)
        profits[v] = profit
        claimed |= remaining[v]
        unprocessed.discard(v)
        if profit == 0:
            for w in unprocessed:
                profits[w] = 0
            break
    return profits


def greedy_assign(
    problem: ProblemInstance, num_seeds: int = DEFAULT_SEEDS
) -> Deployment:
    """Profit-maximising connected K-subgraph via best-of-seeds growth."""
    profits = _greedy_profits(problem)
    seeds = sorted(
        range(problem.num_locations), key=lambda v: (-profits[v], v)
    )[:max(1, num_seeds)]

    best_locations: list = []
    best_profit = -1
    for seed in seeds:
        chosen = grow_connected_greedy(
            problem,
            seed,
            budget=problem.num_uavs,
            gain=lambda v, _chosen: profits[v],
        )
        total = sum(profits[v] for v in chosen)
        if total > best_profit:
            best_profit = total
            best_locations = chosen
    return finalize(problem, best_locations)
