"""maxThroughput — after Xu et al., "Throughput maximization of UAV
networks" (IEEE/ACM ToN 2022); baseline (iv) in Section IV-A.

Xu et al. deploy ``K`` *homogeneous* capacity-constrained UAVs as a
connected network maximising the sum of user data rates, with a
(1-1/e)/sqrt(K) guarantee.  Faithful parts kept: the objective is
throughput (sum of achievable rates of the users actually picked up, each
UAV serving at most its capacity, users counted once), connectivity is
enforced during construction, and multiple anchor restarts are taken.
Simplified: their tour-splitting machinery is realised as best-of-seeds
greedy connected growth — each step adds the frontier location whose
``capacity`` best uncovered users contribute the most additional rate.
Homogeneous by design: the fleet's reference capacity/radio drives
placement; real heterogeneous capacities enter only the final assignment,
capacity-obliviously.
"""

from __future__ import annotations

from repro.baselines.common import finalize, reference_uav
from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment

DEFAULT_SEEDS = 10


def max_throughput(
    problem: ProblemInstance, num_seeds: int = DEFAULT_SEEDS
) -> Deployment:
    """Best-of-seeds greedy connected growth under a throughput objective."""
    graph = problem.graph
    ref = reference_uav(problem)
    adjacency = graph.location_graph

    # Per location: coverable users sorted by descending rate, with rates.
    rate_lists = []
    for v in range(graph.num_locations):
        pairs = [
            (graph.rate_bps(u, v, ref), u)
            for u in graph.coverable_users(v, ref)
        ]
        pairs.sort(reverse=True)
        rate_lists.append(pairs)

    def marginal_throughput(v: int, taken: set) -> float:
        """Rate added by serving up to ``ref.capacity`` not-yet-taken users
        from location ``v``."""
        total = 0.0
        slots = ref.capacity
        for rate, u in rate_lists[v]:
            if slots == 0:
                break
            if u in taken:
                continue
            total += rate
            slots -= 1
        return total

    seeds = sorted(
        range(graph.num_locations),
        key=lambda v: (-marginal_throughput(v, set()), v),
    )[:max(1, num_seeds)]

    best_locations: list = []
    best_value = -1.0
    for seed in seeds:
        chosen = [seed]
        chosen_set = {seed}
        taken: set = set()
        value = marginal_throughput(seed, taken)
        _claim(rate_lists[seed], ref.capacity, taken)
        frontier = set(adjacency.neighbours(seed))
        while len(chosen) < problem.num_uavs and frontier:
            best_v = max(
                sorted(frontier),
                key=lambda v: marginal_throughput(v, taken),
            )
            value += marginal_throughput(best_v, taken)
            _claim(rate_lists[best_v], ref.capacity, taken)
            chosen.append(best_v)
            chosen_set.add(best_v)
            frontier.discard(best_v)
            frontier.update(
                v for v in adjacency.neighbours(best_v) if v not in chosen_set
            )
        if value > best_value:
            best_value = value
            best_locations = chosen

    return finalize(problem, best_locations)


def _claim(rate_pairs: list, capacity: int, taken: set) -> None:
    """Mark up to ``capacity`` best not-yet-taken users as served."""
    slots = capacity
    for _rate, u in rate_pairs:
        if slots == 0:
            break
        if u in taken:
            continue
        taken.add(u)
        slots -= 1
