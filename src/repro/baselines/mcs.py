"""MCS — Kuo, Lin and Tsai, "Maximizing submodular set function with
connectivity constraint" (IEEE/ACM ToN 2015); baseline (i) in Section IV-A.

Kuo et al. maximise a submodular coverage function by ``K`` connected
wireless routers with a (1-1/e)/(5(sqrt(K)+1)) guarantee.  Faithful parts
kept here: a submodular (union-coverage) objective, connectivity enforced
*during* construction by growing along the candidate adjacency graph, and
restarts from multiple anchor regions.  Simplified: their sub-square
decomposition is replaced by greedy connected growth from the best-coverage
seed locations — the standard practical realisation of their scheme on a
grid.  Homogeneous-UAV assumption: coverage is evaluated with the fleet's
reference radio and no capacities; capacities only enter the final exact
assignment, with UAVs mapped to locations capacity-obliviously.
"""

from __future__ import annotations

from repro.baselines.common import coverage_counts, finalize, reference_uav
from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment

DEFAULT_SEEDS = 10


def mcs(problem: ProblemInstance, num_seeds: int = DEFAULT_SEEDS) -> Deployment:
    """Best-of-``num_seeds`` greedy connected union-coverage growth."""
    graph = problem.graph
    ref = reference_uav(problem)
    counts = coverage_counts(problem, ref)
    covers = [
        frozenset(graph.coverable_users(v, ref))
        for v in range(graph.num_locations)
    ]
    seeds = sorted(
        range(graph.num_locations), key=lambda v: (-counts[v], v)
    )[:max(1, num_seeds)]

    adjacency = graph.location_graph
    best_locations: list = []
    best_covered = -1
    for seed in seeds:
        chosen = [seed]
        chosen_set = {seed}
        covered = set(covers[seed])
        frontier = set(adjacency.neighbours(seed))
        while len(chosen) < problem.num_uavs and frontier:
            best_v = max(
                sorted(frontier),
                key=lambda v: len(covers[v] - covered),
            )
            chosen.append(best_v)
            chosen_set.add(best_v)
            covered |= covers[best_v]
            frontier.discard(best_v)
            frontier.update(
                v for v in adjacency.neighbours(best_v) if v not in chosen_set
            )
        if len(covered) > best_covered:
            best_covered = len(covered)
            best_locations = chosen

    return finalize(problem, best_locations)
