"""Connectivity-free greedy — an upper reference point (ours, not in the
paper): capacity- and heterogeneity-aware greedy placement that *ignores*
the connectivity constraint.  Its deployments are generally infeasible for
the maximum connected coverage problem; they bound how much coverage the
connectivity requirement costs, which the ablation bench reports."""

from __future__ import annotations

from repro.core.assignment import optimal_assignment
from repro.core.problem import ProblemInstance
from repro.flow.bipartite import IncrementalAssignment
from repro.network.deployment import Deployment


def unconstrained_greedy(problem: ProblemInstance) -> Deployment:
    """Greedy exact-marginal-gain placement without connectivity.

    UAVs are placed in decreasing capacity order; each goes to the free
    location with the largest exact gain in served users.
    """
    graph = problem.graph
    fleet = problem.fleet
    engine = IncrementalAssignment(graph.num_users)
    placements: dict = {}
    used: set = set()
    for k in problem.capacity_order():
        uav = fleet[k]
        best_gain = -1
        best_v = -1
        for v in range(graph.num_locations):
            if v in used:
                continue
            cover = graph.coverable_users(v, uav)
            if min(uav.capacity, len(cover)) <= best_gain:
                continue
            gain = engine.try_open((k, v), cover, uav.capacity)
            engine.rollback()
            if gain > best_gain:
                best_gain, best_v = gain, v
        if best_v < 0:
            break
        engine.open(
            (k, best_v), graph.coverable_users(best_v, uav), uav.capacity
        )
        placements[k] = best_v
        used.add(best_v)
    return optimal_assignment(graph, fleet, placements)
