"""Random connected placement — a sanity-check lower bound (ours, not in
the paper): grow a connected location set by uniformly random frontier
picks, then assign users optimally."""

from __future__ import annotations

import numpy as np

from repro.baselines.common import finalize
from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment
from repro.util.rng import ensure_rng


def random_connected(
    problem: ProblemInstance,
    seed: "int | np.random.Generator | None" = None,
) -> Deployment:
    """Uniform random connected growth to ``K`` locations."""
    rng = ensure_rng(seed)
    adjacency = problem.graph.location_graph
    start = int(rng.integers(0, problem.num_locations))
    chosen = [start]
    chosen_set = {start}
    frontier = sorted(adjacency.neighbours(start))
    while len(chosen) < problem.num_uavs and frontier:
        v = frontier[int(rng.integers(0, len(frontier)))]
        chosen.append(v)
        chosen_set.add(v)
        frontier = sorted(
            {
                w
                for c in chosen
                for w in adjacency.neighbours(c)
                if w not in chosen_set
            }
        )
    return finalize(problem, chosen)
