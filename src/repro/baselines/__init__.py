"""Baseline placement algorithms the paper compares against (Section IV-A).

All four baselines were designed for *homogeneous* UAVs; none of their
reference implementations are public, so each module re-implements the
algorithmic idea described in its source paper and documents what was kept
and what was simplified.  To make the comparison exactly the one the paper
runs, every baseline (i) places UAVs capacity-obliviously — fleet indices
are mapped to chosen locations in index order, so a large-capacity UAV may
well end up on a relay spot — and (ii) receives the same exact max-flow
user assignment (Section II-D) at the end.
"""

from repro.baselines.greedy_assign import greedy_assign
from repro.baselines.max_throughput import max_throughput
from repro.baselines.mcs import mcs
from repro.baselines.motionctrl import motion_ctrl
from repro.baselines.random_connected import random_connected
from repro.baselines.unconstrained import unconstrained_greedy

__all__ = [
    "greedy_assign",
    "max_throughput",
    "mcs",
    "motion_ctrl",
    "random_connected",
    "unconstrained_greedy",
]
