"""MotionCtrl — after Zhao, Wang, Wu and Wei, "Deployment algorithms for
UAV airborne networks toward on-demand coverage" (IEEE JSAC 2018);
baseline (ii) in Section IV-A.

Zhao et al. fly a connected swarm towards user demand with a distributed
motion-control rule: each UAV repeatedly makes a small move that increases
covered users while the swarm stays connected.  Faithful parts kept: a
compact connected initial formation near the users' centroid, and
iterated single-UAV moves to neighbouring cells accepted only when they
increase total union coverage and preserve connectivity, until a local
optimum.  Simplified: continuous motion is discretised to the candidate
grid (our placement space) and the virtual-force heuristics are replaced
by best-improvement local search.  Homogeneous and capacity-oblivious like
its source; capacities enter only the final exact assignment.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.common import finalize, reference_uav
from repro.core.problem import ProblemInstance
from repro.graphs.bfs import is_connected
from repro.network.deployment import Deployment

DEFAULT_MAX_ROUNDS = 25


def _initial_formation(problem: ProblemInstance) -> list:
    """A compact connected cluster of K cells closest (in hops) to the
    location nearest the users' centroid."""
    graph = problem.graph
    if graph.num_users:
        cx = float(np.mean([u.position.x for u in graph.users]))
        cy = float(np.mean([u.position.y for u in graph.users]))
    else:
        cx = cy = 0.0
    start = min(
        range(graph.num_locations),
        key=lambda v: (graph.locations[v].x - cx) ** 2
        + (graph.locations[v].y - cy) ** 2,
    )
    hops = graph.hops_from(start)
    reachable = [v for v, d in enumerate(hops) if d >= 0]
    reachable.sort(key=lambda v: (hops[v], v))
    return reachable[: problem.num_uavs]


class _UnionCoverage:
    """Union-coverage counter supporting O(|cover|) move evaluation."""

    def __init__(self, covers: list, initial: list) -> None:
        self._covers = covers
        self._count = {}
        self.size = 0
        for v in initial:
            self._apply(v, +1)

    def _apply(self, v: int, delta: int) -> None:
        for u in self._covers[v]:
            c = self._count.get(u, 0) + delta
            self._count[u] = c
            if delta > 0 and c == 1:
                self.size += 1
            elif delta < 0 and c == 0:
                self.size -= 1

    def move_gain(self, src: int, dst: int) -> int:
        """Union-size change of replacing ``src`` by ``dst`` (state
        restored before returning)."""
        before = self.size
        self._apply(src, -1)
        self._apply(dst, +1)
        after = self.size
        self._apply(dst, -1)
        self._apply(src, +1)
        return after - before

    def commit_move(self, src: int, dst: int) -> None:
        self._apply(src, -1)
        self._apply(dst, +1)


def motion_ctrl(
    problem: ProblemInstance, max_rounds: int = DEFAULT_MAX_ROUNDS
) -> Deployment:
    """Local-search motion control from a compact centroid formation."""
    graph = problem.graph
    adjacency = graph.location_graph
    ref = reference_uav(problem)
    covers = [
        graph.coverable_users(v, ref) for v in range(graph.num_locations)
    ]

    positions = _initial_formation(problem)
    occupied = set(positions)
    union = _UnionCoverage(covers, positions)

    for _ in range(max_rounds):
        improved = False
        for idx in range(len(positions)):
            src = positions[idx]
            best_gain = 0
            best_dst = -1
            for dst in sorted(adjacency.neighbours(src)):
                if dst in occupied:
                    continue
                others = occupied - {src}
                if not is_connected(adjacency, others | {dst}):
                    continue
                gain = union.move_gain(src, dst)
                if gain > best_gain:
                    best_gain, best_dst = gain, dst
            if best_dst >= 0:
                union.commit_move(src, best_dst)
                occupied.discard(src)
                occupied.add(best_dst)
                positions[idx] = best_dst
                improved = True
        if not improved:
            break

    return finalize(problem, positions)
