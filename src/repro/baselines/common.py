"""Shared helpers for the baseline algorithms."""

from __future__ import annotations

from repro.core.assignment import optimal_assignment
from repro.core.problem import ProblemInstance
from repro.network.deployment import Deployment
from repro.network.uav import UAV


def reference_uav(problem: ProblemInstance) -> UAV:
    """The "homogeneous" UAV the baselines plan with: median capacity and
    the fleet's common radio/range (baseline papers assume one UAV type)."""
    caps = sorted(u.capacity for u in problem.fleet)
    median_cap = caps[len(caps) // 2]
    sample = problem.fleet[0]
    return UAV(
        capacity=median_cap,
        tx_power_dbm=sample.tx_power_dbm,
        antenna_gain_db=sample.antenna_gain_db,
        user_range_m=sample.user_range_m,
        name="reference",
    )


def finalize(problem: ProblemInstance, locations: list) -> Deployment:
    """Capacity-oblivious staffing + exact final assignment.

    UAVs are mapped onto the chosen locations in fleet-index order (the
    heterogeneity-unaware behaviour the paper ascribes to prior work), and
    users are then assigned optimally by max-flow.
    """
    chosen = list(dict.fromkeys(locations))  # dedupe, keep order
    if len(chosen) > problem.num_uavs:
        raise ValueError(
            f"{len(chosen)} locations chosen for only {problem.num_uavs} UAVs"
        )
    placements = {k: loc for k, loc in enumerate(chosen)}
    return optimal_assignment(problem.graph, problem.fleet, placements)


def coverage_counts(problem: ProblemInstance, uav: UAV) -> list:
    """Number of coverable users per candidate location for one radio."""
    graph = problem.graph
    return [
        len(graph.coverable_users(v, uav)) for v in range(graph.num_locations)
    ]


def grow_connected_greedy(
    problem: ProblemInstance,
    seed_location: int,
    budget: int,
    gain,
) -> list:
    """Grow a connected location set from ``seed_location`` up to ``budget``
    nodes, at each step adding the frontier location maximising
    ``gain(location, chosen_so_far)``.  Returns the chosen locations in
    insertion order."""
    graph = problem.graph.location_graph
    chosen = [seed_location]
    chosen_set = {seed_location}
    frontier = set(graph.neighbours(seed_location))
    while len(chosen) < budget and frontier:
        best_v = max(
            sorted(frontier), key=lambda v: gain(v, chosen)
        )
        chosen.append(best_v)
        chosen_set.add(best_v)
        frontier.discard(best_v)
        frontier.update(
            v for v in graph.neighbours(best_v) if v not in chosen_set
        )
    return chosen
