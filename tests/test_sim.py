"""Tests for the simulation harness: runner, results, sweeps."""

import pytest

from repro.sim.experiments import fig4_sweep, fig5_sweep, fig6_sweep
from repro.sim.results import RunRecord, SweepResult
from repro.sim.runner import ALGORITHMS, run_algorithm
from repro.workload.scenarios import paper_scenario


@pytest.fixture(scope="module")
def tiny():
    return paper_scenario(num_users=120, num_uavs=4, scale="small", seed=2)


class TestRunner:
    def test_all_algorithms_registered(self):
        assert {
            "approAlg",
            "MCS",
            "MotionCtrl",
            "GreedyAssign",
            "maxThroughput",
            "RandomConnected",
            "Unconstrained",
        } == set(ALGORITHMS)

    def test_unknown_algorithm(self, tiny):
        with pytest.raises(KeyError, match="known"):
            run_algorithm(tiny, "Oracle9000")

    def test_run_records_fields(self, tiny):
        rec = run_algorithm(tiny, "MCS")
        assert rec.algorithm == "MCS"
        assert 0 <= rec.served <= tiny.num_users
        assert rec.runtime_s >= 0.0
        assert rec.num_users == tiny.num_users
        assert rec.num_uavs == tiny.num_uavs
        assert 0.0 <= rec.served_fraction <= 1.0

    def test_every_algorithm_valid_on_tiny(self, tiny):
        for name in ALGORITHMS:
            params = {"s": 2, "gain_mode": "fast"} if name == "approAlg" else {}
            rec = run_algorithm(tiny, name, **params)  # validates internally
            assert rec.served >= 0


class TestSweepResult:
    def make(self) -> SweepResult:
        sweep = SweepResult(name="demo", sweep_param="K")
        for k, served in ((2, 10), (4, 20)):
            for alg in ("A", "B"):
                sweep.add(
                    k,
                    RunRecord(
                        algorithm=alg,
                        served=served + (5 if alg == "B" else 0),
                        runtime_s=0.1,
                        num_users=100,
                        num_uavs=k,
                    ),
                )
        return sweep

    def test_series(self):
        sweep = self.make()
        series = sweep.series("served")
        assert series["A"] == {2: 10, 4: 20}
        assert series["B"] == {2: 15, 4: 25}

    def test_rows_and_tables(self):
        sweep = self.make()
        headers, rows = sweep.rows()
        assert headers == ["K", "A", "B"]
        assert rows[0] == [2, 10, 20] or rows[0] == [2, 10.0, 15.0]
        text = sweep.to_text()
        assert "K" in text and "A" in text
        md = sweep.to_markdown()
        assert md.startswith("| K |")

    def test_mean_over_repetitions(self):
        sweep = SweepResult(name="demo", sweep_param="K")
        for served in (10, 20):
            sweep.add(2, RunRecord("A", served, 0.1, 100, 2))
        assert sweep.series()["A"][2] == 15.0

    def test_samples_and_std(self):
        sweep = SweepResult(name="demo", sweep_param="K")
        for served in (10, 20, 30):
            sweep.add(2, RunRecord("A", served, 0.1, 100, 2))
        assert sweep.samples()["A"][2] == [10, 20, 30]
        assert sweep.series()["A"][2] == 20.0
        assert sweep.series_std()["A"][2] == pytest.approx(10.0)

    def test_std_zero_single_sample(self):
        sweep = SweepResult(name="demo", sweep_param="K")
        sweep.add(2, RunRecord("A", 10, 0.1, 100, 2))
        assert sweep.series_std()["A"][2] == 0.0

    def test_to_csv(self):
        sweep = self.make()
        csv = sweep.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "K,A,B"
        assert lines[1].startswith("2,")
        assert len(lines) == 3


class TestSweeps:
    def test_fig4_tiny(self):
        result = fig4_sweep(
            ks=(2, 3),
            num_users=80,
            s=1,
            scale="small",
            algorithms=("approAlg", "MCS"),
            max_anchor_candidates=4,
        )
        series = result.series()
        assert set(series) == {"approAlg", "MCS"}
        assert set(series["approAlg"]) == {2, 3}
        # More UAVs serve at least roughly as many users.
        assert series["approAlg"][3] >= series["approAlg"][2] * 0.8

    def test_fig5_tiny(self):
        result = fig5_sweep(
            ns=(50, 100),
            num_uavs=3,
            s=1,
            scale="small",
            algorithms=("approAlg",),
            max_anchor_candidates=4,
        )
        series = result.series()["approAlg"]
        assert series[100] >= series[50] * 0.9

    def test_fig6_tiny(self):
        result = fig6_sweep(
            ss=(1, 2),
            num_users=80,
            num_uavs=4,
            scale="small",
            algorithms=("approAlg",),
            max_anchor_candidates=4,
        )
        served = result.series("served")["approAlg"]
        runtime = result.series("runtime_s")["approAlg"]
        assert set(served) == {1, 2}
        assert all(v >= 0 for v in runtime.values())

    def test_capacity_spread_sweep_tiny(self):
        from repro.sim.experiments import capacity_spread_sweep

        result = capacity_spread_sweep(
            spreads=((5, 5), (2, 8)),
            num_users=60,
            num_uavs=3,
            s=1,
            scale="small",
            max_anchor_candidates=4,
        )
        series = result.series()["approAlg"]
        assert set(series) == {"[5,5]", "[2,8]"}
        assert all(v >= 0 for v in series.values())

    def test_environment_sweep_tiny(self):
        from repro.sim.experiments import environment_sweep

        result = environment_sweep(
            environments=("suburban", "highrise-urban"),
            num_users=60,
            num_uavs=3,
            min_rate_bps=2.5e6,
            s=1,
            scale="small",
            max_anchor_candidates=4,
        )
        series = result.series()["approAlg"]
        assert series["highrise-urban"] <= series["suburban"]

    def test_fig4_skips_infeasible_ks(self):
        """K values beyond the scale's candidate-location count (one UAV
        per grid at most) are skipped instead of crashing the sweep —
        `repro fig4 --scale small` reaches K=20 on a 9-location grid."""
        result = fig4_sweep(
            ks=(2, 20),
            num_users=40,
            s=1,
            scale="small",
            algorithms=("MCS",),
        )
        assert set(result.series()["MCS"]) == {2}

    def test_fig4_rejects_all_infeasible_ks(self):
        with pytest.raises(ValueError, match="no feasible sweep point"):
            fig4_sweep(ks=(20, 30), num_users=40, scale="small")

    def test_repetitions_average(self):
        result = fig4_sweep(
            ks=(2,),
            num_users=40,
            s=1,
            scale="small",
            repetitions=2,
            algorithms=("MCS",),
        )
        assert len(result.records) == 2
