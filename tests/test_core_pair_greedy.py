"""Tests for the pair-greedy (textbook FNW) inner loop."""

import pytest

from repro.core.approx import appro_alg
from repro.core.greedy import anchored_greedy, pair_greedy
from repro.core.segments import optimal_segments
from repro.network.validate import validate_deployment
from tests.conftest import make_line_instance


class TestPairGreedy:
    def make_problem(self):
        return make_line_instance(
            num_locations=6, users_per_location=3,
            capacities=(5, 1, 3, 2, 4, 3),
        )

    def test_anchors_included(self):
        problem = self.make_problem()
        plan = optimal_segments(problem.num_uavs, 2)
        result = pair_greedy(problem, [1, 4], plan)
        assert {1, 4} <= {loc for _, loc in result.chosen}

    def test_uavs_and_locations_unique(self):
        problem = self.make_problem()
        plan = optimal_segments(problem.num_uavs, 2)
        result = pair_greedy(problem, [0, 3], plan)
        uavs = [k for k, _ in result.chosen]
        locs = [v for _, v in result.chosen]
        assert len(uavs) == len(set(uavs))
        assert len(locs) == len(set(locs))

    def test_can_outperform_or_match_sorted_on_tricky_capacities(self):
        """Pair greedy may place a small UAV on a small pile instead of
        burning the largest UAV there; it must never be much worse."""
        problem = self.make_problem()
        plan = optimal_segments(problem.num_uavs, 2)
        sorted_result = anchored_greedy(problem, [1, 4], plan)
        pair_result = pair_greedy(problem, [1, 4], plan)
        assert pair_result.served >= 0.8 * sorted_result.served

    def test_respects_lmax(self):
        problem = self.make_problem()
        plan = optimal_segments(4, 2)
        result = pair_greedy(problem, [2, 3], plan)
        assert len(result.chosen) <= plan.lmax

    def test_rejects_bad_anchor_count(self):
        problem = self.make_problem()
        plan = optimal_segments(problem.num_uavs, 2)
        with pytest.raises(ValueError):
            pair_greedy(problem, [0], plan)


class TestApproWithPairsInner:
    def test_end_to_end_feasible(self):
        problem = make_line_instance(
            num_locations=5, users_per_location=2,
            capacities=(3, 1, 2, 2, 3),
        )
        result = appro_alg(problem, s=2, inner="pairs")
        validate_deployment(problem.graph, problem.fleet, result.deployment)
        baseline = appro_alg(problem, s=2, inner="sorted")
        assert result.served >= 0.8 * baseline.served

    def test_rejects_unknown_inner(self):
        problem = make_line_instance()
        with pytest.raises(ValueError, match="inner"):
            appro_alg(problem, s=2, inner="magic")

    def test_small_scenario(self, small_scenario):
        result = appro_alg(
            small_scenario, s=2, inner="pairs", max_anchor_candidates=4
        )
        validate_deployment(
            small_scenario.graph, small_scenario.fleet, result.deployment
        )
        assert result.served > 0
