"""Tests for the resilience / failure-impact extension."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approx import appro_alg
from repro.graphs.adjacency import Graph
from repro.network.deployment import Deployment
from repro.network.resilience import (
    articulation_points,
    single_failure_impacts,
    worst_single_failure,
)
from tests.conftest import make_line_instance


class TestArticulationPoints:
    def test_chain(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert articulation_points(g, [0, 1, 2, 3, 4]) == {1, 2, 3}

    def test_cycle_has_none(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert articulation_points(g, [0, 1, 2, 3]) == set()

    def test_star_center(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2), (0, 3)])
        assert articulation_points(g, [0, 1, 2, 3]) == {0}

    def test_induced_subgraph_only(self):
        # Full graph is a cycle, but the induced path 0-1-2 has cut 1.
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert articulation_points(g, [0, 1, 2]) == {1}

    def test_empty_and_single(self):
        g = Graph(3)
        assert articulation_points(g, []) == set()
        assert articulation_points(g, [1]) == set()

    @given(st.integers(0, 10_000), st.integers(2, 18), st.floats(0.05, 0.6))
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx(self, seed, n, p):
        rng = np.random.default_rng(seed)
        ours = Graph(n)
        theirs = nx.Graph()
        theirs.add_nodes_from(range(n))
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < p:
                    ours.add_edge(i, j)
                    theirs.add_edge(i, j)
        expected = set(nx.articulation_points(theirs))
        assert articulation_points(ours, list(range(n))) == expected


class TestFailureImpacts:
    def make_problem(self):
        return make_line_instance(
            num_locations=5, users_per_location=2,
            capacities=(2, 2, 2, 2, 2),
        )

    def test_chain_deployment_middle_is_critical(self):
        problem = self.make_problem()
        dep = Deployment(placements={k: k for k in range(5)})
        impacts = {fi.uav_index: fi for fi in
                   single_failure_impacts(problem, dep)}
        # Middle UAVs split the chain; ends do not.
        assert impacts[2].splits_network
        assert not impacts[0].splits_network
        assert not impacts[4].splits_network
        # Losing the middle strands one side: 2 (failed pile) + 2 piles
        # stranded = 6 users lost; losing an end costs only its pile.
        assert impacts[2].served_lost == 6
        assert impacts[0].served_lost == 2

    def test_losses_accounting(self):
        problem = self.make_problem()
        dep = Deployment(placements={k: k for k in range(5)})
        for fi in single_failure_impacts(problem, dep):
            assert fi.served_after + fi.served_lost == 10
            assert 0 <= fi.surviving_uavs < 5

    def test_sorted_worst_first(self):
        problem = self.make_problem()
        dep = Deployment(placements={k: k for k in range(5)})
        impacts = single_failure_impacts(problem, dep)
        losses = [fi.served_lost for fi in impacts]
        assert losses == sorted(losses, reverse=True)
        worst = worst_single_failure(problem, dep)
        assert worst.served_lost == losses[0]

    def test_empty_deployment(self):
        problem = self.make_problem()
        assert worst_single_failure(problem, Deployment.empty()) is None

    def test_real_deployment_impacts(self, small_scenario):
        result = appro_alg(small_scenario, s=2, gain_mode="fast")
        impacts = single_failure_impacts(small_scenario, result.deployment)
        assert len(impacts) == result.deployment.num_deployed
        for fi in impacts:
            assert fi.served_lost >= 0


class TestHarden:
    def test_bypasses_chain_cut(self):
        """A 3-UAV chain on the bottom row of a 3x2 lattice: the middle
        UAV is a cut vertex; the bypass runs over the full top row
        (0-3-4-5-2), consuming three spares."""
        from repro.core.problem import ProblemInstance
        from repro.geometry.area import DisasterArea
        from repro.network.coverage import CoverageGraph
        from repro.network.resilience import harden
        from repro.network.uav import UAV
        from repro.network.users import users_from_points

        area = DisasterArea(1500.0, 1000.0)
        grid = area.hovering_grid(500.0, 300.0)  # 3 x 2 grid
        users = users_from_points([(250.0, 250.0), (1250.0, 250.0)])
        graph = CoverageGraph(users=users, locations=list(grid.centers),
                              uav_range_m=600.0)
        fleet = [UAV(capacity=2)] * 6
        problem = ProblemInstance(graph=graph, fleet=list(fleet))
        # Bottom row: locations 0, 1, 2.  UAVs 3-5 are spare.
        dep = Deployment(placements={0: 0, 1: 1, 2: 2})
        result = harden(problem, dep)
        assert result.cut_vertices_before == 1
        assert result.cut_vertices_after == 0
        assert sorted(loc for _, loc in result.added) == [3, 4, 5]
        from repro.network.validate import validate_deployment
        validate_deployment(problem.graph, problem.fleet, result.deployment)

    def test_insufficient_spares_stops_gracefully(self):
        """Same lattice, but only one spare: the 3-node bypass cannot be
        staffed; harden adds nothing."""
        from repro.core.problem import ProblemInstance
        from repro.geometry.area import DisasterArea
        from repro.network.coverage import CoverageGraph
        from repro.network.resilience import harden
        from repro.network.uav import UAV
        from repro.network.users import users_from_points

        area = DisasterArea(1500.0, 1000.0)
        grid = area.hovering_grid(500.0, 300.0)
        users = users_from_points([(250.0, 250.0)])
        graph = CoverageGraph(users=users, locations=list(grid.centers),
                              uav_range_m=600.0)
        problem = ProblemInstance(
            graph=graph, fleet=[UAV(capacity=2)] * 4
        )
        dep = Deployment(placements={0: 0, 1: 1, 2: 2})
        result = harden(problem, dep)
        assert result.added == []
        assert result.cut_vertices_after == 1

    def test_no_spares_no_change(self):
        problem = make_line_instance(num_locations=4, users_per_location=2,
                                     capacities=(2, 2, 2))
        from repro.network.resilience import harden

        dep = Deployment(placements={0: 0, 1: 1, 2: 2})
        result = harden(problem, dep)
        assert result.added == []
        assert result.deployment.placements == dep.placements

    def test_line_graph_cannot_be_hardened(self):
        """On a pure line there is no bypass location; harden stops
        gracefully with cut vertices remaining."""
        problem = make_line_instance(num_locations=6, users_per_location=1,
                                     capacities=(1, 1, 1, 1))
        from repro.network.resilience import harden

        dep = Deployment(placements={0: 0, 1: 1, 2: 2})
        result = harden(problem, dep)
        assert result.cut_vertices_after == result.cut_vertices_before
        assert result.added == []

    def test_max_extra_respected(self, small_scenario):
        from repro.network.resilience import harden
        from repro.baselines.random_connected import random_connected

        dep = random_connected(small_scenario, seed=6)
        result = harden(small_scenario, dep, max_extra=1)
        assert len(result.added) <= 1
        from repro.network.validate import validate_deployment
        validate_deployment(
            small_scenario.graph, small_scenario.fleet, result.deployment
        )

    def test_hardening_never_loses_coverage(self, small_scenario):
        from repro.network.resilience import harden
        from repro.baselines.random_connected import random_connected

        dep = random_connected(small_scenario, seed=8)
        result = harden(small_scenario, dep)
        assert result.deployment.served_count >= dep.served_count
        assert result.cut_vertices_after <= result.cut_vertices_before

    def test_rejects_negative_max_extra(self, small_scenario):
        from repro.network.resilience import harden

        with pytest.raises(ValueError):
            harden(small_scenario, Deployment.empty(), max_extra=-1)


def _brute_force_cuts(graph: Graph, nodes: list) -> set:
    """Articulation points by definition: delete each node and recount
    connected components among the survivors."""

    def components(members: set) -> int:
        count = 0
        seen: set = set()
        for start in members:
            if start in seen:
                continue
            count += 1
            stack = [start]
            seen.add(start)
            while stack:
                v = stack.pop()
                for w in graph.neighbours(v):
                    if w in members and w not in seen:
                        seen.add(w)
                        stack.append(w)
        return count

    node_set = set(nodes)
    base = components(node_set)
    cuts = set()
    for v in node_set:
        if components(node_set - {v}) > base:
            cuts.add(v)
    return cuts


class TestArticulationPointsVsBruteForce:
    """Property tests: the iterative Tarjan implementation must agree with
    brute-force per-node removal on arbitrary small graphs."""

    @given(st.integers(0, 10_000), st.integers(1, 14), st.floats(0.0, 1.0))
    @settings(max_examples=60, deadline=None)
    def test_random_graphs(self, seed, n, p):
        rng = np.random.default_rng(seed)
        g = Graph(n)
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < p:
                    g.add_edge(i, j)
        nodes = list(range(n))
        assert articulation_points(g, nodes) == _brute_force_cuts(g, nodes)

    @given(st.integers(0, 10_000), st.integers(3, 14))
    @settings(max_examples=25, deadline=None)
    def test_random_induced_subsets(self, seed, n):
        """The induced-subgraph contract: cuts of a node subset, not of the
        whole graph."""
        rng = np.random.default_rng(seed)
        g = Graph(n)
        for i in range(n):
            for j in range(i + 1, n):
                if rng.random() < 0.35:
                    g.add_edge(i, j)
        nodes = sorted(
            int(v) for v in rng.permutation(n)[: max(1, n // 2)]
        )
        assert articulation_points(g, nodes) == _brute_force_cuts(g, nodes)

    @given(st.integers(2, 16))
    @settings(max_examples=15, deadline=None)
    def test_chains(self, n):
        g = Graph.from_edges(n, [(i, i + 1) for i in range(n - 1)])
        nodes = list(range(n))
        expected = set(range(1, n - 1))
        assert articulation_points(g, nodes) == expected
        assert _brute_force_cuts(g, nodes) == expected

    @given(st.integers(2, 10))
    @settings(max_examples=9, deadline=None)
    def test_cliques_have_no_cuts(self, n):
        g = Graph.from_edges(
            n, [(i, j) for i in range(n) for j in range(i + 1, n)]
        )
        nodes = list(range(n))
        assert articulation_points(g, nodes) == set()
        assert _brute_force_cuts(g, nodes) == set()
