"""Schema guard: the durable on-disk formats are frozen per version.

A checkpoint or ledger written by one build must stay readable by the
next — resumability across versions is the whole point.  This test pins
the exact field set of each format *version*: changing the schema without
bumping the format number fails here, and bumping the number forces you
to extend the frozen tables below (documenting the new shape).
"""

from __future__ import annotations

from repro.core.checkpoint import (
    CHECKPOINT_FIELDS,
    CHECKPOINT_FORMAT,
    CHECKPOINT_KIND,
    COUNT_KEYS,
)
from repro.util.ledger import LEDGER_FORMAT, LEDGER_KIND

#: format version -> exact top-level checkpoint keys.  NEVER edit an
#: existing entry; add a new one when bumping CHECKPOINT_FORMAT.
FROZEN_CHECKPOINT_SCHEMAS = {
    1: (
        "kind", "format", "run_key", "work_key", "s", "domain", "total",
        "completed", "best", "counts", "exhausted_s", "complete",
        "created_unix",
    ),
}

FROZEN_COUNT_KEYS = {
    1: ("pruned", "evaluated", "infeasible", "bound_skipped"),
}

#: format version -> the progress-ledger's top-level keys.
FROZEN_LEDGER_SCHEMAS = {
    1: ("kind", "format", "fingerprint", "done"),
}


def _frozen(table: dict, version: int, what: str):
    assert version in table, (
        f"{what} format {version} has no frozen schema entry — add one to "
        f"tests/test_checkpoint_schema_guard.py documenting the new shape"
    )
    return table[version]


def test_checkpoint_fields_match_frozen_schema():
    expected = _frozen(
        FROZEN_CHECKPOINT_SCHEMAS, CHECKPOINT_FORMAT, "checkpoint"
    )
    assert tuple(CHECKPOINT_FIELDS) == expected, (
        "CHECKPOINT_FIELDS changed without bumping CHECKPOINT_FORMAT — "
        "old checkpoints would be silently misread.  Bump the format and "
        "add a new frozen entry."
    )


def test_checkpoint_count_keys_match_frozen_schema():
    expected = _frozen(FROZEN_COUNT_KEYS, CHECKPOINT_FORMAT, "checkpoint")
    assert tuple(COUNT_KEYS) == expected, (
        "COUNT_KEYS changed without bumping CHECKPOINT_FORMAT"
    )


def test_written_checkpoint_carries_exactly_the_frozen_fields(tmp_path):
    from repro.core.checkpoint import CheckpointConfig, SolveCheckpoint

    ck = SolveCheckpoint(
        CheckpointConfig(path=tmp_path / "ck.json"), "run-key"
    )
    ck.enter_level(2, "raw", 10)
    ck.flush()
    import json

    payload = json.loads((tmp_path / "ck.json").read_text())
    assert tuple(payload) == tuple(CHECKPOINT_FIELDS)
    assert payload["kind"] == CHECKPOINT_KIND


def test_written_ledger_carries_exactly_the_frozen_fields(tmp_path):
    from repro.util.ledger import ProgressLedger

    expected = _frozen(FROZEN_LEDGER_SCHEMAS, LEDGER_FORMAT, "ledger")
    ledger = ProgressLedger(tmp_path / "ledger.json", {"kind": "test"})
    ledger.mark("0", {"x": 1})
    import json

    payload = json.loads((tmp_path / "ledger.json").read_text())
    assert tuple(payload) == expected
    assert payload["kind"] == LEDGER_KIND
