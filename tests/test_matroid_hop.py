"""Tests for the hop-counting matroid M2 (Section III-C)."""

import pytest

from repro.core.segments import q_bounds
from repro.graphs.bfs import UNREACHABLE
from repro.matroid.hop import HopCountingMatroid, IncrementalHopFilter


def paper_matroid() -> HopCountingMatroid:
    """The Fig. 2(d) example: L = 10, p = (1, 2, 2, 2), Q = (10, 7, 1).

    Hops are laid out to have exactly the paper's counts: 3 anchors at
    hop 0, six nodes at hop 1, one node at hop 2.
    """
    hops = [0, 0, 0, 1, 1, 1, 1, 1, 1, 2]
    q = q_bounds(10, [1, 2, 2, 2])
    assert q == [10, 7, 1]
    return HopCountingMatroid(hops, q)


class TestConstruction:
    def test_rejects_empty_bounds(self):
        with pytest.raises(ValueError):
            HopCountingMatroid([0], [])

    def test_rejects_increasing_bounds(self):
        with pytest.raises(ValueError, match="non-increasing"):
            HopCountingMatroid([0, 1], [1, 2])

    def test_rejects_negative_bounds(self):
        with pytest.raises(ValueError):
            HopCountingMatroid([0], [-1])

    def test_ground_excludes_far_and_unreachable(self):
        m = HopCountingMatroid([0, 1, 2, 5, UNREACHABLE], [3, 2, 1])
        assert m.ground_set() == {0, 1, 2}


class TestIndependence:
    def test_paper_example(self):
        m = paper_matroid()
        # All three anchors plus up to Q1 = 7 hop>=1 nodes, at most Q2 = 1
        # node at hop 2; the full sub-path of Fig. 2(d) is independent.
        assert m.is_independent({0, 1, 2})
        assert m.is_independent({0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
        assert m.is_independent({9, 3, 4})  # 1 node at h>=2, 3 at h>=1

    def test_q2_binds(self):
        hops = [0, 2, 2]
        m = HopCountingMatroid(hops, [3, 2, 1])
        assert m.is_independent({0, 1})
        assert not m.is_independent({1, 2})  # two nodes at hop >= 2 > Q2 = 1

    def test_q0_bounds_total(self):
        m = HopCountingMatroid([0, 0, 0], [2])
        assert m.is_independent({0, 1})
        assert not m.is_independent({0, 1, 2})

    def test_out_of_ground_dependent(self):
        # A node at hop 5 is outside hmax = 2, so any set containing it is
        # dependent (it is not even in the ground set).
        m = HopCountingMatroid([0, 5], [2, 1, 1])
        assert not m.is_independent({1})
        assert m.is_independent({0})

    def test_can_extend(self):
        m = HopCountingMatroid([0, 2, 2], [3, 2, 1])
        assert m.can_extend({0}, 1)
        assert not m.can_extend({1}, 2)
        assert not m.can_extend({0, 1}, 1)

    def test_rank_bound(self):
        m = paper_matroid()
        assert m.rank_upper_bound() == 10


class TestIncrementalFilter:
    def test_matches_oracle(self):
        m = paper_matroid()
        filt = IncrementalHopFilter(m)
        selected: set = set()
        for v in [0, 9, 3, 4, 1]:
            assert filt.can_add(v) == m.is_independent(selected | {v})
            filt.add(v)
            selected.add(v)
        # Second hop-2 node would violate Q2 = 1 if one existed; test the
        # bound by exhausting Q1 instead.
        for v in [5, 6, 7, 8]:
            assert filt.can_add(v) == m.is_independent(selected | {v})
            if filt.can_add(v):
                filt.add(v)
                selected.add(v)

    def test_add_infeasible_raises(self):
        m = HopCountingMatroid([0, 2, 2], [3, 2, 1])
        filt = IncrementalHopFilter(m)
        filt.add(1)
        with pytest.raises(ValueError, match="violates"):
            filt.add(2)

    def test_feasible_candidates(self):
        m = HopCountingMatroid([0, 1, 2, 2], [3, 2, 1])
        filt = IncrementalHopFilter(m)
        assert filt.feasible_candidates(range(4)) == [0, 1, 2, 3]
        filt.add(2)
        assert filt.feasible_candidates(range(4)) == [0, 1]
