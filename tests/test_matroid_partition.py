"""Tests for the partition matroid M1."""

import pytest

from repro.matroid.partition import PartitionMatroid


class TestUavPlacementMatroid:
    def test_paper_semantics(self):
        m1 = PartitionMatroid.uav_placement(num_uavs=2, num_locations=3)
        # Paper's examples from Section III-B:
        assert m1.is_independent({(0, 0)})                       # A1
        assert not m1.is_independent({(0, 0), (0, 1)})           # A2
        assert m1.is_independent({(0, 0), (1, 1)})
        assert m1.is_independent(set())

    def test_ground_set_size(self):
        m1 = PartitionMatroid.uav_placement(3, 4)
        assert len(m1.ground_set()) == 12

    def test_can_extend(self):
        m1 = PartitionMatroid.uav_placement(2, 2)
        assert m1.can_extend({(0, 0)}, (1, 1))
        assert not m1.can_extend({(0, 0)}, (0, 1))
        assert not m1.can_extend({(0, 0)}, (0, 0))  # already present
        assert not m1.can_extend(set(), ("bogus", 9))

    def test_rank_bound(self):
        assert PartitionMatroid.uav_placement(4, 7).rank_upper_bound() == 4

    def test_subset_outside_ground_dependent(self):
        m1 = PartitionMatroid.uav_placement(1, 1)
        assert not m1.is_independent({(5, 5)})


class TestGeneralPartition:
    def test_block_capacities(self):
        m = PartitionMatroid(
            ground=["a1", "a2", "b1", "b2", "b3"],
            block_of=lambda e: e[0],
            capacity={"a": 1, "b": 2},
        )
        assert m.is_independent({"a1", "b1", "b2"})
        assert not m.is_independent({"a1", "a2"})
        assert not m.is_independent({"b1", "b2", "b3"})
        assert m.rank_upper_bound() == 3

    def test_missing_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            PartitionMatroid(["a1"], block_of=lambda e: e[0], capacity={"b": 1})

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            PartitionMatroid(["a"], block_of=lambda e: e, capacity=-1)
