"""OpenMetrics exporter tests, including an exposition-format lint."""

from __future__ import annotations

import re

import pytest

from repro.obs.export import metric_name, render_openmetrics, write_openmetrics

SNAPSHOT = {
    "counters": {"approx.subsets_evaluated": 45, "greedy.oracle_calls": 3},
    "gauges": {"mission.clock_s": 12.5, "approx.worker.42.subsets": 7},
    "histograms": {
        "runner.solve_seconds": {
            "count": 2, "total": 0.5, "min": 0.1, "max": 0.4,
        },
    },
}

_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_TYPE_LINE = re.compile(rf"^# TYPE {_NAME} (counter|gauge|summary|info)$")
_SAMPLE_LINE = re.compile(
    rf"^{_NAME}(\{{[^{{}}]*\}})? (-?[0-9][0-9.e+-]*|NaN|[+-]Inf)$"
)


def test_metric_name_sanitization():
    assert metric_name("approx.subsets_evaluated") == "approx_subsets_evaluated"
    assert metric_name("a-b/c d") == "a_b_c_d"
    assert metric_name("ok_name:x") == "ok_name:x"
    assert metric_name("9lives") == "_9lives"


def test_output_lints_as_openmetrics():
    text = render_openmetrics(SNAPSHOT, info={"command": "run", "seed": 4})
    assert text.endswith("# EOF\n")
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    for line in lines[:-1]:
        assert _TYPE_LINE.match(line) or _SAMPLE_LINE.match(line), (
            f"invalid exposition line: {line!r}"
        )


def test_counters_get_total_suffix_and_int_collapse():
    text = render_openmetrics(SNAPSHOT)
    assert "# TYPE approx_subsets_evaluated counter" in text
    assert "approx_subsets_evaluated_total 45" in text
    assert "greedy_oracle_calls_total 3" in text


def test_gauges_and_summaries_render():
    text = render_openmetrics(SNAPSHOT)
    assert "# TYPE mission_clock_s gauge" in text
    assert "mission_clock_s 12.5" in text
    assert "# TYPE runner_solve_seconds summary" in text
    assert "runner_solve_seconds_count 2" in text
    assert "runner_solve_seconds_sum 0.5" in text
    assert "runner_solve_seconds_min 0.1" in text
    assert "runner_solve_seconds_max 0.4" in text


def test_no_duplicate_type_declarations():
    text = render_openmetrics(SNAPSHOT, info={"command": "x"})
    declared = [line.split()[2] for line in text.splitlines()
                if line.startswith("# TYPE")]
    assert len(declared) == len(set(declared))


def test_sanitized_name_collision_first_family_wins():
    snapshot = {
        "counters": {"a.b": 1},
        "gauges": {"a_b": 2},       # sanitizes to the same family name
        "histograms": {},
    }
    text = render_openmetrics(snapshot)
    assert "a_b_total 1" in text
    assert "\na_b 2" not in text
    assert text.count("# TYPE a_b ") == 1


def test_info_metric_skips_none_and_escapes_labels():
    text = render_openmetrics(
        {"counters": {}, "gauges": {}, "histograms": {}},
        info={"command": "run", "seed": None, "note": 'a"b\nc\\d'},
    )
    assert "# TYPE repro_run info" in text
    (sample,) = [line for line in text.splitlines()
                 if line.startswith("repro_run_info")]
    assert sample == (
        'repro_run_info{command="run",note="a\\"b\\nc\\\\d"} 1'
    )
    assert "seed" not in sample


def test_empty_snapshot_is_just_eof():
    empty = {"counters": {}, "gauges": {}, "histograms": {}}
    assert render_openmetrics(empty) == "# EOF\n"


@pytest.mark.parametrize("value,expected", [
    (float("nan"), "NaN"),
    (float("inf"), "+Inf"),
    (float("-inf"), "-Inf"),
])
def test_non_finite_gauges(value, expected):
    text = render_openmetrics(
        {"counters": {}, "gauges": {"weird": value}, "histograms": {}}
    )
    assert f"weird {expected}" in text


def test_write_creates_parent_directories(tmp_path):
    path = write_openmetrics(tmp_path / "deep" / "dir" / "m.prom", SNAPSHOT)
    assert path.exists()
    assert path.read_text().endswith("# EOF\n")
