"""Tests for the anchored matroid greedy (Algorithm 2 inner loop)."""

import pytest

from repro.core.greedy import anchored_greedy
from repro.core.segments import optimal_segments
from tests.conftest import make_line_instance


def line_problem(num_locations=6, capacities=None):
    return make_line_instance(
        num_locations=num_locations,
        users_per_location=3,
        capacities=capacities or tuple([3] * num_locations),
    )


class TestAnchoredGreedy:
    def test_anchors_always_selected(self):
        problem = line_problem()
        plan = optimal_segments(problem.num_uavs, 2)
        for anchors in ([0, 5], [2, 3], [1, 4]):
            result = anchored_greedy(problem, anchors, plan)
            chosen_locations = {loc for _, loc in result.chosen}
            assert set(anchors) <= chosen_locations

    def test_respects_lmax(self):
        problem = line_problem()
        plan = optimal_segments(problem.num_uavs, 2)
        result = anchored_greedy(problem, [0, 1], plan)
        assert len(result.chosen) <= plan.lmax

    def test_capacity_order(self):
        """UAVs deploy in decreasing capacity order (Algorithm 2 line 5)."""
        problem = line_problem(capacities=(1, 5, 2, 4, 3, 6))
        plan = optimal_segments(problem.num_uavs, 2)
        result = anchored_greedy(problem, [2, 3], plan)
        caps = [problem.fleet[k].capacity for k, _ in result.chosen]
        assert caps == sorted(caps, reverse=True)

    def test_no_location_reused(self):
        problem = line_problem()
        plan = optimal_segments(problem.num_uavs, 2)
        result = anchored_greedy(problem, [0, 5], plan)
        locations = [loc for _, loc in result.chosen]
        assert len(locations) == len(set(locations))

    def test_served_matches_engine(self):
        problem = line_problem()
        plan = optimal_segments(problem.num_uavs, 2)
        result = anchored_greedy(problem, [1, 4], plan)
        assert result.served == result.engine.served_count

    def test_hop_matroid_respected(self):
        """No chosen location may exceed hmax hops from the anchors, and
        per-hop counts must respect Q_h."""
        problem = line_problem(num_locations=6)
        plan = optimal_segments(4, 2)  # tighter plan than the fleet size
        result = anchored_greedy(problem, [2, 3], plan,
                                 order=list(range(4)))
        hops = problem.graph.hops_to_set([2, 3])
        q = plan.q_bounds()
        chosen_locs = [loc for _, loc in result.chosen]
        for h in range(len(q)):
            count = sum(1 for v in chosen_locs if hops[v] >= h)
            assert count <= q[h]
        assert all(hops[v] <= plan.hmax for v in chosen_locs)

    def test_fast_and_exact_agree_on_disjoint_coverage(self):
        """With disjoint per-location coverage the direct bound equals the
        exact gain, so both modes must choose identically."""
        problem = line_problem()
        plan = optimal_segments(problem.num_uavs, 2)
        exact = anchored_greedy(problem, [1, 4], plan, gain_mode="exact")
        fast = anchored_greedy(problem, [1, 4], plan, gain_mode="fast")
        assert exact.served == fast.served
        assert {loc for _, loc in exact.chosen} == {
            loc for _, loc in fast.chosen
        }

    def test_fast_mode_never_worse_than_two_thirds_here(self):
        problem = make_line_instance(
            num_locations=5, users_per_location=4, spacing=350.0,
            capacities=(4, 3, 2, 2, 1),
        )
        plan = optimal_segments(problem.num_uavs, 2)
        exact = anchored_greedy(problem, [0, 4], plan, gain_mode="exact")
        fast = anchored_greedy(problem, [0, 4], plan, gain_mode="fast")
        assert fast.served >= 0.66 * exact.served

    def test_rejects_bad_gain_mode(self):
        problem = line_problem()
        plan = optimal_segments(problem.num_uavs, 2)
        with pytest.raises(ValueError, match="gain_mode"):
            anchored_greedy(problem, [0, 1], plan, gain_mode="wrong")

    def test_rejects_wrong_anchor_count(self):
        problem = line_problem()
        plan = optimal_segments(problem.num_uavs, 2)
        with pytest.raises(ValueError, match="anchors"):
            anchored_greedy(problem, [0, 1, 2], plan)

    def test_greedy_prefers_dense_locations(self):
        """With one UAV per iteration and unequal user piles the greedy
        must pick the densest feasible location first."""
        problem = make_line_instance(
            num_locations=4, users_per_location=2,
            capacities=(8, 8, 8, 8),
        )
        # Add extra users under location 2 by rebuilding with uneven piles.
        from repro.network.coverage import CoverageGraph
        from repro.network.users import users_from_points
        from repro.core.problem import ProblemInstance

        points = []
        piles = {0: 1, 1: 2, 2: 6, 3: 1}
        for j, count in piles.items():
            for i in range(count):
                points.append((500.0 * (j + 1) + 4.0 * i, 0.0))
        graph = CoverageGraph(
            users=users_from_points(points),
            locations=problem.graph.locations,
            uav_range_m=600.0,
        )
        uneven = ProblemInstance(graph=graph, fleet=problem.fleet)
        plan = optimal_segments(4, 1)
        result = anchored_greedy(uneven, [2], plan)
        # First pick is the anchorless densest = location 2 itself (anchor
        # and densest coincide); first deployed UAV must sit there.
        assert result.chosen[0][1] == 2
