"""Tests for repro.geometry.grid (spatial hashing)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.grid import Grid, SpatialHash, pairwise_within
from repro.geometry.point import Point2D, Point3D


def random_points(rng, count, extent=1000.0):
    return [
        Point2D(float(x), float(y))
        for x, y in rng.uniform(0, extent, size=(count, 2))
    ]


class TestSpatialHash:
    def test_empty(self):
        sh = SpatialHash([], cell_size=10.0)
        assert sh.query_disc(Point2D(0, 0), 100.0) == []

    def test_rejects_bad_cell_size(self):
        with pytest.raises(ValueError, match="positive"):
            SpatialHash([], cell_size=0)

    def test_rejects_negative_radius(self):
        sh = SpatialHash([Point2D(0, 0)], cell_size=10.0)
        with pytest.raises(ValueError, match="non-negative"):
            sh.query_disc(Point2D(0, 0), -1.0)

    def test_exact_boundary_included(self):
        sh = SpatialHash([Point2D(10, 0)], cell_size=5.0)
        assert sh.query_disc(Point2D(0, 0), 10.0) == [0]
        assert sh.query_disc(Point2D(0, 0), 9.999) == []

    def test_matches_naive_scan(self):
        rng = np.random.default_rng(0)
        points = random_points(rng, 200)
        sh = SpatialHash(points, cell_size=97.0)
        for _ in range(20):
            cx, cy = rng.uniform(0, 1000, size=2)
            radius = float(rng.uniform(0, 400))
            center = Point2D(float(cx), float(cy))
            expected = sorted(
                i for i, p in enumerate(points)
                if p.distance_to(center) <= radius
            )
            assert sorted(sh.query_disc(center, radius)) == expected

    @given(st.integers(0, 60), st.floats(1.0, 500.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_hash_equals_naive_property(self, count, cell, seed):
        rng = np.random.default_rng(seed)
        points = random_points(rng, count)
        sh = SpatialHash(points, cell_size=cell)
        center = Point2D(500.0, 500.0)
        radius = float(rng.uniform(0, 600))
        expected = sorted(
            i for i, p in enumerate(points) if p.distance_to(center) <= radius
        )
        assert sorted(sh.query_disc(center, radius)) == expected


class TestGrid:
    def test_neighbours_exclude_self(self):
        locations = [Point3D(0, 0, 300), Point3D(100, 0, 300), Point3D(500, 0, 300)]
        grid = Grid(locations, cell_size=200.0)
        assert grid.neighbours_within(0, 150.0) == [1]
        assert 0 not in grid.neighbours_within(0, 1000.0)

    def test_len(self):
        assert len(Grid([Point3D(0, 0, 1)], 10.0)) == 1


class TestPairwiseWithin:
    def test_small_case(self):
        pts = [Point3D(0, 0, 0), Point3D(5, 0, 0), Point3D(100, 0, 0)]
        assert pairwise_within(pts, 10.0) == [(0, 1)]

    def test_consistent_with_grid(self):
        rng = np.random.default_rng(1)
        locations = [
            Point3D(float(x), float(y), 300.0)
            for x, y in rng.uniform(0, 2000, size=(50, 2))
        ]
        radius = 600.0
        expected = set(pairwise_within(locations, radius))
        grid = Grid(locations, cell_size=radius)
        got = set()
        for i in range(len(locations)):
            for j in grid.neighbours_within(i, radius):
                got.add((min(i, j), max(i, j)))
        assert got == expected
