"""Engine guarantees: parallel fan-out and bound pruning are lossless —
same (served, anchors, deployment, subset accounting) as the historical
serial loop — and progress/abort semantics survive both.
"""

from __future__ import annotations

import pytest

from repro.core.approx import appro_alg
from repro.core.context import SolverContext
from repro.sim.runner import SolverTimeout
from repro.workload.scenarios import paper_scenario
from tests.conftest import make_line_instance

SEEDS = [1, 3, 8]


def _same(a, b):
    assert a.served == b.served
    assert a.anchors == b.anchors
    assert a.deployment.placements == b.deployment.placements
    assert a.stats.subsets_total == b.stats.subsets_total
    assert (
        a.stats.subsets_pruned
        + a.stats.subsets_bound_skipped
        + a.stats.subsets_evaluated
        == a.stats.subsets_total
    )


@pytest.mark.timeout_guard(180)
@pytest.mark.parametrize("seed", SEEDS)
def test_workers4_identical_to_serial(seed):
    problem = paper_scenario(
        num_users=130, num_uavs=4, scale="small", seed=seed
    )
    serial = appro_alg(problem, s=2)
    parallel = appro_alg(problem, s=2, workers=4)
    _same(parallel, serial)
    assert parallel.stats.workers == 4


@pytest.mark.parametrize("seed", SEEDS)
def test_bound_prune_lossless(seed):
    problem = paper_scenario(
        num_users=130, num_uavs=4, scale="small", seed=seed
    )
    serial = appro_alg(problem, s=2)
    pruned = appro_alg(problem, s=2, bound_prune=True)
    _same(pruned, serial)


@pytest.mark.timeout_guard(180)
def test_parallel_plus_bound_prune_identical():
    problem = paper_scenario(num_users=150, num_uavs=5, scale="small", seed=4)
    serial = appro_alg(problem, s=2)
    engine = appro_alg(problem, s=2, workers=4, bound_prune=True)
    _same(engine, serial)


def test_bound_prune_skips_on_skewed_instance():
    """The skew that makes bounds informative: bound pruning must actually
    skip subsets here (not just stay lossless vacuously)."""
    p = make_line_instance(
        num_locations=12,
        users_per_location=[40, 40, 30, 20, 0, 0, 0, 0, 0, 0, 0, 5],
        capacities=[35, 30, 25, 20],
    )
    serial = appro_alg(p, s=2)
    pruned = appro_alg(p, s=2, bound_prune=True)
    _same(pruned, serial)
    assert pruned.stats.subsets_bound_skipped > 0
    assert (
        pruned.stats.subsets_evaluated < serial.stats.subsets_evaluated
    )


@pytest.mark.timeout_guard(180)
def test_shared_context_reused_across_calls():
    problem = paper_scenario(num_users=130, num_uavs=4, scale="small", seed=6)
    context = SolverContext.from_problem(problem)
    a = appro_alg(problem, s=2, context=context)
    b = appro_alg(problem, s=2, context=context, workers=2)
    _same(b, a)
    # A supplied context is not re-built: build time is not re-charged.
    assert a.stats.context_build_s == 0.0


def test_progress_monotonic_across_fallback():
    """When level s is infeasible the s-1 fallback must continue the same
    monotonic (done, total) series instead of restarting from zero."""
    # Locations too far apart to interconnect: every s=2 subset is pruned
    # as disconnected, forcing the s=1 fallback.
    p = make_line_instance(num_locations=5, users_per_location=3,
                           spacing=5000.0)
    calls = []
    result = appro_alg(p, s=2, progress=lambda d, t: calls.append((d, t)))
    assert result.plan.s == 1
    assert calls, "progress must be invoked"
    dones = [d for d, _ in calls]
    totals = [t for _, t in calls]
    assert dones == sorted(dones), "done must be monotonic across fallback"
    assert all(d <= t for d, t in calls)
    assert calls[-1][0] == calls[-1][1], "series must end complete"
    # The final total covers both enumeration levels.
    assert totals[-1] >= result.stats.subsets_total


@pytest.mark.timeout_guard(180)
def test_watchdog_abort_with_workers():
    """A SolverTimeout raised from the progress callback must abort the
    parallel run promptly and propagate."""
    problem = paper_scenario(num_users=150, num_uavs=5, scale="small", seed=4)

    def abort(done, total):
        raise SolverTimeout("budget exhausted")

    with pytest.raises(SolverTimeout):
        appro_alg(problem, s=2, workers=2, progress=abort)


def test_workers_validated():
    problem = paper_scenario(num_users=90, num_uavs=4, scale="small", seed=1)
    with pytest.raises(ValueError, match="workers"):
        appro_alg(problem, s=2, workers=0)


def test_max_anchor_candidates_smaller_than_s_rejected():
    problem = paper_scenario(num_users=90, num_uavs=4, scale="small", seed=1)
    with pytest.raises(ValueError) as excinfo:
        appro_alg(problem, s=3, max_anchor_candidates=2)
    message = str(excinfo.value)
    assert "max_anchor_candidates" in message
    assert "s = 3" in message
