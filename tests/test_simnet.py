"""Tests for the discrete-event network simulator."""

import math

import pytest

from repro.core.approx import appro_alg
from repro.network.deployment import Deployment
from repro.simnet.events import EventQueue
from repro.simnet.sim import overload_assignment, simulate_network
from repro.simnet.station import StationModel
from tests.conftest import make_line_instance


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.schedule(5.0, "b")
        q.schedule(1.0, "a")
        q.schedule(9.0, "c")
        assert [q.pop()[1] for _ in range(3)] == ["a", "b", "c"]
        assert q.now == 9.0

    def test_fifo_ties(self):
        q = EventQueue()
        q.schedule(1.0, "first")
        q.schedule(1.0, "second")
        assert q.pop()[1] == "first"
        assert q.pop()[1] == "second"

    def test_schedule_in(self):
        q = EventQueue()
        q.schedule(2.0, "x")
        q.pop()
        q.schedule_in(3.0, "y")
        assert q.peek_time() == 5.0

    def test_no_past_scheduling(self):
        q = EventQueue()
        q.schedule(2.0, "x")
        q.pop()
        with pytest.raises(ValueError):
            q.schedule(1.0, "y")
        with pytest.raises(ValueError):
            q.schedule_in(-1.0, "y")

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_fifo_ties_many_interleaved(self):
        """Tie-breaking is global insertion order, even when equal-time
        events are interleaved with earlier/later ones."""
        q = EventQueue()
        q.schedule(2.0, "t2-a")
        q.schedule(1.0, "t1-a")
        q.schedule(2.0, "t2-b")
        q.schedule(1.0, "t1-b")
        q.schedule(2.0, "t2-c")
        order = [q.pop()[1] for _ in range(5)]
        assert order == ["t1-a", "t1-b", "t2-a", "t2-b", "t2-c"]

    def test_schedule_at_now_allowed(self):
        """The past guard is strict: exactly-now (and zero-delay) events
        are legal and run after already-queued same-time events."""
        q = EventQueue()
        q.schedule(2.0, "x")
        q.pop()
        q.schedule(2.0, "same-time")
        q.schedule_in(0.0, "zero-delay")
        assert q.pop() == (2.0, "same-time")
        assert q.pop() == (2.0, "zero-delay")
        assert q.now == 2.0

    def test_past_guard_tolerance(self):
        """Scheduling a hair before now (float noise) is accepted; clearly
        in the past is not."""
        q = EventQueue()
        q.schedule(1.0, "x")
        q.pop()
        q.schedule(1.0 - 1e-13, "noise-ok")
        with pytest.raises(ValueError, match="past"):
            q.schedule(0.5, "way-back")

    def test_cancel(self):
        q = EventQueue()
        q.schedule(1.0, "keep-a")
        tok = q.schedule(2.0, "drop")
        q.schedule(3.0, "keep-b")
        assert len(q) == 3
        assert q.cancel(tok)
        assert len(q) == 2
        assert not q.cancel(tok)  # second cancel is a no-op
        assert [q.pop()[1] for _ in range(2)] == ["keep-a", "keep-b"]
        with pytest.raises(IndexError):
            q.pop()

    def test_cancel_head_updates_peek(self):
        q = EventQueue()
        tok = q.schedule(1.0, "head")
        q.schedule(5.0, "tail")
        q.cancel(tok)
        assert q.peek_time() == 5.0
        assert bool(q)
        assert q.pop() == (5.0, "tail")
        assert not q


class TestStationModel:
    def test_load_factor(self):
        model = StationModel(request_rate_per_user_hz=2.0, headroom=1.25)
        # C = 100, 100 users: rho = 1/1.25 = 0.8.
        assert model.load_factor(100, 100) == pytest.approx(0.8)
        # Over-assignment: 150 users -> rho = 1.2.
        assert model.load_factor(100, 150) == pytest.approx(1.2)

    def test_mm1_sojourn(self):
        model = StationModel(request_rate_per_user_hz=1.0, headroom=2.0)
        # mu = 20, lambda = 10 -> sojourn 0.1 s.
        assert model.mm1_mean_sojourn_s(10, 10) == pytest.approx(0.1)
        assert model.mm1_mean_sojourn_s(10, 20) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            StationModel(request_rate_per_user_hz=0)
        with pytest.raises(ValueError):
            StationModel(headroom=0)
        with pytest.raises(ValueError):
            StationModel().service_rate_hz(0)


class TestSimulateNetwork:
    def make_single_station(self, capacity: int, users: int):
        problem = make_line_instance(
            num_locations=1, users_per_location=users,
            capacities=(capacity,),
        )
        assignment = {u: 0 for u in range(min(users, capacity))}
        dep = Deployment(placements={0: 0}, assignment=assignment)
        return problem, dep

    def test_matches_mm1_theory(self):
        """DES mean sojourn must match the analytic M/M/1 value within
        sampling tolerance for a moderately loaded station."""
        model = StationModel(request_rate_per_user_hz=5.0, headroom=1.25)
        problem, dep = self.make_single_station(capacity=8, users=8)
        stats = simulate_network(
            problem, dep, duration_s=400.0, model=model, seed=0
        )
        theory = model.mm1_mean_sojourn_s(8, 8)
        st = stats.station(0)
        assert st.load_factor == pytest.approx(0.8)
        assert st.completed > 1000
        assert st.mean_sojourn_s == pytest.approx(theory, rel=0.15)

    def test_overload_explodes_latency(self):
        """The paper's premise: beyond the capacity rating, delay blows up
        (rho > 1: unbounded queue growth over the horizon)."""
        model = StationModel(request_rate_per_user_hz=5.0, headroom=1.25)
        ok_problem, ok_dep = self.make_single_station(capacity=10, users=10)
        over_problem = make_line_instance(
            num_locations=1, users_per_location=20, capacities=(10,)
        )
        over_dep = Deployment(
            placements={0: 0}, assignment={u: 0 for u in range(20)}
        )
        ok = simulate_network(ok_problem, ok_dep, duration_s=120.0,
                              model=model, seed=1)
        over = simulate_network(over_problem, over_dep, duration_s=120.0,
                                model=model, seed=1)
        assert over.station(0).load_factor > 1.0
        assert over.mean_sojourn_s > 5 * ok.mean_sojourn_s
        assert over.station(0).max_queue > ok.station(0).max_queue

    def test_empty_deployment(self):
        problem = make_line_instance()
        stats = simulate_network(problem, Deployment.empty(), duration_s=5.0,
                                 warmup_s=1.0)
        assert stats.completed == 0
        assert stats.mean_sojourn_s == 0.0

    def test_validation(self):
        problem, dep = self.make_single_station(2, 2)
        with pytest.raises(ValueError):
            simulate_network(problem, dep, duration_s=0.0)
        with pytest.raises(ValueError):
            simulate_network(problem, dep, duration_s=5.0, warmup_s=5.0)

    def test_deterministic_by_seed(self):
        problem, dep = self.make_single_station(4, 4)
        a = simulate_network(problem, dep, duration_s=20.0, seed=7)
        b = simulate_network(problem, dep, duration_s=20.0, seed=7)
        assert a.completed == b.completed
        assert a.mean_sojourn_s == b.mean_sojourn_s

    def test_littles_law(self):
        """Little's law L = lambda * W must hold on the measured data:
        completions/duration approximates the arrival rate, and the mean
        number in system equals that rate times the mean sojourn.  We
        check the throughput-sojourn consistency against the offered
        rate within sampling tolerance."""
        model = StationModel(request_rate_per_user_hz=4.0, headroom=1.6)
        problem, dep = self.make_single_station(capacity=10, users=10)
        stats = simulate_network(problem, dep, duration_s=300.0,
                                 model=model, warmup_s=10.0, seed=5)
        st = stats.station(0)
        offered = 10 * model.request_rate_per_user_hz
        measured_rate = st.completed / (300.0 - 10.0)
        # Stable queue: completion rate ~ arrival rate.
        assert measured_rate == pytest.approx(offered, rel=0.1)
        # And W matches the M/M/1 prediction (Little-consistent).
        assert st.mean_sojourn_s == pytest.approx(
            model.mm1_mean_sojourn_s(10, 10), rel=0.15
        )


class TestOverloadAssignment:
    def test_assigns_all_coverable(self):
        problem = make_line_instance(
            num_locations=3, users_per_location=4, capacities=(2, 2, 2)
        )
        base = Deployment(placements={0: 0, 1: 1, 2: 2})
        over = overload_assignment(problem, base)
        # All 12 users are coverable; capacity (2 each) is ignored.
        assert over.served_count == 12
        assert max(over.loads().values()) > 2

    def test_respects_coverage(self):
        problem = make_line_instance(
            num_locations=3, users_per_location=2, capacities=(2, 2)
        )
        base = Deployment(placements={0: 0})
        over = overload_assignment(problem, base)
        # Only users under location 0 are coverable from location 0.
        assert over.served_count == 2

    def test_real_deployment_latency_gap(self, small_scenario):
        """End-to-end: the approAlg deployment (capacity-respecting) must
        show materially lower p95 latency than the capacity-ignoring
        counterfactual on the same placements."""
        result = appro_alg(small_scenario, s=2, gain_mode="fast")
        model = StationModel(request_rate_per_user_hz=1.0, headroom=1.25)
        ok = simulate_network(
            small_scenario, result.deployment, duration_s=40.0,
            model=model, seed=3,
        )
        over_dep = overload_assignment(small_scenario, result.deployment)
        over = simulate_network(
            small_scenario, over_dep, duration_s=40.0, model=model, seed=3
        )
        if over_dep.served_count > result.deployment.served_count:
            assert over.p95_sojourn_s >= ok.p95_sojourn_s
