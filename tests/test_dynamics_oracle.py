"""Warm-vs-cold equivalence oracle for the dynamic mission engine.

ISSUE acceptance: warm-started epoch re-solves must be result-identical
to cold re-solves — same timelines, same deployments — across a wide
seed grid.  Event times all come from seeded RNG streams (never from
measured latencies), so the two modes see identical event sequences and
any divergence is a real warm-start bug.
"""

import pytest

from repro.dynamics import DynamicSpec, run_dynamic

ORACLE_SEEDS = list(range(1, 21))


def oracle_spec(seed: int, **overrides) -> DynamicSpec:
    base = dict(
        name="oracle", scale="small", num_users=30, num_uavs=3, seed=seed,
        algorithm="approAlg",
        algorithm_params={"s": 1, "gain_mode": "fast",
                          "max_anchor_candidates": 6},
        duration_s=150.0, epoch_s=45.0, arrival_rate_per_s=0.06,
        mean_dwell_s=120.0, mobility_sigma_m=20.0,
    )
    base.update(overrides)
    return DynamicSpec(**base)


def signature(result):
    return (
        result.timeline,
        [(e.t_s, e.trigger, e.served, e.num_placed) for e in result.epochs],
        result.arrivals, result.departures, result.faults, result.rotations,
        result.final_placements,
        sorted(result.time_to_serve_s),
    )


@pytest.mark.parametrize("seed", ORACLE_SEEDS)
def test_warm_identical_to_cold(seed):
    spec = oracle_spec(seed)
    warm = run_dynamic(spec, warm=True)
    cold = run_dynamic(spec, warm=False)
    assert signature(warm) == signature(cold)


@pytest.mark.parametrize("seed", [3, 17, 29])
def test_warm_identical_under_faults_and_drift(seed):
    spec = oracle_spec(
        seed, resolve_policy="drift", drift_threshold=0.05,
        num_crashes=1, num_links=1, relocation_speed_mps=15.0,
    )
    warm = run_dynamic(spec, warm=True)
    cold = run_dynamic(spec, warm=False)
    assert signature(warm) == signature(cold)


@pytest.mark.parametrize("seed", [5, 23])
def test_warm_identical_with_rotation(seed):
    spec = oracle_spec(
        seed, num_users=8, num_uavs=8, capacity_min=20, capacity_max=20,
        arrival_rate_per_s=0.0, mobility_sigma_m=0.0, hotspot_drift_mps=0.0,
        duration_s=5400.0, epoch_s=2700.0, recharge_s=300.0,
    )
    warm = run_dynamic(spec, warm=True)
    cold = run_dynamic(spec, warm=False)
    assert signature(warm) == signature(cold)
    assert warm.rotations > 0
