"""Tests for the co-channel interference audit."""

import pytest

from repro.channel.interference import audit_interference
from repro.core.approx import appro_alg
from repro.core.assignment import optimal_assignment
from repro.network.deployment import Deployment
from tests.conftest import make_line_instance


class TestAuditInterference:
    def make_two_station_problem(self, spacing=500.0):
        return make_line_instance(
            num_locations=2, users_per_location=3, capacities=(3, 3),
            spacing=spacing,
        )

    def test_single_uav_no_interference(self):
        problem = make_line_instance(num_locations=1, users_per_location=3,
                                     capacities=(3,))
        dep = optimal_assignment(problem.graph, problem.fleet, {0: 0})
        audit = audit_interference(problem, dep)
        assert audit.served == 3
        for link in audit.links:
            assert link.sinr_db == pytest.approx(link.snr_db)
            assert link.rate_sinr_bps == pytest.approx(link.rate_snr_bps)
        assert audit.mean_sinr_loss_db == pytest.approx(0.0)

    def test_neighbour_degrades_sinr(self):
        problem = self.make_two_station_problem()
        dep = optimal_assignment(problem.graph, problem.fleet, {0: 0, 1: 1})
        audit = audit_interference(problem, dep)
        assert audit.served == 6
        for link in audit.links:
            assert link.sinr_db < link.snr_db
            assert link.rate_sinr_bps < link.rate_snr_bps
        assert audit.mean_sinr_loss_db > 3.0  # close co-channel neighbour

    def test_activity_factor_scales_damage(self):
        problem = self.make_two_station_problem()
        dep = optimal_assignment(problem.graph, problem.fleet, {0: 0, 1: 1})
        harsh = audit_interference(problem, dep, activity_factor=1.0)
        mild = audit_interference(problem, dep, activity_factor=0.1)
        assert mild.mean_sinr_loss_db < harsh.mean_sinr_loss_db
        assert mild.still_satisfied >= harsh.still_satisfied

    def test_low_requirement_survives(self):
        """The paper's 2 kbps floor survives even harsh interference."""
        problem = self.make_two_station_problem()
        dep = optimal_assignment(problem.graph, problem.fleet, {0: 0, 1: 1})
        audit = audit_interference(problem, dep)
        assert audit.survival_fraction == 1.0

    def test_high_requirement_can_fail(self):
        from repro.core.problem import ProblemInstance
        from repro.network.coverage import CoverageGraph
        from repro.network.users import users_from_points

        base = self.make_two_station_problem()
        demanding = users_from_points(
            [(500.0 + 3 * i, 0.0) for i in range(3)]
            + [(1000.0 + 3 * i, 0.0) for i in range(3)],
            min_rate_bps=1.2e6,  # near the interference-limited ceiling
        )
        graph = CoverageGraph(users=demanding,
                              locations=base.graph.locations,
                              uav_range_m=600.0)
        problem = ProblemInstance(graph=graph, fleet=base.fleet)
        dep = optimal_assignment(problem.graph, problem.fleet, {0: 0, 1: 1})
        assert dep.served_count == 6  # SNR-based plan accepts everyone
        audit = audit_interference(problem, dep)
        assert audit.still_satisfied < audit.served

    def test_validation(self):
        problem = self.make_two_station_problem()
        dep = Deployment.empty()
        with pytest.raises(ValueError):
            audit_interference(problem, dep, activity_factor=0.0)
        with pytest.raises(ValueError):
            audit_interference(problem, dep, activity_factor=1.5)

    def test_empty_deployment(self):
        problem = self.make_two_station_problem()
        audit = audit_interference(problem, Deployment.empty())
        assert audit.served == 0
        assert audit.survival_fraction == 1.0

    def test_real_deployment(self, small_scenario):
        result = appro_alg(small_scenario, s=2, gain_mode="fast")
        audit = audit_interference(small_scenario, result.deployment,
                                   activity_factor=0.5)
        assert audit.served == result.served
        assert 0.0 <= audit.survival_fraction <= 1.0
