"""Tests for the battery-rotation scheduler."""

import pytest

from repro.network.deployment import Deployment
from repro.network.energy import EnergyModel
from repro.sim.rotation import (
    max_sustainable_mission_s,
    plan_rotation,
)
from tests.conftest import make_line_instance


def make_problem(capacities):
    return make_line_instance(
        num_locations=len(capacities), users_per_location=1,
        capacities=capacities,
    )


MODEL = EnergyModel()


def endurance_of(problem, k):
    return MODEL.endurance_s(problem.fleet[k])


class TestPlanRotation:
    def test_empty_deployment(self):
        problem = make_problem((2, 2))
        schedule = plan_rotation(problem, Deployment.empty(), 3600.0, MODEL)
        assert schedule.feasible and schedule.sorties == []

    def test_short_mission_single_sortie(self):
        problem = make_problem((2, 2))
        dep = Deployment(placements={0: 0})
        short = endurance_of(problem, 0) / 2
        schedule = plan_rotation(problem, dep, short, MODEL)
        assert schedule.feasible
        assert len(schedule.sorties) == 1
        assert schedule.sorties[0].end_s == short
        assert schedule.swaps() == 0

    def test_spare_extends_mission(self):
        """One deployed + one spare: the mission can run ~2x endurance
        (the spare takes over when the first battery empties)."""
        problem = make_problem((2, 2))
        dep = Deployment(placements={0: 0})  # UAV 1 is spare
        e = endurance_of(problem, 0)
        schedule = plan_rotation(problem, dep, 1.9 * e, MODEL,
                                 recharge_s=10 * e)
        assert schedule.feasible
        sorties = schedule.sorties_at(0)
        assert len(sorties) == 2
        assert sorties[0].uav_index == 0
        assert sorties[1].uav_index == 1
        assert sorties[1].start_s == pytest.approx(sorties[0].end_s)
        assert schedule.swaps() == 1

    def test_no_spare_mission_fails_past_endurance(self):
        problem = make_problem((2,))
        dep = Deployment(placements={0: 0})
        e = endurance_of(problem, 0)
        schedule = plan_rotation(problem, dep, 3 * e, MODEL,
                                 recharge_s=100 * e)
        assert not schedule.feasible
        assert schedule.first_gap_s == pytest.approx(e)

    def test_fast_recharge_sustains_indefinitely(self):
        """With instant recharge, two UAVs per position sustain any
        mission (ping-pong rotation)."""
        problem = make_problem((2, 2))
        dep = Deployment(placements={0: 0})
        e = endurance_of(problem, 0)
        schedule = plan_rotation(problem, dep, 10 * e, MODEL, recharge_s=0.0)
        assert schedule.feasible
        assert schedule.swaps() >= 9

    def test_capacity_compatibility(self):
        """A spare smaller than a position's assigned load cannot relieve
        it."""
        problem = make_problem((4, 1, 4))
        # Position 0 carries 1 user... make load = 4 via explicit users?
        # users_per_location = 1 so load can be at most 1; instead use
        # assignment with the single user and require capacity >= 1: the
        # cap-1 spare IS compatible.  Then test the reverse with load 0 vs
        # a position needing capacity 4 via a 4-user pile.
        problem = make_line_instance(
            num_locations=3, users_per_location=4, capacities=(4, 1, 4)
        )
        dep = Deployment(
            placements={0: 0}, assignment={0: 0, 1: 0, 2: 0, 3: 0}
        )
        e = endurance_of(problem, 0)
        schedule = plan_rotation(problem, dep, 1.5 * e, MODEL,
                                 recharge_s=100 * e)
        assert schedule.feasible
        relief = schedule.sorties_at(0)[1]
        assert relief.uav_index == 2  # cap-4 spare, not the cap-1 one

    def test_validation(self):
        problem = make_problem((2,))
        dep = Deployment(placements={0: 0})
        with pytest.raises(ValueError):
            plan_rotation(problem, dep, 0.0, MODEL)
        with pytest.raises(ValueError):
            plan_rotation(problem, dep, 10.0, MODEL, recharge_s=-1.0)

    def test_continuous_coverage_invariant(self):
        """Feasible schedules have gap-free, non-overlapping sorties per
        position covering [0, mission]."""
        problem = make_problem((2, 2, 2, 2))
        dep = Deployment(placements={0: 0, 1: 1})
        e = endurance_of(problem, 0)
        schedule = plan_rotation(problem, dep, 2.5 * e, MODEL,
                                 recharge_s=0.5 * e)
        assert schedule.feasible
        for loc in (0, 1):
            sorties = schedule.sorties_at(loc)
            assert sorties[0].start_s == 0.0
            for a, b in zip(sorties, sorties[1:]):
                assert b.start_s == pytest.approx(a.end_s)
            assert sorties[-1].end_s == pytest.approx(2.5 * e)


class TestRotationProperties:
    """Random-instance invariants of the scheduler."""

    def test_random_schedules_consistent(self):
        import numpy as np

        for seed in range(25):
            rng = np.random.default_rng(seed)
            num_positions = int(rng.integers(1, 4))
            num_uavs = int(rng.integers(num_positions, num_positions + 4))
            capacities = tuple(int(c) for c in rng.integers(1, 5,
                                                            size=num_uavs))
            problem = make_problem(capacities)
            dep = Deployment(
                placements={k: k for k in range(num_positions)}
            )
            e0 = endurance_of(problem, 0)
            mission = float(rng.uniform(0.3, 4.0)) * e0
            recharge = float(rng.uniform(0.0, 3.0)) * e0
            schedule = plan_rotation(problem, dep, mission, MODEL,
                                     recharge_s=recharge)
            # Per-position sorties never overlap; feasible schedules are
            # gap-free from 0 to mission end.
            for loc in range(num_positions):
                sorties = schedule.sorties_at(loc)
                assert sorties, f"position {loc} never staffed"
                assert sorties[0].start_s == 0.0
                for a, b in zip(sorties, sorties[1:]):
                    assert b.start_s >= a.end_s - 1e-9
                if schedule.feasible:
                    for a, b in zip(sorties, sorties[1:]):
                        assert b.start_s == pytest.approx(a.end_s)
                    assert sorties[-1].end_s == pytest.approx(mission)
            # No UAV flies two sorties at once or beyond its endurance.
            by_uav: dict = {}
            for s in schedule.sorties:
                by_uav.setdefault(s.uav_index, []).append(s)
                assert s.duration_s <= endurance_of(problem, s.uav_index) + 1e-6
            for sorties in by_uav.values():
                sorties.sort(key=lambda s: s.start_s)
                for a, b in zip(sorties, sorties[1:]):
                    assert b.start_s >= a.end_s - 1e-9
            if not schedule.feasible:
                assert schedule.first_gap_s is not None
                assert 0 < schedule.first_gap_s <= mission


class TestMaxSustainableMission:
    def test_matches_endurance_without_spares(self):
        problem = make_problem((2,))
        dep = Deployment(placements={0: 0})
        e = endurance_of(problem, 0)
        sustained = max_sustainable_mission_s(
            problem, dep, MODEL, recharge_s=1e9
        )
        assert sustained == pytest.approx(e, rel=0.01)

    def test_spares_extend(self):
        problem = make_problem((2, 2))
        dep = Deployment(placements={0: 0})
        e = endurance_of(problem, 0)
        sustained = max_sustainable_mission_s(
            problem, dep, MODEL, recharge_s=1e9
        )
        assert sustained == pytest.approx(
            e + endurance_of(problem, 1), rel=0.01
        )

    def test_fast_recharge_hits_horizon(self):
        problem = make_problem((2, 2))
        dep = Deployment(placements={0: 0})
        assert max_sustainable_mission_s(
            problem, dep, MODEL, recharge_s=0.0, horizon_s=72 * 3600.0
        ) == 72 * 3600.0

    def test_empty_deployment(self):
        problem = make_problem((2,))
        assert max_sustainable_mission_s(
            problem, Deployment.empty(), MODEL
        ) == 72 * 3600.0
