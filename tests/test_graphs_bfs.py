"""Tests for BFS hop distances and connectivity, with networkx as oracle."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.adjacency import Graph
from repro.graphs.bfs import (
    UNREACHABLE,
    bfs_hops,
    connected_components,
    is_connected,
    multi_source_hops,
    shortest_hop_path,
)


def random_graph(seed: int, n: int, p: float) -> "tuple[Graph, nx.Graph]":
    rng = np.random.default_rng(seed)
    ours = Graph(n)
    theirs = nx.Graph()
    theirs.add_nodes_from(range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                ours.add_edge(i, j)
                theirs.add_edge(i, j)
    return ours, theirs


class TestBfsHops:
    def test_path_graph(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert bfs_hops(g, 0) == [0, 1, 2, 3]

    def test_unreachable(self):
        g = Graph(3)
        g.add_edge(0, 1)
        assert bfs_hops(g, 0) == [0, 1, UNREACHABLE]

    def test_invalid_source(self):
        with pytest.raises(IndexError):
            bfs_hops(Graph(2), 5)

    @given(st.integers(0, 10_000), st.integers(2, 25), st.floats(0.0, 0.5))
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx(self, seed, n, p):
        ours, theirs = random_graph(seed, n, p)
        dist = bfs_hops(ours, 0)
        expected = nx.single_source_shortest_path_length(theirs, 0)
        for v in range(n):
            if v in expected:
                assert dist[v] == expected[v]
            else:
                assert dist[v] == UNREACHABLE


class TestMultiSourceHops:
    def test_two_sources(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert multi_source_hops(g, [0, 4]) == [0, 1, 2, 1, 0]

    def test_matches_min_of_single_sources(self):
        ours, _ = random_graph(3, 20, 0.15)
        sources = [0, 5, 7]
        multi = multi_source_hops(ours, sources)
        singles = [bfs_hops(ours, s) for s in sources]
        for v in range(20):
            reachable = [d[v] for d in singles if d[v] != UNREACHABLE]
            expected = min(reachable) if reachable else UNREACHABLE
            assert multi[v] == expected


class TestShortestHopPath:
    def test_trivial(self):
        g = Graph(2)
        assert shortest_hop_path(g, 1, 1) == [1]

    def test_disconnected_returns_none(self):
        g = Graph(2)
        assert shortest_hop_path(g, 0, 1) is None

    def test_path_valid_and_shortest(self):
        ours, theirs = random_graph(11, 30, 0.12)
        dist = bfs_hops(ours, 0)
        for target in range(1, 30):
            path = shortest_hop_path(ours, 0, target)
            if dist[target] == UNREACHABLE:
                assert path is None
                continue
            assert path[0] == 0 and path[-1] == target
            assert len(path) == dist[target] + 1
            for a, b in zip(path, path[1:]):
                assert ours.has_edge(a, b)


class TestComponentsAndConnectivity:
    def test_components(self):
        g = Graph.from_edges(5, [(0, 1), (2, 3)])
        assert connected_components(g) == [[0, 1], [2, 3], [4]]

    def test_is_connected_full_graph(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2)])
        assert is_connected(g)
        g2 = Graph(3)
        g2.add_edge(0, 1)
        assert not is_connected(g2)

    def test_is_connected_subset(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2), (3, 4)])
        assert is_connected(g, [0, 1, 2])
        assert is_connected(g, [3, 4])
        assert not is_connected(g, [0, 3])
        assert not is_connected(g, [0, 2])  # 1 is not in the subset

    def test_trivial_sets_connected(self):
        g = Graph(3)
        assert is_connected(g, [])
        assert is_connected(g, [2])
        assert is_connected(Graph(0))
        assert is_connected(Graph(1))

    @given(st.integers(0, 10_000), st.integers(1, 20), st.floats(0.0, 0.6))
    @settings(max_examples=30, deadline=None)
    def test_matches_networkx_connectivity(self, seed, n, p):
        ours, theirs = random_graph(seed, n, p)
        assert is_connected(ours) == nx.is_connected(theirs)
